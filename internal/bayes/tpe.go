// Package bayes implements the model-based configuration sampler behind
// BOHB (Falkner et al., ICML 2018): a Tree-Parzen-Estimator-style density
// model fitted to observed (configuration, score) pairs. Observations at
// the largest budget with enough data are split into a "good" set (top
// quantile) and a "bad" set; categorical kernel-density estimates are
// fitted to both, and new configurations are proposed by sampling from the
// good density and ranking candidates by the density ratio good/bad.
//
// The space is fully categorical (Table III), so the KDE reduces to
// Laplace-smoothed frequency tables per dimension — the same treatment
// BOHB's KDE applies to categorical dimensions.
package bayes

import (
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// Observation is one completed evaluation fed back to the sampler.
type Observation struct {
	// Config is the evaluated configuration.
	Config search.Config
	// Budget is the number of instances used for the evaluation.
	Budget int
	// Score is the configuration's evaluation score (higher is better).
	Score float64
}

// Options tune the sampler.
type Options struct {
	// MinPoints is the minimum number of observations at a budget before
	// the model is used; below it the sampler falls back to random. 0
	// selects |dims|+2, mirroring BOHB's d+1 rule with one extra point.
	MinPoints int
	// GoodFraction is the quantile of observations labelled "good".
	// 0 selects BOHB's default 0.15.
	GoodFraction float64
	// Bandwidth is the Laplace smoothing mass added to every categorical
	// value. 0 selects 1.
	Bandwidth float64
	// Candidates is how many proposals are drawn from the good density
	// before picking the best ratio. 0 selects 24.
	Candidates int
	// RandomFraction is the probability of ignoring the model and sampling
	// uniformly, preserving exploration. 0 selects BOHB's default 1/3.
	RandomFraction float64
}

func (o Options) withDefaults(dims int) Options {
	if o.MinPoints <= 0 {
		o.MinPoints = dims + 2
	}
	if o.GoodFraction <= 0 {
		o.GoodFraction = 0.15
	}
	if o.Bandwidth <= 0 {
		o.Bandwidth = 1
	}
	if o.Candidates <= 0 {
		o.Candidates = 24
	}
	if o.RandomFraction <= 0 {
		o.RandomFraction = 1.0 / 3
	}
	return o
}

// Sampler proposes configurations using the TPE density-ratio model.
type Sampler struct {
	space *search.Space
	opts  Options
	// byBudget[budget] collects observations at that budget.
	byBudget map[int][]Observation
}

// NewSampler returns a sampler over the given space.
func NewSampler(space *search.Space, opts Options) *Sampler {
	return &Sampler{
		space:    space,
		opts:     opts.withDefaults(len(space.Dims)),
		byBudget: make(map[int][]Observation),
	}
}

// Add feeds one completed evaluation back into the model.
func (s *Sampler) Add(obs Observation) {
	s.byBudget[obs.Budget] = append(s.byBudget[obs.Budget], obs)
}

// Observations returns the total number of recorded observations.
func (s *Sampler) Observations() int {
	n := 0
	for _, v := range s.byBudget {
		n += len(v)
	}
	return n
}

// Sample proposes a configuration: model-based when enough observations
// exist at some budget, uniform otherwise (and with probability
// RandomFraction regardless, as in BOHB).
func (s *Sampler) Sample(r *rng.RNG) search.Config {
	if r.Float64() < s.opts.RandomFraction {
		return s.space.Sample(r)
	}
	obs := s.modelObservations()
	if obs == nil {
		return s.space.Sample(r)
	}
	good, bad := s.split(obs)
	goodKDE := s.fitKDE(good)
	badKDE := s.fitKDE(bad)
	bestRatio := -1.0
	var best search.Config
	for c := 0; c < s.opts.Candidates; c++ {
		cand := s.sampleFrom(goodKDE, r)
		ratio := s.density(goodKDE, cand) / s.density(badKDE, cand)
		if ratio > bestRatio {
			bestRatio = ratio
			best = cand
		}
	}
	return best
}

// modelObservations returns the observation set at the largest budget that
// has at least MinPoints observations, or nil when no budget qualifies —
// BOHB always models the highest-fidelity data available.
func (s *Sampler) modelObservations() []Observation {
	bestBudget := -1
	for b, obs := range s.byBudget {
		if len(obs) >= s.opts.MinPoints && b > bestBudget {
			bestBudget = b
		}
	}
	if bestBudget < 0 {
		return nil
	}
	return s.byBudget[bestBudget]
}

// split partitions observations into good (top GoodFraction by score) and
// bad, guaranteeing at least one observation on each side.
func (s *Sampler) split(obs []Observation) (good, bad []Observation) {
	sorted := append([]Observation(nil), obs...)
	// insertion sort by descending score; observation counts are small.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Score > sorted[j-1].Score; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	nGood := int(float64(len(sorted)) * s.opts.GoodFraction)
	if nGood < 1 {
		nGood = 1
	}
	if nGood >= len(sorted) {
		nGood = len(sorted) - 1
	}
	return sorted[:nGood], sorted[nGood:]
}

// kde holds, per dimension, the smoothed probability of each value.
type kde [][]float64

// fitKDE builds the Laplace-smoothed frequency tables.
func (s *Sampler) fitKDE(obs []Observation) kde {
	tables := make(kde, len(s.space.Dims))
	for d, dim := range s.space.Dims {
		counts := make([]float64, len(dim.Values))
		for i := range counts {
			counts[i] = s.opts.Bandwidth
		}
		for _, o := range obs {
			counts[o.Config.Index(d)]++
		}
		var total float64
		for _, c := range counts {
			total += c
		}
		for i := range counts {
			counts[i] /= total
		}
		tables[d] = counts
	}
	return tables
}

func (s *Sampler) sampleFrom(k kde, r *rng.RNG) search.Config {
	idx := make([]int, len(s.space.Dims))
	for d := range idx {
		idx[d] = r.Choice(k[d])
	}
	return s.space.NewConfig(idx)
}

func (s *Sampler) density(k kde, c search.Config) float64 {
	p := 1.0
	for d := range s.space.Dims {
		p *= k[d][c.Index(d)]
	}
	return p
}

package bayes

import (
	"testing"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

func smallSpace() *search.Space {
	return &search.Space{Dims: []search.Dimension{
		{Name: "a", Values: []any{0, 1, 2}},
		{Name: "b", Values: []any{0, 1, 2}},
	}}
}

func TestSamplerFallsBackToRandomWithoutData(t *testing.T) {
	s := NewSampler(smallSpace(), Options{})
	r := rng.New(1)
	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		c := s.Sample(r)
		seen[c.ID()] = true
	}
	if len(seen) < 5 {
		t.Fatalf("random fallback visited only %d configs", len(seen))
	}
}

func TestSamplerConcentratesOnGoodRegion(t *testing.T) {
	space := smallSpace()
	s := NewSampler(space, Options{RandomFraction: 0.01, MinPoints: 5})
	// Feed observations: configs with a=0 score high, everything else low.
	budget := 100
	for i, c := range space.Enumerate() {
		score := 0.1
		if c.Index(0) == 0 {
			score = 0.9
		}
		s.Add(Observation{Config: c, Budget: budget, Score: score + float64(i)*1e-6})
	}
	if s.Observations() != 9 {
		t.Fatalf("observations = %d", s.Observations())
	}
	r := rng.New(2)
	hits := 0
	const draws = 200
	for i := 0; i < draws; i++ {
		if s.Sample(r).Index(0) == 0 {
			hits++
		}
	}
	if frac := float64(hits) / draws; frac < 0.6 {
		t.Fatalf("model proposed good region only %v of draws", frac)
	}
}

func TestSamplerUsesLargestQualifiedBudget(t *testing.T) {
	space := smallSpace()
	s := NewSampler(space, Options{RandomFraction: 0.01, MinPoints: 3})
	// Low budget says a=2 is good; high budget says a=0 is good. The model
	// must trust the high-budget data.
	for _, c := range space.Enumerate() {
		lowScore := 0.1
		if c.Index(0) == 2 {
			lowScore = 0.9
		}
		s.Add(Observation{Config: c, Budget: 10, Score: lowScore})
		highScore := 0.1
		if c.Index(0) == 0 {
			highScore = 0.9
		}
		s.Add(Observation{Config: c, Budget: 100, Score: highScore})
	}
	r := rng.New(3)
	hiHits, loHits := 0, 0
	const draws = 200
	for i := 0; i < draws; i++ {
		c := s.Sample(r)
		switch c.Index(0) {
		case 0:
			hiHits++
		case 2:
			loHits++
		}
	}
	if hiHits <= loHits {
		t.Fatalf("sampler trusted low budget: high=%d low=%d", hiHits, loHits)
	}
}

func TestSplitAlwaysNonEmpty(t *testing.T) {
	space := smallSpace()
	s := NewSampler(space, Options{})
	obs := []Observation{
		{Config: space.Sample(rng.New(1)), Budget: 10, Score: 0.5},
		{Config: space.Sample(rng.New(2)), Budget: 10, Score: 0.7},
	}
	good, bad := s.split(obs)
	if len(good) == 0 || len(bad) == 0 {
		t.Fatalf("split %d/%d", len(good), len(bad))
	}
	if good[0].Score < bad[len(bad)-1].Score {
		t.Fatal("good set has lower score than bad set")
	}
}

func TestKDEDensityPositive(t *testing.T) {
	space := smallSpace()
	s := NewSampler(space, Options{})
	k := s.fitKDE(nil) // only smoothing mass
	for d := range space.Dims {
		var sum float64
		for _, p := range k[d] {
			if p <= 0 {
				t.Fatal("non-positive KDE probability")
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("dimension %d probabilities sum to %v", d, sum)
		}
	}
	c := space.Sample(rng.New(4))
	if s.density(k, c) <= 0 {
		t.Fatal("zero density for valid config")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(4)
	if o.MinPoints != 6 {
		t.Errorf("MinPoints = %d", o.MinPoints)
	}
	if o.GoodFraction != 0.15 || o.Bandwidth != 1 || o.Candidates != 24 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.RandomFraction <= 0.3 || o.RandomFraction >= 0.4 {
		t.Errorf("RandomFraction = %v", o.RandomFraction)
	}
}

package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/serve"
	"enhancedbhpo/internal/serve/shipper"
)

// freezeEvaluator blocks every evaluation on a gate once armed — the
// fault-injection hook that wedges a node's jobs mid-run so the test can
// kill it with work in flight.
type freezeEvaluator struct {
	inner hpo.Evaluator
	armed *atomic.Bool
	gate  chan struct{}
}

func (f *freezeEvaluator) FullBudget() int { return f.inner.FullBudget() }

func (f *freezeEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if f.armed.Load() {
		<-f.gate
	}
	return f.inner.Evaluate(cfg, budget, r)
}

// workerProc is one in-process "machine": a real manager with journaled
// persistence and a synchronous shipper replicating to the shared ship
// root, fronted by its own HTTP server.
type workerProc struct {
	name    string
	dataDir string
	m       *serve.Manager
	ts      *httptest.Server
	armed   atomic.Bool
	gate    chan struct{}
	unfroze sync.Once
}

func (wp *workerProc) release() { wp.unfroze.Do(func() { close(wp.gate) }) }

func startWorkerProc(t *testing.T, shipRoot, name string) *workerProc {
	return startWorkerProcMulti(t, []string{shipRoot}, name)
}

// startWorkerProcMulti starts a worker shipping synchronously to one
// replica directory per sink root — the N-way replication layout.
func startWorkerProcMulti(t *testing.T, shipRoots []string, name string) *workerProc {
	t.Helper()
	wp := &workerProc{name: name, dataDir: t.TempDir(), gate: make(chan struct{})}
	sinks := make([]shipper.Sink, 0, len(shipRoots))
	for _, root := range shipRoots {
		sink, err := shipper.NewDirSink(filepath.Join(root, name))
		if err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, sink)
	}
	ship := shipper.NewMulti(wp.dataDir, sinks, shipper.Options{Sync: true})
	m, err := serve.NewManagerFromJournal(serve.Config{
		PoolSize: 2, MaxJobs: 8, DataDir: wp.dataDir, NodeName: name, Shipper: ship,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			return &freezeEvaluator{inner: inner, armed: &wp.armed, gate: wp.gate}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wp.m = m
	wp.ts = httptest.NewServer(serve.NewServer(m))
	return wp
}

// sseClient consumes a job's event feed, tracking the frames it has
// seen; reconnections resume past the recorded sequence.
type sseClient struct {
	mu   sync.Mutex
	seen []events.Event
}

func (c *sseClient) last() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.seen) == 0 {
		return 0
	}
	return c.seen[len(c.seen)-1].Seq
}

func (c *sseClient) snapshot() []events.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]events.Event(nil), c.seen...)
}

// stream reads one SSE connection, appending frames until the stream
// breaks, the context ends, or a terminal event arrives (returns true).
func (c *sseClient) stream(ctx context.Context, url string, after uint64) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	if after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(after, 10))
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue
			}
			var ev events.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return false, err
			}
			data = nil
			c.mu.Lock()
			c.seen = append(c.seen, ev)
			c.mu.Unlock()
			if ev.Terminal {
				return true, nil
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		}
	}
	return false, sc.Err()
}

// jobSnap fetches one job snapshot through the coordinator.
func jobSnap(t *testing.T, base, qid string) (serve.Snapshot, int) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + qid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return snap, resp.StatusCode
}

// waitTerminal polls a job through the coordinator until it reaches a
// terminal status.
func waitTerminal(t *testing.T, base, qid string) serve.Snapshot {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		snap, code := jobSnap(t, base, qid)
		terminal := snap.Status == serve.StatusDone || snap.Status == serve.StatusFailed || snap.Status == serve.StatusCancelled
		if code == http.StatusOK && terminal {
			return snap
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", qid)
	panic("unreachable")
}

// TestFailoverNodeKill is the cluster kill/failover e2e, the PR's
// acceptance scenario. Three real workers (journaled managers with
// synchronous shippers replicating into one ship root) run a storm of
// jobs routed through a coordinator. The node owning a watched job is
// killed -9 mid-run — its server vanishes with an evaluation in flight,
// no shutdown, no flush. The coordinator must declare it dead while the
// cluster stays servable; a replacement restored from the shipped
// segments and swapped in via /cluster/replace must serve every job the
// dead node ever acked — terminal jobs with byte-identical pre-crash
// curves, the mid-run job as cancelled/interrupted — and the SSE watcher
// must resume through the coordinator without a sequence gap.
//
// Runs ~2s of storm by default; `make failover` sets BHPOD_CHAOS_SECONDS=30.
func TestFailoverNodeKill(t *testing.T) {
	secs := 2.0
	if s := os.Getenv("BHPOD_CHAOS_SECONDS"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			secs = v
		}
	}
	stormDeadline := time.Now().Add(time.Duration(secs * float64(time.Second) / 2))

	shipRoot := t.TempDir()
	names := []string{"a", "b", "c"}

	spec := func(seed uint64) serve.JobSpec {
		return serve.JobSpec{
			Dataset: "australian", Scale: 0.06, DatasetSeed: seed,
			Method: "sha", NumHPs: 2, MaxConfigs: 6, Iters: 2, Seed: 3,
		}
	}
	// The coordinator routes on this same ring shape (same names, same
	// default replica count), so ownership is computable up front.
	ring := NewRing(0)
	for _, n := range names {
		ring.Add(n)
	}
	watched := spec(1)
	victimName := ring.Owner(watched.CacheScope())

	workers := map[string]*workerProc{}
	nodes := make([]Node, 0, len(names))
	for _, n := range names {
		wp := startWorkerProc(t, shipRoot, n)
		workers[n] = wp
		nodes = append(nodes, Node{Name: n, URL: wp.ts.URL})
		t.Cleanup(func() {
			wp.release()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			wp.m.Shutdown(ctx)
		})
	}
	coord, err := New(Config{
		Nodes: nodes,
		Probe: ProbeOptions{Interval: time.Hour, Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	t.Cleanup(front.Close)

	// Storm: batches with scopes on the victim and elsewhere, each batch
	// run to completion, until half the chaos budget is spent.
	stormSeeds := func(round int) []uint64 {
		victimOwned, others := []uint64{}, []uint64{}
		for seed := uint64(round * 1000); len(victimOwned) < 2 || len(others) < 2; seed++ {
			if ring.Owner(spec(seed).CacheScope()) == victimName {
				if len(victimOwned) < 2 {
					victimOwned = append(victimOwned, seed)
				}
			} else if len(others) < 2 {
				others = append(others, seed)
			}
		}
		return append(victimOwned, others...)
	}
	var acked []string
	for round := 1; ; round++ {
		var ids []string
		for _, seed := range stormSeeds(round) {
			resp, snap := postJob(t, front.URL, spec(seed))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("storm submit: %s", resp.Status)
			}
			ids = append(ids, snap.ID)
		}
		for _, id := range ids {
			if snap := waitTerminal(t, front.URL, id); snap.Status != serve.StatusDone {
				t.Fatalf("storm job %s: %s, want done", id, snap.Status)
			}
		}
		acked = append(acked, ids...)
		if !time.Now().Before(stormDeadline) {
			break
		}
	}

	// Pre-kill ground truth: every terminal snapshot the victim served.
	preKill := map[string]serve.Snapshot{}
	for _, id := range acked {
		if strings.HasPrefix(id, victimName+":") {
			snap, code := jobSnap(t, front.URL, id)
			if code != http.StatusOK {
				t.Fatalf("pre-kill snapshot %s: %d", id, code)
			}
			preKill[id] = snap
		}
	}
	if len(preKill) == 0 {
		t.Fatal("storm placed no jobs on the victim")
	}

	// Freeze the victim and land the watched job on it: it reaches
	// running, then wedges inside its first evaluation.
	victim := workers[victimName]
	victim.armed.Store(true)
	resp, wsnap := postJob(t, front.URL, watched)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("watched submit: %s", resp.Status)
	}
	watchedID := wsnap.ID
	if node, _, _ := splitID(watchedID); node != victimName {
		t.Fatalf("watched job routed to %q, want victim %q", watchedID, victimName)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		snap, code := jobSnap(t, front.URL, watchedID)
		if code == http.StatusOK && snap.Status == serve.StatusRunning {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("watched job never reached running (last %s)", snap.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The watcher follows the job through the coordinator. The frozen job
	// emits nothing further, so the stream goes quiet after the backlog.
	watcher := &sseClient{}
	streamErr := make(chan error, 1)
	go func() {
		_, err := watcher.stream(context.Background(), front.URL+"/jobs/"+watchedID+"/events", 0)
		streamErr <- err
	}()
	for deadline := time.Now().Add(10 * time.Second); watcher.last() == 0; {
		if !time.Now().Before(deadline) {
			t.Fatal("watcher saw no events before the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill -9: the server vanishes mid-request — no Shutdown, no journal
	// close, no shipper flush. The manager object is simply abandoned
	// with its evaluation wedged, exactly what a dead machine leaves.
	victim.ts.CloseClientConnections()
	victim.ts.Close()
	<-streamErr // the watcher's connection died with the node
	preKillLast := watcher.last()
	if preKillLast == 0 {
		t.Fatal("watcher lost its events")
	}

	// The prober walks the victim through degraded to dead; the cluster
	// stays servable (degraded, not dead) and the victim's jobs answer
	// 503 — retryable — while awaiting the replacement.
	for i := 0; i < 6; i++ {
		coord.ProbeNow()
	}
	if st := coord.prober.stateOf(victimName); st != StateDead {
		t.Fatalf("victim state %q after kill, want dead", st)
	}
	var health clusterHealth
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "degraded" || health.NodesAlive != 2 {
		t.Fatalf("cluster health %s alive=%d after kill, want degraded alive=2", health.Status, health.NodesAlive)
	}
	if _, code := jobSnap(t, front.URL, watchedID); code != http.StatusServiceUnavailable {
		t.Fatalf("dead node's job answered %d, want 503", code)
	}

	// Failover: restore the shipped replica onto a "fresh machine" and
	// point the victim's ring identity at it.
	restoredDir := t.TempDir()
	if err := shipper.Restore(filepath.Join(shipRoot, victimName), restoredDir); err != nil {
		t.Fatal(err)
	}
	rm, err := serve.NewManagerFromJournal(serve.Config{
		PoolSize: 2, MaxJobs: 8, DataDir: restoredDir, NodeName: victimName,
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(serve.NewServer(rm))
	t.Cleanup(func() {
		rts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		rm.Shutdown(ctx)
	})
	body, _ := json.Marshal(map[string]string{"node": victimName, "url": rts.URL})
	rresp, err := http.Post(front.URL+"/cluster/replace", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("replace: %s", rresp.Status)
	}

	// Zero job loss: every ID the cluster ever acked resolves again.
	lresp, err := http.Get(front.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listed []serve.Snapshot
	if err := json.NewDecoder(lresp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	have := map[string]bool{}
	for _, snap := range listed {
		have[snap.ID] = true
	}
	for _, id := range append(append([]string{}, acked...), watchedID) {
		if !have[id] {
			t.Fatalf("job %s lost across failover", id)
		}
	}

	// Byte-identical pre-crash state: the replacement serves the dead
	// node's terminal jobs exactly as the dead node did.
	for id, pre := range preKill {
		post, code := jobSnap(t, front.URL, id)
		if code != http.StatusOK {
			t.Fatalf("post-failover snapshot %s: %d", id, code)
		}
		preCurve, _ := json.Marshal(pre.Curve)
		postCurve, _ := json.Marshal(post.Curve)
		if !bytes.Equal(preCurve, postCurve) {
			t.Fatalf("job %s curve changed across failover:\npre:  %s\npost: %s", id, preCurve, postCurve)
		}
		preScores, _ := json.Marshal([]any{pre.Status, pre.BestScore, pre.TestScore, pre.Evaluations, pre.BestConfig})
		postScores, _ := json.Marshal([]any{post.Status, post.BestScore, post.TestScore, post.Evaluations, post.BestConfig})
		if !bytes.Equal(preScores, postScores) {
			t.Fatalf("job %s result changed across failover:\npre:  %s\npost: %s", id, preScores, postScores)
		}
	}

	// The mid-run job came back interrupted, and the watcher resumes
	// through the coordinator without a sequence gap: the replacement
	// primed its hub from the shipped trace, so the first new frame is
	// exactly preKillLast+1.
	terminal, err := watcher.stream(context.Background(), front.URL+"/jobs/"+watchedID+"/events", preKillLast)
	if err != nil || !terminal {
		t.Fatalf("resumed stream: terminal=%v err=%v", terminal, err)
	}
	seen := watcher.snapshot()
	for i := 1; i < len(seen); i++ {
		if seen[i].Seq != seen[i-1].Seq+1 {
			t.Fatalf("sequence gap across failover: %d then %d", seen[i-1].Seq, seen[i].Seq)
		}
	}
	final := seen[len(seen)-1]
	if final.Seq != preKillLast+1 || !final.Terminal {
		t.Fatalf("resume did not continue at %d: got seq %d terminal=%v", preKillLast+1, final.Seq, final.Terminal)
	}
	if final.Status != string(serve.StatusCancelled) || final.Reason != string(serve.ReasonInterrupted) {
		t.Fatalf("watched job ended %s/%s, want cancelled/interrupted", final.Status, final.Reason)
	}
	wpost, _ := jobSnap(t, front.URL, watchedID)
	if wpost.Status != serve.StatusCancelled || wpost.Reason != serve.ReasonInterrupted {
		t.Fatalf("watched job snapshot %s/%s, want cancelled/interrupted", wpost.Status, wpost.Reason)
	}

	// The cluster is whole again and the failover is visible in metrics.
	coord.ProbeNow()
	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var cm ClusterMetrics
	if err := json.NewDecoder(mresp.Body).Decode(&cm); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if cm.NodesAlive != 3 {
		t.Fatalf("nodes_alive %d after replacement, want 3", cm.NodesAlive)
	}
	if cm.JobsFailedOver == 0 {
		t.Fatal("jobs_failed_over is zero after a failover")
	}
	if cm.SegmentsShipped == 0 || cm.ShipBytes == 0 {
		t.Fatalf("ship metrics empty: %+v", cm)
	}
}

package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// NodeState is the prober's verdict on one worker.
type NodeState string

const (
	// StateAlive: the node answers /healthz. Its reported health (ok,
	// overloaded, draining) is carried separately — an overloaded node is
	// alive, just shedding writes.
	StateAlive NodeState = "alive"
	// StateDegraded: a few consecutive probes failed. The router stops
	// sending *new* jobs to it but existing jobs still resolve there —
	// a GC pause or transient partition should not scatter a scope's
	// jobs across the ring.
	StateDegraded NodeState = "degraded"
	// StateDead: failures crossed the dead threshold. The node's hash
	// range is served by its ring successors until a replacement (restored
	// from shipped journal segments) takes over its identity.
	StateDead NodeState = "dead"
	// StateDraining: the node answers probes but is leaving the ring —
	// no new jobs route to it while its running work finishes; reads
	// still resolve.
	StateDraining NodeState = "draining"
	// StateStandby: a registered spare, not in the ring and owning no
	// jobs, waiting to adopt a dead node's identity.
	StateStandby NodeState = "standby"
	// StateRestoring: the node is dead and an automated restore onto a
	// standby is in flight; reads return a retryable 503 until the
	// replacement takes over.
	StateRestoring NodeState = "restoring"
)

// ProbeOptions tunes the heartbeat prober.
type ProbeOptions struct {
	// Interval paces the probe loop. 0 selects 1s.
	Interval time.Duration
	// Timeout bounds one probe request. 0 selects Interval (a probe never
	// overlaps the next round).
	Timeout time.Duration
	// DegradedAfter is the consecutive-failure count that demotes a node
	// to degraded. 0 selects 2.
	DegradedAfter int
	// DeadAfter is the consecutive-failure count that declares a node
	// dead. 0 selects 6.
	DeadAfter int
	// Alpha is the RTT EWMA smoothing factor in (0, 1]. 0 selects 0.3.
	Alpha float64
}

func (o ProbeOptions) withDefaults() ProbeOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval
	}
	if o.DegradedAfter <= 0 {
		o.DegradedAfter = 2
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 6
	}
	if o.DeadAfter < o.DegradedAfter {
		o.DeadAfter = o.DegradedAfter
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	return o
}

// NodeStatus is one node's probed condition, served by GET /cluster.
type NodeStatus struct {
	Name  string    `json:"name"`
	URL   string    `json:"url"`
	State NodeState `json:"state"`
	// Health is the node's own /healthz status vocabulary (ok, overloaded,
	// draining); empty until the first successful probe.
	Health string `json:"health,omitempty"`
	// RTTMillis is the EWMA-smoothed probe round-trip time.
	RTTMillis float64 `json:"rtt_ms,omitempty"`
	// Fails is the current consecutive-failure streak.
	Fails int `json:"fails,omitempty"`
	// LastError is the most recent probe failure, cleared on success.
	LastError string `json:"last_error,omitempty"`
	// Pending is the node's reported pending-queue depth.
	Pending int `json:"pending"`
	// LastProbe is when the prober last completed a probe of this node
	// (success or failure); zero before the first one.
	LastProbe time.Time `json:"last_probe"`
	// Quarantined marks a standby that failed a restore attempt; the
	// failover pipeline prefers clean standbys and only falls back to
	// quarantined ones when nothing else is left.
	Quarantined bool `json:"quarantined,omitempty"`
}

// prober maintains per-node liveness by polling each worker's /healthz.
// A node starts alive (optimistically — the router should not refuse
// traffic before the first probe lands) and moves through degraded to
// dead on consecutive failures; one success fully restores it.
type prober struct {
	opts   ProbeOptions
	client *http.Client

	// onDead, when set (before start), fires once per alive→dead
	// transition of a ring member (standbys excluded) — the automated
	// failover trigger. Called without the prober lock held.
	onDead func(name string)

	mu    sync.Mutex
	nodes map[string]*probeEntry

	stop chan struct{}
	wg   sync.WaitGroup
}

type probeEntry struct {
	url       string
	state     NodeState // base probe verdict: alive/degraded/dead
	health    string
	rttMs     float64
	fails     int
	lastErr   string
	pending   int
	lastProbe time.Time

	// Overlays on the probe verdict, managed by the coordinator.
	standby     bool // registered spare, not a ring member
	draining    bool // leaving the ring; no new jobs
	restoring   bool // dead with an automated restore in flight
	quarantined bool // standby that failed a restore
}

// effectiveState folds the coordinator-managed overlays into the probe
// verdict — what routing and GET /cluster see.
func (e *probeEntry) effectiveState() NodeState {
	switch {
	case e.standby:
		return StateStandby
	case e.restoring && e.state == StateDead:
		// Only a dead node shows restoring: if it resurrects mid-pipeline
		// the probe verdict wins and the pipeline stands down.
		return StateRestoring
	case e.draining && e.state == StateAlive:
		return StateDraining
	}
	return e.state
}

// newProber returns a prober tracking no nodes; start launches its loop.
func newProber(opts ProbeOptions, client *http.Client) *prober {
	opts = opts.withDefaults()
	if client == nil {
		client = &http.Client{}
	}
	return &prober{
		opts:   opts,
		client: client,
		nodes:  map[string]*probeEntry{},
		stop:   make(chan struct{}),
	}
}

// track adds (or re-points) a ring member. Re-pointing resets the node
// to a fresh alive state — a replacement deserves a clean failure streak
// — and clears every overlay (a promoted standby becomes a plain member).
func (p *prober) track(name, url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes[name] = &probeEntry{url: url, state: StateAlive}
}

// trackStandby registers a spare: probed for visibility, never routed to.
func (p *prober) trackStandby(name, url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes[name] = &probeEntry{url: url, state: StateAlive, standby: true}
}

// untrack forgets a node (leave, or a standby consumed by promotion
// under a different name).
func (p *prober) untrack(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.nodes, name)
}

// setDraining flags/unflags a member as leaving the ring.
func (p *prober) setDraining(name string, on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.nodes[name]; ok {
		e.draining = on
	}
}

// setRestoring flags/unflags a dead member as under automated restore.
func (p *prober) setRestoring(name string, on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.nodes[name]; ok {
		e.restoring = on
	}
}

// setQuarantined flags a standby that failed a restore.
func (p *prober) setQuarantined(name string, on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.nodes[name]; ok {
		e.quarantined = on
	}
}

// standbyInfo is one registered spare as the failover pipeline sees it.
type standbyInfo struct {
	name        string
	url         string
	quarantined bool
}

// standbys lists registered spares, clean ones first, in name order
// within each group — the promotion preference order.
func (p *prober) standbys() []standbyInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	var clean, dirty []standbyInfo
	for name, e := range p.nodes {
		if !e.standby {
			continue
		}
		info := standbyInfo{name: name, url: e.url, quarantined: e.quarantined}
		if e.quarantined {
			dirty = append(dirty, info)
		} else {
			clean = append(clean, info)
		}
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i].name < clean[j].name })
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].name < dirty[j].name })
	return append(clean, dirty...)
}

// urlOf returns the node's current URL ("" if untracked).
func (p *prober) urlOf(name string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.nodes[name]; ok {
		return e.url
	}
	return ""
}

// stateOf returns the node's state (StateDead if untracked).
func (p *prober) stateOf(name string) NodeState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.nodes[name]; ok {
		return e.effectiveState()
	}
	return StateDead
}

// status snapshots every tracked node.
func (p *prober) status() []NodeStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeStatus, 0, len(p.nodes))
	for name, e := range p.nodes {
		out = append(out, NodeStatus{
			Name:        name,
			URL:         e.url,
			State:       e.effectiveState(),
			Health:      e.health,
			RTTMillis:   e.rttMs,
			Fails:       e.fails,
			LastError:   e.lastErr,
			Pending:     e.pending,
			LastProbe:   e.lastProbe,
			Quarantined: e.quarantined,
		})
	}
	return out
}

// start launches the probe loop; close stop to end it.
func (p *prober) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.probeAll()
			}
		}
	}()
}

// shutdown stops the loop and waits for it.
func (p *prober) shutdown() {
	close(p.stop)
	p.wg.Wait()
}

// probeAll probes every tracked node concurrently and waits for the round.
func (p *prober) probeAll() {
	p.mu.Lock()
	names := make([]string, 0, len(p.nodes))
	urls := make([]string, 0, len(p.nodes))
	for name, e := range p.nodes {
		names = append(names, name)
		urls = append(urls, e.url)
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			p.probeOne(name, url)
		}(names[i], urls[i])
	}
	wg.Wait()
}

// probeOne hits one node's /healthz and folds the outcome into its entry.
// Any transport error or non-200 is a failure; a 200 with any status
// vocabulary (ok, overloaded, draining) is a success — an overloaded node
// is alive and must not be declared dead, it is shedding by design.
func (p *prober) probeOne(name, url string) {
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	start := time.Now()
	var body struct {
		Status  string `json:"status"`
		Pending int    `json:"pending"`
	}
	err := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := p.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz: %s", resp.Status)
		}
		return json.NewDecoder(resp.Body).Decode(&body)
	}()
	rtt := time.Since(start)

	p.mu.Lock()
	e, ok := p.nodes[name]
	if !ok || e.url != url {
		// Replaced mid-probe: the verdict belongs to the old URL.
		p.mu.Unlock()
		return
	}
	e.lastProbe = time.Now()
	var died bool
	if err != nil {
		e.fails++
		e.lastErr = err.Error()
		switch {
		case e.fails >= p.opts.DeadAfter:
			died = e.state != StateDead && !e.standby
			e.state = StateDead
		case e.fails >= p.opts.DegradedAfter:
			e.state = StateDegraded
		}
	} else {
		e.fails = 0
		e.lastErr = ""
		e.state = StateAlive
		e.health = body.Status
		e.pending = body.Pending
		ms := float64(rtt) / float64(time.Millisecond)
		if e.rttMs == 0 {
			e.rttMs = ms
		} else {
			e.rttMs = (1-p.opts.Alpha)*e.rttMs + p.opts.Alpha*ms
		}
	}
	onDead := p.onDead
	p.mu.Unlock()
	if died && onDead != nil {
		onDead(name)
	}
}

package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// NodeState is the prober's verdict on one worker.
type NodeState string

const (
	// StateAlive: the node answers /healthz. Its reported health (ok,
	// overloaded, draining) is carried separately — an overloaded node is
	// alive, just shedding writes.
	StateAlive NodeState = "alive"
	// StateDegraded: a few consecutive probes failed. The router stops
	// sending *new* jobs to it but existing jobs still resolve there —
	// a GC pause or transient partition should not scatter a scope's
	// jobs across the ring.
	StateDegraded NodeState = "degraded"
	// StateDead: failures crossed the dead threshold. The node's hash
	// range is served by its ring successors until a replacement (restored
	// from shipped journal segments) takes over its identity.
	StateDead NodeState = "dead"
)

// ProbeOptions tunes the heartbeat prober.
type ProbeOptions struct {
	// Interval paces the probe loop. 0 selects 1s.
	Interval time.Duration
	// Timeout bounds one probe request. 0 selects Interval (a probe never
	// overlaps the next round).
	Timeout time.Duration
	// DegradedAfter is the consecutive-failure count that demotes a node
	// to degraded. 0 selects 2.
	DegradedAfter int
	// DeadAfter is the consecutive-failure count that declares a node
	// dead. 0 selects 6.
	DeadAfter int
	// Alpha is the RTT EWMA smoothing factor in (0, 1]. 0 selects 0.3.
	Alpha float64
}

func (o ProbeOptions) withDefaults() ProbeOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval
	}
	if o.DegradedAfter <= 0 {
		o.DegradedAfter = 2
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 6
	}
	if o.DeadAfter < o.DegradedAfter {
		o.DeadAfter = o.DegradedAfter
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	return o
}

// NodeStatus is one node's probed condition, served by GET /cluster.
type NodeStatus struct {
	Name  string    `json:"name"`
	URL   string    `json:"url"`
	State NodeState `json:"state"`
	// Health is the node's own /healthz status vocabulary (ok, overloaded,
	// draining); empty until the first successful probe.
	Health string `json:"health,omitempty"`
	// RTTMillis is the EWMA-smoothed probe round-trip time.
	RTTMillis float64 `json:"rtt_ms,omitempty"`
	// Fails is the current consecutive-failure streak.
	Fails int `json:"fails,omitempty"`
	// LastError is the most recent probe failure, cleared on success.
	LastError string `json:"last_error,omitempty"`
	// Pending is the node's reported pending-queue depth.
	Pending int `json:"pending"`
}

// prober maintains per-node liveness by polling each worker's /healthz.
// A node starts alive (optimistically — the router should not refuse
// traffic before the first probe lands) and moves through degraded to
// dead on consecutive failures; one success fully restores it.
type prober struct {
	opts   ProbeOptions
	client *http.Client

	mu    sync.Mutex
	nodes map[string]*probeEntry

	stop chan struct{}
	wg   sync.WaitGroup
}

type probeEntry struct {
	url     string
	state   NodeState
	health  string
	rttMs   float64
	fails   int
	lastErr string
	pending int
}

// newProber returns a prober tracking no nodes; start launches its loop.
func newProber(opts ProbeOptions, client *http.Client) *prober {
	opts = opts.withDefaults()
	if client == nil {
		client = &http.Client{}
	}
	return &prober{
		opts:   opts,
		client: client,
		nodes:  map[string]*probeEntry{},
		stop:   make(chan struct{}),
	}
}

// track adds (or re-points) a node. Re-pointing resets the node to a
// fresh alive state: a replacement deserves a clean failure streak.
func (p *prober) track(name, url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nodes[name] = &probeEntry{url: url, state: StateAlive}
}

// urlOf returns the node's current URL ("" if untracked).
func (p *prober) urlOf(name string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.nodes[name]; ok {
		return e.url
	}
	return ""
}

// stateOf returns the node's state (StateDead if untracked).
func (p *prober) stateOf(name string) NodeState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.nodes[name]; ok {
		return e.state
	}
	return StateDead
}

// status snapshots every tracked node.
func (p *prober) status() []NodeStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeStatus, 0, len(p.nodes))
	for name, e := range p.nodes {
		out = append(out, NodeStatus{
			Name:      name,
			URL:       e.url,
			State:     e.state,
			Health:    e.health,
			RTTMillis: e.rttMs,
			Fails:     e.fails,
			LastError: e.lastErr,
			Pending:   e.pending,
		})
	}
	return out
}

// start launches the probe loop; close stop to end it.
func (p *prober) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.probeAll()
			}
		}
	}()
}

// shutdown stops the loop and waits for it.
func (p *prober) shutdown() {
	close(p.stop)
	p.wg.Wait()
}

// probeAll probes every tracked node concurrently and waits for the round.
func (p *prober) probeAll() {
	p.mu.Lock()
	names := make([]string, 0, len(p.nodes))
	urls := make([]string, 0, len(p.nodes))
	for name, e := range p.nodes {
		names = append(names, name)
		urls = append(urls, e.url)
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			p.probeOne(name, url)
		}(names[i], urls[i])
	}
	wg.Wait()
}

// probeOne hits one node's /healthz and folds the outcome into its entry.
// Any transport error or non-200 is a failure; a 200 with any status
// vocabulary (ok, overloaded, draining) is a success — an overloaded node
// is alive and must not be declared dead, it is shedding by design.
func (p *prober) probeOne(name, url string) {
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	start := time.Now()
	var body struct {
		Status  string `json:"status"`
		Pending int    `json:"pending"`
	}
	err := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := p.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz: %s", resp.Status)
		}
		return json.NewDecoder(resp.Body).Decode(&body)
	}()
	rtt := time.Since(start)

	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.nodes[name]
	if !ok || e.url != url {
		// Replaced mid-probe: the verdict belongs to the old URL.
		return
	}
	if err != nil {
		e.fails++
		e.lastErr = err.Error()
		switch {
		case e.fails >= p.opts.DeadAfter:
			e.state = StateDead
		case e.fails >= p.opts.DegradedAfter:
			e.state = StateDegraded
		}
		return
	}
	e.fails = 0
	e.lastErr = ""
	e.state = StateAlive
	e.health = body.Status
	e.pending = body.Pending
	ms := float64(rtt) / float64(time.Millisecond)
	if e.rttMs == 0 {
		e.rttMs = ms
	} else {
		e.rttMs = (1-p.opts.Alpha)*e.rttMs + p.opts.Alpha*ms
	}
}

package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"enhancedbhpo/internal/serve"
	"enhancedbhpo/internal/serve/shipper"
)

// standbyProc is one in-process spare: a serve.Standby that, when the
// coordinator promotes it, restores the dead node's replica and swaps in
// a full worker — the -standby bhpod.
type standbyProc struct {
	ts *httptest.Server

	mu sync.Mutex
	m  *serve.Manager
}

func startStandbyProc(t *testing.T) *standbyProc {
	t.Helper()
	sp := &standbyProc{}
	sb := serve.NewStandby(serve.StandbyOptions{
		DataDir: t.TempDir(),
		Activate: func(node, dataDir string) (http.Handler, error) {
			m, err := serve.NewManagerFromJournal(serve.Config{
				PoolSize: 2, MaxJobs: 8, DataDir: dataDir, NodeName: node,
			})
			if err != nil {
				return nil, err
			}
			sp.mu.Lock()
			sp.m = m
			sp.mu.Unlock()
			return serve.NewServer(m), nil
		},
	})
	sp.ts = httptest.NewServer(sb)
	t.Cleanup(func() {
		sp.ts.Close()
		sp.mu.Lock()
		m := sp.m
		sp.mu.Unlock()
		if m != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			m.Shutdown(ctx)
		}
	})
	return sp
}

// corruptReplica overwrites one manifested file in a replica with
// garbage, saving the original bytes so the bitrot can be undone.
func corruptReplica(t *testing.T, dir string) (path string, orig []byte) {
	t.Helper()
	manifest, err := shipper.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name := range manifest {
		p := filepath.Join(dir, filepath.FromSlash(name))
		b, err := os.ReadFile(p)
		if err != nil {
			continue // superseded entry; try another
		}
		if err := os.WriteFile(p, []byte("bitrot"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p, b
	}
	t.Fatalf("replica %s has no manifested file to corrupt", dir)
	panic("unreachable")
}

func clusterMetrics(t *testing.T, base string) ClusterMetrics {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cm ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&cm); err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestFailoverZeroOperator is TestFailoverNodeKill with nobody at the
// keyboard: the same kill -9 mid-storm, but no manual /cluster/replace —
// the coordinator itself must verify the dead node's shipped replicas
// (two sink roots, one silently bit-rotted), quarantine a standby whose
// restore fails, promote the next, and re-point the ring. Mid-incident
// the coordinator is restarted; its membership journal must bring back
// the registered standby pool so the new process finishes the restore on
// its own. Afterward: zero acked jobs lost, byte-identical pre-crash
// curves, and the SSE watcher resuming at exactly last-seq+1.
//
// Runs a ~2s storm by default; `make failover` sets BHPOD_AUTO_FAILOVER=1
// with BHPOD_CHAOS_SECONDS=30 for the full chaos budget.
func TestFailoverZeroOperator(t *testing.T) {
	secs := 2.0
	if os.Getenv("BHPOD_AUTO_FAILOVER") == "1" {
		if v, err := strconv.ParseFloat(os.Getenv("BHPOD_CHAOS_SECONDS"), 64); err == nil && v > 0 {
			secs = v
		}
	}
	stormDeadline := time.Now().Add(time.Duration(secs * float64(time.Second) / 2))

	shipRootA, shipRootB := t.TempDir(), t.TempDir()
	names := []string{"a", "b", "c"}
	spec := func(seed uint64) serve.JobSpec {
		return serve.JobSpec{
			Dataset: "australian", Scale: 0.06, DatasetSeed: seed,
			Method: "sha", NumHPs: 2, MaxConfigs: 6, Iters: 2, Seed: 3,
		}
	}
	ring := NewRing(0)
	for _, n := range names {
		ring.Add(n)
	}
	watched := spec(1)
	victimName := ring.Owner(watched.CacheScope())

	workers := map[string]*workerProc{}
	nodes := make([]Node, 0, len(names))
	for _, n := range names {
		wp := startWorkerProcMulti(t, []string{shipRootA, shipRootB}, n)
		workers[n] = wp
		nodes = append(nodes, Node{Name: n, URL: wp.ts.URL})
		t.Cleanup(func() {
			wp.release()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			wp.m.Shutdown(ctx)
		})
	}

	dataDir := t.TempDir()
	cfg := Config{
		Nodes:             nodes,
		Probe:             ProbeOptions{Interval: time.Hour, Timeout: 2 * time.Second},
		DataDir:           dataDir,
		SinkRoots:         []string{shipRootA, shipRootB},
		AutoFailover:      true,
		RestoreBackoff:    10 * time.Millisecond,
		RestoreMaxBackoff: 50 * time.Millisecond,
	}
	coord1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front1 := httptest.NewServer(coord1)

	// The standby pool, registered at runtime (journaled): badStandby
	// refuses every restore — the fleet's broken spare — and sorts first
	// by name, so the pipeline must quarantine it and move on.
	badMux := http.NewServeMux()
	badMux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(map[string]string{"status": "standby"})
	})
	badMux.HandleFunc("POST /restore", func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, `{"error":"disk on fire"}`, http.StatusInternalServerError)
	})
	badStandby := httptest.NewServer(badMux)
	t.Cleanup(badStandby.Close)
	goodStandby := startStandbyProc(t)
	for name, url := range map[string]string{"s0": badStandby.URL, "s1": goodStandby.ts.URL} {
		body, _ := json.Marshal(map[string]string{"node": name, "url": url})
		resp, err := http.Post(front1.URL+"/cluster/standby", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("standby %s: %s", name, resp.Status)
		}
	}

	// Storm through the coordinator until half the chaos budget is spent.
	stormSeeds := func(round int) []uint64 {
		victimOwned, others := []uint64{}, []uint64{}
		for seed := uint64(round * 1000); len(victimOwned) < 2 || len(others) < 2; seed++ {
			if ring.Owner(spec(seed).CacheScope()) == victimName {
				if len(victimOwned) < 2 {
					victimOwned = append(victimOwned, seed)
				}
			} else if len(others) < 2 {
				others = append(others, seed)
			}
		}
		return append(victimOwned, others...)
	}
	var acked []string
	for round := 1; ; round++ {
		var ids []string
		for _, seed := range stormSeeds(round) {
			resp, snap := postJob(t, front1.URL, spec(seed))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("storm submit: %s", resp.Status)
			}
			ids = append(ids, snap.ID)
		}
		for _, id := range ids {
			if snap := waitTerminal(t, front1.URL, id); snap.Status != serve.StatusDone {
				t.Fatalf("storm job %s: %s, want done", id, snap.Status)
			}
		}
		acked = append(acked, ids...)
		if !time.Now().Before(stormDeadline) {
			break
		}
	}

	// Pre-kill ground truth for every terminal job the victim served.
	preKill := map[string]serve.Snapshot{}
	for _, id := range acked {
		if strings.HasPrefix(id, victimName+":") {
			snap, code := jobSnap(t, front1.URL, id)
			if code != http.StatusOK {
				t.Fatalf("pre-kill snapshot %s: %d", id, code)
			}
			preKill[id] = snap
		}
	}
	if len(preKill) == 0 {
		t.Fatal("storm placed no jobs on the victim")
	}

	// Land the watched job on the victim, frozen mid-evaluation, with an
	// SSE watcher attached through the coordinator.
	victim := workers[victimName]
	victim.armed.Store(true)
	resp, wsnap := postJob(t, front1.URL, watched)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("watched submit: %s", resp.Status)
	}
	watchedID := wsnap.ID
	for deadline := time.Now().Add(30 * time.Second); ; {
		snap, code := jobSnap(t, front1.URL, watchedID)
		if code == http.StatusOK && snap.Status == serve.StatusRunning {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("watched job never reached running (last %s)", snap.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	watcher := &sseClient{}
	streamErr := make(chan error, 1)
	go func() {
		_, err := watcher.stream(context.Background(), front1.URL+"/jobs/"+watchedID+"/events", 0)
		streamErr <- err
	}()
	for deadline := time.Now().Add(10 * time.Second); watcher.last() == 0; {
		if !time.Now().Before(deadline) {
			t.Fatal("watcher saw no events before the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Bitrot both replicas — A permanently, B reversibly — then kill -9.
	// With every replica failing verification the pipeline cannot finish,
	// pinning the incident open across the coordinator restart below.
	corruptReplica(t, filepath.Join(shipRootA, victimName))
	corruptedB, origB := corruptReplica(t, filepath.Join(shipRootB, victimName))
	victim.ts.CloseClientConnections()
	victim.ts.Close()
	<-streamErr
	preKillLast := watcher.last()
	if preKillLast == 0 {
		t.Fatal("watcher lost its events")
	}

	// The prober walks the victim to dead; the dead transition starts the
	// pipeline with no operator involved.
	for i := 0; i < 6; i++ {
		coord1.ProbeNow()
	}
	for deadline := time.Now().Add(10 * time.Second); coord1.prober.stateOf(victimName) != StateRestoring; {
		if !time.Now().Before(deadline) {
			t.Fatalf("victim state %q, want restoring (pipeline never started)", coord1.prober.stateOf(victimName))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, code := jobSnap(t, front1.URL, watchedID); code != http.StatusServiceUnavailable {
		t.Fatalf("dead node's job answered %d, want 503 while restoring", code)
	}

	// Coordinator crash mid-incident. The restore has not happened (no
	// replica verifies); the member set and standby pool live only in the
	// journal now.
	front1.Close()
	coord1.Shutdown()

	// Heal replica B and restart. The new coordinator must rebuild the
	// ring and the standby pool from members.jsonl, re-detect the dead
	// node, and finish the restore by itself: quarantine s0 (its restore
	// fails), promote s1 from the one clean replica.
	if err := os.WriteFile(corruptedB, origB, 0o644); err != nil {
		t.Fatal(err)
	}
	coord2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Shutdown()
	front2 := httptest.NewServer(coord2)
	defer front2.Close()
	statuses := clusterNodes(t, front2.URL)
	members, standbys := 0, 0
	for _, n := range statuses {
		if n.State == StateStandby {
			standbys++
		} else {
			members++
		}
	}
	if members != 3 || standbys != 2 {
		t.Fatalf("restarted coordinator recovered %d members / %d standbys, want 3/2", members, standbys)
	}
	for i := 0; i < 6; i++ {
		coord2.ProbeNow()
	}
	var cm ClusterMetrics
	for deadline := time.Now().Add(30 * time.Second); ; {
		cm = clusterMetrics(t, front2.URL)
		if cm.AutoRestores >= 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("automatic restore never completed: %+v", cm)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cm.AutoRestores != 1 {
		t.Fatalf("auto_restores = %d, want 1", cm.AutoRestores)
	}
	if cm.RestoresFailed != 1 {
		t.Fatalf("restores_failed = %d, want 1 (the broken spare)", cm.RestoresFailed)
	}
	if cm.RestoreDurationSeconds <= 0 {
		t.Fatalf("restore_duration_seconds = %v, want > 0", cm.RestoreDurationSeconds)
	}
	if st := coord2.prober.stateOf(victimName); st != StateAlive {
		t.Fatalf("victim state %q after automatic failover, want alive", st)
	}

	// The incident log tells the whole story: dead, failed restore with
	// the quarantined spare, then the failover.
	eresp, err := http.Get(front2.URL + "/cluster/events")
	if err != nil {
		t.Fatal(err)
	}
	var events []ClusterEvent
	if err := json.NewDecoder(eresp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	byType := map[string]ClusterEvent{}
	for _, ev := range events {
		byType[ev.Type] = ev
	}
	if ev, ok := byType["node-dead"]; !ok || ev.Node != victimName {
		t.Fatalf("no node-dead event for %s in %+v", victimName, events)
	}
	if ev, ok := byType["restore_failed"]; !ok || ev.Standby != "s0" {
		t.Fatalf("no restore_failed event for s0 in %+v", events)
	}
	if ev, ok := byType["failover"]; !ok || ev.Node != victimName || ev.Standby != "s1" || ev.DurationSec <= 0 {
		t.Fatalf("no complete failover event in %+v", events)
	}

	// The quarantine outlived the incident durably.
	ops, err := replayMemberLog(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := false
	for _, op := range ops {
		if op.Op == OpQuarantine && op.Node == "s0" && op.On {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("s0's quarantine was not journaled")
	}

	// Zero job loss: every ID the cluster ever acked resolves again.
	lresp, err := http.Get(front2.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listed []serve.Snapshot
	if err := json.NewDecoder(lresp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	have := map[string]bool{}
	for _, snap := range listed {
		have[snap.ID] = true
	}
	for _, id := range append(append([]string{}, acked...), watchedID) {
		if !have[id] {
			t.Fatalf("job %s lost across automatic failover", id)
		}
	}

	// Byte-identical pre-crash state on the promoted standby.
	for id, pre := range preKill {
		post, code := jobSnap(t, front2.URL, id)
		if code != http.StatusOK {
			t.Fatalf("post-failover snapshot %s: %d", id, code)
		}
		preCurve, _ := json.Marshal(pre.Curve)
		postCurve, _ := json.Marshal(post.Curve)
		if !bytes.Equal(preCurve, postCurve) {
			t.Fatalf("job %s curve changed across failover:\npre:  %s\npost: %s", id, preCurve, postCurve)
		}
		preScores, _ := json.Marshal([]any{pre.Status, pre.BestScore, pre.TestScore, pre.Evaluations, pre.BestConfig})
		postScores, _ := json.Marshal([]any{post.Status, post.BestScore, post.TestScore, post.Evaluations, post.BestConfig})
		if !bytes.Equal(preScores, postScores) {
			t.Fatalf("job %s result changed across failover:\npre:  %s\npost: %s", id, preScores, postScores)
		}
	}

	// SSE resume through the new coordinator: first new frame is exactly
	// preKillLast+1, terminal, cancelled/interrupted.
	terminal, err := watcher.stream(context.Background(), front2.URL+"/jobs/"+watchedID+"/events", preKillLast)
	if err != nil || !terminal {
		t.Fatalf("resumed stream: terminal=%v err=%v", terminal, err)
	}
	seen := watcher.snapshot()
	for i := 1; i < len(seen); i++ {
		if seen[i].Seq != seen[i-1].Seq+1 {
			t.Fatalf("sequence gap across failover: %d then %d", seen[i-1].Seq, seen[i].Seq)
		}
	}
	final := seen[len(seen)-1]
	if final.Seq != preKillLast+1 || !final.Terminal {
		t.Fatalf("resume did not continue at %d: got seq %d terminal=%v", preKillLast+1, final.Seq, final.Terminal)
	}
	if final.Status != string(serve.StatusCancelled) || final.Reason != string(serve.ReasonInterrupted) {
		t.Fatalf("watched job ended %s/%s, want cancelled/interrupted", final.Status, final.Reason)
	}

	// Whole again: three live members, the promoted spare consumed, the
	// broken spare still parked in quarantine.
	var health clusterHealth
	hresp, err := http.Get(front2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || health.NodesAlive != 3 {
		t.Fatalf("cluster health %s alive=%d after failover, want ok alive=3", health.Status, health.NodesAlive)
	}
	left := clusterNodes(t, front2.URL)
	for _, n := range left {
		if n.Name == "s1" && n.State == StateStandby {
			t.Fatal("promoted standby still listed as a spare")
		}
		if n.Name == "s0" && !n.Quarantined {
			t.Fatal("broken spare not marked quarantined")
		}
	}
}

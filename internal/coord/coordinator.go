package coord

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enhancedbhpo/internal/serve"
)

// Node names one worker and where to reach it.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config tunes the Coordinator.
type Config struct {
	// Nodes is the boot-time worker set. Names are ring identities: a
	// replacement node keeps the dead node's name (automated failover or
	// POST /cluster/replace) so its hash range and its node-qualified job
	// IDs stay routable. With DataDir set, the membership journal replays
	// on top of this set, so runtime joins/leaves survive a restart.
	Nodes []Node
	// Standbys is the boot-time spare pool: nodes registered for
	// automated failover, outside the ring until promoted.
	Standbys []Node
	// Replicas is the ring's virtual-node count per node. 0 selects 64.
	Replicas int
	// Probe tunes the heartbeat prober.
	Probe ProbeOptions
	// Client performs all worker requests. nil selects a default with no
	// overall timeout (SSE streams are long-lived; probes carry their own
	// per-request timeouts).
	Client *http.Client
	// DataDir, when non-empty, persists membership operations to a
	// crash-safe journal (members.jsonl) so a restarted coordinator
	// recovers the current ring — runtime joins, leaves, standby
	// registrations and automated replaces — not the boot-time one.
	DataDir string
	// SinkRoots are the shipped-replica roots the failover pipeline
	// verifies and restores from: each holds one subdirectory per node
	// name (a DirSink root or a ship receiver's -ship-recv-dir).
	SinkRoots []string
	// AutoFailover turns on the zero-operator pipeline: a node declared
	// dead triggers verify → restore onto a standby → re-point, with no
	// manual replace call.
	AutoFailover bool
	// RestoreBackoff is the initial delay between failed restore rounds
	// (all standbys exhausted, or no verified replica yet); it doubles up
	// to RestoreMaxBackoff. 0 selects 500ms / 15s.
	RestoreBackoff    time.Duration
	RestoreMaxBackoff time.Duration
	// DrainPoll paces the leave handler's wait for a draining node's
	// running jobs. 0 selects 250ms.
	DrainPoll time.Duration
}

func (c Config) withDefaults() Config {
	if c.RestoreBackoff <= 0 {
		c.RestoreBackoff = 500 * time.Millisecond
	}
	if c.RestoreMaxBackoff <= 0 {
		c.RestoreMaxBackoff = 15 * time.Second
	}
	if c.DrainPoll <= 0 {
		c.DrainPoll = 250 * time.Millisecond
	}
	return c
}

// Coordinator routes the bhpod HTTP API across a cluster of workers.
//
// Job placement is by consistent hash on the spec's evaluation-cache
// scope, so all jobs sharing synthesized data and folds land on one node
// and hit its warm caches. Job IDs leave the coordinator node-qualified
// ("a:job-3"); every per-job route parses the node back out, which makes
// reads independent of the ring (a job stays addressable even after the
// scope's ownership would hash elsewhere).
type Coordinator struct {
	cfg    Config
	ring   *Ring
	prober *prober
	client *http.Client
	mux    *http.ServeMux

	started time.Time
	stopCh  chan struct{} // closed by Shutdown; ends failover retry loops

	jobsRouted       atomic.Int64
	jobsFailedOver   atomic.Int64
	submitRetries    atomic.Int64
	autoRestores     atomic.Int64
	restoresFailed   atomic.Int64
	restoreDurMicros atomic.Int64 // cumulative restore pipeline time

	journal *memberLog // nil without Config.DataDir

	mu    sync.Mutex
	nodes map[string]string // ring members: name → URL

	failMu    sync.Mutex
	restoring map[string]bool // failover pipelines in flight, by node

	evMu   sync.Mutex
	events []ClusterEvent // bounded cluster incident log
}

// New wires a coordinator around the node set, replaying the membership
// journal in cfg.DataDir (when set) on top of the boot-time nodes. Call
// Start to begin heartbeat probing and Shutdown to stop it.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		ring:      NewRing(cfg.Replicas),
		client:    cfg.Client,
		mux:       http.NewServeMux(),
		started:   time.Now(),
		stopCh:    make(chan struct{}),
		nodes:     map[string]string{},
		restoring: map[string]bool{},
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.prober = newProber(cfg.Probe, c.client)
	c.prober.onDead = c.onNodeDead
	for _, n := range cfg.Nodes {
		if err := validNode(n); err != nil {
			return nil, err
		}
		if _, dup := c.nodes[n.Name]; dup {
			return nil, fmt.Errorf("coord: duplicate node %q", n.Name)
		}
		c.applyMemberOp(MemberOp{Op: OpJoin, Node: n.Name, URL: strings.TrimSuffix(n.URL, "/")})
	}
	for _, n := range cfg.Standbys {
		if err := validNode(n); err != nil {
			return nil, err
		}
		c.applyMemberOp(MemberOp{Op: OpStandby, Node: n.Name, URL: strings.TrimSuffix(n.URL, "/"), On: true})
	}
	if cfg.DataDir != "" {
		// The journal replays on top of the boot-time set: runtime
		// membership changes win over stale flags.
		ops, err := replayMemberLog(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			c.applyMemberOp(op)
		}
		log, err := openMemberLog(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		c.journal = log
	}
	if len(c.nodes) == 0 {
		return nil, fmt.Errorf("coord: no nodes")
	}
	c.mux.HandleFunc("POST /jobs", c.submitJob)
	c.mux.HandleFunc("POST /jobs:batch", c.submitBatch)
	c.mux.HandleFunc("GET /jobs", c.listJobs)
	c.mux.HandleFunc("GET /tenants", c.listTenants)
	c.mux.HandleFunc("GET /jobs/{id}", c.jobProxy)
	c.mux.HandleFunc("DELETE /jobs/{id}", c.jobProxy)
	c.mux.HandleFunc("GET /jobs/{id}/events", c.jobEvents)
	c.mux.HandleFunc("GET /jobs/{id}/trace", c.jobSubProxy("trace"))
	c.mux.HandleFunc("GET /methods", c.listMethods)
	c.mux.HandleFunc("GET /healthz", c.healthz)
	c.mux.HandleFunc("GET /metrics", c.metrics)
	c.mux.HandleFunc("GET /cluster", c.cluster)
	c.mux.HandleFunc("GET /cluster/events", c.clusterEvents)
	c.mux.HandleFunc("POST /cluster/replace", c.replaceNode)
	c.mux.HandleFunc("POST /cluster/join", c.joinNode)
	c.mux.HandleFunc("POST /cluster/leave", c.leaveNode)
	c.mux.HandleFunc("POST /cluster/drain", c.drainNode)
	c.mux.HandleFunc("POST /cluster/standby", c.standbyNode)
	return c, nil
}

// validNode checks a node's name (a ring identity, embedded in job IDs)
// and URL.
func validNode(n Node) error {
	if n.Name == "" || strings.ContainsAny(n.Name, ":/ ") {
		return fmt.Errorf("coord: bad node name %q (used in job IDs; no colons, slashes or spaces)", n.Name)
	}
	if n.URL == "" {
		return fmt.Errorf("coord: node %s: empty URL", n.Name)
	}
	return nil
}

// applyMemberOp folds one membership operation into the live state —
// the single mutation point shared by boot config, journal replay and
// the runtime handlers (which journal first, then apply).
func (c *Coordinator) applyMemberOp(op MemberOp) {
	url := strings.TrimSuffix(op.URL, "/")
	switch op.Op {
	case OpJoin:
		c.mu.Lock()
		c.nodes[op.Node] = url
		c.mu.Unlock()
		c.ring.Add(op.Node)
		c.prober.track(op.Node, url)
	case OpLeave:
		c.mu.Lock()
		delete(c.nodes, op.Node)
		c.mu.Unlock()
		c.ring.Remove(op.Node)
		c.prober.untrack(op.Node)
	case OpDrain:
		c.prober.setDraining(op.Node, op.On)
	case OpStandby:
		if op.On {
			c.prober.trackStandby(op.Node, url)
		} else {
			c.prober.untrack(op.Node)
		}
	case OpQuarantine:
		c.prober.setQuarantined(op.Node, op.On)
	}
}

// journalAndApply persists the operation (when a journal is configured)
// and applies it. The journal write comes first: an acknowledged
// membership change must survive a coordinator crash.
func (c *Coordinator) journalAndApply(op MemberOp) error {
	if err := c.journal.append(op); err != nil {
		return err
	}
	c.applyMemberOp(op)
	return nil
}

// Start launches heartbeat probing.
func (c *Coordinator) Start() { c.prober.start() }

// Shutdown stops the prober, any in-flight failover retry loops, and
// the membership journal.
func (c *Coordinator) Shutdown() {
	close(c.stopCh)
	c.prober.shutdown()
	c.journal.close()
}

// ProbeNow runs one synchronous probe round — the test hook (and the
// replace handler's immediate confirmation) so callers need not wait an
// interval for verdicts.
func (c *Coordinator) ProbeNow() { c.prober.probeAll() }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// urlOf resolves a node name to its current URL.
func (c *Coordinator) urlOf(name string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.nodes[name]
	return u, ok
}

// qualifyID and splitID translate between a worker's local job ID and the
// cluster-wide node-qualified form the coordinator hands out.
func qualifyID(node, id string) string { return node + ":" + id }

func splitID(qualified string) (node, id string, ok bool) {
	node, id, ok = strings.Cut(qualified, ":")
	return node, id, ok && node != "" && id != ""
}

// errorBody mirrors the worker API's JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// routeNode picks the worker for a new job with the given cache scope:
// the ring owner when servable, else the first servable successor,
// excluding nodes in skip (already tried this request). New work skips
// degraded nodes (they may be seconds from dead, and a fresh scope is
// cheap to build elsewhere) and draining ones (they are leaving the
// ring); a degraded candidate is still preferred over refusing when
// nothing is fully alive.
func (c *Coordinator) routeNode(scope string, skip map[string]bool) (string, bool) {
	candidates := c.ring.Candidates(scope)
	var degraded string
	for _, n := range candidates {
		if skip[n] {
			continue
		}
		switch c.prober.stateOf(n) {
		case StateAlive:
			return n, true
		case StateDegraded:
			if degraded == "" {
				degraded = n
			}
		}
	}
	if degraded != "" {
		return degraded, true
	}
	return "", false
}

// newSubmitToken mints the idempotency key one client submission carries
// across every routing attempt.
func newSubmitToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The process RNG failing is unrecoverable for token minting;
		// submitting without idempotency risks double-running jobs.
		panic(fmt.Sprintf("coord: reading random bytes: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// submitJob routes POST /jobs: the spec's evaluation-cache scope picks
// the worker, the body is forwarded verbatim, and the worker's response
// flows back with only the job ID rewritten to its node-qualified form.
// A worker 429 passes through untouched — status, its *priced*
// Retry-After header and body — so clients back off on the owning node's
// real backlog, not a number the coordinator made up.
//
// A node that dies between routing and ack does not fail the client:
// the submission retries on the next ring candidate. Every attempt
// carries the same coordinator-minted X-Submit-Token, so a replay — the
// first node actually accepted the job but the ack was lost, and a later
// restore resurrects it under the same token — never double-runs: the
// worker's token table returns the existing job instead.
func (c *Coordinator) submitJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var spec serve.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	scope := spec.CacheScope()
	token := newSubmitToken()
	tried := map[string]bool{}
	var lastErr error
	var lastNode string
	for {
		node, ok := c.routeNode(scope, tried)
		if !ok {
			if lastErr != nil {
				writeError(w, http.StatusBadGateway, "node %s: %v (no further candidates)", lastNode, lastErr)
			} else {
				writeError(w, http.StatusServiceUnavailable, "no servable node for scope")
			}
			return
		}
		nodeURL, _ := c.urlOf(node)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, nodeURL+"/jobs", bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Submit-Token", token)
		resp, err := c.client.Do(req)
		if err != nil {
			// The node died (or vanished) between routing and ack: retry
			// on the next ring candidate with the same token. Note the
			// client context: if the *client* hung up, stop instead of
			// spraying the ring.
			if r.Context().Err() != nil {
				writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
				return
			}
			tried[node] = true
			lastErr, lastNode = err, node
			c.submitRetries.Add(1)
			continue
		}
		func() {
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				var snap serve.Snapshot
				if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
					writeError(w, http.StatusBadGateway, "node %s: decoding response: %v", node, err)
					return
				}
				snap.ID = qualifyID(node, snap.ID)
				c.jobsRouted.Add(1)
				writeJSON(w, http.StatusAccepted, snap)
				return
			}
			// Anything else — 429 with its priced Retry-After, a validation
			// 400, a draining 503 — passes through verbatim.
			copyResponse(w, resp)
		}()
		return
	}
}

// submitBatch routes POST /jobs:batch. The whole batch lands on ONE
// node — picked by the first spec's cache scope — so the all-or-nothing
// admission guarantee (every item admitted against the global cap and
// every tenant's quota, or none) holds exactly: it is the node's own
// atomic batch enqueue, not a coordinator simulation spread over
// several nodes. Worker rejections (per-item 400s, quota/overload 429s
// with their priced Retry-After) relay verbatim; only accepted job IDs
// are rewritten to their node-qualified form.
func (c *Coordinator) submitBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req struct {
		Jobs []serve.JobSpec `json:"jobs"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	scope := req.Jobs[0].CacheScope()
	token := newSubmitToken()
	tried := map[string]bool{}
	var lastErr error
	var lastNode string
	for {
		node, ok := c.routeNode(scope, tried)
		if !ok {
			if lastErr != nil {
				writeError(w, http.StatusBadGateway, "node %s: %v (no further candidates)", lastNode, lastErr)
			} else {
				writeError(w, http.StatusServiceUnavailable, "no servable node for scope")
			}
			return
		}
		nodeURL, _ := c.urlOf(node)
		hreq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, nodeURL+"/jobs:batch", bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Submit-Token", token)
		resp, err := c.client.Do(hreq)
		if err != nil {
			if r.Context().Err() != nil {
				writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
				return
			}
			tried[node] = true
			lastErr, lastNode = err, node
			c.submitRetries.Add(1)
			continue
		}
		func() {
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				var out struct {
					Jobs []serve.Snapshot `json:"jobs"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					writeError(w, http.StatusBadGateway, "node %s: decoding response: %v", node, err)
					return
				}
				for i := range out.Jobs {
					out.Jobs[i].ID = qualifyID(node, out.Jobs[i].ID)
				}
				c.jobsRouted.Add(int64(len(out.Jobs)))
				writeJSON(w, http.StatusAccepted, out)
				return
			}
			copyResponse(w, resp)
		}()
		return
	}
}

// listTenants fans GET /tenants out to every live node and merges the
// per-tenant rows by name: counters sum across the cluster, the weight
// is the configured one (identical on every node by construction), and
// virtual time reports the maximum — each node runs its own clock, so
// the merged value is a high-water mark, not a cluster-wide total.
func (c *Coordinator) listTenants(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	c.mu.Unlock()
	results := make(chan []serve.TenantStatus, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		if c.prober.stateOf(name) == StateDead {
			continue
		}
		nodeURL, _ := c.urlOf(name)
		wg.Add(1)
		go func(nodeURL string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/tenants", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var body struct {
				Tenants []serve.TenantStatus `json:"tenants"`
			}
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil {
				return
			}
			results <- body.Tenants
		}(nodeURL)
	}
	wg.Wait()
	close(results)
	merged := map[string]*serve.TenantStatus{}
	for rows := range results {
		for _, row := range rows {
			t, ok := merged[row.Tenant]
			if !ok {
				cp := row
				merged[row.Tenant] = &cp
				continue
			}
			if row.Weight > t.Weight {
				t.Weight = row.Weight
			}
			if row.VTime > t.VTime {
				t.VTime = row.VTime
			}
			t.Queued += row.Queued
			t.Running += row.Running
			t.InflightEvals += row.InflightEvals
			t.Granted += row.Granted
			t.Evaluations += row.Evaluations
			t.ServiceUnits += row.ServiceUnits
			t.Shed += row.Shed
			t.Preemptions += row.Preemptions
			t.JobsQueued += row.JobsQueued
			t.JobsRunning += row.JobsRunning
			t.JobsDone += row.JobsDone
			t.JobsFailed += row.JobsFailed
			t.JobsCancelled += row.JobsCancelled
		}
	}
	out := make([]serve.TenantStatus, 0, len(merged))
	for _, t := range merged {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	writeJSON(w, http.StatusOK, struct {
		Tenants []serve.TenantStatus `json:"tenants"`
	}{Tenants: out})
}

// copyResponse relays a worker response verbatim: status, headers, body.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// resolveJob maps a node-qualified job ID to (node, local ID, node URL),
// writing the error response itself when the ID or node is unusable. A
// dead node yields 503 — retryable, because a replacement adopting the
// node's identity will serve the same ID — where an unknown node name is
// a hard 404.
func (c *Coordinator) resolveJob(w http.ResponseWriter, qualified string) (node, id, nodeURL string, ok bool) {
	node, id, ok = splitID(qualified)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q (cluster job IDs are node-qualified, e.g. %q)", qualified, "a:job-1")
		return "", "", "", false
	}
	nodeURL, known := c.urlOf(node)
	if !known {
		writeError(w, http.StatusNotFound, "no node %q", node)
		return "", "", "", false
	}
	switch c.prober.stateOf(node) {
	case StateDead:
		writeError(w, http.StatusServiceUnavailable, "node %s is dead; awaiting replacement", node)
		return "", "", "", false
	case StateRestoring:
		writeError(w, http.StatusServiceUnavailable, "node %s is being restored; retry shortly", node)
		return "", "", "", false
	}
	return node, id, nodeURL, true
}

// jobProxy forwards GET/DELETE /jobs/{id} to the owning node, rewriting
// the returned snapshot's ID back to its qualified form.
func (c *Coordinator) jobProxy(w http.ResponseWriter, r *http.Request) {
	node, id, nodeURL, ok := c.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	u := nodeURL + "/jobs/" + id
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var snap serve.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			writeError(w, http.StatusBadGateway, "node %s: decoding response: %v", node, err)
			return
		}
		snap.ID = qualifyID(node, snap.ID)
		writeJSON(w, resp.StatusCode, snap)
		return
	}
	copyResponse(w, resp)
}

// jobSubProxy forwards GET /jobs/{id}/<sub> verbatim (trace payloads have
// no embedded job ID to rewrite).
func (c *Coordinator) jobSubProxy(sub string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		node, id, nodeURL, ok := c.resolveJob(w, r.PathValue("id"))
		if !ok {
			return
		}
		u := nodeURL + "/jobs/" + id + "/" + sub
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp, err := c.client.Do(req)
		if err != nil {
			writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
			return
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
	}
}

// flushWriter flushes after every write so proxied SSE frames reach the
// client as they happen, not when a buffer fills.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// jobEvents proxies the SSE stream. Last-Event-ID passes through to the
// worker, whose event hub replays the backlog past it — so a client that
// reconnects through the coordinator after a worker failover resumes
// exactly where it left off (the replacement primes its hub from the
// shipped trace, continuing the same sequence numbers). The upstream
// request rides the client's context: when the watcher hangs up, the
// worker sees the cancel and releases its subscriber.
func (c *Coordinator) jobEvents(w http.ResponseWriter, r *http.Request) {
	node, id, nodeURL, ok := c.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/jobs/"+id+"/events", nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		req.Header.Set("Last-Event-ID", lid)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		copyResponse(w, resp)
		return
	}
	for k, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	io.Copy(flushWriter{w: w, f: flusher}, resp.Body)
}

// listJobs fans GET /jobs out to every non-dead node and merges the
// snapshots under qualified IDs, sorted by ID for a stable listing. A
// node that cannot answer contributes nothing rather than failing the
// whole listing — the cluster view degrades, it does not disappear.
func (c *Coordinator) listJobs(w http.ResponseWriter, r *http.Request) {
	type nodeJobs struct {
		node  string
		snaps []serve.Snapshot
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	c.mu.Unlock()
	results := make(chan nodeJobs, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		if c.prober.stateOf(name) == StateDead {
			continue
		}
		nodeURL, _ := c.urlOf(name)
		wg.Add(1)
		go func(name, nodeURL string) {
			defer wg.Done()
			u := nodeURL + "/jobs"
			if r.URL.RawQuery != "" {
				// The ?tenant=X filter (and any future query) applies on
				// each node; the merge below only sees matching jobs.
				u += "?" + r.URL.RawQuery
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var snaps []serve.Snapshot
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&snaps) != nil {
				return
			}
			results <- nodeJobs{node: name, snaps: snaps}
		}(name, nodeURL)
	}
	wg.Wait()
	close(results)
	out := make([]serve.Snapshot, 0)
	for nj := range results {
		for _, snap := range nj.snaps {
			snap.ID = qualifyID(nj.node, snap.ID)
			out = append(out, snap)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// listMethods forwards GET /methods to the first servable node — the
// method registry is compiled into every worker, so any one speaks for
// the cluster.
func (c *Coordinator) listMethods(w http.ResponseWriter, r *http.Request) {
	for _, name := range c.ring.Nodes() {
		if c.prober.stateOf(name) == StateDead {
			continue
		}
		nodeURL, _ := c.urlOf(name)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/methods", nil)
		if err != nil {
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		copyResponse(w, resp)
		resp.Body.Close()
		return
	}
	writeError(w, http.StatusServiceUnavailable, "no servable node")
}

// clusterHealth is the aggregate GET /healthz payload.
type clusterHealth struct {
	// Status summarizes the cluster with the same vocabulary the nodes
	// use, plus degraded and dead: ok (every node alive and accepting),
	// degraded (some capacity lost, writes still land), overloaded (every
	// live node is shedding — a fully-shed cluster is overloaded, not
	// dead), draining, or dead (no node answers).
	Status     string       `json:"status"`
	NodesAlive int          `json:"nodes_alive"`
	NodesTotal int          `json:"nodes_total"`
	UptimeSec  float64      `json:"uptime_sec"`
	Nodes      []NodeStatus `json:"nodes"`
}

// aggregateStatus folds per-node verdicts into one cluster status.
// Standbys are spares, not members: they contribute nothing to the
// aggregate (a cluster of healthy workers plus an idle standby is "ok").
func aggregateStatus(nodes []NodeStatus) (status string, alive int) {
	var aliveOK, overloaded, draining, impaired int
	for _, n := range nodes {
		switch n.State {
		case StateStandby:
			continue
		case StateDead, StateRestoring:
			impaired++
			continue
		}
		alive++
		switch n.State {
		case StateDegraded:
			impaired++
			continue
		case StateDraining:
			draining++
			continue
		}
		switch n.Health {
		case "overloaded":
			overloaded++
		case "draining":
			draining++
		default:
			aliveOK++
		}
	}
	switch {
	case aliveOK > 0 && impaired == 0 && overloaded == 0 && draining == 0:
		return "ok", alive
	case aliveOK > 0:
		return "degraded", alive
	case overloaded > 0:
		// Every reachable node is shedding by admission control: the
		// cluster is overloaded — alive, pricing retries — not dead.
		return "overloaded", alive
	case draining > 0:
		return "draining", alive
	case alive > 0:
		return "degraded", alive
	default:
		return "dead", alive
	}
}

func (c *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	nodes := c.prober.status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	status, alive := aggregateStatus(nodes)
	members := 0
	for _, n := range nodes {
		if n.State != StateStandby {
			members++
		}
	}
	writeJSON(w, http.StatusOK, clusterHealth{
		Status:     status,
		NodesAlive: alive,
		NodesTotal: members,
		UptimeSec:  time.Since(c.started).Seconds(),
		Nodes:      nodes,
	})
}

// ClusterMetrics is the aggregate GET /metrics payload: cluster counters
// plus each live node's own metrics under its name.
type ClusterMetrics struct {
	NodesAlive     int   `json:"nodes_alive"`
	NodesTotal     int   `json:"nodes_total"`
	JobsRouted     int64 `json:"jobs_routed"`
	JobsFailedOver int64 `json:"jobs_failed_over"`
	// SubmitRetries counts submissions transparently retried on a ring
	// successor after the routed node failed before acking.
	SubmitRetries int64 `json:"submit_retries"`
	// AutoRestores counts completed zero-operator failovers (dead node
	// restored onto a standby); RestoresFailed counts standby promotion
	// attempts that failed (the standby is quarantined and the next one
	// tried); RestoreDurationSeconds accumulates dead→alive pipeline time.
	AutoRestores           int64   `json:"auto_restores"`
	RestoresFailed         int64   `json:"restores_failed"`
	RestoreDurationSeconds float64 `json:"restore_duration_seconds"`
	UptimeSec              float64 `json:"uptime_sec"`
	JobsQueued             int     `json:"jobs_queued"`
	JobsRunning            int     `json:"jobs_running"`
	JobsDone               int     `json:"jobs_done"`
	JobsFailed             int     `json:"jobs_failed"`
	JobsCancelled          int     `json:"jobs_cancelled"`
	PendingDepth           int     `json:"pending_depth"`
	Evaluations            int64   `json:"evaluations"`
	Preemptions            int64   `json:"preemptions"`
	QuotaShed              int64   `json:"quota_shed"`
	SegmentsShipped        int64   `json:"segments_shipped"`
	ShipRetries            int64   `json:"ship_retries"`
	ShipBytes              int64   `json:"ship_bytes"`

	Nodes map[string]serve.Metrics `json:"nodes"`
}

// metrics aggregates every live node's /metrics. Sums cover the headline
// counters (job states, evaluations, shipping); the full per-node payloads
// ride along for anything finer.
func (c *Coordinator) metrics(w http.ResponseWriter, r *http.Request) {
	statuses := c.prober.status()
	out := ClusterMetrics{
		JobsRouted:             c.jobsRouted.Load(),
		JobsFailedOver:         c.jobsFailedOver.Load(),
		SubmitRetries:          c.submitRetries.Load(),
		AutoRestores:           c.autoRestores.Load(),
		RestoresFailed:         c.restoresFailed.Load(),
		RestoreDurationSeconds: float64(c.restoreDurMicros.Load()) / 1e6,
		UptimeSec:              time.Since(c.started).Seconds(),
		Nodes:                  map[string]serve.Metrics{},
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, st := range statuses {
		if st.State == StateStandby {
			continue
		}
		out.NodesTotal++
		if st.State == StateDead || st.State == StateRestoring {
			continue
		}
		out.NodesAlive++
		wg.Add(1)
		go func(name, nodeURL string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var m serve.Metrics
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&m) != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			out.Nodes[name] = m
			out.JobsQueued += m.JobsQueued
			out.JobsRunning += m.JobsRunning
			out.JobsDone += m.JobsDone
			out.JobsFailed += m.JobsFailed
			out.JobsCancelled += m.JobsCancelled
			out.PendingDepth += m.PendingDepth
			out.Evaluations += m.Evaluations
			out.Preemptions += m.Preemptions
			out.QuotaShed += m.QuotaShed
			out.SegmentsShipped += m.SegmentsShipped
			out.ShipRetries += m.ShipRetries
			out.ShipBytes += m.ShipBytes
		}(st.Name, st.URL)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// cluster serves the node table (GET /cluster).
func (c *Coordinator) cluster(w http.ResponseWriter, r *http.Request) {
	nodes := c.prober.status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	writeJSON(w, http.StatusOK, nodes)
}

// replaceBody is the POST /cluster/replace request: point an existing
// ring identity at a new URL.
type replaceBody struct {
	Node string `json:"node"`
	URL  string `json:"url"`
}

// replaceNode swaps a node's URL, keeping its ring identity — the
// failover step after a machine dies: the operator restores the dead
// node's shipped replica onto a fresh machine (bhpod -restore-from),
// starts it under the same -node name, and points the coordinator here.
// The hash range, the node-qualified job IDs and the SSE sequence
// numbering all survive because the *name* is the identity; only the
// address changed. The replacement's adopted jobs count into
// jobs_failed_over.
func (c *Coordinator) replaceNode(w http.ResponseWriter, r *http.Request) {
	var body replaceBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding: %v", err)
		return
	}
	if body.URL == "" {
		writeError(w, http.StatusBadRequest, "empty url")
		return
	}
	newURL := strings.TrimSuffix(body.URL, "/")
	c.mu.Lock()
	_, known := c.nodes[body.Node]
	c.mu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, "no node %q", body.Node)
		return
	}
	if err := c.journalAndApply(MemberOp{Op: OpJoin, Node: body.Node, URL: newURL}); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.countAdoptedJobs(body.Node, newURL)
	c.recordEvent(ClusterEvent{Type: "replace", Node: body.Node, Detail: "re-pointed to " + newURL})
	c.ProbeNow()
	nodes := c.prober.status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	writeJSON(w, http.StatusOK, nodes)
}

// countAdoptedJobs folds a replacement node's job table into the
// jobs_failed_over counter (best-effort: the replacement just replayed
// the shipped journal, so its job table is the dead node's).
func (c *Coordinator) countAdoptedJobs(node, nodeURL string) {
	req, err := http.NewRequest(http.MethodGet, nodeURL+"/jobs", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var snaps []serve.Snapshot
	if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&snaps) == nil {
		c.jobsFailedOver.Add(int64(len(snaps)))
	}
}

// memberBody is the request for the membership endpoints: join, leave,
// drain, standby.
type memberBody struct {
	Node string `json:"node"`
	URL  string `json:"url,omitempty"`
	// Remove, on POST /cluster/standby, deregisters the standby.
	Remove bool `json:"remove,omitempty"`
	// DeadlineSec bounds POST /cluster/leave's wait for running jobs.
	// 0 selects 30s.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
}

// decodeMember reads a membership request body.
func decodeMember(w http.ResponseWriter, r *http.Request) (memberBody, bool) {
	var body memberBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding: %v", err)
		return body, false
	}
	if body.Node == "" {
		writeError(w, http.StatusBadRequest, "empty node")
		return body, false
	}
	return body, true
}

// writeStatusList responds with the sorted node table — the common
// success payload of the membership endpoints.
func (c *Coordinator) writeStatusList(w http.ResponseWriter) {
	nodes := c.prober.status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	writeJSON(w, http.StatusOK, nodes)
}

// joinNode handles POST /cluster/join: a worker enters the ring live.
// Consistent hashing moves only ~1/(N+1) of scope ownership to the new
// node; every existing job stays addressable by its node-qualified ID.
// Joining an existing name at the same URL is idempotent; at a different
// URL it is a conflict (that is what replace is for).
func (c *Coordinator) joinNode(w http.ResponseWriter, r *http.Request) {
	body, ok := decodeMember(w, r)
	if !ok {
		return
	}
	if err := validNode(Node{Name: body.Node, URL: body.URL}); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	newURL := strings.TrimSuffix(body.URL, "/")
	c.mu.Lock()
	existing, known := c.nodes[body.Node]
	c.mu.Unlock()
	if known && existing != newURL {
		writeError(w, http.StatusConflict, "node %q already joined at %s (use /cluster/replace to re-point)", body.Node, existing)
		return
	}
	if !known {
		if err := c.journalAndApply(MemberOp{Op: OpJoin, Node: body.Node, URL: newURL}); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		c.recordEvent(ClusterEvent{Type: "join", Node: body.Node, Detail: newURL})
	}
	c.ProbeNow()
	c.writeStatusList(w)
}

// drainNode handles POST /cluster/drain: stop routing new jobs to the
// node while it keeps serving reads and finishing running work — the
// first half of a graceful leave, usable on its own for maintenance.
func (c *Coordinator) drainNode(w http.ResponseWriter, r *http.Request) {
	body, ok := decodeMember(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	_, known := c.nodes[body.Node]
	c.mu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, "no node %q", body.Node)
		return
	}
	if err := c.journalAndApply(MemberOp{Op: OpDrain, Node: body.Node, On: true}); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.recordEvent(ClusterEvent{Type: "drain", Node: body.Node})
	c.writeStatusList(w)
}

// nodeIdle reports whether the node has no running, queued or pending
// jobs. An unreachable node reports idle=false with the error.
func (c *Coordinator) nodeIdle(nodeURL string) (bool, error) {
	req, err := http.NewRequest(http.MethodGet, nodeURL+"/metrics", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("metrics: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return false, err
	}
	return m.JobsRunning == 0 && m.JobsQueued == 0 && m.PendingDepth == 0, nil
}

// leaveNode handles POST /cluster/leave: drain the node (stop routing
// new jobs), wait for its running and queued work to finish (or the
// deadline), then remove it from the ring — its scope ownership remaps
// to the survivors (~1/N of the ring). Reads for its node-qualified job
// IDs stop resolving once it is gone, so a graceful leave should only
// complete after its jobs are terminal, which the wait enforces; a node
// that stops answering mid-wait is removed at the deadline anyway (the
// operator asked it gone, and its shipped replica still exists).
func (c *Coordinator) leaveNode(w http.ResponseWriter, r *http.Request) {
	body, ok := decodeMember(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	nodeURL, known := c.nodes[body.Node]
	c.mu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, "no node %q", body.Node)
		return
	}
	if err := c.journalAndApply(MemberOp{Op: OpDrain, Node: body.Node, On: true}); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	deadline := 30 * time.Second
	if body.DeadlineSec > 0 {
		deadline = time.Duration(body.DeadlineSec * float64(time.Second))
	}
	timeout := time.After(deadline)
	var errStreak int
wait:
	for {
		idle, err := c.nodeIdle(nodeURL)
		if idle {
			break
		}
		if err != nil {
			// A node that cannot answer cannot drain; after a few tries,
			// stop waiting on it (it is likely already dead).
			if errStreak++; errStreak >= 3 {
				break
			}
		} else {
			errStreak = 0
		}
		select {
		case <-timeout:
			break wait
		case <-r.Context().Done():
			writeError(w, http.StatusBadGateway, "leave interrupted: %v", r.Context().Err())
			return
		case <-c.stopCh:
			writeError(w, http.StatusServiceUnavailable, "coordinator shutting down")
			return
		case <-time.After(c.cfg.DrainPoll):
		}
	}
	if err := c.journalAndApply(MemberOp{Op: OpLeave, Node: body.Node}); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.recordEvent(ClusterEvent{Type: "leave", Node: body.Node})
	c.writeStatusList(w)
}

// standbyNode handles POST /cluster/standby: register (or, with
// remove=true, deregister) a spare for the automated failover pool.
func (c *Coordinator) standbyNode(w http.ResponseWriter, r *http.Request) {
	body, ok := decodeMember(w, r)
	if !ok {
		return
	}
	if body.Remove {
		if err := c.journalAndApply(MemberOp{Op: OpStandby, Node: body.Node, On: false}); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		c.recordEvent(ClusterEvent{Type: "standby-removed", Node: body.Node})
		c.writeStatusList(w)
		return
	}
	if err := validNode(Node{Name: body.Node, URL: body.URL}); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.mu.Lock()
	_, isMember := c.nodes[body.Node]
	c.mu.Unlock()
	if isMember {
		writeError(w, http.StatusConflict, "node %q is a ring member", body.Node)
		return
	}
	if err := c.journalAndApply(MemberOp{Op: OpStandby, Node: body.Node, URL: strings.TrimSuffix(body.URL, "/"), On: true}); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.recordEvent(ClusterEvent{Type: "standby-added", Node: body.Node, Detail: body.URL})
	c.ProbeNow()
	c.writeStatusList(w)
}

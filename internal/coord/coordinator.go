package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enhancedbhpo/internal/serve"
)

// Node names one worker and where to reach it.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config tunes the Coordinator.
type Config struct {
	// Nodes is the initial worker set. Names are ring identities: a
	// replacement node keeps the dead node's name (POST /cluster/replace)
	// so its hash range and its node-qualified job IDs stay routable.
	Nodes []Node
	// Replicas is the ring's virtual-node count per node. 0 selects 64.
	Replicas int
	// Probe tunes the heartbeat prober.
	Probe ProbeOptions
	// Client performs all worker requests. nil selects a default with no
	// overall timeout (SSE streams are long-lived; probes carry their own
	// per-request timeouts).
	Client *http.Client
}

// Coordinator routes the bhpod HTTP API across a cluster of workers.
//
// Job placement is by consistent hash on the spec's evaluation-cache
// scope, so all jobs sharing synthesized data and folds land on one node
// and hit its warm caches. Job IDs leave the coordinator node-qualified
// ("a:job-3"); every per-job route parses the node back out, which makes
// reads independent of the ring (a job stays addressable even after the
// scope's ownership would hash elsewhere).
type Coordinator struct {
	ring   *Ring
	prober *prober
	client *http.Client
	mux    *http.ServeMux

	started time.Time

	jobsRouted     atomic.Int64
	jobsFailedOver atomic.Int64

	mu    sync.Mutex
	nodes map[string]string // name → URL
}

// New wires a coordinator around the node set. Call Start to begin
// heartbeat probing and Shutdown to stop it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("coord: no nodes")
	}
	c := &Coordinator{
		ring:    NewRing(cfg.Replicas),
		client:  cfg.Client,
		mux:     http.NewServeMux(),
		started: time.Now(),
		nodes:   map[string]string{},
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.prober = newProber(cfg.Probe, c.client)
	for _, n := range cfg.Nodes {
		if n.Name == "" || strings.ContainsAny(n.Name, ":/ ") {
			return nil, fmt.Errorf("coord: bad node name %q (used in job IDs; no colons, slashes or spaces)", n.Name)
		}
		if n.URL == "" {
			return nil, fmt.Errorf("coord: node %s: empty URL", n.Name)
		}
		if _, dup := c.nodes[n.Name]; dup {
			return nil, fmt.Errorf("coord: duplicate node %q", n.Name)
		}
		c.nodes[n.Name] = strings.TrimSuffix(n.URL, "/")
		c.ring.Add(n.Name)
		c.prober.track(n.Name, strings.TrimSuffix(n.URL, "/"))
	}
	c.mux.HandleFunc("POST /jobs", c.submitJob)
	c.mux.HandleFunc("GET /jobs", c.listJobs)
	c.mux.HandleFunc("GET /jobs/{id}", c.jobProxy)
	c.mux.HandleFunc("DELETE /jobs/{id}", c.jobProxy)
	c.mux.HandleFunc("GET /jobs/{id}/events", c.jobEvents)
	c.mux.HandleFunc("GET /jobs/{id}/trace", c.jobSubProxy("trace"))
	c.mux.HandleFunc("GET /methods", c.listMethods)
	c.mux.HandleFunc("GET /healthz", c.healthz)
	c.mux.HandleFunc("GET /metrics", c.metrics)
	c.mux.HandleFunc("GET /cluster", c.cluster)
	c.mux.HandleFunc("POST /cluster/replace", c.replaceNode)
	return c, nil
}

// Start launches heartbeat probing.
func (c *Coordinator) Start() { c.prober.start() }

// Shutdown stops the prober.
func (c *Coordinator) Shutdown() { c.prober.shutdown() }

// ProbeNow runs one synchronous probe round — the test hook (and the
// replace handler's immediate confirmation) so callers need not wait an
// interval for verdicts.
func (c *Coordinator) ProbeNow() { c.prober.probeAll() }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// urlOf resolves a node name to its current URL.
func (c *Coordinator) urlOf(name string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.nodes[name]
	return u, ok
}

// qualifyID and splitID translate between a worker's local job ID and the
// cluster-wide node-qualified form the coordinator hands out.
func qualifyID(node, id string) string { return node + ":" + id }

func splitID(qualified string) (node, id string, ok bool) {
	node, id, ok = strings.Cut(qualified, ":")
	return node, id, ok && node != "" && id != ""
}

// errorBody mirrors the worker API's JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// routeNode picks the worker for a new job with the given cache scope:
// the ring owner when servable, else the first servable successor. New
// work skips degraded nodes (they may be seconds from dead, and a fresh
// scope is cheap to build elsewhere); a degraded candidate is still
// preferred over refusing when nothing is fully alive.
func (c *Coordinator) routeNode(scope string) (string, bool) {
	candidates := c.ring.Candidates(scope)
	var degraded string
	for _, n := range candidates {
		switch c.prober.stateOf(n) {
		case StateAlive:
			return n, true
		case StateDegraded:
			if degraded == "" {
				degraded = n
			}
		}
	}
	if degraded != "" {
		return degraded, true
	}
	return "", false
}

// submitJob routes POST /jobs: the spec's evaluation-cache scope picks
// the worker, the body is forwarded verbatim, and the worker's response
// flows back with only the job ID rewritten to its node-qualified form.
// A worker 429 passes through untouched — status, its *priced*
// Retry-After header and body — so clients back off on the owning node's
// real backlog, not a number the coordinator made up.
func (c *Coordinator) submitJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var spec serve.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	node, ok := c.routeNode(spec.CacheScope())
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no servable node for scope")
		return
	}
	nodeURL, _ := c.urlOf(node)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, nodeURL+"/jobs", bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var snap serve.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			writeError(w, http.StatusBadGateway, "node %s: decoding response: %v", node, err)
			return
		}
		snap.ID = qualifyID(node, snap.ID)
		c.jobsRouted.Add(1)
		writeJSON(w, http.StatusAccepted, snap)
		return
	}
	// Anything else — 429 with its priced Retry-After, a validation 400,
	// a draining 503 — passes through verbatim.
	copyResponse(w, resp)
}

// copyResponse relays a worker response verbatim: status, headers, body.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// resolveJob maps a node-qualified job ID to (node, local ID, node URL),
// writing the error response itself when the ID or node is unusable. A
// dead node yields 503 — retryable, because a replacement adopting the
// node's identity will serve the same ID — where an unknown node name is
// a hard 404.
func (c *Coordinator) resolveJob(w http.ResponseWriter, qualified string) (node, id, nodeURL string, ok bool) {
	node, id, ok = splitID(qualified)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q (cluster job IDs are node-qualified, e.g. %q)", qualified, "a:job-1")
		return "", "", "", false
	}
	nodeURL, known := c.urlOf(node)
	if !known {
		writeError(w, http.StatusNotFound, "no node %q", node)
		return "", "", "", false
	}
	if c.prober.stateOf(node) == StateDead {
		writeError(w, http.StatusServiceUnavailable, "node %s is dead; awaiting replacement", node)
		return "", "", "", false
	}
	return node, id, nodeURL, true
}

// jobProxy forwards GET/DELETE /jobs/{id} to the owning node, rewriting
// the returned snapshot's ID back to its qualified form.
func (c *Coordinator) jobProxy(w http.ResponseWriter, r *http.Request) {
	node, id, nodeURL, ok := c.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	u := nodeURL + "/jobs/" + id
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var snap serve.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			writeError(w, http.StatusBadGateway, "node %s: decoding response: %v", node, err)
			return
		}
		snap.ID = qualifyID(node, snap.ID)
		writeJSON(w, resp.StatusCode, snap)
		return
	}
	copyResponse(w, resp)
}

// jobSubProxy forwards GET /jobs/{id}/<sub> verbatim (trace payloads have
// no embedded job ID to rewrite).
func (c *Coordinator) jobSubProxy(sub string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		node, id, nodeURL, ok := c.resolveJob(w, r.PathValue("id"))
		if !ok {
			return
		}
		u := nodeURL + "/jobs/" + id + "/" + sub
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp, err := c.client.Do(req)
		if err != nil {
			writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
			return
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
	}
}

// flushWriter flushes after every write so proxied SSE frames reach the
// client as they happen, not when a buffer fills.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// jobEvents proxies the SSE stream. Last-Event-ID passes through to the
// worker, whose event hub replays the backlog past it — so a client that
// reconnects through the coordinator after a worker failover resumes
// exactly where it left off (the replacement primes its hub from the
// shipped trace, continuing the same sequence numbers). The upstream
// request rides the client's context: when the watcher hangs up, the
// worker sees the cancel and releases its subscriber.
func (c *Coordinator) jobEvents(w http.ResponseWriter, r *http.Request) {
	node, id, nodeURL, ok := c.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/jobs/"+id+"/events", nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		req.Header.Set("Last-Event-ID", lid)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "node %s: %v", node, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		copyResponse(w, resp)
		return
	}
	for k, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	io.Copy(flushWriter{w: w, f: flusher}, resp.Body)
}

// listJobs fans GET /jobs out to every non-dead node and merges the
// snapshots under qualified IDs, sorted by ID for a stable listing. A
// node that cannot answer contributes nothing rather than failing the
// whole listing — the cluster view degrades, it does not disappear.
func (c *Coordinator) listJobs(w http.ResponseWriter, r *http.Request) {
	type nodeJobs struct {
		node  string
		snaps []serve.Snapshot
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	c.mu.Unlock()
	results := make(chan nodeJobs, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		if c.prober.stateOf(name) == StateDead {
			continue
		}
		nodeURL, _ := c.urlOf(name)
		wg.Add(1)
		go func(name, nodeURL string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/jobs", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var snaps []serve.Snapshot
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&snaps) != nil {
				return
			}
			results <- nodeJobs{node: name, snaps: snaps}
		}(name, nodeURL)
	}
	wg.Wait()
	close(results)
	out := make([]serve.Snapshot, 0)
	for nj := range results {
		for _, snap := range nj.snaps {
			snap.ID = qualifyID(nj.node, snap.ID)
			out = append(out, snap)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// listMethods forwards GET /methods to the first servable node — the
// method registry is compiled into every worker, so any one speaks for
// the cluster.
func (c *Coordinator) listMethods(w http.ResponseWriter, r *http.Request) {
	for _, name := range c.ring.Nodes() {
		if c.prober.stateOf(name) == StateDead {
			continue
		}
		nodeURL, _ := c.urlOf(name)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/methods", nil)
		if err != nil {
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		copyResponse(w, resp)
		resp.Body.Close()
		return
	}
	writeError(w, http.StatusServiceUnavailable, "no servable node")
}

// clusterHealth is the aggregate GET /healthz payload.
type clusterHealth struct {
	// Status summarizes the cluster with the same vocabulary the nodes
	// use, plus degraded and dead: ok (every node alive and accepting),
	// degraded (some capacity lost, writes still land), overloaded (every
	// live node is shedding — a fully-shed cluster is overloaded, not
	// dead), draining, or dead (no node answers).
	Status     string       `json:"status"`
	NodesAlive int          `json:"nodes_alive"`
	NodesTotal int          `json:"nodes_total"`
	UptimeSec  float64      `json:"uptime_sec"`
	Nodes      []NodeStatus `json:"nodes"`
}

// aggregateStatus folds per-node verdicts into one cluster status.
func aggregateStatus(nodes []NodeStatus) (status string, alive int) {
	var aliveOK, overloaded, draining, impaired int
	for _, n := range nodes {
		if n.State == StateDead {
			impaired++
			continue
		}
		alive++
		if n.State == StateDegraded {
			impaired++
			continue
		}
		switch n.Health {
		case "overloaded":
			overloaded++
		case "draining":
			draining++
		default:
			aliveOK++
		}
	}
	switch {
	case aliveOK > 0 && impaired == 0 && overloaded == 0 && draining == 0:
		return "ok", alive
	case aliveOK > 0:
		return "degraded", alive
	case overloaded > 0:
		// Every reachable node is shedding by admission control: the
		// cluster is overloaded — alive, pricing retries — not dead.
		return "overloaded", alive
	case draining > 0:
		return "draining", alive
	case alive > 0:
		return "degraded", alive
	default:
		return "dead", alive
	}
}

func (c *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	nodes := c.prober.status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	status, alive := aggregateStatus(nodes)
	writeJSON(w, http.StatusOK, clusterHealth{
		Status:     status,
		NodesAlive: alive,
		NodesTotal: len(nodes),
		UptimeSec:  time.Since(c.started).Seconds(),
		Nodes:      nodes,
	})
}

// ClusterMetrics is the aggregate GET /metrics payload: cluster counters
// plus each live node's own metrics under its name.
type ClusterMetrics struct {
	NodesAlive      int     `json:"nodes_alive"`
	NodesTotal      int     `json:"nodes_total"`
	JobsRouted      int64   `json:"jobs_routed"`
	JobsFailedOver  int64   `json:"jobs_failed_over"`
	UptimeSec       float64 `json:"uptime_sec"`
	JobsQueued      int     `json:"jobs_queued"`
	JobsRunning     int     `json:"jobs_running"`
	JobsDone        int     `json:"jobs_done"`
	JobsFailed      int     `json:"jobs_failed"`
	JobsCancelled   int     `json:"jobs_cancelled"`
	PendingDepth    int     `json:"pending_depth"`
	Evaluations     int64   `json:"evaluations"`
	SegmentsShipped int64   `json:"segments_shipped"`
	ShipRetries     int64   `json:"ship_retries"`
	ShipBytes       int64   `json:"ship_bytes"`

	Nodes map[string]serve.Metrics `json:"nodes"`
}

// metrics aggregates every live node's /metrics. Sums cover the headline
// counters (job states, evaluations, shipping); the full per-node payloads
// ride along for anything finer.
func (c *Coordinator) metrics(w http.ResponseWriter, r *http.Request) {
	statuses := c.prober.status()
	out := ClusterMetrics{
		NodesTotal:     len(statuses),
		JobsRouted:     c.jobsRouted.Load(),
		JobsFailedOver: c.jobsFailedOver.Load(),
		UptimeSec:      time.Since(c.started).Seconds(),
		Nodes:          map[string]serve.Metrics{},
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, st := range statuses {
		if st.State == StateDead {
			continue
		}
		out.NodesAlive++
		wg.Add(1)
		go func(name, nodeURL string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, nodeURL+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var m serve.Metrics
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&m) != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			out.Nodes[name] = m
			out.JobsQueued += m.JobsQueued
			out.JobsRunning += m.JobsRunning
			out.JobsDone += m.JobsDone
			out.JobsFailed += m.JobsFailed
			out.JobsCancelled += m.JobsCancelled
			out.PendingDepth += m.PendingDepth
			out.Evaluations += m.Evaluations
			out.SegmentsShipped += m.SegmentsShipped
			out.ShipRetries += m.ShipRetries
			out.ShipBytes += m.ShipBytes
		}(st.Name, st.URL)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// cluster serves the node table (GET /cluster).
func (c *Coordinator) cluster(w http.ResponseWriter, r *http.Request) {
	nodes := c.prober.status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	writeJSON(w, http.StatusOK, nodes)
}

// replaceBody is the POST /cluster/replace request: point an existing
// ring identity at a new URL.
type replaceBody struct {
	Node string `json:"node"`
	URL  string `json:"url"`
}

// replaceNode swaps a node's URL, keeping its ring identity — the
// failover step after a machine dies: the operator restores the dead
// node's shipped replica onto a fresh machine (bhpod -restore-from),
// starts it under the same -node name, and points the coordinator here.
// The hash range, the node-qualified job IDs and the SSE sequence
// numbering all survive because the *name* is the identity; only the
// address changed. The replacement's adopted jobs count into
// jobs_failed_over.
func (c *Coordinator) replaceNode(w http.ResponseWriter, r *http.Request) {
	var body replaceBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding: %v", err)
		return
	}
	if body.URL == "" {
		writeError(w, http.StatusBadRequest, "empty url")
		return
	}
	newURL := strings.TrimSuffix(body.URL, "/")
	c.mu.Lock()
	_, known := c.nodes[body.Node]
	if known {
		c.nodes[body.Node] = newURL
	}
	c.mu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, "no node %q", body.Node)
		return
	}
	c.prober.track(body.Node, newURL)
	// Count the adopted jobs (best-effort: the replacement just replayed
	// the shipped journal, so its job table is the dead node's).
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, newURL+"/jobs", nil)
	if err == nil {
		if resp, err := c.client.Do(req); err == nil {
			var snaps []serve.Snapshot
			if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&snaps) == nil {
				c.jobsFailedOver.Add(int64(len(snaps)))
			}
			resp.Body.Close()
		}
	}
	c.ProbeNow()
	nodes := c.prober.status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	writeJSON(w, http.StatusOK, nodes)
}

// Package coord is the cluster coordinator: it re-exports the bhpod HTTP
// API over a set of worker nodes, routing each job to the node that owns
// its evaluation-cache scope on a consistent-hash ring (co-locating a
// scope's jobs keeps its memoized fold scores warm), probing node health,
// and steering clients around dead nodes until a replacement — restored
// from shipped journal segments — takes over the dead node's identity and
// hash range.
package coord

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// defaultReplicas is the virtual-node count per physical node. 64 points
// per node keeps the largest/smallest ownership arc within a few percent
// of even for small clusters while the ring stays tiny (a 16-node cluster
// is 1024 points).
const defaultReplicas = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over node names. Placement depends only
// on the member names and the replica count — never on insertion order or
// process history — so a restarted coordinator routes every scope exactly
// where its predecessor did, and adding or removing one node remaps only
// that node's share of the keyspace.
type Ring struct {
	replicas int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []point // sorted by (hash, node)
}

// NewRing returns an empty ring. replicas <= 0 selects the default (64).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, nodes: map[string]struct{}{}}
}

// hashKey positions a routing key (or virtual node) on the ring.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Add inserts a node. Idempotent.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: hashKey(node + "#" + strconv.Itoa(i)), node: node})
	}
	r.sortLocked()
}

// Remove deletes a node. Idempotent.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortLocked keeps the points ordered by (hash, node) — the node
// tiebreak makes ownership deterministic even in the astronomically
// unlikely event of a 64-bit hash collision between virtual nodes.
func (r *Ring) sortLocked() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Nodes lists the members in name order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the node owning key: the first virtual node at or past
// the key's hash, wrapping at the top. "" on an empty ring.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.searchLocked(hashKey(key))].node
}

// searchLocked finds the index of the first point at or past h, wrapped.
func (r *Ring) searchLocked(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Candidates returns every member in the key's preference order: the
// owner first, then each distinct node met walking the ring clockwise.
// The router takes the first candidate the prober considers servable, so
// a key's jobs fail over deterministically while its owner is down.
func (r *Ring) Candidates(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]struct{}, len(r.nodes))
	start := r.searchLocked(hashKey(key))
	for i := 0; i < len(r.points) && len(seen) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

package coord

import (
	"fmt"
	"testing"
)

// ringKeys synthesizes a deterministic key population shaped like real
// routing keys (cache scopes).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("dataset-%d|0.35|%d|4|20|false|vanilla", i%13, i)
	}
	return keys
}

// TestRingOwnerStableAcrossRebuilds: placement must depend only on the
// member set, never on insertion order or ring history — a restarted
// coordinator has to route every scope exactly where its predecessor
// did. Table-driven over cluster shapes; each is rebuilt in reversed
// insertion order and after a remove/re-add churn.
func TestRingOwnerStableAcrossRebuilds(t *testing.T) {
	cases := []struct {
		name  string
		nodes []string
	}{
		{"single", []string{"a"}},
		{"pair", []string{"a", "b"}},
		{"trio", []string{"a", "b", "c"}},
		{"ten", []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8", "n9"}},
	}
	keys := ringKeys(2000)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			forward := NewRing(0)
			for _, n := range tc.nodes {
				forward.Add(n)
			}
			reversed := NewRing(0)
			for i := len(tc.nodes) - 1; i >= 0; i-- {
				reversed.Add(tc.nodes[i])
			}
			churned := NewRing(0)
			for _, n := range tc.nodes {
				churned.Add(n)
			}
			churned.Remove(tc.nodes[0])
			churned.Add(tc.nodes[0])
			for _, k := range keys {
				want := forward.Owner(k)
				if got := reversed.Owner(k); got != want {
					t.Fatalf("key %q: reversed-order ring owner %q, want %q", k, got, want)
				}
				if got := churned.Owner(k); got != want {
					t.Fatalf("key %q: churned ring owner %q, want %q", k, got, want)
				}
			}
		})
	}
}

// TestRingAddRemapsOnlyExpectedFraction: growing an N-node ring to N+1
// must move roughly 1/(N+1) of the keys — and every moved key must move
// *to* the new node, never between old nodes.
func TestRingAddRemapsOnlyExpectedFraction(t *testing.T) {
	const n = 10
	keys := ringKeys(5000)
	r := NewRing(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("fresh")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "fresh" {
			t.Fatalf("key %q moved %q → %q: keys may only move to the added node", k, before[k], after)
		}
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / float64(n+1)
	if frac < ideal/2 || frac > ideal*2 {
		t.Fatalf("add remapped %.1f%% of keys, want within [%.1f%%, %.1f%%] of ideal %.1f%%",
			frac*100, ideal*50, ideal*200, ideal*100)
	}
}

// TestRingRemoveRemapsOnlyOwnedKeys: removing a node must not move any
// key the node did not own.
func TestRingRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	keys := ringKeys(5000)
	r := NewRing(0)
	nodes := []string{"a", "b", "c", "d", "e"}
	for _, n := range nodes {
		r.Add(n)
	}
	before := make(map[string]string, len(keys))
	owned := 0
	for _, k := range keys {
		before[k] = r.Owner(k)
		if before[k] == "c" {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("test population gave node c no keys; enlarge it")
	}
	r.Remove("c")
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] != "c" && after != before[k] {
			t.Fatalf("key %q owned by %q moved to %q when unrelated node c left", k, before[k], after)
		}
		if after == "c" {
			t.Fatalf("key %q still routed to removed node c", k)
		}
	}
}

// TestRingCandidates: the preference order must start at the owner,
// list every member exactly once, and agree with what the ring does when
// the owner actually leaves — property-checked across the key population.
func TestRingCandidates(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	for _, k := range ringKeys(300) {
		r := NewRing(0)
		for _, n := range nodes {
			r.Add(n)
		}
		cands := r.Candidates(k)
		if len(cands) != len(nodes) {
			t.Fatalf("key %q: %d candidates, want %d", k, len(cands), len(nodes))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %q: duplicate candidate %q", k, c)
			}
			seen[c] = true
		}
		if cands[0] != r.Owner(k) {
			t.Fatalf("key %q: first candidate %q != owner %q", k, cands[0], r.Owner(k))
		}
		// Failover agreement: with the owner gone, ownership falls to the
		// second candidate.
		r.Remove(cands[0])
		if got := r.Owner(k); got != cands[1] {
			t.Fatalf("key %q: owner after removing %q is %q, want second candidate %q",
				k, cands[0], got, cands[1])
		}
	}
}

// TestRingEmptyAndSingle: degenerate shapes must not panic.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner %q, want empty", got)
	}
	if got := r.Candidates("k"); got != nil {
		t.Fatalf("empty ring candidates %v, want nil", got)
	}
	r.Add("only")
	if got := r.Owner("k"); got != "only" {
		t.Fatalf("single-node owner %q", got)
	}
	r.Remove("only")
	if got := r.Owner("k"); got != "" {
		t.Fatalf("owner %q after removing the only node", got)
	}
}

package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"enhancedbhpo/internal/serve/shipper"
)

// This file is the zero-operator failover pipeline. The prober's
// dead verdict triggers it; from there the node walks a state machine
// with no human in the loop:
//
//	dead → select standby → verify replicas → restore → replace → alive
//
// Concretely: verify the dead node's shipped replicas (manifest
// checksums, across every configured sink root), pick the first clean
// standby, POST /restore to it with the verified replica directories
// (the standby re-verifies, restores the first that holds up, and swaps
// in a full worker over the restored journal), then re-point the ring
// identity at the standby's URL — the same effect as a manual
// bhpoctl replace, recorded in the membership journal so a coordinator
// restart mid-incident resumes with the promotion either durably done
// or not yet done, never half-applied. A standby that fails its restore
// is quarantined and the next one tried; when everything is exhausted
// the pipeline backs off (capped) and retries — replicas may still be
// catching up, or an operator may register a fresh standby.

// ClusterEvent is one entry in the coordinator's bounded incident log
// (GET /cluster/events): membership changes, failovers, restore
// failures.
type ClusterEvent struct {
	Type string `json:"type"`
	Node string `json:"node"`
	// Standby is the spare involved (failover and restore_failed events).
	Standby string `json:"standby,omitempty"`
	// DurationSec is the dead→alive pipeline time on failover events.
	DurationSec float64   `json:"duration_sec,omitempty"`
	Detail      string    `json:"detail,omitempty"`
	Time        time.Time `json:"time"`
}

// maxClusterEvents bounds the in-memory incident log.
const maxClusterEvents = 256

// recordEvent appends to the incident log, dropping the oldest entries
// past the cap.
func (c *Coordinator) recordEvent(ev ClusterEvent) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	c.evMu.Lock()
	defer c.evMu.Unlock()
	c.events = append(c.events, ev)
	if n := len(c.events); n > maxClusterEvents {
		c.events = append(c.events[:0:0], c.events[n-maxClusterEvents:]...)
	}
}

// clusterEvents serves GET /cluster/events: the incident log, oldest
// first.
func (c *Coordinator) clusterEvents(w http.ResponseWriter, r *http.Request) {
	c.evMu.Lock()
	out := make([]ClusterEvent, len(c.events))
	copy(out, c.events)
	c.evMu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// onNodeDead is the prober's dead-transition hook. One pipeline per
// node: a node that flaps dead while its restore is already running
// does not spawn a second.
func (c *Coordinator) onNodeDead(name string) {
	if !c.cfg.AutoFailover {
		return
	}
	c.failMu.Lock()
	if c.restoring[name] {
		c.failMu.Unlock()
		return
	}
	c.restoring[name] = true
	c.failMu.Unlock()
	c.recordEvent(ClusterEvent{Type: "node-dead", Node: name})
	go c.runFailover(name)
}

// runFailover drives one dead node through the restore pipeline until
// the node is replaced, resurrects on its own, or the coordinator shuts
// down.
func (c *Coordinator) runFailover(name string) {
	defer func() {
		c.failMu.Lock()
		delete(c.restoring, name)
		c.failMu.Unlock()
	}()
	c.prober.setRestoring(name, true)
	start := time.Now()
	backoff := c.cfg.RestoreBackoff
	for {
		if c.prober.stateOf(name) != StateRestoring {
			// Resurrected (a probe succeeded), replaced manually, or left
			// the ring: nothing to restore.
			c.prober.setRestoring(name, false)
			return
		}
		sources := c.verifiedReplicas(name)
		if len(sources) > 0 {
			for _, sb := range c.prober.standbys() {
				if c.tryPromote(name, sb, sources, start) {
					return
				}
			}
		}
		// No verified replica yet (shipping may still be catching up on a
		// lagging sink) or every standby failed: back off and retry.
		select {
		case <-c.stopCh:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > c.cfg.RestoreMaxBackoff {
			backoff = c.cfg.RestoreMaxBackoff
		}
	}
}

// verifiedReplicas returns the dead node's replica directories whose
// manifests verify, in sink order — the restore preference list. The
// standby re-verifies and falls back across them on mismatch, so this
// is an optimization and a first checksum gate, not the only one.
func (c *Coordinator) verifiedReplicas(name string) []string {
	var out []string
	for _, root := range c.cfg.SinkRoots {
		dir := filepath.Join(root, name)
		if err := shipper.VerifyReplica(dir); err == nil {
			out = append(out, dir)
		}
	}
	return out
}

// tryPromote asks one standby to restore the dead node and, on success,
// re-points the ring identity at it. Returns true when the cluster is
// healed. A failed attempt quarantines the standby (durably, so a
// restarted coordinator will not try it first again) and returns false.
func (c *Coordinator) tryPromote(name string, sb standbyInfo, sources []string, start time.Time) bool {
	body, _ := json.Marshal(struct {
		Node    string   `json:"node"`
		Sources []string `json:"sources"`
	}{Node: name, Sources: sources})
	err := func() error {
		req, err := http.NewRequest(http.MethodPost, sb.url+"/restore", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var eb errorBody
			_ = json.NewDecoder(resp.Body).Decode(&eb)
			return fmt.Errorf("restore on %s: %s: %s", sb.name, resp.Status, eb.Error)
		}
		return nil
	}()
	if err != nil {
		c.restoresFailed.Add(1)
		// Durable quarantine, best-effort: a journal write failure only
		// loses the preference ordering, not correctness.
		_ = c.journal.append(MemberOp{Op: OpQuarantine, Node: sb.name, On: true})
		c.prober.setQuarantined(sb.name, true)
		c.recordEvent(ClusterEvent{Type: "restore_failed", Node: name, Standby: sb.name, Detail: err.Error()})
		return false
	}
	// The standby now serves the dead node's jobs; re-point the ring
	// identity. Journal the standby's consumption and the re-point as one
	// ordered pair — replaying either prefix is consistent (the standby
	// disappears first, then the member re-points).
	if jerr := c.journal.append(MemberOp{Op: OpStandby, Node: sb.name, On: false}); jerr != nil {
		c.recordEvent(ClusterEvent{Type: "journal_error", Node: sb.name, Detail: jerr.Error()})
	}
	c.applyMemberOp(MemberOp{Op: OpStandby, Node: sb.name, On: false})
	if jerr := c.journal.append(MemberOp{Op: OpJoin, Node: name, URL: sb.url}); jerr != nil {
		c.recordEvent(ClusterEvent{Type: "journal_error", Node: name, Detail: jerr.Error()})
	}
	c.applyMemberOp(MemberOp{Op: OpJoin, Node: name, URL: sb.url})
	c.countAdoptedJobs(name, sb.url)
	dur := time.Since(start)
	c.autoRestores.Add(1)
	c.restoreDurMicros.Add(dur.Microseconds())
	c.recordEvent(ClusterEvent{
		Type:        "failover",
		Node:        name,
		Standby:     sb.name,
		DurationSec: dur.Seconds(),
		Detail:      "restored onto " + sb.url,
	})
	c.ProbeNow()
	return true
}

package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// MembersFileName is the coordinator's membership journal inside its
// data directory: one JSON line per membership operation, fsynced before
// the operation is acknowledged, so a restarted coordinator rebuilds the
// *current* ring — runtime joins, leaves, drains, standby registrations
// and automated replaces included — not the boot-time one. Membership
// changes are rare, so the file stays small and is never compacted;
// replay tolerates a torn final line (crash mid-append) by stopping at
// the last whole record.
const MembersFileName = "members.jsonl"

// Membership operations.
const (
	// OpJoin adds (or re-points, for a replace) a ring member.
	OpJoin = "join"
	// OpLeave removes a ring member after its drain completed.
	OpLeave = "leave"
	// OpDrain marks a member as draining (on=true) or cancels it.
	OpDrain = "drain"
	// OpStandby registers a spare (on=true) or removes it.
	OpStandby = "standby"
	// OpQuarantine flags a standby that failed a restore (on=true) so a
	// restarted coordinator does not retry it first.
	OpQuarantine = "quarantine"
)

// MemberOp is one membership journal line.
type MemberOp struct {
	Op   string    `json:"op"`
	Node string    `json:"node"`
	URL  string    `json:"url,omitempty"`
	On   bool      `json:"on,omitempty"`
	Time time.Time `json:"time"`
}

// memberLog appends membership operations durably. Safe for concurrent
// use; every append is fsynced before it returns — a membership change
// the coordinator acknowledged is never lost to a crash.
type memberLog struct {
	mu sync.Mutex
	f  *os.File
}

// openMemberLog opens (creating if needed) dir's membership journal for
// appending.
func openMemberLog(dir string) (*memberLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("coord: members journal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, MembersFileName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("coord: members journal: %w", err)
	}
	return &memberLog{f: f}, nil
}

// append writes one operation and fsyncs it.
func (l *memberLog) append(op MemberOp) error {
	if l == nil {
		return nil // membership persistence disabled (no data dir)
	}
	if op.Time.IsZero() {
		op.Time = time.Now()
	}
	line, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("coord: members journal: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("coord: members journal: closed")
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("coord: members journal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("coord: members journal: %w", err)
	}
	return nil
}

// close closes the journal. Idempotent.
func (l *memberLog) close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}

// replayMemberLog reads dir's membership journal in append order. A
// missing file is an empty history; a torn final line ends the replay at
// the last whole record.
func replayMemberLog(dir string) ([]MemberOp, error) {
	f, err := os.Open(filepath.Join(dir, MembersFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("coord: members journal: %w", err)
	}
	defer f.Close()
	var ops []MemberOp
	dec := json.NewDecoder(f)
	for {
		var op MemberOp
		if err := dec.Decode(&op); err != nil {
			if errors.Is(err, io.EOF) {
				return ops, nil
			}
			// Torn tail: crash mid-append; everything before it is whole.
			return ops, nil
		}
		ops = append(ops, op)
	}
}

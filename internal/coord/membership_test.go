package coord

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"enhancedbhpo/internal/serve"
)

// TestMemberJournalRoundTrip: operations append durably and replay in
// order; a missing journal is an empty history; a torn final line
// (crash mid-append) ends the replay at the last whole record.
func TestMemberJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if ops, err := replayMemberLog(dir); err != nil || ops != nil {
		t.Fatalf("replay of missing journal = %v, %v; want empty", ops, err)
	}
	l, err := openMemberLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []MemberOp{
		{Op: OpJoin, Node: "c", URL: "http://c"},
		{Op: OpDrain, Node: "c", On: true},
		{Op: OpLeave, Node: "c"},
		{Op: OpStandby, Node: "s1", URL: "http://s1", On: true},
		{Op: OpQuarantine, Node: "s1", On: true},
	}
	for _, op := range want {
		if err := l.append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	got, err := replayMemberLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		g := got[i]
		if g.Op != want[i].Op || g.Node != want[i].Node || g.URL != want[i].URL || g.On != want[i].On {
			t.Fatalf("op %d = %+v, want %+v", i, g, want[i])
		}
		if g.Time.IsZero() {
			t.Fatalf("op %d has no timestamp", i)
		}
	}

	// Torn tail: everything before the half-written line still replays.
	path := filepath.Join(dir, MembersFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"join","node":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = replayMemberLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("torn-tail replay returned %d ops, want %d", len(got), len(want))
	}

	// A nil log (persistence disabled) swallows appends.
	var nilLog *memberLog
	if err := nilLog.append(MemberOp{Op: OpJoin, Node: "x"}); err != nil {
		t.Fatalf("nil log append: %v", err)
	}
}

// TestSubmitRetryOnDeadRoute is the satellite regression: a submission
// whose routed node accepts the connection and then dies before acking
// must be retried transparently on the ring successor — same
// idempotency token — and succeed, not surface a retryable 503/502.
func TestSubmitRetryOnDeadRoute(t *testing.T) {
	healthy := newStubWorker(t, "b")

	// "a" is the killer: it records the submit token, then drops the
	// connection mid-response — the node died between routing and ack.
	var mu sync.Mutex
	var killerTokens []string
	killerMux := http.NewServeMux()
	killerMux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(map[string]any{"status": "ok", "pending": 0})
	})
	killerMux.HandleFunc("POST /jobs", func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		killerTokens = append(killerTokens, r.Header.Get("X-Submit-Token"))
		mu.Unlock()
		panic(http.ErrAbortHandler)
	})
	killer := httptest.NewServer(killerMux)
	t.Cleanup(killer.Close)

	coord, err := New(Config{
		Nodes: []Node{{Name: "a", URL: killer.URL}, {Name: "b", URL: healthy.ts.URL}},
		Probe: ProbeOptions{Interval: time.Hour, Timeout: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)

	// A spec the ring routes to the killer.
	spec := serve.JobSpec{Dataset: "australian", Method: "sha"}
	for seed := uint64(1); ; seed++ {
		spec.Seed = seed
		if coord.ring.Owner(spec.CacheScope()) == "a" {
			break
		}
	}

	resp, snap := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit through dying node: %s, want 202 via the successor", resp.Status)
	}
	if !strings.HasPrefix(snap.ID, "b:") {
		t.Fatalf("retried job ID %q, want the successor's (b:...)", snap.ID)
	}
	mu.Lock()
	kt := append([]string(nil), killerTokens...)
	mu.Unlock()
	if len(kt) != 1 || kt[0] == "" {
		t.Fatalf("killer saw tokens %q, want one non-empty", kt)
	}
	healthy.mu.Lock()
	ht := append([]string(nil), healthy.tokens...)
	healthy.mu.Unlock()
	if len(ht) != 1 || ht[0] != kt[0] {
		t.Fatalf("successor saw tokens %q, want the same token %q — the retry must carry the idempotency key", ht, kt[0])
	}

	var cm ClusterMetrics
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&cm); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if cm.SubmitRetries != 1 {
		t.Fatalf("submit_retries = %d, want 1", cm.SubmitRetries)
	}
}

// postMember sends one membership operation to the coordinator.
func postMember(t *testing.T, base, cmd string, body map[string]any) *http.Response {
	t.Helper()
	payload, _ := json.Marshal(body)
	resp, err := http.Post(base+"/cluster/"+cmd, "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// clusterNodes fetches GET /cluster.
func clusterNodes(t *testing.T, base string) []NodeStatus {
	t.Helper()
	resp, err := http.Get(base + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nodes []NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	return nodes
}

// TestMembershipJoinStormDrainLeave is the runtime-membership e2e over
// real workers: a node joins a live ring and immediately takes work, a
// drain stops new routing while the ring stays whole, a leave waits for
// the node to go idle and removes it with zero job loss, and a restarted
// coordinator rebuilds the post-churn member set from its journal.
func TestMembershipJoinStormDrainLeave(t *testing.T) {
	shipRoot := t.TempDir()
	dataDir := t.TempDir()

	spec := func(seed uint64) serve.JobSpec {
		return serve.JobSpec{
			Dataset: "australian", Scale: 0.06, DatasetSeed: seed,
			Method: "sha", NumHPs: 2, MaxConfigs: 6, Iters: 2, Seed: 3,
		}
	}

	workers := map[string]*workerProc{}
	for _, n := range []string{"a", "b", "c"} {
		wp := startWorkerProc(t, shipRoot, n)
		workers[n] = wp
		t.Cleanup(func() {
			wp.release()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			wp.m.Shutdown(ctx)
		})
	}

	cfg := Config{
		Nodes: []Node{
			{Name: "a", URL: workers["a"].ts.URL},
			{Name: "b", URL: workers["b"].ts.URL},
		},
		Probe:     ProbeOptions{Interval: time.Hour, Timeout: 2 * time.Second},
		DataDir:   dataDir,
		DrainPoll: 10 * time.Millisecond,
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)

	// Join c at runtime: the ring now has three members and c is alive.
	jresp := postMember(t, front.URL, "join", map[string]any{"node": "c", "url": workers["c"].ts.URL})
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("join: %s", jresp.Status)
	}
	jresp.Body.Close()
	if got := len(clusterNodes(t, front.URL)); got != 3 {
		t.Fatalf("%d nodes after join, want 3", got)
	}
	// Joining again with the same URL is idempotent; a different URL must
	// be refused (that is what /cluster/replace is for).
	jresp = postMember(t, front.URL, "join", map[string]any{"node": "c", "url": workers["c"].ts.URL})
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent re-join: %s", jresp.Status)
	}
	jresp.Body.Close()
	jresp = postMember(t, front.URL, "join", map[string]any{"node": "c", "url": "http://elsewhere:1"})
	if jresp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting re-join: %s, want 409", jresp.Status)
	}
	jresp.Body.Close()

	// Storm across the three-node ring; c must take real work.
	seedsOwnedBy := func(owner string, n int, from uint64) []uint64 {
		var out []uint64
		for seed := from; len(out) < n; seed++ {
			if coord.ring.Owner(spec(seed).CacheScope()) == owner {
				out = append(out, seed)
			}
		}
		return out
	}
	var ids []string
	for _, owner := range []string{"a", "b", "c"} {
		for _, seed := range seedsOwnedBy(owner, 2, 1) {
			resp, snap := postJob(t, front.URL, spec(seed))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("storm submit: %s", resp.Status)
			}
			ids = append(ids, snap.ID)
		}
	}
	onC := 0
	for _, id := range ids {
		if snap := waitTerminal(t, front.URL, id); snap.Status != serve.StatusDone {
			t.Fatalf("storm job %s: %s, want done", id, snap.Status)
		}
		if strings.HasPrefix(id, "c:") {
			onC++
		}
	}
	if onC == 0 {
		t.Fatal("no storm job landed on the joined node")
	}

	// Drain c: it stops taking new jobs — a scope it owns routes to a
	// successor — but stays a probed, queryable member.
	dresp := postMember(t, front.URL, "drain", map[string]any{"node": "c"})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %s", dresp.Status)
	}
	dresp.Body.Close()
	if st := coord.prober.stateOf("c"); st != StateDraining {
		t.Fatalf("c state %q after drain, want draining", st)
	}
	drainSeed := seedsOwnedBy("c", 1, 10_000)[0]
	resp, snap := postJob(t, front.URL, spec(drainSeed))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit during drain: %s", resp.Status)
	}
	if strings.HasPrefix(snap.ID, "c:") {
		t.Fatalf("draining node still took job %s", snap.ID)
	}
	if got := waitTerminal(t, front.URL, snap.ID); got.Status != serve.StatusDone {
		t.Fatalf("drain-rerouted job: %s, want done", got.Status)
	}

	// Leave: waits for c to go idle (it is — every job finished), then
	// removes it from the ring.
	lresp := postMember(t, front.URL, "leave", map[string]any{"node": "c", "deadline_sec": 30.0})
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %s", lresp.Status)
	}
	lresp.Body.Close()
	if got := len(clusterNodes(t, front.URL)); got != 2 {
		t.Fatalf("%d nodes after leave, want 2", got)
	}
	resp, snap = postJob(t, front.URL, spec(drainSeed))
	if resp.StatusCode != http.StatusAccepted || strings.HasPrefix(snap.ID, "c:") {
		t.Fatalf("submit after leave: %s -> %s", resp.Status, snap.ID)
	}
	waitTerminal(t, front.URL, snap.ID)

	// c rejoins, then the coordinator restarts: the journal — boot config
	// plus join/drain/leave/join — must rebuild the current member set,
	// with c back and not draining.
	jresp = postMember(t, front.URL, "join", map[string]any{"node": "c", "url": workers["c"].ts.URL})
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("re-join: %s", jresp.Status)
	}
	jresp.Body.Close()
	front.Close()
	coord.Shutdown()

	coord2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Shutdown()
	front2 := httptest.NewServer(coord2)
	defer front2.Close()
	nodes := clusterNodes(t, front2.URL)
	if len(nodes) != 3 {
		t.Fatalf("%d nodes after restart, want 3 recovered from the journal", len(nodes))
	}
	for _, n := range nodes {
		if n.Name == "c" && n.State == StateDraining {
			t.Fatal("rejoined node came back draining")
		}
	}
	resp, snap = postJob(t, front2.URL, spec(seedsOwnedBy("c", 1, 20_000)[0]))
	if resp.StatusCode != http.StatusAccepted || !strings.HasPrefix(snap.ID, "c:") {
		t.Fatalf("post-restart submit: %s -> %s, want routed to the rejoined c", resp.Status, snap.ID)
	}
	waitTerminal(t, front2.URL, snap.ID)
}

package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enhancedbhpo/internal/serve"
)

// stubWorker is a minimal fake bhpod: it answers just enough of the
// worker API for coordinator tests, recording what it was asked.
type stubWorker struct {
	name string

	mu       sync.Mutex
	submits  []serve.JobSpec
	tokens   []string // X-Submit-Token seen on each /jobs submission
	lastEvID string   // Last-Event-ID seen on the most recent /events request

	health  atomic.Value // string: healthz status vocabulary
	metrics serve.Metrics
	nextID  atomic.Int64

	ts *httptest.Server
}

func newStubWorker(t *testing.T, name string) *stubWorker {
	t.Helper()
	w := &stubWorker{name: name}
	w.health.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(map[string]any{
			"status": w.health.Load().(string), "pending": 0,
		})
	})
	mux.HandleFunc("POST /jobs", func(rw http.ResponseWriter, r *http.Request) {
		var spec serve.JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		w.mu.Lock()
		w.submits = append(w.submits, spec)
		w.tokens = append(w.tokens, r.Header.Get("X-Submit-Token"))
		w.mu.Unlock()
		id := fmt.Sprintf("job-%d", w.nextID.Add(1))
		rw.WriteHeader(http.StatusAccepted)
		json.NewEncoder(rw).Encode(serve.Snapshot{ID: id, Status: "queued", Spec: spec})
	})
	mux.HandleFunc("GET /jobs", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		n := len(w.submits)
		w.mu.Unlock()
		snaps := make([]serve.Snapshot, 0, n)
		for i := 1; i <= n; i++ {
			snaps = append(snaps, serve.Snapshot{ID: fmt.Sprintf("job-%d", i), Status: "running"})
		}
		json.NewEncoder(rw).Encode(snaps)
	})
	mux.HandleFunc("GET /jobs/{id}", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(serve.Snapshot{ID: r.PathValue("id"), Status: "running"})
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		w.lastEvID = r.Header.Get("Last-Event-ID")
		w.mu.Unlock()
		rw.Header().Set("Content-Type", "text/event-stream")
		start := 1
		if lid := w.lastEventID(); lid != "" {
			fmt.Sscanf(lid, "%d", &start)
			start++
		}
		for seq := start; seq < start+3; seq++ {
			fmt.Fprintf(rw, "id: %d\ndata: {\"seq\":%d}\n\n", seq, seq)
		}
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		m := w.metrics
		w.mu.Unlock()
		json.NewEncoder(rw).Encode(m)
	})
	mux.HandleFunc("GET /methods", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("X-Stub-Node", w.name)
		fmt.Fprint(rw, `[{"name":"sha"}]`)
	})
	w.ts = httptest.NewServer(mux)
	t.Cleanup(w.ts.Close)
	return w
}

func (w *stubWorker) lastEventID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastEvID
}

func (w *stubWorker) submitted() []serve.JobSpec {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]serve.JobSpec(nil), w.submits...)
}

// newTestCluster wires a coordinator (not started — tests drive probes
// with ProbeNow) over the given stub workers.
func newTestCluster(t *testing.T, workers ...*stubWorker) (*Coordinator, *httptest.Server) {
	t.Helper()
	nodes := make([]Node, len(workers))
	for i, w := range workers {
		nodes[i] = Node{Name: w.name, URL: w.ts.URL}
	}
	c, err := New(Config{
		Nodes: nodes,
		Probe: ProbeOptions{Interval: time.Hour, Timeout: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	return c, ts
}

func postJob(t *testing.T, base string, spec serve.JobSpec) (*http.Response, serve.Snapshot) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return resp, snap
}

// TestCoordinatorRoutesByScope: jobs sharing an evaluation-cache scope
// must land on one node (warm caches), and the chosen node must be the
// ring owner of that scope. IDs come back node-qualified.
func TestCoordinatorRoutesByScope(t *testing.T) {
	a, b, c := newStubWorker(t, "a"), newStubWorker(t, "b"), newStubWorker(t, "c")
	coord, ts := newTestCluster(t, a, b, c)
	byName := map[string]*stubWorker{"a": a, "b": b, "c": c}

	// Ten specs over two scopes: same dataset/scale/seed shares a scope
	// regardless of method or search seed.
	for i := 0; i < 5; i++ {
		spec := serve.JobSpec{Dataset: "australian", Method: "sha", Seed: uint64(i + 1)}
		resp, snap := postJob(t, ts.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		node, _, ok := splitID(snap.ID)
		if !ok {
			t.Fatalf("ID %q is not node-qualified", snap.ID)
		}
		if want := coord.ring.Owner(spec.CacheScope()); node != want {
			t.Fatalf("scope routed to %q, ring owner is %q", node, want)
		}
	}
	for i := 0; i < 5; i++ {
		postJob(t, ts.URL, serve.JobSpec{Dataset: "german", Method: "random", Seed: uint64(i + 1)})
	}

	// Every scope's jobs live on exactly one node.
	for _, ds := range []string{"australian", "german"} {
		holders := 0
		for _, w := range byName {
			n := 0
			for _, spec := range w.submitted() {
				if spec.Dataset == ds {
					n++
				}
			}
			if n > 0 {
				holders++
				if n != 5 {
					t.Fatalf("node %s holds %d of dataset %s's 5 jobs; scope split across nodes", w.name, n, ds)
				}
			}
		}
		if holders != 1 {
			t.Fatalf("dataset %s spread over %d nodes, want exactly 1", ds, holders)
		}
	}
}

// TestCoordinatorRoutesAroundDeadNode: when the scope's owner dies, new
// jobs for that scope flow to the ring successor instead of failing.
func TestCoordinatorRoutesAroundDeadNode(t *testing.T) {
	a, b := newStubWorker(t, "a"), newStubWorker(t, "b")
	coord, ts := newTestCluster(t, a, b)
	spec := serve.JobSpec{Dataset: "heart", Method: "sha"}
	owner := coord.ring.Owner(spec.CacheScope())
	victim, survivor := a, b
	if owner == "b" {
		victim, survivor = b, a
	}
	victim.ts.Close()
	for i := 0; i < 6; i++ { // cross DeadAfter
		coord.ProbeNow()
	}
	resp, snap := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with dead owner: %s", resp.Status)
	}
	if node, _, _ := splitID(snap.ID); node != survivor.name {
		t.Fatalf("routed to %q, want successor %q", snap.ID, survivor.name)
	}
}

// TestCoordinator429PassesThroughVerbatim: a worker shedding load prices
// its own Retry-After; the coordinator must relay status, header and body
// untouched rather than substitute its own.
func TestCoordinator429PassesThroughVerbatim(t *testing.T) {
	const body = `{"error":"pending queue full","retry_after_sec":17}`
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprint(rw, `{"status":"overloaded","pending":64}`)
	})
	mux.HandleFunc("POST /jobs", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Retry-After", "17")
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(rw, body)
	})
	shedding := httptest.NewServer(mux)
	defer shedding.Close()

	c, err := New(Config{Nodes: []Node{{Name: "a", URL: shedding.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	defer ts.Close()

	spec, _ := json.Marshal(serve.JobSpec{Dataset: "australian", Method: "sha"})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "17" {
		t.Fatalf("Retry-After %q, want the worker's priced %q", got, "17")
	}
	got, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(got)) != body {
		t.Fatalf("body rewritten:\n got %s\nwant %s", got, body)
	}
}

// TestAggregateStatus: the cluster healthz verdict table. The load-shed
// case is the one that matters operationally: a cluster where every live
// node is shedding is overloaded — pricing retries — not dead.
func TestAggregateStatus(t *testing.T) {
	mk := func(state NodeState, health string) NodeStatus {
		return NodeStatus{State: state, Health: health}
	}
	cases := []struct {
		name      string
		nodes     []NodeStatus
		want      string
		wantAlive int
	}{
		{"all ok", []NodeStatus{mk(StateAlive, "ok"), mk(StateAlive, "ok")}, "ok", 2},
		{"one dead", []NodeStatus{mk(StateAlive, "ok"), mk(StateDead, "")}, "degraded", 1},
		{"one degraded", []NodeStatus{mk(StateAlive, "ok"), mk(StateDegraded, "ok")}, "degraded", 2},
		{"one overloaded", []NodeStatus{mk(StateAlive, "ok"), mk(StateAlive, "overloaded")}, "degraded", 2},
		{"fully shed cluster is overloaded, not dead",
			[]NodeStatus{mk(StateAlive, "overloaded"), mk(StateAlive, "overloaded")}, "overloaded", 2},
		{"overloaded beats draining",
			[]NodeStatus{mk(StateAlive, "overloaded"), mk(StateAlive, "draining")}, "overloaded", 2},
		{"all draining", []NodeStatus{mk(StateAlive, "draining")}, "draining", 1},
		{"only degraded survivors", []NodeStatus{mk(StateDegraded, ""), mk(StateDead, "")}, "degraded", 1},
		{"all dead", []NodeStatus{mk(StateDead, ""), mk(StateDead, "")}, "dead", 0},
		{"empty", nil, "dead", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, alive := aggregateStatus(tc.nodes)
			if status != tc.want || alive != tc.wantAlive {
				t.Fatalf("got (%q, %d), want (%q, %d)", status, alive, tc.want, tc.wantAlive)
			}
		})
	}
}

// TestCoordinatorHealthzFullyShed: end-to-end version of the satellite —
// every worker reports "overloaded" on its own /healthz; the aggregate
// must say overloaded with all nodes alive.
func TestCoordinatorHealthzFullyShed(t *testing.T) {
	a, b := newStubWorker(t, "a"), newStubWorker(t, "b")
	a.health.Store("overloaded")
	b.health.Store("overloaded")
	coord, ts := newTestCluster(t, a, b)
	coord.ProbeNow()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h clusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "overloaded" {
		t.Fatalf("aggregate status %q, want overloaded (a fully-shed cluster is not dead)", h.Status)
	}
	if h.NodesAlive != 2 || h.NodesTotal != 2 {
		t.Fatalf("alive %d/%d, want 2/2", h.NodesAlive, h.NodesTotal)
	}
}

// TestCoordinatorSSEPassthrough: the events proxy must hand the client's
// Last-Event-ID to the worker (resume where the watcher left off) and
// relay the worker's frames.
func TestCoordinatorSSEPassthrough(t *testing.T) {
	a := newStubWorker(t, "a")
	_, ts := newTestCluster(t, a)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs/a:job-1/events", nil)
	req.Header.Set("Last-Event-ID", "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %s", resp.Status)
	}
	if got := a.lastEventID(); got != "5" {
		t.Fatalf("worker saw Last-Event-ID %q, want %q", got, "5")
	}
	body, _ := io.ReadAll(resp.Body)
	// The stub resumes past 5: frames 6, 7, 8.
	for _, want := range []string{"id: 6", "id: 7", "id: 8"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("stream missing %q:\n%s", want, body)
		}
	}
}

// TestCoordinatorMetricsAggregation: /metrics must sum worker counters
// (including the shipping trio) and count routed jobs.
func TestCoordinatorMetricsAggregation(t *testing.T) {
	a, b := newStubWorker(t, "a"), newStubWorker(t, "b")
	a.metrics = serve.Metrics{JobsDone: 3, Evaluations: 100, SegmentsShipped: 4, ShipRetries: 1, ShipBytes: 1000}
	b.metrics = serve.Metrics{JobsDone: 2, Evaluations: 50, SegmentsShipped: 6, ShipBytes: 500}
	_, ts := newTestCluster(t, a, b)

	postJob(t, ts.URL, serve.JobSpec{Dataset: "australian", Method: "sha"})
	postJob(t, ts.URL, serve.JobSpec{Dataset: "german", Method: "sha"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.JobsRouted != 2 {
		t.Fatalf("jobs_routed %d, want 2", m.JobsRouted)
	}
	if m.JobsDone != 5 || m.Evaluations != 150 {
		t.Fatalf("sums: done %d evals %d, want 5 and 150", m.JobsDone, m.Evaluations)
	}
	if m.SegmentsShipped != 10 || m.ShipRetries != 1 || m.ShipBytes != 1500 {
		t.Fatalf("ship sums: %d/%d/%d, want 10/1/1500", m.SegmentsShipped, m.ShipRetries, m.ShipBytes)
	}
	if m.NodesAlive != 2 || len(m.Nodes) != 2 {
		t.Fatalf("nodes: alive %d, payloads %d, want 2 and 2", m.NodesAlive, len(m.Nodes))
	}
}

// TestCoordinatorJobIDResolution: unqualified IDs and unknown node names
// are definitive 404s; a dead node's jobs answer 503 — retryable, because
// a replacement will serve the same IDs.
func TestCoordinatorJobIDResolution(t *testing.T) {
	a := newStubWorker(t, "a")
	coord, ts := newTestCluster(t, a)

	for path, want := range map[string]int{
		"/jobs/job-1":     http.StatusNotFound, // unqualified
		"/jobs/zz:job-1":  http.StatusNotFound, // unknown node
		"/jobs/a:job-1":   http.StatusOK,
		"/jobs/a%3Ajob-1": http.StatusOK, // escaped colon resolves too
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: %s, want %d", path, resp.Status, want)
		}
	}

	// ID rewrite on the proxied snapshot.
	resp, err := http.Get(ts.URL + "/jobs/a:job-9")
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.Snapshot
	json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if snap.ID != "a:job-9" {
		t.Fatalf("proxied snapshot ID %q, want re-qualified %q", snap.ID, "a:job-9")
	}

	a.ts.Close()
	for i := 0; i < 6; i++ {
		coord.ProbeNow()
	}
	resp, err = http.Get(ts.URL + "/jobs/a:job-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead node's job: %s, want 503 (retryable, awaiting replacement)", resp.Status)
	}
}

// TestCoordinatorReplace: a dead node's identity re-pointed at a fresh
// URL serves again immediately — same name, same qualified job IDs.
func TestCoordinatorReplace(t *testing.T) {
	a := newStubWorker(t, "a")
	coord, ts := newTestCluster(t, a)
	a.ts.Close()
	for i := 0; i < 6; i++ {
		coord.ProbeNow()
	}
	if st := coord.prober.stateOf("a"); st != StateDead {
		t.Fatalf("victim state %q, want dead", st)
	}

	replacement := newStubWorker(t, "a2") // name irrelevant: identity comes from replace
	replacement.mu.Lock()
	replacement.submits = make([]serve.JobSpec, 2) // pretend two adopted jobs
	replacement.mu.Unlock()

	body := fmt.Sprintf(`{"node":"a","url":%q}`, replacement.ts.URL)
	resp, err := http.Post(ts.URL+"/cluster/replace", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace: %s", resp.Status)
	}
	if st := coord.prober.stateOf("a"); st != StateAlive {
		t.Fatalf("replaced node state %q, want alive (fresh streak)", st)
	}
	resp, err = http.Get(ts.URL + "/jobs/a:job-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job on replacement: %s, want 200", resp.Status)
	}
	// The adopted jobs count into the failover metric.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m ClusterMetrics
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if m.JobsFailedOver != 2 {
		t.Fatalf("jobs_failed_over %d, want 2", m.JobsFailedOver)
	}

	// Replacing an unknown identity is a 404, not a silent add.
	resp, err = http.Post(ts.URL+"/cluster/replace", "application/json",
		strings.NewReader(`{"node":"ghost","url":"http://localhost:1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("replace unknown node: %s, want 404", resp.Status)
	}
}

// TestCoordinatorRejectsBadNodeNames: names embed into job IDs, so the
// separators must be refused up front.
func TestCoordinatorRejectsBadNodeNames(t *testing.T) {
	for _, name := range []string{"", "a:b", "a/b", "a b"} {
		_, err := New(Config{Nodes: []Node{{Name: name, URL: "http://x"}}})
		if err == nil {
			t.Fatalf("node name %q accepted", name)
		}
	}
	_, err := New(Config{Nodes: []Node{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}})
	if err == nil {
		t.Fatal("duplicate node name accepted")
	}
}

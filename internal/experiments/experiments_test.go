package experiments

import (
	"bytes"
	"strings"
	"testing"

	"enhancedbhpo/internal/dataset"
)

func fastWith(datasets ...string) Settings {
	s := FastSettings()
	s.Datasets = datasets
	return s
}

func TestRunTable4Fast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunTable4(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if len(row.Cells) != 7 {
		t.Fatalf("%d cells", len(row.Cells))
	}
	for _, c := range row.Cells {
		if c.TestMean <= 0 || c.TestMean > 1 {
			t.Errorf("%s: test mean %v", c.Method, c.TestMean)
		}
		if c.TimeMean <= 0 {
			t.Errorf("%s: no time recorded", c.Method)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"australian", "SHA+", "BOHB+", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q", want)
		}
	}
}

func TestMetricNames(t *testing.T) {
	// metricName mirrors Table IV: F1 on imbalanced sets, R2 on regression.
	cases := map[string]string{
		"gisette": "Acc", "machine": "F1", "a9a": "F1", "fraud": "F1",
		"satimage": "F1", "usps": "Acc", "molecules": "R2", "kc-house": "R2",
	}
	for name, want := range cases {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := metricName(name, spec.Kind); got != want {
			t.Errorf("%s: metric %q, want %q", name, got, want)
		}
	}
}

func TestRunTable5Fast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunTable5(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	for _, ratio := range Table5Ratios {
		for _, method := range []string{"vanilla", "ours"} {
			c := row.Cell(method, ratio)
			if c == nil {
				t.Fatalf("missing cell %s/%v", method, ratio)
			}
			if c.TestAcc <= 0 || c.NDCG <= 0 {
				t.Errorf("%s/%v: acc %v ndcg %v", method, ratio, c.TestAcc, c.NDCG)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "nDCG") {
		t.Error("printout missing header")
	}
}

func TestRunFig5Fast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFig5(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("%d series", len(res.Series))
	}
	series := res.Series[0]
	wantPoints := 3 * len(Fig5Ratios)
	if len(series.Points) != wantPoints {
		t.Fatalf("%d points, want %d", len(series.Points), wantPoints)
	}
	for _, p := range series.Points {
		if p.NDCG < 0 || p.NDCG > 1+1e-9 {
			t.Errorf("%s@%v: nDCG %v", p.Method, p.Ratio, p.NDCG)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "ours-acc") {
		t.Error("printout missing ours column")
	}
}

func TestRunFig6Fast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFig6(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("%d series", len(res.Series))
	}
	if len(res.Series[0].Points) != len(Fig6Allocations) {
		t.Fatalf("%d allocations", len(res.Series[0].Points))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "kgen:kspe") {
		t.Error("printout missing header")
	}
}

func TestRunFig7Fast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFig7(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	series := res.Series[0]
	for _, ratio := range res.Ratios {
		if series.Point("vanilla", ratio) == nil || series.Point("ours", ratio) == nil {
			t.Fatalf("missing points at ratio %v", ratio)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "vanilla-acc") {
		t.Error("printout missing header")
	}
}

func TestRunFig4Fast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFig4(FastSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HPSweep) < 2 || len(res.SizeSweep) < 2 {
		t.Fatalf("sweeps too short: %d/%d", len(res.HPSweep), len(res.SizeSweep))
	}
	// Config counts must grow along both sweeps.
	for i := 1; i < len(res.HPSweep); i++ {
		if res.HPSweep[i].Configs <= res.HPSweep[i-1].Configs {
			t.Error("HP sweep config count not increasing")
		}
	}
	for i := 1; i < len(res.SizeSweep); i++ {
		if res.SizeSweep[i].Configs <= res.SizeSweep[i-1].Configs {
			t.Error("size sweep config count not increasing")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "#HPs") {
		t.Error("printout missing header")
	}
}

func TestRunFig3Exact(t *testing.T) {
	res := RunFig3()
	if len(res.Gammas) != 101 {
		t.Fatalf("%d points", len(res.Gammas))
	}
	if d := res.Betas[0] - 10; d > 1e-9 || d < -1e-9 {
		t.Fatalf("β(0) = %v", res.Betas[0])
	}
	if d := res.Betas[100]; d > 1e-9 || d < -1e-9 {
		t.Fatalf("β(100) = %v", res.Betas[100])
	}
	mid := res.Betas[50]
	if mid < 4.99 || mid > 5.01 {
		t.Fatalf("β(50) = %v", mid)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "γ_min") {
		t.Error("printout missing bounds")
	}
}

func TestRunProp1Shape(t *testing.T) {
	res := RunProp1()
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	first := res.Points[0]
	if first.Eps != 0 {
		t.Fatal("sweep must start at ε=0")
	}
	if diff := first.Grouped - first.Random; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ε=0 grouped %v != random %v", first.Grouped, first.Random)
	}
	// Monotone improvement with ε.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Grouped < res.Points[i-1].Grouped-1e-9 {
			t.Fatalf("grouped mass decreased at ε=%v", res.Points[i].Eps)
		}
	}
	last := res.Points[len(res.Points)-1]
	if last.Grouped < 0.999 {
		t.Fatalf("ε=p mass %v, want ~1", last.Grouped)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "grouped") {
		t.Error("printout missing column")
	}
}

func TestRunTable2(t *testing.T) {
	res := RunTable2(Settings{Scale: 1})
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	types := map[string]int{}
	for _, row := range res.Rows {
		types[row.Type]++
		if row.PaperTrain == 0 {
			t.Errorf("%s: missing paper size", row.Name)
		}
		if row.Train <= 0 || row.Features <= 0 {
			t.Errorf("%s: bad sizes %+v", row.Name, row)
		}
	}
	if types["binary"] != 8 || types["multi-category"] != 2 || types["regression"] != 2 {
		t.Fatalf("type mix %v", types)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "kc-house") {
		t.Error("printout missing kc-house")
	}
}

func TestTable4Significance(t *testing.T) {
	// Build a synthetic Table IV where SHA+ always wins and BOHB+ always
	// loses; the paired tests must reflect that without any training.
	res := &Table4Result{}
	for i := 0; i < 8; i++ {
		row := Table4Row{Dataset: "d", Metric: "Acc"}
		base := 0.7 + float64(i)*0.01
		row.Cells = []Table4Cell{
			{Method: "SHA", TestMean: base},
			{Method: "SHA+", TestMean: base + 0.02},
			{Method: "HB", TestMean: base},
			{Method: "HB+", TestMean: base},
			{Method: "BOHB", TestMean: base},
			{Method: "BOHB+", TestMean: base - 0.02},
		}
		res.Rows = append(res.Rows, row)
	}
	rows := res.Significance()
	if len(rows) != 3 {
		t.Fatalf("%d significance rows", len(rows))
	}
	shaRow := rows[0]
	if shaRow.Wins != 8 || shaRow.Losses != 0 {
		t.Fatalf("SHA+ wins/losses %d/%d", shaRow.Wins, shaRow.Losses)
	}
	if shaRow.SignP > 0.05 {
		t.Fatalf("SHA+ sign p = %v", shaRow.SignP)
	}
	hbRow := rows[1]
	if hbRow.Wins != 0 || hbRow.Losses != 0 || hbRow.SignP != 1 {
		t.Fatalf("tied HB row %+v", hbRow)
	}
	bohbRow := rows[2]
	if bohbRow.Losses != 8 || bohbRow.SignP > 0.05 {
		t.Fatalf("BOHB row %+v", bohbRow)
	}
	var buf bytes.Buffer
	res.PrintSignificance(&buf)
	if !strings.Contains(buf.String(), "wilcoxon-p") {
		t.Error("significance printout missing header")
	}
}

func TestFormattingHelpers(t *testing.T) {
	if pct(0.8571) != "85.71" {
		t.Errorf("pct = %q", pct(0.8571))
	}
	if checkmark(true) != "+" || checkmark(false) != "-" {
		t.Error("checkmark symbols wrong")
	}
	// logf must be a no-op without a sink and reach the sink with one.
	s := Settings{}
	s.logf("ignored %d", 1)
	var got string
	s.Logf = func(format string, args ...any) { got = format }
	s.logf("hello %d", 2)
	if got != "hello %d" {
		t.Errorf("logf did not reach sink: %q", got)
	}
}

func TestSettingsDefaults(t *testing.T) {
	s := Settings{}.WithDefaults()
	if s.Scale <= 0 || s.Seeds <= 0 || s.MaxConfigs != 162 || s.NumHPs != 4 || s.MaxIter <= 0 {
		t.Fatalf("bad defaults: %+v", s)
	}
	fast := FastSettings()
	if fast.Seeds != 1 {
		t.Fatalf("fast seeds %d", fast.Seeds)
	}
}

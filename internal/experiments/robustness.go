package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/stats"
)

// The robustness experiment stresses the paper's stability claim: labels
// are corrupted at increasing rates before optimization, and SHA vs SHA+
// final test quality (measured on clean test data) is compared. The
// enhanced evaluation, which leans on the data's cluster structure rather
// than labels alone, should degrade more gracefully.

// RobustnessPoint is one corruption level's summary.
type RobustnessPoint struct {
	NoiseRate float64
	TestSHA   float64
	StdSHA    float64
	TestSHAp  float64
	StdSHAp   float64
}

// RobustnessResult holds the sweep for one dataset.
type RobustnessResult struct {
	Dataset string
	Points  []RobustnessPoint
}

// RobustnessRates are the label-corruption rates swept.
var RobustnessRates = []float64{0, 0.1, 0.2, 0.3}

// RunRobustness sweeps label corruption on the first configured dataset
// (default australian).
func RunRobustness(s Settings) (*RobustnessResult, error) {
	s = s.WithDefaults()
	name := "australian"
	if len(s.Datasets) > 0 {
		name = s.Datasets[0]
	}
	space, err := search.TableIIISpace(s.NumHPs)
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{Dataset: name}
	for _, rate := range RobustnessRates {
		var sha, shap []float64
		for seed := 0; seed < s.Seeds; seed++ {
			train, test, err := s.loadDataset(name, uint64(seed)+1)
			if err != nil {
				return nil, err
			}
			noisy := train.CorruptLabels(rng.New(uint64(seed)*31+uint64(rate*100)), rate)
			for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
				out, err := core.Run(noisy, test, core.Options{
					Method:     core.SHA,
					Variant:    variant,
					Space:      space,
					Base:       s.baseConfig(),
					MaxConfigs: s.MaxConfigs,
					Seed:       uint64(seed)*71 + uint64(rate*1000),
				})
				if err != nil {
					return nil, fmt.Errorf("robustness %s rate %v: %w", name, rate, err)
				}
				if variant == core.Vanilla {
					sha = append(sha, out.TestScore)
				} else {
					shap = append(shap, out.TestScore)
				}
			}
		}
		p := RobustnessPoint{NoiseRate: rate}
		p.TestSHA, p.StdSHA = stats.MeanStd(sha)
		p.TestSHAp, p.StdSHAp = stats.MeanStd(shap)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Print renders the corruption sweep.
func (r *RobustnessResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Robustness to label corruption on %s (clean test set)\n", r.Dataset)
	fmt.Fprintf(w, "  %-8s %16s %16s\n", "noise", "SHA testAcc(%)", "SHA+ testAcc(%)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-8.2f %8s±%-7s %8s±%-7s\n",
			p.NoiseRate, pct(p.TestSHA), pct(p.StdSHA), pct(p.TestSHAp), pct(p.StdSHAp))
	}
}

package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/stats"
)

// Figure 6 sweeps the allocation of the 5 cross-validation folds between
// general and special folds, from all-general (5:0) to all-special (0:5),
// holding grouping and the metric fixed.

// Fig6Allocations are the k_gen:k_spe mixes swept in Figure 6.
var Fig6Allocations = [][2]int{{5, 0}, {4, 1}, {3, 2}, {2, 3}, {1, 4}, {0, 5}}

// Fig6Point is one allocation's summary on one dataset.
type Fig6Point struct {
	KGen, KSpe int
	TestAcc    float64
	TestStd    float64
	NDCG       float64
}

// Fig6Series holds one dataset's sweep.
type Fig6Series struct {
	Dataset string
	Points  []Fig6Point
}

// Fig6Result reproduces Figure 6.
type Fig6Result struct {
	Series []Fig6Series
	// Ratio is the subset size used (the paper's small-subset regime).
	Ratio float64
}

// RunFig6 runs the fold-allocation sweep at a 25% subset ratio, where the
// mix of fold types matters most.
func RunFig6(s Settings) (*Fig6Result, error) {
	s = s.WithDefaults()
	space, err := cvSpace()
	if err != nil {
		return nil, err
	}
	names := s.Datasets
	if names == nil {
		names = CVDatasets
	}
	const ratio = 0.25
	res := &Fig6Result{Ratio: ratio}
	for _, name := range names {
		s.logf("fig6: %s", name)
		series := Fig6Series{Dataset: name}
		type agg struct{ acc, ndcg []float64 }
		sums := make([]agg, len(Fig6Allocations))
		for seed := 0; seed < s.Seeds; seed++ {
			truth, err := s.buildTruth(name, uint64(seed)+1, space)
			if err != nil {
				return nil, err
			}
			// Special folds focus one group each; v = 5 lets the 0:5 and
			// 1:4 allocations use distinct focus groups.
			groups, err := s.buildCVGroups(truth.train, 5, uint64(seed)+1)
			if err != nil {
				return nil, err
			}
			for ai, alloc := range Fig6Allocations {
				m := cvMethod{
					name:        fmt.Sprintf("%d:%d", alloc[0], alloc[1]),
					folds:       cv.GroupFolds{KGen: alloc[0], KSpe: alloc[1]},
					scorer:      scoring.UCBScorer{},
					needsGroups: true,
				}
				out, err := s.runCVMethod(truth, m, groups, ratio, alloc[0]+alloc[1], uint64(seed)*43+uint64(ai))
				if err != nil {
					return nil, err
				}
				sums[ai].acc = append(sums[ai].acc, out.TestAcc)
				sums[ai].ndcg = append(sums[ai].ndcg, out.NDCG)
			}
		}
		for ai, alloc := range Fig6Allocations {
			p := Fig6Point{KGen: alloc[0], KSpe: alloc[1]}
			p.TestAcc, p.TestStd = stats.MeanStd(sums[ai].acc)
			p.NDCG = stats.Mean(sums[ai].ndcg)
			series.Points = append(series.Points, p)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Print renders the Figure 6 sweep.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: test accuracy (%%) and nDCG by fold allocation (subset %.0f%%)\n", r.Ratio*100)
	for _, series := range r.Series {
		fmt.Fprintf(w, "\n%s\n", series.Dataset)
		fmt.Fprintf(w, "  %-10s %14s %8s\n", "kgen:kspe", "testAcc(%)", "nDCG")
		for _, p := range series.Points {
			fmt.Fprintf(w, "  %d:%-8d %7s±%-6s %8.3f\n", p.KGen, p.KSpe, pct(p.TestAcc), pct(p.TestStd), p.NDCG)
		}
	}
}

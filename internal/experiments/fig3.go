package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/scoring"
)

// Fig3Result reproduces Figure 3: the β–γ curve for β_max = 10.
type Fig3Result struct {
	BetaMax float64
	Gammas  []float64
	Betas   []float64
}

// RunFig3 samples β over γ ∈ [0, 100]. It is a pure formula, so the
// reproduction is exact.
func RunFig3() *Fig3Result {
	const betaMax = 10.0
	gammas, betas := scoring.BetaSeries(betaMax, 101)
	return &Fig3Result{BetaMax: betaMax, Gammas: gammas, Betas: betas}
}

// Print renders the series with an ASCII sketch of the curve shape.
func (r *Fig3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: β–γ line (β_max = %.0f)\n", r.BetaMax)
	gMin, gMax := scoring.GammaBounds(r.BetaMax)
	fmt.Fprintf(w, "γ_min = %.3f, γ_max = %.3f\n\n", gMin, gMax)
	fmt.Fprintf(w, "  %-8s %-8s\n", "gamma", "beta")
	for i := 0; i < len(r.Gammas); i += 5 {
		bar := int(r.Betas[i] / r.BetaMax * 40)
		fmt.Fprintf(w, "  %-8.1f %-8.3f %s\n", r.Gammas[i], r.Betas[i], repeat('#', bar))
	}
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/stats"
)

// Fig5Ratios are the subset sizes swept in Figure 5.
var Fig5Ratios = []float64{0.1, 0.25, 0.5, 0.75, 1.0}

// Fig5Point is one (method, ratio) measurement averaged over seeds.
type Fig5Point struct {
	Method  string
	Ratio   float64
	TestAcc float64
	TestStd float64
	NDCG    float64
	NDCGStd float64
}

// Fig5Series holds the full sweep for one dataset.
type Fig5Series struct {
	Dataset string
	Points  []Fig5Point
}

// Point returns the entry for (method, ratio), or nil.
func (s *Fig5Series) Point(method string, ratio float64) *Fig5Point {
	for i := range s.Points {
		if s.Points[i].Method == method && s.Points[i].Ratio == ratio {
			return &s.Points[i]
		}
	}
	return nil
}

// Fig5Result reproduces Figure 5: test accuracy and nDCG of random,
// stratified and our cross-validation across subset sizes.
type Fig5Result struct {
	Series []Fig5Series
}

// fig5Methods returns the three compared CV strategies. "ours" combines
// group folds (3 general + 2 special) with the UCB-β metric, exactly the
// §IV-C configuration.
func fig5Methods() []cvMethod {
	return []cvMethod{
		{name: "random", folds: cv.RandomKFold{}, scorer: scoring.MeanScorer{}},
		{name: "stratified", folds: cv.StratifiedKFold{}, scorer: scoring.MeanScorer{}},
		{name: "ours", folds: cv.GroupFolds{KGen: 3, KSpe: 2}, scorer: scoring.UCBScorer{}, needsGroups: true},
	}
}

// RunFig5 runs the Figure 5 sweep.
func RunFig5(s Settings) (*Fig5Result, error) {
	s = s.WithDefaults()
	space, err := cvSpace()
	if err != nil {
		return nil, err
	}
	names := s.Datasets
	if names == nil {
		names = CVDatasets
	}
	res := &Fig5Result{}
	for _, name := range names {
		s.logf("fig5: %s", name)
		series := Fig5Series{Dataset: name}
		type agg struct{ acc, ndcg []float64 }
		sums := map[string]map[float64]*agg{}
		for _, m := range fig5Methods() {
			sums[m.name] = map[float64]*agg{}
			for _, ratio := range Fig5Ratios {
				sums[m.name][ratio] = &agg{}
			}
		}
		for seed := 0; seed < s.Seeds; seed++ {
			truth, err := s.buildTruth(name, uint64(seed)+1, space)
			if err != nil {
				return nil, err
			}
			groups, err := s.buildCVGroups(truth.train, 2, uint64(seed)+1)
			if err != nil {
				return nil, err
			}
			for _, m := range fig5Methods() {
				for _, ratio := range Fig5Ratios {
					out, err := s.runCVMethod(truth, m, groups, ratio, 5, uint64(seed)*37+uint64(ratio*100))
					if err != nil {
						return nil, err
					}
					a := sums[m.name][ratio]
					a.acc = append(a.acc, out.TestAcc)
					a.ndcg = append(a.ndcg, out.NDCG)
				}
			}
		}
		for _, m := range fig5Methods() {
			for _, ratio := range Fig5Ratios {
				a := sums[m.name][ratio]
				p := Fig5Point{Method: m.name, Ratio: ratio}
				p.TestAcc, p.TestStd = stats.MeanStd(a.acc)
				p.NDCG, p.NDCGStd = stats.MeanStd(a.ndcg)
				series.Points = append(series.Points, p)
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Print renders the Figure 5 series as rows of (ratio, per-method accuracy
// and nDCG).
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: test accuracy (%) and nDCG under different subset sizes")
	for _, series := range r.Series {
		fmt.Fprintf(w, "\n%s\n", series.Dataset)
		fmt.Fprintf(w, "  %-6s", "ratio")
		for _, m := range fig5Methods() {
			fmt.Fprintf(w, " %12s %12s", m.name+"-acc", m.name+"-ndcg")
		}
		fmt.Fprintln(w)
		for _, ratio := range Fig5Ratios {
			fmt.Fprintf(w, "  %-6.0f", ratio*100)
			for _, m := range fig5Methods() {
				p := series.Point(m.name, ratio)
				if p == nil {
					fmt.Fprintf(w, " %12s %12s", "-", "-")
					continue
				}
				fmt.Fprintf(w, " %12s %12.3f", pct(p.TestAcc), p.NDCG)
			}
			fmt.Fprintln(w)
		}
	}
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBaselinesFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunBaselines(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "australian" {
		t.Fatalf("dataset %q", res.Dataset)
	}
	for _, method := range []string{"random", "smac", "tpe", "grid", "SHA", "SHA+"} {
		c := res.Cell(method)
		if c == nil {
			t.Fatalf("missing method %s", method)
		}
		if c.TestMean <= 0 || c.TestMean > 1 {
			t.Errorf("%s: test %v", method, c.TestMean)
		}
		if c.TimeMean <= 0 {
			t.Errorf("%s: no time", method)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "smac") {
		t.Error("printout missing smac")
	}
}

func TestRunAblationsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunAblations(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	for _, knob := range []string{"v", "bias", "alpha", "rgroup"} {
		pts := res.Sweep(knob)
		if len(pts) < 3 {
			t.Fatalf("%s sweep has %d points", knob, len(pts))
		}
		for _, p := range pts {
			if p.TestAcc <= 0 || p.NDCG <= 0 {
				t.Errorf("%s=%v: acc %v ndcg %v", knob, p.Value, p.TestAcc, p.NDCG)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "rgroup sweep") {
		t.Error("printout missing rgroup sweep")
	}
}

func TestRunExtendedFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunExtended(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	for _, method := range []string{"asha", "pasha", "dehb"} {
		for _, variant := range []string{"vanilla", "enhanced"} {
			c := row.Cell(method, variant)
			if c == nil {
				t.Fatalf("missing %s/%s", method, variant)
			}
			if c.TestMean <= 0 {
				t.Errorf("%s/%s: test %v", method, variant, c.TestMean)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "pasha") {
		t.Error("printout missing pasha")
	}
}

func TestRunRobustnessFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunRobustness(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(RobustnessRates) {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.TestSHA <= 0 || p.TestSHAp <= 0 {
			t.Errorf("rate %v: scores %v / %v", p.NoiseRate, p.TestSHA, p.TestSHAp)
		}
	}
	// Heavy corruption should not beat the clean run for either variant
	// (allowing small-sample noise).
	clean, dirty := res.Points[0], res.Points[len(res.Points)-1]
	if dirty.TestSHA > clean.TestSHA+0.15 {
		t.Errorf("SHA improved under corruption: %v -> %v", clean.TestSHA, dirty.TestSHA)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "label corruption") {
		t.Error("printout missing header")
	}
}

func TestRunStabilityFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastWith("australian")
	s.Seeds = 3
	res, err := RunStability(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Runs != 3 {
			t.Errorf("%s: runs %d", c.Variant, c.Runs)
		}
		if c.DistinctConfigs < 1 || c.DistinctConfigs > c.Runs {
			t.Errorf("%s: distinct winners %d of %d runs", c.Variant, c.DistinctConfigs, c.Runs)
		}
		if c.TestMean <= 0 {
			t.Errorf("%s: test %v", c.Variant, c.TestMean)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "distinct winners") {
		t.Error("printout missing header")
	}
}

func TestRunAnytimeFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunAnytime(fastWith("australian"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.AUC <= 0 {
			t.Errorf("%s: AUC %v", c.Variant, c.AUC)
		}
		if c.Sparkline == "" {
			t.Errorf("%s: empty sparkline", c.Variant)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "enhanced") {
		t.Error("printout missing enhanced row")
	}
}

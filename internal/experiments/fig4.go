package experiments

import (
	"fmt"
	"io"
	"time"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/stats"
)

// Figure 4 studies how SHA and SHA+ behave as the configuration count
// grows, from two directions: (a) adding Table III hyperparameters one at
// a time (1 → 8), and (b) growing the model-complexity space (widths ×
// depths). Both run on the australian dataset, as in the paper.

// Fig4Point is one sweep position's summary.
type Fig4Point struct {
	// X is the sweep coordinate: the number of HPs, or the depth.
	X int
	// Configs is the resulting space size.
	Configs  int
	TestSHA  float64
	TestSHAp float64
	TimeSHA  time.Duration
	TimeSHAp time.Duration
}

// Fig4Result reproduces Figure 4.
type Fig4Result struct {
	// HPSweep grows the hyperparameter count.
	HPSweep []Fig4Point
	// SizeSweep grows the model depth over widths {10..50}.
	SizeSweep []Fig4Point
}

// RunFig4 runs both sweeps.
func RunFig4(s Settings) (*Fig4Result, error) {
	s = s.WithDefaults()
	res := &Fig4Result{}
	maxHPs := 8
	if s.MaxConfigs < 54 {
		// Fast settings: cap the sweep so the space stays evaluable.
		maxHPs = 4
	}
	for hps := 1; hps <= maxHPs; hps++ {
		s.logf("fig4: HP sweep %d/%d", hps, maxHPs)
		space, err := search.TableIIISpace(hps)
		if err != nil {
			return nil, err
		}
		p, err := s.fig4Point(space, hps)
		if err != nil {
			return nil, err
		}
		res.HPSweep = append(res.HPSweep, p)
	}
	widths := []int{10, 20, 30, 40, 50}
	maxDepth := 3
	if s.MaxConfigs < 54 {
		widths = []int{10, 20}
		maxDepth = 2
	}
	for depth := 1; depth <= maxDepth; depth++ {
		space, err := search.ModelSizeSpace(widths, depth)
		if err != nil {
			return nil, err
		}
		p, err := s.fig4Point(space, depth)
		if err != nil {
			return nil, err
		}
		res.SizeSweep = append(res.SizeSweep, p)
	}
	return res, nil
}

// fig4Point runs SHA and SHA+ on the australian dataset over the given
// space, averaged across seeds.
func (s Settings) fig4Point(space *search.Space, x int) (Fig4Point, error) {
	p := Fig4Point{X: x, Configs: space.Size()}
	var accSHA, accSHAp, timeSHA, timeSHAp []float64
	maxConfigs := s.MaxConfigs
	if space.Size() < maxConfigs {
		maxConfigs = space.Size()
	}
	for seed := 0; seed < s.Seeds; seed++ {
		train, test, err := s.loadDataset("australian", uint64(seed)+1)
		if err != nil {
			return p, err
		}
		for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
			out, err := core.Run(train, test, core.Options{
				Method:     core.SHA,
				Variant:    variant,
				Space:      space,
				Base:       s.baseConfig(),
				MaxConfigs: maxConfigs,
				Seed:       uint64(seed)*101 + uint64(x),
			})
			if err != nil {
				return p, fmt.Errorf("fig4 x=%d seed=%d %v: %w", x, seed, variant, err)
			}
			if variant == core.Vanilla {
				accSHA = append(accSHA, out.TestScore)
				timeSHA = append(timeSHA, out.TotalTime.Seconds())
			} else {
				accSHAp = append(accSHAp, out.TestScore)
				timeSHAp = append(timeSHAp, out.TotalTime.Seconds())
			}
		}
	}
	p.TestSHA = stats.Mean(accSHA)
	p.TestSHAp = stats.Mean(accSHAp)
	p.TimeSHA = time.Duration(stats.Mean(timeSHA) * float64(time.Second))
	p.TimeSHAp = time.Duration(stats.Mean(timeSHAp) * float64(time.Second))
	return p, nil
}

// Print renders both sweeps.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: performance changes as HPs and model size increase (australian)")
	fmt.Fprintln(w, "\n(a) number of hyperparameters")
	fmt.Fprintf(w, "  %-5s %-8s %10s %10s %10s %10s\n", "#HPs", "configs", "SHA-acc", "SHA+-acc", "SHA-t(s)", "SHA+-t(s)")
	for _, p := range r.HPSweep {
		fmt.Fprintf(w, "  %-5d %-8d %10s %10s %10.2f %10.2f\n",
			p.X, p.Configs, pct(p.TestSHA), pct(p.TestSHAp),
			p.TimeSHA.Seconds(), p.TimeSHAp.Seconds())
	}
	fmt.Fprintln(w, "\n(b) model complexity (depth over widths)")
	fmt.Fprintf(w, "  %-5s %-8s %10s %10s %10s %10s\n", "depth", "configs", "SHA-acc", "SHA+-acc", "SHA-t(s)", "SHA+-t(s)")
	for _, p := range r.SizeSweep {
		fmt.Fprintf(w, "  %-5d %-8d %10s %10s %10.2f %10.2f\n",
			p.X, p.Configs, pct(p.TestSHA), pct(p.TestSHAp),
			p.TimeSHA.Seconds(), p.TimeSHAp.Seconds())
	}
}

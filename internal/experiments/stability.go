package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/stats"
)

// The stability experiment quantifies the paper's "Unstable Results"
// discussion head-on: the same optimization is repeated across seeds and
// the spread of outcomes is compared between vanilla and enhanced
// components — standard deviation of the final test score and the number
// of distinct configurations selected. A stable method selects the same
// (or an equivalent) configuration regardless of sampling randomness.

// StabilityCell summarizes one variant.
type StabilityCell struct {
	Variant string
	// TestMean and TestStd summarize final test scores across seeds.
	TestMean, TestStd float64
	// DistinctConfigs is the number of different winning configurations.
	DistinctConfigs int
	// Runs is the number of repetitions.
	Runs int
}

// StabilityResult holds the comparison for one dataset.
type StabilityResult struct {
	Dataset string
	Cells   []StabilityCell
}

// RunStability repeats SHA vs SHA+ across seeds on the first configured
// dataset (default australian). Settings.Seeds controls the repetition
// count; the paper uses 5, and more repetitions sharpen the comparison.
func RunStability(s Settings) (*StabilityResult, error) {
	s = s.WithDefaults()
	name := "australian"
	if len(s.Datasets) > 0 {
		name = s.Datasets[0]
	}
	space, err := search.TableIIISpace(s.NumHPs)
	if err != nil {
		return nil, err
	}
	res := &StabilityResult{Dataset: name}
	for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
		var tests []float64
		chosen := map[string]bool{}
		for seed := 0; seed < s.Seeds; seed++ {
			// Same data split every time: only the optimizer's own
			// randomness varies, which is exactly the instability §II-C
			// describes.
			train, test, err := s.loadDataset(name, 1)
			if err != nil {
				return nil, err
			}
			out, err := core.Run(train, test, core.Options{
				Method:     core.SHA,
				Variant:    variant,
				Space:      space,
				Base:       s.baseConfig(),
				MaxConfigs: s.MaxConfigs,
				Seed:       uint64(seed)*613 + 11,
			})
			if err != nil {
				return nil, fmt.Errorf("stability %s/%v: %w", name, variant, err)
			}
			tests = append(tests, out.TestScore)
			chosen[out.Search.Best.ID()] = true
		}
		cell := StabilityCell{Variant: variant.String(), DistinctConfigs: len(chosen), Runs: s.Seeds}
		cell.TestMean, cell.TestStd = stats.MeanStd(tests)
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Print renders the stability comparison.
func (r *StabilityResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Stability across optimizer seeds on %s (fixed data)\n", r.Dataset)
	fmt.Fprintf(w, "  %-10s %16s %18s\n", "variant", "testAcc(%)", "distinct winners")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  %-10s %8s±%-7s %10d/%d\n",
			c.Variant, pct(c.TestMean), pct(c.TestStd), c.DistinctConfigs, c.Runs)
	}
}

package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/metrics"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/search"
)

// The §IV-C cross-validation experiments share one protocol: evaluate all
// 18 configurations (hidden sizes × activations) with k-fold CV on a
// subset of the training data, recommend the top-scoring configuration,
// then judge the recommendation by (a) the true test quality of the
// recommended configuration and (b) the nDCG of the predicted ranking
// against the true ranking (each configuration's full-data test quality).

// CVDatasets are the six datasets of the paper's Figure 5.
var CVDatasets = []string{"australian", "splice", "a9a", "gisette", "satimage", "usps"}

// cvMethod is one fold-construction + scoring strategy under comparison.
type cvMethod struct {
	name   string
	folds  cv.Builder
	scorer scoring.Scorer
	// needsGroups marks builders that require §III-A groups.
	needsGroups bool
}

// cvTruth caches the expensive ground truth for one (dataset, seed): each
// configuration's test quality after training on the full training set.
type cvTruth struct {
	train, test *dataset.Dataset
	configs     []search.Config
	testScores  []float64
}

// truthCache memoizes ground truths across the CV experiments: Table V,
// Figure 5 and Figure 7 share the same (dataset, seed, settings) truths,
// and recomputing 18 full-data trainings three times would dominate the
// harness runtime. The truths are read-only after construction, so sharing
// is safe.
var truthCache sync.Map // truthKey -> *cvTruth

type truthKey struct {
	name    string
	seed    uint64
	scale   float64
	maxIter int
	spaceID string
}

// buildTruth trains every configuration on the full training set once per
// (dataset, seed, settings), memoized across experiments.
func (s Settings) buildTruth(name string, seed uint64, space *search.Space) (*cvTruth, error) {
	key := truthKey{name: name, seed: seed, scale: s.Scale, maxIter: s.MaxIter, spaceID: fmt.Sprintf("%d", space.Size())}
	if cached, ok := truthCache.Load(key); ok {
		return cached.(*cvTruth), nil
	}
	truth, err := s.buildTruthUncached(name, seed, space)
	if err != nil {
		return nil, err
	}
	truthCache.Store(key, truth)
	return truth, nil
}

func (s Settings) buildTruthUncached(name string, seed uint64, space *search.Space) (*cvTruth, error) {
	train, test, err := s.loadDataset(name, seed)
	if err != nil {
		return nil, err
	}
	configs := space.Enumerate()
	truth := &cvTruth{train: train, test: test, configs: configs}
	base := s.baseConfig()
	truth.testScores = make([]float64, len(configs))
	err = forEachParallel(len(configs), func(i int) error {
		nnCfg, err := search.ToNNConfig(configs[i], base)
		if err != nil {
			return err
		}
		nnCfg.Seed = seed*1_000_003 + uint64(i)
		model, err := nn.Fit(train, nnCfg)
		if err != nil {
			return fmt.Errorf("truth %s config %d: %w", name, i, err)
		}
		truth.testScores[i] = model.Score(test)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return truth, nil
}

// forEachParallel runs f(0..n-1) on a small worker pool. Each index is
// independent and deterministic, so parallelism does not change results.
func forEachParallel(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := f(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// bestTruth returns the highest achievable test score (for reporting).
func (t *cvTruth) bestTruth() float64 {
	best := t.testScores[0]
	for _, v := range t.testScores[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

// cvOutcome is one method × subset-ratio evaluation.
type cvOutcome struct {
	// TestAcc is the true test quality of the recommended configuration.
	TestAcc float64
	// NDCG measures how well the CV scores rank all configurations.
	NDCG float64
}

// runCVMethod scores every configuration by cross-validation at the given
// subset ratio and judges the ranking against the truth.
func (s Settings) runCVMethod(truth *cvTruth, m cvMethod, groups *grouping.Groups, ratio float64, k int, seed uint64) (cvOutcome, error) {
	n := truth.train.Len()
	budget := int(float64(n) * ratio)
	if budget < 2*k {
		budget = 2 * k
	}
	if budget > n {
		budget = n
	}
	gamma := scoring.Gamma(budget, n)
	base := s.baseConfig()
	r := rng.New(seed ^ 0xcfe0)
	predScores := make([]float64, len(truth.configs))
	var g *grouping.Groups
	if m.needsGroups {
		g = groups
	}
	ev := &hpo.CVEvaluator{Train: truth.train, Base: base, Folds: m.folds, K: k, Groups: g}
	err := forEachParallel(len(truth.configs), func(i int) error {
		foldScores, err := ev.Evaluate(truth.configs[i], budget, r.Split(uint64(i)+1))
		if err != nil {
			return fmt.Errorf("cv %s config %d: %w", m.name, i, err)
		}
		predScores[i] = m.scorer.Score(foldScores, gamma)
		return nil
	})
	if err != nil {
		return cvOutcome{}, err
	}
	best := 0
	for i, v := range predScores {
		if v > predScores[best] {
			best = i
		}
	}
	return cvOutcome{
		TestAcc: truth.testScores[best],
		NDCG:    metrics.NDCG(predScores, truth.testScores),
	}, nil
}

// cvSpace is the §IV-C configuration space: hidden sizes × activations
// (6·3 = 18 configurations).
func cvSpace() (*search.Space, error) { return search.TableIIISpace(2) }

// buildCVGroups constructs the §III-A groups used by the "ours" methods.
func (s Settings) buildCVGroups(train *dataset.Dataset, v int, seed uint64) (*grouping.Groups, error) {
	return grouping.Build(train, grouping.Options{V: v}, rng.New(seed^0x9109))
}

package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/stats"
)

// Figure 7 isolates the metric design (§IV-D, "Variance and Sampling in
// Metric Design"): grouping and folds are held fixed (3 general + 2
// special) and only the scorer changes — the vanilla mean vs the paper's
// UCB-β (Eq. 3) — across subset sizes.

// Fig7Point is one (metric, ratio) summary.
type Fig7Point struct {
	Metric  string
	Ratio   float64
	TestAcc float64
	TestStd float64
	NDCG    float64
}

// Fig7Series holds one dataset's sweep.
type Fig7Series struct {
	Dataset string
	Points  []Fig7Point
}

// Point returns the entry for (metric, ratio), or nil.
func (s *Fig7Series) Point(metric string, ratio float64) *Fig7Point {
	for i := range s.Points {
		if s.Points[i].Metric == metric && s.Points[i].Ratio == ratio {
			return &s.Points[i]
		}
	}
	return nil
}

// Fig7Result reproduces Figure 7.
type Fig7Result struct {
	Series []Fig7Series
	Ratios []float64
}

func fig7Metrics() []cvMethod {
	folds := cv.GroupFolds{KGen: 3, KSpe: 2}
	return []cvMethod{
		{name: "vanilla", folds: folds, scorer: scoring.MeanScorer{}, needsGroups: true},
		{name: "ours", folds: folds, scorer: scoring.UCBScorer{}, needsGroups: true},
	}
}

// RunFig7 runs the metric ablation across subset sizes.
func RunFig7(s Settings) (*Fig7Result, error) {
	s = s.WithDefaults()
	space, err := cvSpace()
	if err != nil {
		return nil, err
	}
	names := s.Datasets
	if names == nil {
		names = CVDatasets
	}
	ratios := Fig5Ratios
	res := &Fig7Result{Ratios: ratios}
	for _, name := range names {
		s.logf("fig7: %s", name)
		series := Fig7Series{Dataset: name}
		type agg struct{ acc, ndcg []float64 }
		sums := map[string]map[float64]*agg{}
		for _, m := range fig7Metrics() {
			sums[m.name] = map[float64]*agg{}
			for _, ratio := range ratios {
				sums[m.name][ratio] = &agg{}
			}
		}
		for seed := 0; seed < s.Seeds; seed++ {
			truth, err := s.buildTruth(name, uint64(seed)+1, space)
			if err != nil {
				return nil, err
			}
			groups, err := s.buildCVGroups(truth.train, 2, uint64(seed)+1)
			if err != nil {
				return nil, err
			}
			for _, m := range fig7Metrics() {
				for _, ratio := range ratios {
					out, err := s.runCVMethod(truth, m, groups, ratio, 5, uint64(seed)*47+uint64(ratio*100))
					if err != nil {
						return nil, err
					}
					a := sums[m.name][ratio]
					a.acc = append(a.acc, out.TestAcc)
					a.ndcg = append(a.ndcg, out.NDCG)
				}
			}
		}
		for _, m := range fig7Metrics() {
			for _, ratio := range ratios {
				a := sums[m.name][ratio]
				p := Fig7Point{Metric: m.name, Ratio: ratio}
				p.TestAcc, p.TestStd = stats.MeanStd(a.acc)
				p.NDCG = stats.Mean(a.ndcg)
				series.Points = append(series.Points, p)
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Print renders the Figure 7 series.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: test accuracy (%) and nDCG, vanilla mean vs UCB-β metric")
	for _, series := range r.Series {
		fmt.Fprintf(w, "\n%s\n", series.Dataset)
		fmt.Fprintf(w, "  %-6s %14s %8s %14s %8s\n", "ratio", "vanilla-acc", "ndcg", "ours-acc", "ndcg")
		for _, ratio := range r.Ratios {
			v := series.Point("vanilla", ratio)
			o := series.Point("ours", ratio)
			if v == nil || o == nil {
				continue
			}
			fmt.Fprintf(w, "  %-6.0f %14s %8.3f %14s %8.3f\n",
				ratio*100, pct(v.TestAcc), v.NDCG, pct(o.TestAcc), o.NDCG)
		}
	}
}

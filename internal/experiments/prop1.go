package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/stats"
)

// Prop1Point compares the probability mass that random sampling and
// two-group sampling put on representative subsets (within ±Tol of the
// ideal class balance) for one group-separation ε.
type Prop1Point struct {
	Eps     float64
	Random  float64
	Grouped float64
}

// Prop1Result reproduces the Proposition 1 analysis: group-based sampling
// becomes strictly more stable as the groups separate the classes better
// (ε → p), and coincides with random sampling at ε = 0.
type Prop1Result struct {
	N      int
	P      float64
	Tol    int
	Points []Prop1Point
}

// RunProp1 sweeps ε from 0 to p on a balanced binary problem.
func RunProp1() *Prop1Result {
	const (
		n   = 40
		p   = 0.5
		tol = 1
	)
	res := &Prop1Result{N: n, P: p, Tol: tol}
	random := stats.RepresentativeMass(n, p, 0, tol)
	for _, eps := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		res.Points = append(res.Points, Prop1Point{
			Eps:     eps,
			Random:  random,
			Grouped: stats.RepresentativeMass(n, p, eps, tol),
		})
	}
	return res
}

// Print renders the ε sweep.
func (r *Prop1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Proposition 1: probability of a representative subset (n=%d, p=%.1f, ±%d)\n",
		r.N, r.P, r.Tol)
	fmt.Fprintf(w, "  %-6s %-10s %-10s\n", "eps", "random", "grouped")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "  %-6.1f %-10.4f %-10.4f\n", pt.Eps, pt.Random, pt.Grouped)
	}
	fmt.Fprintln(w, "grouped mass grows with ε and reaches 1 at ε = p (perfect groups).")
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/stats"
)

// The extended experiment goes beyond Table IV's three bandit methods: the
// paper argues its components are applicable to *all* bandit-based methods
// (§III: "our method is applicable to all other bandit-based methods"), so
// this harness plugs them into ASHA, PASHA and DEHB as well and compares
// vanilla vs enhanced on a few datasets.

// ExtendedCell is one (method, variant) summary.
type ExtendedCell struct {
	Method   string
	Variant  string
	TestMean float64
	TestStd  float64
	TimeMean time.Duration
}

// ExtendedRow holds one dataset's cells.
type ExtendedRow struct {
	Dataset string
	Cells   []ExtendedCell
}

// Cell returns the entry for (method, variant), or nil.
func (r *ExtendedRow) Cell(method, variant string) *ExtendedCell {
	for i := range r.Cells {
		if r.Cells[i].Method == method && r.Cells[i].Variant == variant {
			return &r.Cells[i]
		}
	}
	return nil
}

// ExtendedResult is the extended-method comparison.
type ExtendedResult struct {
	Rows []ExtendedRow
}

// ExtendedDatasets are the defaults for the extended comparison.
var ExtendedDatasets = []string{"australian", "splice", "satimage"}

// RunExtended compares ASHA/PASHA/DEHB vanilla vs enhanced.
func RunExtended(s Settings) (*ExtendedResult, error) {
	s = s.WithDefaults()
	space, err := search.TableIIISpace(s.NumHPs)
	if err != nil {
		return nil, err
	}
	names := s.Datasets
	if names == nil {
		names = ExtendedDatasets
	}
	methods := []core.Method{core.ASHA, core.PASHA, core.DEHB}
	res := &ExtendedResult{}
	for _, name := range names {
		row := ExtendedRow{Dataset: name}
		for _, method := range methods {
			for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
				var tests, times []float64
				for seed := 0; seed < s.Seeds; seed++ {
					train, test, err := s.loadDataset(name, uint64(seed)+1)
					if err != nil {
						return nil, err
					}
					opts := core.Options{
						Method:     method,
						Variant:    variant,
						Space:      space,
						Base:       s.baseConfig(),
						MaxConfigs: s.MaxConfigs,
						Seed:       uint64(seed)*89 + 7,
					}
					// Keep the asynchronous methods deterministic across
					// runs of this harness (single worker) and bound the
					// sampled configuration counts to the Table IV setting.
					opts.ASHA.Workers = 2
					opts.ASHA.MaxConfigs = min(s.MaxConfigs, 27)
					opts.PASHA.MaxConfigs = min(s.MaxConfigs, 27)
					out, err := core.Run(train, test, opts)
					if err != nil {
						return nil, fmt.Errorf("extended %s/%v/%v: %w", name, method, variant, err)
					}
					tests = append(tests, out.TestScore)
					times = append(times, out.TotalTime.Seconds())
				}
				cell := ExtendedCell{Method: method.String(), Variant: variant.String()}
				cell.TestMean, cell.TestStd = stats.MeanStd(tests)
				cell.TimeMean = time.Duration(stats.Mean(times) * float64(time.Second))
				row.Cells = append(row.Cells, cell)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the comparison per dataset.
func (r *ExtendedResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Extended methods: vanilla vs enhanced components in ASHA, PASHA and DEHB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "\n%s\n", row.Dataset)
		fmt.Fprintf(w, "  %-8s %-10s %16s %10s\n", "method", "variant", "testAcc(%)", "time(s)")
		for _, c := range row.Cells {
			mark := " "
			if c.Variant == "enhanced" {
				if v := row.Cell(c.Method, "vanilla"); v != nil {
					mark = checkmark(c.TestMean >= v.TestMean)
				}
			}
			fmt.Fprintf(w, "  %-8s %-10s %8s±%-7s %10.2f %s\n",
				c.Method, c.Variant, pct(c.TestMean), pct(c.TestStd), c.TimeMean.Seconds(), mark)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

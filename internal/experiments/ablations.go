package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/stats"
)

// The ablation experiment sweeps the enhanced method's own knobs — the
// design choices DESIGN.md calls out — on the CV protocol at a small
// subset ratio (where the enhancements matter most):
//
//	v        group count (§III-A recommends 2–5)
//	bias     special-fold focus fraction (§III-B suggests 0.8)
//	alpha    variance weight α with β_max = 1/α (§III-C recommendation)
//	rgroup   balanced-clustering ratio (§IV-B uses 0.8)

// AblationPoint is one knob setting's summary.
type AblationPoint struct {
	Knob    string
	Value   float64
	TestAcc float64
	TestStd float64
	NDCG    float64
}

// AblationResult holds all sweeps for one dataset.
type AblationResult struct {
	Dataset string
	Ratio   float64
	Points  []AblationPoint
}

// Sweep returns the points of one knob, in sweep order.
func (r *AblationResult) Sweep(knob string) []AblationPoint {
	var out []AblationPoint
	for _, p := range r.Points {
		if p.Knob == knob {
			out = append(out, p)
		}
	}
	return out
}

// RunAblations sweeps the enhanced method's parameters on the first
// configured dataset (default australian) at a 25% subset ratio.
func RunAblations(s Settings) (*AblationResult, error) {
	s = s.WithDefaults()
	name := "australian"
	if len(s.Datasets) > 0 {
		name = s.Datasets[0]
	}
	space, err := cvSpace()
	if err != nil {
		return nil, err
	}
	const ratio = 0.25
	res := &AblationResult{Dataset: name, Ratio: ratio}

	type variant struct {
		knob   string
		value  float64
		v      int
		bias   float64
		alpha  float64
		rgroup float64
	}
	base := variant{v: 2, bias: 0.8, alpha: scoring.DefaultAlpha, rgroup: 0.8}
	var variants []variant
	for _, v := range []int{2, 3, 4, 5} {
		vv := base
		vv.knob, vv.value, vv.v = "v", float64(v), v
		variants = append(variants, vv)
	}
	for _, b := range []float64{0.6, 0.7, 0.8, 0.9} {
		vv := base
		vv.knob, vv.value, vv.bias = "bias", b, b
		variants = append(variants, vv)
	}
	for _, a := range []float64{0.05, 0.1, 0.2, 0.5} {
		vv := base
		vv.knob, vv.value, vv.alpha = "alpha", a, a
		variants = append(variants, vv)
	}
	for _, rg := range []float64{0.2, 0.5, 0.8} {
		vv := base
		vv.knob, vv.value, vv.rgroup = "rgroup", rg, rg
		variants = append(variants, vv)
	}

	for _, vv := range variants {
		var accs, ndcgs []float64
		for seed := 0; seed < s.Seeds; seed++ {
			truth, err := s.buildTruth(name, uint64(seed)+1, space)
			if err != nil {
				return nil, err
			}
			groups, err := grouping.Build(truth.train, grouping.Options{V: vv.v, RGroup: vv.rgroup},
				rng.New(uint64(seed)^0xab1a))
			if err != nil {
				return nil, err
			}
			// Keep 5 folds total; with v groups the special folds cover
			// min(v, 2) focus groups, matching the paper's 3+2 default.
			m := cvMethod{
				name:        fmt.Sprintf("%s=%v", vv.knob, vv.value),
				folds:       cv.GroupFolds{KGen: 3, KSpe: 2, SpecialBias: vv.bias},
				scorer:      scoring.UCBScorer{Alpha: vv.alpha, BetaMax: 1 / vv.alpha},
				needsGroups: true,
			}
			out, err := s.runCVMethod(truth, m, groups, ratio, 5, uint64(seed)*59+uint64(vv.value*100))
			if err != nil {
				return nil, err
			}
			accs = append(accs, out.TestAcc)
			ndcgs = append(ndcgs, out.NDCG)
		}
		p := AblationPoint{Knob: vv.knob, Value: vv.value}
		p.TestAcc, p.TestStd = stats.MeanStd(accs)
		p.NDCG = stats.Mean(ndcgs)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Print renders the sweeps grouped by knob.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablations on %s (subset %.0f%%): enhanced-method parameter sweeps\n", r.Dataset, r.Ratio*100)
	for _, knob := range []string{"v", "bias", "alpha", "rgroup"} {
		pts := r.Sweep(knob)
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s sweep\n", knob)
		fmt.Fprintf(w, "  %-8s %14s %8s\n", knob, "testAcc(%)", "nDCG")
		for _, p := range pts {
			fmt.Fprintf(w, "  %-8.2f %7s±%-6s %8.3f\n", p.Value, pct(p.TestAcc), pct(p.TestStd), p.NDCG)
		}
	}
}

package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/stats"
)

// Table V isolates the grouping contribution (§IV-D, "Feature and Label
// based Instance Grouping"): both methods use stratified sampling and the
// plain mean metric; "vanilla" stratifies on class labels while "ours"
// stratifies on the §III-A groups (all-general group folds). Ratios 10%
// and 100% match the paper.

// Table5Ratios are the two sampling ratios of Table V.
var Table5Ratios = []float64{0.1, 1.0}

// Table5Cell is one (method, ratio) summary.
type Table5Cell struct {
	Method  string
	Ratio   float64
	TestAcc float64
	TestStd float64
	NDCG    float64
}

// Table5Row holds one dataset's cells.
type Table5Row struct {
	Dataset string
	Cells   []Table5Cell
}

// Cell returns the entry for (method, ratio), or nil.
func (r *Table5Row) Cell(method string, ratio float64) *Table5Cell {
	for i := range r.Cells {
		if r.Cells[i].Method == method && r.Cells[i].Ratio == ratio {
			return &r.Cells[i]
		}
	}
	return nil
}

// Table5Result reproduces Table V.
type Table5Result struct {
	Rows []Table5Row
}

func table5Methods() []cvMethod {
	return []cvMethod{
		{name: "vanilla", folds: cv.StratifiedKFold{}, scorer: scoring.MeanScorer{}},
		{name: "ours", folds: cv.GroupFolds{KGen: 5, KSpe: 0}, scorer: scoring.MeanScorer{}, needsGroups: true},
	}
}

// RunTable5 runs the grouping ablation.
func RunTable5(s Settings) (*Table5Result, error) {
	s = s.WithDefaults()
	space, err := cvSpace()
	if err != nil {
		return nil, err
	}
	names := s.Datasets
	if names == nil {
		names = CVDatasets
	}
	res := &Table5Result{}
	for _, name := range names {
		s.logf("table5: %s", name)
		row := Table5Row{Dataset: name}
		type agg struct {
			acc  []float64
			ndcg []float64
		}
		sums := map[string]map[float64]*agg{}
		for _, m := range table5Methods() {
			sums[m.name] = map[float64]*agg{}
			for _, ratio := range Table5Ratios {
				sums[m.name][ratio] = &agg{}
			}
		}
		for seed := 0; seed < s.Seeds; seed++ {
			truth, err := s.buildTruth(name, uint64(seed)+1, space)
			if err != nil {
				return nil, err
			}
			groups, err := s.buildCVGroups(truth.train, 2, uint64(seed)+1)
			if err != nil {
				return nil, err
			}
			for _, m := range table5Methods() {
				for _, ratio := range Table5Ratios {
					out, err := s.runCVMethod(truth, m, groups, ratio, 5, uint64(seed)*41+uint64(ratio*100))
					if err != nil {
						return nil, err
					}
					a := sums[m.name][ratio]
					a.acc = append(a.acc, out.TestAcc)
					a.ndcg = append(a.ndcg, out.NDCG)
				}
			}
		}
		for _, m := range table5Methods() {
			for _, ratio := range Table5Ratios {
				a := sums[m.name][ratio]
				cell := Table5Cell{Method: m.name, Ratio: ratio}
				cell.TestAcc, cell.TestStd = stats.MeanStd(a.acc)
				cell.NDCG = stats.Mean(a.ndcg)
				row.Cells = append(row.Cells, cell)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the result in the layout of Table V.
func (r *Table5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table V: test accuracy (%) and nDCG, group-based vs vanilla stratified CV")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "\n%s\n", row.Dataset)
		fmt.Fprintf(w, "  %-6s %-8s %14s %8s\n", "ratio", "method", "testAcc(%)", "nDCG")
		for _, ratio := range Table5Ratios {
			for _, m := range table5Methods() {
				c := row.Cell(m.name, ratio)
				if c == nil {
					continue
				}
				fmt.Fprintf(w, "  %-6.0f %-8s %7s±%-6s %8.3f\n",
					ratio*100, c.Method, pct(c.TestAcc), pct(c.TestStd), c.NDCG)
			}
		}
	}
}

package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachParallelRunsAll(t *testing.T) {
	var count int64
	err := forEachParallel(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
}

func TestForEachParallelPropagatesError(t *testing.T) {
	want := errors.New("boom")
	err := forEachParallel(50, func(i int) error {
		if i == 17 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}

func TestForEachParallelZero(t *testing.T) {
	if err := forEachParallel(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTruthCached(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := FastSettings()
	space, err := cvSpace()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.buildTruth("australian", 99, space)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.buildTruth("australian", 99, space)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("identical settings did not hit the truth cache")
	}
	// Different seed misses the cache.
	t3, err := s.buildTruth("australian", 100, space)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Fatal("different seed hit the same cache entry")
	}
	// Different MaxIter misses the cache too.
	s2 := s
	s2.MaxIter = s.MaxIter + 1
	t4, err := s2.buildTruth("australian", 99, space)
	if err != nil {
		t.Fatal(err)
	}
	if t4 == t1 {
		t.Fatal("different MaxIter hit the same cache entry")
	}
}

func TestCVTruthBest(t *testing.T) {
	truth := &cvTruth{testScores: []float64{0.3, 0.9, 0.5}}
	if got := truth.bestTruth(); got != 0.9 {
		t.Fatalf("bestTruth = %v", got)
	}
}

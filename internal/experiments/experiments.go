// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated datasets:
//
//	Table IV  — HPO comparison (random, SHA/SHA+, HB/HB+, BOHB/BOHB+)
//	Figure 4  — accuracy & time vs number of HPs and model size
//	Table V   — grouping-only cross-validation ablation
//	Figure 5  — CV comparison (random / stratified / ours) vs subset size
//	Figure 6  — general:special fold-allocation sweep
//	Figure 7  — mean vs UCB-β metric vs subset size
//	Figure 3  — the β(γ) curve
//	Prop. 1   — sampling-stability analysis
//
// Each experiment has a typed result so tests and benchmarks can assert the
// paper's qualitative claims, and a printer that emits rows shaped like the
// paper's presentation.
package experiments

import (
	"fmt"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/nn"
)

// Settings scale the experiments. The paper's full protocol (162
// configurations, 5 seeds, 12 datasets at full size) takes hours; the
// defaults reproduce the same comparisons at laptop scale.
type Settings struct {
	// Scale multiplies dataset sizes (1.0 = the sizes in dataset.PaperSpecs,
	// which are already reduced from the paper's). 0 selects 0.35.
	Scale float64
	// Seeds is the number of repetitions with different random seeds
	// (the paper uses 5). 0 selects 3.
	Seeds int
	// MaxConfigs caps the configuration count for the HPO experiments
	// (the paper uses 162 = 4 HPs). 0 selects 162.
	MaxConfigs int
	// NumHPs is the number of Table III hyperparameters in the HPO space.
	// 0 selects 4 (the paper's §IV-B setting).
	NumHPs int
	// MaxIter caps MLP training epochs. 0 selects 20.
	MaxIter int
	// Datasets restricts which simulated datasets run (nil = experiment
	// defaults).
	Datasets []string
	// Logf, when non-nil, receives progress messages during long runs
	// (cmd/experiments wires it to stderr with -v).
	Logf func(format string, args ...any)
}

// logf emits a progress message when logging is enabled.
func (s Settings) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// WithDefaults returns the settings with zero fields resolved.
func (s Settings) WithDefaults() Settings {
	if s.Scale <= 0 {
		s.Scale = 0.35
	}
	if s.Seeds <= 0 {
		s.Seeds = 3
	}
	if s.MaxConfigs <= 0 {
		s.MaxConfigs = 162
	}
	if s.NumHPs <= 0 {
		s.NumHPs = 4
	}
	if s.MaxIter <= 0 {
		s.MaxIter = 20
	}
	return s
}

// FastSettings returns a configuration small enough for unit tests and
// benchmarks: one seed, tiny datasets, few configurations.
func FastSettings() Settings {
	return Settings{Scale: 0.12, Seeds: 1, MaxConfigs: 12, NumHPs: 2, MaxIter: 10}
}

// baseConfig returns the shared non-searched MLP settings.
func (s Settings) baseConfig() nn.Config {
	base := nn.DefaultConfig()
	base.MaxIter = s.MaxIter
	base.LearningRateInit = 0.02
	return base
}

// loadDataset synthesizes, scales and standardizes one simulated dataset.
func (s Settings) loadDataset(name string, seed uint64) (train, test *dataset.Dataset, err error) {
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, nil, err
	}
	spec = spec.Scaled(s.Scale)
	train, test, err = dataset.Synthesize(spec, seed)
	if err != nil {
		return nil, nil, err
	}
	dataset.Standardize(train, test)
	return train, test, nil
}

// checkmark renders the paper's ✔/✘ annotation: did the enhanced variant
// improve over the vanilla one?
func checkmark(improved bool) string {
	if improved {
		return "+"
	}
	return "-"
}

// pct formats a fraction as a percentage with the paper's precision.
func pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }

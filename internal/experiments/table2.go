package experiments

import (
	"fmt"
	"io"

	"enhancedbhpo/internal/dataset"
)

// Table2Row describes one simulated dataset next to the paper's original.
type Table2Row struct {
	Name     string
	Type     string
	Classes  int
	Train    int
	Test     int
	Features int
	// PaperTrain/PaperTest are the original Table II sizes, recorded so
	// the printout shows the scale reduction explicitly.
	PaperTrain, PaperTest int
}

// paperSizes holds the original Table II instance counts.
var paperSizes = map[string][2]int{
	"australian":  {690, 0},
	"splice":      {1000, 2175},
	"gisette":     {6000, 1000},
	"machine":     {10000, 0},
	"nticusdroid": {29332, 0},
	"a9a":         {32561, 16281},
	"fraud":       {284807, 0},
	"credit2023":  {568630, 0},
	"satimage":    {4435, 2000},
	"usps":        {7291, 2007},
	"molecules":   {16242, 0},
	"kc-house":    {21613, 0},
}

// Table2Result reproduces Table II: the dataset inventory, annotated with
// the simulated sizes actually used.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 builds the dataset inventory at the configured scale.
func RunTable2(s Settings) *Table2Result {
	s = s.WithDefaults()
	res := &Table2Result{}
	for _, spec := range dataset.PaperSpecs() {
		scaled := spec.Scaled(s.Scale)
		row := Table2Row{
			Name:     spec.Name,
			Type:     spec.Kind.String(),
			Classes:  spec.Classes,
			Train:    scaled.Train,
			Test:     scaled.Test,
			Features: spec.Features,
		}
		if sizes, ok := paperSizes[spec.Name]; ok {
			row.PaperTrain, row.PaperTest = sizes[0], sizes[1]
		}
		if spec.Kind == dataset.Classification && spec.Classes > 2 {
			row.Type = "multi-category"
		} else if spec.Kind == dataset.Classification {
			row.Type = "binary"
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print renders the inventory in the layout of Table II.
func (r *Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table II: datasets (simulated sizes at the configured scale; paper sizes for reference)")
	fmt.Fprintf(w, "  %-12s %-14s %8s %8s %8s %10s %12s %12s\n",
		"dataset", "type", "classes", "#train", "#test", "#features", "paper-train", "paper-test")
	for _, row := range r.Rows {
		classes := fmt.Sprintf("%d", row.Classes)
		if row.Classes == 0 {
			classes = "-"
		}
		fmt.Fprintf(w, "  %-12s %-14s %8s %8d %8d %10d %12d %12d\n",
			row.Name, row.Type, classes, row.Train, row.Test, row.Features,
			row.PaperTrain, row.PaperTest)
	}
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/stats"
)

// The §IV-B text reports that with a time budget similar to Successive
// Halving's, full-budget model-based optimizers (SMAC3, Optuna/TPE) perform
// about like random search — which is why Table IV keeps only the random
// baseline. This experiment reproduces that comparison: random, SMAC, TPE,
// grid (capped) and SHA/SHA+ on one dataset, reporting test quality and
// time.

// BaselineCell is one method's summary.
type BaselineCell struct {
	Method   string
	TestMean float64
	TestStd  float64
	TimeMean time.Duration
}

// BaselinesResult reproduces the §IV-B baseline comparison.
type BaselinesResult struct {
	Dataset string
	Cells   []BaselineCell
}

// Cell returns the named method's entry, or nil.
func (r *BaselinesResult) Cell(method string) *BaselineCell {
	for i := range r.Cells {
		if r.Cells[i].Method == method {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunBaselines compares the full-budget baselines against SHA and SHA+ on
// the first configured dataset (default: nticusdroid, the dataset the
// paper's anecdote uses).
func RunBaselines(s Settings) (*BaselinesResult, error) {
	s = s.WithDefaults()
	name := "nticusdroid"
	if len(s.Datasets) > 0 {
		name = s.Datasets[0]
	}
	space, err := cvSpace()
	if err != nil {
		return nil, err
	}
	methods := []struct {
		name    string
		method  core.Method
		variant core.Variant
	}{
		{"random", core.Random, core.Vanilla},
		{"smac", core.SMAC, core.Vanilla},
		{"tpe", core.TPE, core.Vanilla},
		{"grid", core.Grid, core.Vanilla},
		{"SHA", core.SHA, core.Vanilla},
		{"SHA+", core.SHA, core.Enhanced},
	}
	res := &BaselinesResult{Dataset: name}
	for _, m := range methods {
		var tests, times []float64
		for seed := 0; seed < s.Seeds; seed++ {
			train, test, err := s.loadDataset(name, uint64(seed)+1)
			if err != nil {
				return nil, err
			}
			opts := core.Options{
				Method:     m.method,
				Variant:    m.variant,
				Space:      space,
				Base:       s.baseConfig(),
				MaxConfigs: s.MaxConfigs,
				Seed:       uint64(seed)*997 + 3,
			}
			// Full-budget baselines get the same trial count as the
			// paper's random baseline (10).
			opts.Random.N = 10
			opts.SMAC.N = 10
			opts.TPE.N = 10
			opts.Grid.MaxConfigs = 10
			out, err := core.Run(train, test, opts)
			if err != nil {
				return nil, fmt.Errorf("baselines %s/%s: %w", name, m.name, err)
			}
			tests = append(tests, out.TestScore)
			times = append(times, out.TotalTime.Seconds())
		}
		cell := BaselineCell{Method: m.name}
		cell.TestMean, cell.TestStd = stats.MeanStd(tests)
		cell.TimeMean = time.Duration(stats.Mean(times) * float64(time.Second))
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Print renders the comparison.
func (r *BaselinesResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Baselines (§IV-B): full-budget optimizers vs bandit methods on %s\n", r.Dataset)
	fmt.Fprintf(w, "  %-8s %16s %10s\n", "method", "testAcc(%)", "time(s)")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  %-8s %8s±%-7s %10.2f\n", c.Method, pct(c.TestMean), pct(c.TestStd), c.TimeMean.Seconds())
	}
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/stats"
)

// Table4Datasets are the ten datasets reported in the paper's Table IV
// (australian and splice appear only in the CV experiments).
var Table4Datasets = []string{
	"gisette", "nticusdroid", "credit2023", "machine", "a9a",
	"fraud", "usps", "satimage", "molecules", "kc-house",
}

// table4Methods are the Table IV columns: the random baseline plus the
// three bandit methods in vanilla and enhanced ("+") form.
type table4Method struct {
	Name    string
	Method  core.Method
	Variant core.Variant
}

func table4Methods() []table4Method {
	return []table4Method{
		{"random", core.Random, core.Vanilla},
		{"SHA", core.SHA, core.Vanilla},
		{"SHA+", core.SHA, core.Enhanced},
		{"HB", core.Hyperband, core.Vanilla},
		{"HB+", core.Hyperband, core.Enhanced},
		{"BOHB", core.BOHB, core.Vanilla},
		{"BOHB+", core.BOHB, core.Enhanced},
	}
}

// Table4Cell summarizes one (dataset, method) entry across seeds.
type Table4Cell struct {
	Method    string
	TrainMean float64
	TrainStd  float64
	TestMean  float64
	TestStd   float64
	TimeMean  time.Duration
	TimeStd   time.Duration
}

// Table4Row holds all method entries for one dataset.
type Table4Row struct {
	Dataset string
	Metric  string // "Acc", "F1" or "R2", following Table IV
	Cells   []Table4Cell
}

// Cell returns the entry for the named method, or nil.
func (r *Table4Row) Cell(method string) *Table4Cell {
	for i := range r.Cells {
		if r.Cells[i].Method == method {
			return &r.Cells[i]
		}
	}
	return nil
}

// Table4Result is the full reproduction of Table IV.
type Table4Result struct {
	Rows []Table4Row
}

// metricName mirrors Table IV: F1 for the imbalanced classification
// datasets, R2 for regression, accuracy otherwise.
func metricName(name string, kind dataset.Kind) string {
	if kind == dataset.Regression {
		return "R2"
	}
	switch name {
	case "machine", "a9a", "fraud", "satimage":
		return "F1"
	}
	return "Acc"
}

// RunTable4 reproduces Table IV: for every dataset and method it runs the
// optimization across seeds and records train/test quality and search time.
func RunTable4(s Settings) (*Table4Result, error) {
	s = s.WithDefaults()
	space, err := search.TableIIISpace(s.NumHPs)
	if err != nil {
		return nil, err
	}
	names := s.Datasets
	if names == nil {
		names = Table4Datasets
	}
	res := &Table4Result{}
	for _, name := range names {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Dataset: name, Metric: metricName(name, spec.Kind)}
		useF1 := row.Metric == "F1"
		s.logf("table4: %s", name)
		for _, m := range table4Methods() {
			s.logf("table4: %s / %s", name, m.Name)
			var trains, tests, times []float64
			for seed := 0; seed < s.Seeds; seed++ {
				train, test, err := s.loadDataset(name, uint64(seed)+1)
				if err != nil {
					return nil, err
				}
				opts := core.Options{
					Method:     m.Method,
					Variant:    m.Variant,
					Space:      space,
					Base:       s.baseConfig(),
					MaxConfigs: s.MaxConfigs,
					UseF1:      useF1,
					Seed:       uint64(seed)*7919 + 13,
				}
				opts.Random.N = 10
				// Bound bracket counts so the scaled-down runs finish; the
				// schedule shape (multiple budgets per bracket) is preserved.
				opts.HB.MaxBrackets = 3
				opts.BOHB.Hyperband.MaxBrackets = 3
				out, err := core.Run(train, test, opts)
				if err != nil {
					return nil, fmt.Errorf("table4 %s/%s seed %d: %w", name, m.Name, seed, err)
				}
				trains = append(trains, out.TrainScore)
				tests = append(tests, out.TestScore)
				times = append(times, out.TotalTime.Seconds())
			}
			cell := Table4Cell{Method: m.Name}
			cell.TrainMean, cell.TrainStd = stats.MeanStd(trains)
			cell.TestMean, cell.TestStd = stats.MeanStd(tests)
			tm, ts := stats.MeanStd(times)
			cell.TimeMean = time.Duration(tm * float64(time.Second))
			cell.TimeStd = time.Duration(ts * float64(time.Second))
			row.Cells = append(row.Cells, cell)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the result in the layout of Table IV: per dataset, the
// train/test quality and search time of each method, with a +/- mark on
// enhanced columns indicating improvement over their vanilla counterpart.
func (r *Table4Result) Print(w io.Writer) {
	methods := table4Methods()
	fmt.Fprintf(w, "Table IV: train result (%%), test result (%%) and search time (sec.)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "\n%s (%s)\n", row.Dataset, row.Metric)
		fmt.Fprintf(w, "  %-8s %16s %16s %14s\n", "method", "train"+row.Metric, "test"+row.Metric, "time(s)")
		for _, m := range methods {
			c := row.Cell(m.Name)
			if c == nil {
				continue
			}
			mark := " "
			if vanilla := vanillaOf(m.Name); vanilla != "" {
				if v := row.Cell(vanilla); v != nil {
					mark = checkmark(c.TestMean >= v.TestMean)
				}
			}
			fmt.Fprintf(w, "  %-8s %7s±%-7s %7s±%-7s %7.2f±%-6.2f %s\n",
				c.Method,
				pct(c.TrainMean), pct(c.TrainStd),
				pct(c.TestMean), pct(c.TestStd),
				c.TimeMean.Seconds(), c.TimeStd.Seconds(), mark)
		}
	}
	r.PrintSignificance(w)
}

// SignificanceRow summarizes one enhanced-vs-vanilla pairing across all
// datasets of the table.
type SignificanceRow struct {
	Enhanced, Vanilla string
	// Wins counts datasets where the enhanced mean test score is strictly
	// higher; Losses the reverse.
	Wins, Losses int
	// SignP is the two-sided sign-test p-value.
	SignP float64
	// WilcoxonP is the two-sided Wilcoxon signed-rank p-value (normal
	// approximation; 1 when too few datasets).
	WilcoxonP float64
}

// Significance runs paired tests over the per-dataset mean test scores for
// each enhanced/vanilla pair — the statistical reading of the paper's
// ✔/✘ marks.
func (r *Table4Result) Significance() []SignificanceRow {
	pairs := [][2]string{{"SHA+", "SHA"}, {"HB+", "HB"}, {"BOHB+", "BOHB"}}
	var out []SignificanceRow
	for _, pair := range pairs {
		var enh, van []float64
		for _, row := range r.Rows {
			e, v := row.Cell(pair[0]), row.Cell(pair[1])
			if e == nil || v == nil {
				continue
			}
			enh = append(enh, e.TestMean)
			van = append(van, v.TestMean)
		}
		if len(enh) == 0 {
			continue
		}
		sr := SignificanceRow{Enhanced: pair[0], Vanilla: pair[1]}
		sr.Wins, sr.Losses, sr.SignP = stats.SignTest(enh, van)
		_, sr.WilcoxonP = stats.WilcoxonSignedRank(enh, van)
		out = append(out, sr)
	}
	return out
}

// PrintSignificance renders the paired-test summary.
func (r *Table4Result) PrintSignificance(w io.Writer) {
	rows := r.Significance()
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w, "\npaired tests over per-dataset mean test scores (enhanced vs vanilla):")
	fmt.Fprintf(w, "  %-14s %6s %8s %10s %12s\n", "pair", "wins", "losses", "sign-p", "wilcoxon-p")
	for _, sr := range rows {
		fmt.Fprintf(w, "  %-14s %6d %8d %10.3f %12.3f\n",
			sr.Enhanced+" vs "+sr.Vanilla, sr.Wins, sr.Losses, sr.SignP, sr.WilcoxonP)
	}
}

// vanillaOf maps an enhanced method name to its vanilla counterpart.
func vanillaOf(name string) string {
	switch name {
	case "SHA+":
		return "SHA"
	case "HB+":
		return "HB"
	case "BOHB+":
		return "BOHB"
	}
	return ""
}

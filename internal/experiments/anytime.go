package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/stats"
	"enhancedbhpo/internal/trace"
)

// The anytime experiment extends the paper's endpoint comparison: instead
// of only the final test score, it compares the whole incumbent curve of
// SHA vs SHA+ (budget-normalized area under the best-so-far score), which
// quantifies the claim that the enhanced evaluation avoids wasting early
// budget on configurations that will be discarded anyway.

// AnytimeCell summarizes one variant's trajectory.
type AnytimeCell struct {
	Variant    string        `json:"variant"`
	AUC        float64       `json:"auc"`
	AUCStd     float64       `json:"auc_std"`
	FinalScore float64       `json:"final_score"`
	Sparkline  string        `json:"sparkline"`
	Curve      []trace.Point `json:"curve"`
}

// AnytimeResult holds the comparison for one dataset.
type AnytimeResult struct {
	Dataset string        `json:"dataset"`
	Cells   []AnytimeCell `json:"cells"`
}

// RunAnytime compares the SHA and SHA+ incumbent curves on the first
// configured dataset (default australian).
func RunAnytime(s Settings) (*AnytimeResult, error) {
	s = s.WithDefaults()
	name := "australian"
	if len(s.Datasets) > 0 {
		name = s.Datasets[0]
	}
	space, err := search.TableIIISpace(s.NumHPs)
	if err != nil {
		return nil, err
	}
	res := &AnytimeResult{Dataset: name}
	for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
		var aucs, finals []float64
		var spark string
		var curve []trace.Point
		for seed := 0; seed < s.Seeds; seed++ {
			train, test, err := s.loadDataset(name, uint64(seed)+1)
			if err != nil {
				return nil, err
			}
			out, err := core.Run(train, test, core.Options{
				Method:     core.SHA,
				Variant:    variant,
				Space:      space,
				Base:       s.baseConfig(),
				MaxConfigs: s.MaxConfigs,
				Seed:       uint64(seed)*53 + 17,
			})
			if err != nil {
				return nil, fmt.Errorf("anytime %s/%v: %w", name, variant, err)
			}
			points := trace.Anytime(out.Search.Trials)
			aucs = append(aucs, trace.AreaUnderCurve(points))
			finals = append(finals, out.TestScore)
			if seed == 0 {
				spark = trace.Sparkline(points, 40)
				curve = points
			}
		}
		cell := AnytimeCell{Variant: variant.String(), Sparkline: spark, Curve: curve}
		cell.AUC, cell.AUCStd = stats.MeanStd(aucs)
		cell.FinalScore = stats.Mean(finals)
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// WriteJSON emits the comparison, including the seed-0 incumbent curves,
// using the trace package's point serialization — the same wire format the
// bhpod /jobs status endpoint serves.
func (r *AnytimeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print renders the anytime comparison.
func (r *AnytimeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Anytime performance (SHA vs SHA+) on %s\n", r.Dataset)
	fmt.Fprintf(w, "  %-10s %16s %12s  %s\n", "variant", "AUC", "final test", "incumbent curve")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  %-10s %8.4f±%-7.4f %12s  %s\n",
			c.Variant, c.AUC, c.AUCStd, pct(c.FinalScore), c.Sparkline)
	}
}

package cv

import (
	"fmt"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/rng"
)

// DefaultSpecialBias is the paper's suggested composition for special folds:
// "samples several instances from ω_i (e.g., 80% of the fold) and some
// instances from remaining groups (e.g., 20% of the fold)".
const DefaultSpecialBias = 0.8

// GroupFolds is the paper's enhanced fold construction (Operation 2). The
// budget subset is drawn from the instance groups and partitioned into
// KGen general folds — each stratified across groups so it mirrors the
// global distribution — and KSpe special folds — fold i drawing
// SpecialBias of its instances from group (i mod v) and the rest stratified
// from the other groups.
type GroupFolds struct {
	// KGen is the number of general folds. The paper's HPO experiments use 3.
	KGen int
	// KSpe is the number of special folds. The paper's HPO experiments use 2;
	// §III-B sets it to the group count v for standalone cross-validation.
	KSpe int
	// SpecialBias is the fraction of a special fold drawn from its focus
	// group. 0 selects DefaultSpecialBias.
	SpecialBias float64
}

// Name implements Builder.
func (g GroupFolds) Name() string { return fmt.Sprintf("group-folds(%d+%d)", g.KGen, g.KSpe) }

// Folds implements Builder. The k argument is validated against KGen+KSpe;
// pass k = KGen+KSpe (callers that sweep fold allocations construct the
// builder per allocation).
func (g GroupFolds) Folds(d *dataset.Dataset, groups *grouping.Groups, budget, k int, r *rng.RNG) ([]Fold, error) {
	if groups == nil {
		return nil, fmt.Errorf("cv: group folds require groups")
	}
	if g.KGen < 0 || g.KSpe < 0 || g.KGen+g.KSpe < 2 {
		return nil, fmt.Errorf("cv: invalid fold allocation %d general + %d special", g.KGen, g.KSpe)
	}
	if k != g.KGen+g.KSpe {
		return nil, fmt.Errorf("cv: k=%d but builder allocates %d+%d folds", k, g.KGen, g.KSpe)
	}
	n := d.Len()
	if len(groups.Assign) != n {
		return nil, fmt.Errorf("cv: groups cover %d instances, dataset has %d", len(groups.Assign), n)
	}
	budget, err := clampBudget(n, budget, k)
	if err != nil {
		return nil, err
	}
	bias := g.SpecialBias
	if bias <= 0 {
		bias = DefaultSpecialBias
	}
	if bias >= 1 {
		bias = 0.95
	}

	// Pool of still-available indices per group.
	pool := make([][]int, groups.V)
	for gi := range pool {
		pool[gi] = append([]int(nil), groups.Members[gi]...)
		r.Shuffle(pool[gi])
	}
	available := budget // how many instances we may still claim
	foldSize := budget / k

	take := func(gi, want int) []int {
		if want > len(pool[gi]) {
			want = len(pool[gi])
		}
		// Copy: callers append to the result, and a view of pool's backing
		// array would let that append overwrite not-yet-claimed entries.
		out := append([]int(nil), pool[gi][:want]...)
		pool[gi] = pool[gi][want:]
		return out
	}
	poolTotal := func() int {
		t := 0
		for _, p := range pool {
			t += len(p)
		}
		return t
	}
	// takeStratified claims want instances spread across groups
	// proportionally to the remaining pool sizes, skipping group exclude
	// (-1 for none).
	takeStratified := func(want, exclude int) []int {
		out := make([]int, 0, want)
		for want > 0 {
			total := 0
			for gi, p := range pool {
				if gi != exclude {
					total += len(p)
				}
			}
			if total == 0 {
				if exclude >= 0 && len(pool[exclude]) > 0 {
					out = append(out, take(exclude, want)...)
				}
				break
			}
			progressed := false
			for gi := range pool {
				if gi == exclude || len(pool[gi]) == 0 || want == 0 {
					continue
				}
				share := want * len(pool[gi]) / total
				if share == 0 {
					share = 1
				}
				if share > want {
					share = want
				}
				got := take(gi, share)
				out = append(out, got...)
				want -= len(got)
				if len(got) > 0 {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		return out
	}

	parts := make([][]int, 0, k)
	// Special folds first: they have the strictest composition needs.
	for i := 0; i < g.KSpe; i++ {
		focus := i % groups.V
		fromFocus := int(float64(foldSize) * bias)
		if fromFocus < 1 {
			fromFocus = 1
		}
		part := take(focus, fromFocus)
		rest := foldSize - len(part)
		if rest > 0 {
			part = append(part, takeStratified(rest, focus)...)
		}
		r.Shuffle(part)
		parts = append(parts, part)
		available -= len(part)
	}
	// General folds: stratified across all groups.
	for i := 0; i < g.KGen; i++ {
		size := foldSize
		if i == g.KGen-1 {
			// Give the last general fold the rounding remainder.
			size = available - (g.KGen-1-i)*foldSize
			if size < foldSize {
				size = foldSize
			}
		}
		if pt := poolTotal(); size > pt {
			size = pt
		}
		if size <= 0 {
			return nil, fmt.Errorf("cv: pool exhausted constructing general fold %d", i)
		}
		part := takeStratified(size, -1)
		r.Shuffle(part)
		parts = append(parts, part)
		available -= len(part)
	}
	// Drop any empty parts defensively (possible with tiny budgets and many
	// groups) and fail if that leaves fewer than 2 folds.
	nonEmpty := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	if len(nonEmpty) < 2 {
		return nil, fmt.Errorf("cv: budget %d too small for %d folds", budget, k)
	}
	return partsToFolds(nonEmpty), nil
}

package cv

import (
	"testing"

	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/stats"
)

// This file tests the paper's Proposition 1 claim at the fold level:
// subsets drawn through the instance groups reproduce the dataset's
// composition far more consistently than uniformly random subsets. The
// measurements need no model training, so the assertions can be tight.

// composition returns the fraction of fold-validation instances that
// belong to group 0.
func composition(folds []Fold, assign []int) float64 {
	in0, total := 0, 0
	for _, f := range folds {
		for _, idx := range f.Val {
			total++
			if assign[idx] == 0 {
				in0++
			}
		}
	}
	return float64(in0) / float64(total)
}

func TestGroupSamplingMoreStableThanRandom(t *testing.T) {
	d := testDataset(400, 60)
	g, err := grouping.Build(d, grouping.Options{V: 2}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	const reps = 60
	budget := 40 // 10% — the unstable regime the paper targets
	var randomFracs, groupFracs []float64
	for rep := 0; rep < reps; rep++ {
		rf, err := (RandomKFold{}).Folds(d, g, budget, 5, rng.New(uint64(rep)+1000))
		if err != nil {
			t.Fatal(err)
		}
		randomFracs = append(randomFracs, composition(rf, g.Assign))
		gf, err := (GroupFolds{KGen: 5, KSpe: 0}).Folds(d, g, budget, 5, rng.New(uint64(rep)+2000))
		if err != nil {
			t.Fatal(err)
		}
		groupFracs = append(groupFracs, composition(gf, g.Assign))
	}
	randomVar := stats.Variance(randomFracs)
	groupVar := stats.Variance(groupFracs)
	// The group-stratified subsets pin the group mix; random subsets follow
	// a hypergeometric spread. The gap is large, so assert a 3× margin.
	if groupVar*3 > randomVar {
		t.Fatalf("group sampling variance %v not well below random %v", groupVar, randomVar)
	}
}

func TestSpecialFoldsDiverse(t *testing.T) {
	// Special folds must differ from each other: fold i focuses group
	// i mod v, so with v=2 the two special folds should have very
	// different group compositions.
	d := testDataset(300, 62)
	g, err := grouping.Build(d, grouping.Options{V: 2}, rng.New(63))
	if err != nil {
		t.Fatal(err)
	}
	folds, err := (GroupFolds{KGen: 0, KSpe: 2, SpecialBias: 0.8}).Folds(d, g, 100, 2, rng.New(64))
	if err != nil {
		t.Fatal(err)
	}
	frac := func(f Fold) float64 {
		in0 := 0
		for _, idx := range f.Val {
			if g.Assign[idx] == 0 {
				in0++
			}
		}
		return float64(in0) / float64(len(f.Val))
	}
	f0, f1 := frac(folds[0]), frac(folds[1])
	if f0-f1 < 0.3 && f1-f0 < 0.3 {
		t.Fatalf("special folds not diverse: group-0 fractions %v and %v", f0, f1)
	}
}

func TestGeneralFoldsMirrorGlobalMix(t *testing.T) {
	d := testDataset(400, 65)
	g, err := grouping.Build(d, grouping.Options{V: 3}, rng.New(66))
	if err != nil {
		t.Fatal(err)
	}
	folds, err := (GroupFolds{KGen: 5, KSpe: 0}).Folds(d, g, 200, 5, rng.New(67))
	if err != nil {
		t.Fatal(err)
	}
	for gi := 0; gi < g.V; gi++ {
		global := float64(g.Size(gi)) / float64(d.Len())
		for fi, f := range folds {
			in := 0
			for _, idx := range f.Val {
				if g.Assign[idx] == gi {
					in++
				}
			}
			frac := float64(in) / float64(len(f.Val))
			if frac < global-0.15 || frac > global+0.15 {
				t.Fatalf("fold %d group %d fraction %v vs global %v", fi, gi, frac, global)
			}
		}
	}
}

// Package cv implements the cross-validation machinery of the paper: the
// vanilla random and stratified k-fold splitters used by existing
// bandit-based methods, and the enhanced group-based construction of
// §III-B (Operation 2) that mixes k_gen "general" folds — stratified over
// the instance groups to approximate the global distribution — with k_spe
// "special" folds, each dominated by one group to expose behaviour under a
// shifted distribution.
//
// All builders work on a budget: they sample b_t instances from the full
// training set (the bandit method's per-configuration budget) and split
// them into folds. Fold indices refer to rows of the training dataset.
package cv

import (
	"fmt"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/rng"
)

// Fold is one cross-validation fold: a model is trained on Train and scored
// on Val. Indices refer to the full training dataset.
type Fold struct {
	Train []int
	Val   []int
}

// Builder samples a subset of the given budget from d and splits it into k
// folds. groups may be nil for builders that do not use grouping.
type Builder interface {
	// Folds returns k cross-validation folds over a budget-sized subset.
	Folds(d *dataset.Dataset, groups *grouping.Groups, budget, k int, r *rng.RNG) ([]Fold, error)
	// Name identifies the builder in experiment output.
	Name() string
}

// clampBudget bounds the requested budget to [2k, n] and reports an error
// when even that is impossible.
func clampBudget(n, budget, k int) (int, error) {
	if k < 2 {
		return 0, fmt.Errorf("cv: need at least 2 folds, got %d", k)
	}
	if n < 2*k {
		return 0, fmt.Errorf("cv: dataset of %d rows cannot support %d folds", n, k)
	}
	if budget > n {
		budget = n
	}
	if budget < 2*k {
		budget = 2 * k
	}
	return budget, nil
}

// partsToFolds converts a disjoint partition of subset indices into k
// cross-validation folds (fold i validates on part i and trains on the
// union of the others).
func partsToFolds(parts [][]int) []Fold {
	k := len(parts)
	folds := make([]Fold, k)
	var total int
	for _, p := range parts {
		total += len(p)
	}
	for i := range parts {
		val := append([]int(nil), parts[i]...)
		train := make([]int, 0, total-len(parts[i]))
		for j, p := range parts {
			if j != i {
				train = append(train, p...)
			}
		}
		folds[i] = Fold{Train: train, Val: val}
	}
	return folds
}

// RandomKFold is the vanilla KFold baseline: a uniformly sampled subset
// split into k random parts.
type RandomKFold struct{}

// Folds implements Builder.
func (RandomKFold) Folds(d *dataset.Dataset, _ *grouping.Groups, budget, k int, r *rng.RNG) ([]Fold, error) {
	n := d.Len()
	budget, err := clampBudget(n, budget, k)
	if err != nil {
		return nil, err
	}
	subset := r.Sample(n, budget)
	parts := make([][]int, k)
	for i, idx := range subset {
		parts[i%k] = append(parts[i%k], idx)
	}
	return partsToFolds(parts), nil
}

// Name implements Builder.
func (RandomKFold) Name() string { return "random-kfold" }

// StratifiedKFold is the vanilla stratified baseline: the subset is sampled
// preserving class proportions and each part preserves them too. For
// regression datasets it stratifies over magnitude bins of the target.
type StratifiedKFold struct {
	// RegressionBins is the bin count used to stratify regression targets.
	// 0 selects 4.
	RegressionBins int
}

// Folds implements Builder.
func (s StratifiedKFold) Folds(d *dataset.Dataset, _ *grouping.Groups, budget, k int, r *rng.RNG) ([]Fold, error) {
	n := d.Len()
	budget, err := clampBudget(n, budget, k)
	if err != nil {
		return nil, err
	}
	labels, numCats := stratifyLabels(d, s.RegressionBins)
	subset := dataset.StratifiedIndices(r, labels, numCats, budget)
	// Distribute each class round-robin over the k parts to keep parts
	// stratified.
	byClass := make(map[int][]int)
	for _, idx := range subset {
		c := labels[idx]
		byClass[c] = append(byClass[c], idx)
	}
	parts := make([][]int, k)
	slot := 0
	for c := 0; c < numCats; c++ {
		for _, idx := range byClass[c] {
			parts[slot%k] = append(parts[slot%k], idx)
			slot++
		}
	}
	return partsToFolds(parts), nil
}

// Name implements Builder.
func (s StratifiedKFold) Name() string { return "stratified-kfold" }

func stratifyLabels(d *dataset.Dataset, regressionBins int) (labels []int, numCats int) {
	if d.Kind == dataset.Classification {
		return d.Class, d.NumClasses
	}
	if regressionBins <= 0 {
		regressionBins = 4
	}
	return dataset.BinRegressionTargets(d.Target, regressionBins), regressionBins
}

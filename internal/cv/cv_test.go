package cv

import (
	"testing"
	"testing/quick"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

func testDataset(n int, seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	x := mat.NewDense(n, 3)
	class := make([]int, n)
	for i := 0; i < n; i++ {
		blob := i % 2
		for j := 0; j < 3; j++ {
			c := -3.0
			if blob == 1 {
				c = 3.0
			}
			x.Set(i, j, c+r.Norm())
		}
		class[i] = blob
	}
	return &dataset.Dataset{Name: "cv", Kind: dataset.Classification, X: x, Class: class, NumClasses: 2}
}

func testGroups(t *testing.T, d *dataset.Dataset, v int) *grouping.Groups {
	t.Helper()
	g, err := grouping.Build(d, grouping.Options{V: v}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkFolds verifies structural invariants common to all builders: val
// parts are disjoint, train∩val empty per fold, and all indices in range.
func checkFolds(t *testing.T, folds []Fold, n int) {
	t.Helper()
	if len(folds) < 2 {
		t.Fatalf("only %d folds", len(folds))
	}
	seenVal := map[int]bool{}
	for fi, f := range folds {
		if len(f.Val) == 0 {
			t.Fatalf("fold %d empty val", fi)
		}
		if len(f.Train) == 0 {
			t.Fatalf("fold %d empty train", fi)
		}
		inVal := map[int]bool{}
		for _, idx := range f.Val {
			if idx < 0 || idx >= n {
				t.Fatalf("fold %d val index %d out of range", fi, idx)
			}
			if seenVal[idx] {
				t.Fatalf("index %d in multiple val parts", idx)
			}
			seenVal[idx] = true
			inVal[idx] = true
		}
		for _, idx := range f.Train {
			if idx < 0 || idx >= n {
				t.Fatalf("fold %d train index %d out of range", fi, idx)
			}
			if inVal[idx] {
				t.Fatalf("fold %d trains on its own val index %d", fi, idx)
			}
		}
	}
}

func TestRandomKFoldStructure(t *testing.T) {
	d := testDataset(100, 1)
	folds, err := RandomKFold{}.Folds(d, nil, 50, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	checkFolds(t, folds, d.Len())
	// Budget respected: union of val parts == subset size.
	total := 0
	for _, f := range folds {
		total += len(f.Val)
	}
	if total != 50 {
		t.Fatalf("subset size %d, want 50", total)
	}
}

func TestStratifiedKFoldPreservesClassBalance(t *testing.T) {
	d := testDataset(100, 3)
	folds, err := StratifiedKFold{}.Folds(d, nil, 60, 5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	checkFolds(t, folds, d.Len())
	for fi, f := range folds {
		counts := [2]int{}
		for _, idx := range f.Val {
			counts[d.Class[idx]]++
		}
		diff := counts[0] - counts[1]
		if diff < -2 || diff > 2 {
			t.Fatalf("fold %d class counts %v not balanced", fi, counts)
		}
	}
}

func TestStratifiedKFoldRegression(t *testing.T) {
	r := rng.New(5)
	n := 80
	x := mat.NewDense(n, 2)
	target := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Norm())
		target[i] = float64(i)
	}
	d := &dataset.Dataset{Name: "reg", Kind: dataset.Regression, X: x, Target: target}
	folds, err := StratifiedKFold{RegressionBins: 4}.Folds(d, nil, 40, 4, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	checkFolds(t, folds, n)
}

func TestBudgetClamping(t *testing.T) {
	d := testDataset(40, 7)
	// Budget above n clamps to n.
	folds, err := RandomKFold{}.Folds(d, nil, 1000, 4, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range folds {
		total += len(f.Val)
	}
	if total != 40 {
		t.Fatalf("clamped subset %d, want 40", total)
	}
	// Budget below 2k clamps up.
	folds, err = RandomKFold{}.Folds(d, nil, 3, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, f := range folds {
		total += len(f.Val)
	}
	if total < 8 {
		t.Fatalf("clamped-up subset %d < 8", total)
	}
}

func TestClampBudgetErrors(t *testing.T) {
	if _, err := (RandomKFold{}).Folds(testDataset(6, 10), nil, 6, 5, rng.New(1)); err == nil {
		t.Error("n<2k accepted")
	}
	if _, err := (RandomKFold{}).Folds(testDataset(20, 11), nil, 10, 1, rng.New(1)); err == nil {
		t.Error("k<2 accepted")
	}
}

func TestGroupFoldsStructure(t *testing.T) {
	d := testDataset(120, 12)
	g := testGroups(t, d, 2)
	builder := GroupFolds{KGen: 3, KSpe: 2}
	folds, err := builder.Folds(d, g, 60, 5, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	checkFolds(t, folds, d.Len())
}

func TestGroupFoldsSpecialBias(t *testing.T) {
	d := testDataset(200, 14)
	g := testGroups(t, d, 2)
	builder := GroupFolds{KGen: 3, KSpe: 2, SpecialBias: 0.8}
	folds, err := builder.Folds(d, g, 100, 5, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	// The first KSpe folds are special: their val parts must be dominated
	// by their focus group.
	for i := 0; i < 2; i++ {
		focus := i % g.V
		inFocus := 0
		for _, idx := range folds[i].Val {
			if g.Assign[idx] == focus {
				inFocus++
			}
		}
		frac := float64(inFocus) / float64(len(folds[i].Val))
		if frac < 0.6 {
			t.Fatalf("special fold %d only %v from focus group", i, frac)
		}
	}
	// General folds should roughly mirror the global group mix.
	globalFrac := float64(g.Size(0)) / float64(d.Len())
	for i := 2; i < 5; i++ {
		in0 := 0
		for _, idx := range folds[i].Val {
			if g.Assign[idx] == 0 {
				in0++
			}
		}
		frac := float64(in0) / float64(len(folds[i].Val))
		if frac < globalFrac-0.25 || frac > globalFrac+0.25 {
			t.Fatalf("general fold %d group-0 fraction %v vs global %v", i, frac, globalFrac)
		}
	}
}

func TestGroupFoldsAllGeneralAndAllSpecial(t *testing.T) {
	d := testDataset(150, 16)
	g := testGroups(t, d, 2)
	for _, alloc := range []GroupFolds{{KGen: 5, KSpe: 0}, {KGen: 0, KSpe: 5}, {KGen: 1, KSpe: 4}} {
		folds, err := alloc.Folds(d, g, 75, 5, rng.New(17))
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		checkFolds(t, folds, d.Len())
	}
}

func TestGroupFoldsErrors(t *testing.T) {
	d := testDataset(60, 18)
	g := testGroups(t, d, 2)
	if _, err := (GroupFolds{KGen: 3, KSpe: 2}).Folds(d, nil, 30, 5, rng.New(1)); err == nil {
		t.Error("nil groups accepted")
	}
	if _, err := (GroupFolds{KGen: 3, KSpe: 2}).Folds(d, g, 30, 4, rng.New(1)); err == nil {
		t.Error("k mismatch accepted")
	}
	if _, err := (GroupFolds{KGen: 0, KSpe: 0}).Folds(d, g, 30, 0, rng.New(1)); err == nil {
		t.Error("zero folds accepted")
	}
	other := testDataset(61, 19)
	if _, err := (GroupFolds{KGen: 3, KSpe: 2}).Folds(other, g, 30, 5, rng.New(1)); err == nil {
		t.Error("mismatched groups accepted")
	}
}

func TestFoldsDisjointnessProperty(t *testing.T) {
	d := testDataset(90, 20)
	g := testGroups(t, d, 3)
	builders := []Builder{RandomKFold{}, StratifiedKFold{}, GroupFolds{KGen: 2, KSpe: 3}}
	f := func(seed uint64, budgetRaw uint8) bool {
		budget := 20 + int(budgetRaw)%60
		for _, b := range builders {
			folds, err := b.Folds(d, g, budget, 5, rng.New(seed))
			if err != nil {
				return false
			}
			seen := map[int]bool{}
			for _, fold := range folds {
				for _, idx := range fold.Val {
					if seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBuilderNames(t *testing.T) {
	if (RandomKFold{}).Name() == "" || (StratifiedKFold{}).Name() == "" {
		t.Error("empty builder name")
	}
	if (GroupFolds{KGen: 3, KSpe: 2}).Name() != "group-folds(3+2)" {
		t.Errorf("group folds name = %q", GroupFolds{KGen: 3, KSpe: 2}.Name())
	}
}

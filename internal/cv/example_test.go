package cv_test

import (
	"fmt"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// GroupFolds builds the paper's 3 general + 2 special folds from a 100-
// instance budget: a disjoint partition where each fold validates once.
func ExampleGroupFolds() {
	// A small two-blob dataset.
	r := rng.New(1)
	n := 200
	x := mat.NewDense(n, 2)
	class := make([]int, n)
	for i := 0; i < n; i++ {
		blob := i % 2
		class[i] = blob
		center := -3.0
		if blob == 1 {
			center = 3.0
		}
		x.Set(i, 0, center+r.Norm())
		x.Set(i, 1, center+r.Norm())
	}
	d := &dataset.Dataset{Name: "blobs", Kind: dataset.Classification, X: x, Class: class, NumClasses: 2}

	groups, err := grouping.Build(d, grouping.Options{V: 2}, rng.New(2))
	if err != nil {
		panic(err)
	}
	builder := cv.GroupFolds{KGen: 3, KSpe: 2}
	folds, err := builder.Folds(d, groups, 100, 5, rng.New(3))
	if err != nil {
		panic(err)
	}
	total := 0
	for _, f := range folds {
		total += len(f.Val)
	}
	fmt.Printf("%d folds over a %d-instance subset\n", len(folds), total)
	fmt.Println("builder:", builder.Name())
	// Output:
	// 5 folds over a 100-instance subset
	// builder: group-folds(3+2)
}

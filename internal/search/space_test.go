package search

import (
	"testing"
	"testing/quick"

	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
)

func TestTableIIISpaceSizes(t *testing.T) {
	// Paper: 4 HPs -> 6*3*3*3 = 162 configurations; 2 HPs -> 18; 8 HPs -> 8748.
	cases := []struct{ hps, want int }{
		{1, 6}, {2, 18}, {3, 54}, {4, 162}, {8, 8748},
	}
	for _, tc := range cases {
		s, err := TableIIISpace(tc.hps)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Size(); got != tc.want {
			t.Errorf("%d HPs: size %d, want %d", tc.hps, got, tc.want)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%d HPs: %v", tc.hps, err)
		}
	}
	if _, err := TableIIISpace(0); err == nil {
		t.Error("0 HPs accepted")
	}
	if _, err := TableIIISpace(9); err == nil {
		t.Error("9 HPs accepted")
	}
}

func TestEnumerateDistinctAndComplete(t *testing.T) {
	s, _ := TableIIISpace(3)
	all := s.Enumerate()
	if len(all) != s.Size() {
		t.Fatalf("enumerated %d of %d", len(all), s.Size())
	}
	seen := map[string]bool{}
	for _, c := range all {
		if seen[c.ID()] {
			t.Fatalf("duplicate config %s", c.ID())
		}
		seen[c.ID()] = true
	}
}

func TestSampleNWithoutReplacement(t *testing.T) {
	s, _ := TableIIISpace(4)
	r := rng.New(1)
	configs := s.SampleN(r, 50)
	if len(configs) != 50 {
		t.Fatalf("sampled %d", len(configs))
	}
	seen := map[string]bool{}
	for _, c := range configs {
		if seen[c.ID()] {
			t.Fatalf("duplicate config %s", c.ID())
		}
		seen[c.ID()] = true
	}
	// Asking for more than the space yields the whole space.
	small, _ := TableIIISpace(1)
	if got := small.SampleN(r, 100); len(got) != 6 {
		t.Fatalf("oversample returned %d", len(got))
	}
}

func TestConfigAccessors(t *testing.T) {
	s, _ := TableIIISpace(4)
	c := s.NewConfig([]int{5, 2, 1, 0})
	if got := c.Value(DimActivation); got != "relu" {
		t.Fatalf("activation = %v", got)
	}
	if got := c.Value(DimSolver); got != "sgd" {
		t.Fatalf("solver = %v", got)
	}
	if got := c.Value("nope"); got != nil {
		t.Fatalf("unknown dimension = %v", got)
	}
	if c.ID() != "5-2-1-0" {
		t.Fatalf("ID = %q", c.ID())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
	idx := c.Indices()
	idx[0] = 0
	if c.Index(0) != 5 {
		t.Error("Indices() exposed internal state")
	}
}

func TestNewConfigPanics(t *testing.T) {
	s, _ := TableIIISpace(2)
	assertPanics(t, "wrong dim count", func() { s.NewConfig([]int{1}) })
	assertPanics(t, "index out of range", func() { s.NewConfig([]int{9, 0}) })
}

func TestToNNConfigFull(t *testing.T) {
	s := &Space{Dims: TableIIIDimensions()}
	c := s.NewConfig([]int{1, 0, 2, 2, 1, 2, 0, 1})
	base := nn.DefaultConfig()
	cfg, err := ToNNConfig(c, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.HiddenLayerSizes) != 2 || cfg.HiddenLayerSizes[0] != 30 {
		t.Fatalf("hidden = %v", cfg.HiddenLayerSizes)
	}
	if cfg.Activation != nn.Logistic {
		t.Fatalf("activation = %v", cfg.Activation)
	}
	if cfg.Solver != nn.Adam {
		t.Fatalf("solver = %v", cfg.Solver)
	}
	if cfg.LearningRateInit != 0.01 {
		t.Fatalf("lr = %v", cfg.LearningRateInit)
	}
	if cfg.BatchSize != 64 {
		t.Fatalf("batch = %v", cfg.BatchSize)
	}
	if cfg.LearningRate != nn.Adaptive {
		t.Fatalf("schedule = %v", cfg.LearningRate)
	}
	if cfg.Momentum != 0.7 {
		t.Fatalf("momentum = %v", cfg.Momentum)
	}
	if cfg.EarlyStopping {
		t.Fatal("early stopping should be false")
	}
	// Non-searched fields keep the base values.
	if cfg.MaxIter != base.MaxIter || cfg.Alpha != base.Alpha {
		t.Fatal("base fields overwritten")
	}
}

func TestToNNConfigPartialSpaceKeepsBase(t *testing.T) {
	s, _ := TableIIISpace(2)
	c := s.NewConfig([]int{4, 1})
	base := nn.DefaultConfig()
	base.Solver = nn.SGD
	cfg, err := ToNNConfig(c, base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Solver != nn.SGD {
		t.Fatal("unsearched solver changed")
	}
	if cfg.HiddenLayerSizes[0] != 50 || cfg.Activation != nn.Tanh {
		t.Fatal("searched dims not applied")
	}
}

func TestToNNConfigUnknownDimension(t *testing.T) {
	s := &Space{Dims: []Dimension{{Name: "mystery", Values: []any{1}}}}
	c := s.NewConfig([]int{0})
	if _, err := ToNNConfig(c, nn.DefaultConfig()); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestToNNConfigDoesNotAliasShapes(t *testing.T) {
	s, _ := TableIIISpace(1)
	c := s.NewConfig([]int{1}) // {30, 30}
	cfg, err := ToNNConfig(c, nn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.HiddenLayerSizes[0] = 999
	cfg2, err := ToNNConfig(c, nn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.HiddenLayerSizes[0] == 999 {
		t.Fatal("hidden layer shape aliased between configs")
	}
}

func TestModelSizeSpace(t *testing.T) {
	s, err := ModelSizeSpace([]int{10, 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 widths * 3 depths shapes * 3 activations.
	if got := s.Size(); got != 18 {
		t.Fatalf("size = %d", got)
	}
	if _, err := ModelSizeSpace(nil, 2); err == nil {
		t.Error("empty widths accepted")
	}
	if _, err := ModelSizeSpace([]int{10}, 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestSpaceValidate(t *testing.T) {
	bad := &Space{}
	if err := bad.Validate(); err == nil {
		t.Error("empty space accepted")
	}
	dup := &Space{Dims: []Dimension{
		{Name: "a", Values: []any{1}},
		{Name: "a", Values: []any{2}},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate dimension accepted")
	}
	noVals := &Space{Dims: []Dimension{{Name: "a"}}}
	if err := noVals.Validate(); err == nil {
		t.Error("valueless dimension accepted")
	}
}

func TestSampleUniformProperty(t *testing.T) {
	s, _ := TableIIISpace(2)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := s.Sample(r)
		for d := range s.Dims {
			if c.Index(d) < 0 || c.Index(d) >= len(s.Dims[d].Values) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

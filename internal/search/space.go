// Package search defines the hyperparameter configuration space the paper
// optimizes over (Table III) and generic space utilities: enumeration,
// random sampling, and conversion of abstract configurations into concrete
// nn.Config values.
//
// All Table III hyperparameters are categorical, so the space is a product
// of named dimensions with finite value lists; a configuration is a choice
// index per dimension.
package search

import (
	"fmt"
	"strings"

	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
)

// Dimension is one categorical hyperparameter.
type Dimension struct {
	// Name identifies the hyperparameter (Table III row name, snake_case).
	Name string
	// Values lists the candidate values. Supported dynamic types are
	// string, int, float64, bool and []int (hidden layer shapes).
	Values []any
}

// Space is a product of dimensions.
type Space struct {
	Dims []Dimension
}

// Size returns the number of configurations in the space.
func (s *Space) Size() int {
	if len(s.Dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range s.Dims {
		n *= len(d.Values)
	}
	return n
}

// Validate reports the first structural problem with the space.
func (s *Space) Validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("search: empty space")
	}
	seen := map[string]bool{}
	for _, d := range s.Dims {
		if d.Name == "" {
			return fmt.Errorf("search: unnamed dimension")
		}
		if seen[d.Name] {
			return fmt.Errorf("search: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
		if len(d.Values) == 0 {
			return fmt.Errorf("search: dimension %q has no values", d.Name)
		}
	}
	return nil
}

// Config is one point of a Space: a value-index per dimension.
type Config struct {
	space *Space
	idx   []int
}

// NewConfig builds a configuration from explicit choice indices.
// It panics on a dimension-count or index-range mismatch.
func (s *Space) NewConfig(idx []int) Config {
	if len(idx) != len(s.Dims) {
		panic(fmt.Sprintf("search: %d indices for %d dimensions", len(idx), len(s.Dims)))
	}
	for d, i := range idx {
		if i < 0 || i >= len(s.Dims[d].Values) {
			panic(fmt.Sprintf("search: index %d out of range for %q", i, s.Dims[d].Name))
		}
	}
	return Config{space: s, idx: append([]int(nil), idx...)}
}

// Space returns the space the configuration belongs to.
func (c Config) Space() *Space { return c.space }

// Indices returns a copy of the per-dimension choice indices.
func (c Config) Indices() []int { return append([]int(nil), c.idx...) }

// Index returns the choice index of dimension d.
func (c Config) Index(d int) int { return c.idx[d] }

// Value returns the chosen value of the named dimension, or nil if the
// space has no such dimension.
func (c Config) Value(name string) any {
	for d, dim := range c.space.Dims {
		if dim.Name == name {
			return dim.Values[c.idx[d]]
		}
	}
	return nil
}

// ID returns a stable identifier like "2-0-1-1", usable as a map key.
func (c Config) ID() string {
	parts := make([]string, len(c.idx))
	for i, v := range c.idx {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, "-")
}

// String renders the configuration with names and values.
func (c Config) String() string {
	parts := make([]string, len(c.idx))
	for d, dim := range c.space.Dims {
		parts[d] = fmt.Sprintf("%s=%v", dim.Name, dim.Values[c.idx[d]])
	}
	return strings.Join(parts, " ")
}

// Enumerate returns every configuration of the space in lexicographic
// index order.
func (s *Space) Enumerate() []Config {
	total := s.Size()
	out := make([]Config, 0, total)
	idx := make([]int, len(s.Dims))
	for {
		out = append(out, s.NewConfig(idx))
		// Increment mixed-radix counter.
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(s.Dims[d].Values) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return out
}

// Sample returns one uniformly random configuration.
func (s *Space) Sample(r *rng.RNG) Config {
	idx := make([]int, len(s.Dims))
	for d := range idx {
		idx[d] = r.Intn(len(s.Dims[d].Values))
	}
	return s.NewConfig(idx)
}

// SampleN returns n configurations sampled without replacement when the
// space is small enough, falling back to with-replacement sampling for
// huge spaces.
func (s *Space) SampleN(r *rng.RNG, n int) []Config {
	size := s.Size()
	if n >= size {
		return s.Enumerate()
	}
	if size <= 1<<16 {
		all := s.Enumerate()
		picked := r.Sample(size, n)
		out := make([]Config, n)
		for i, p := range picked {
			out[i] = all[p]
		}
		return out
	}
	seen := map[string]bool{}
	out := make([]Config, 0, n)
	for len(out) < n {
		c := s.Sample(r)
		if !seen[c.ID()] {
			seen[c.ID()] = true
			out = append(out, c)
		}
	}
	return out
}

// Table III dimension names.
const (
	DimHiddenLayerSizes = "hidden_layer_sizes"
	DimActivation       = "activation"
	DimSolver           = "solver"
	DimLearningRateInit = "learning_rate_init"
	DimBatchSize        = "batch_size"
	DimLearningRate     = "learning_rate"
	DimMomentum         = "momentum"
	DimEarlyStopping    = "early_stopping"
)

// TableIIIDimensions returns the paper's full 8-dimension search space in
// Table III order: 6·3·3·3·3·3·3·2 = 8748 configurations.
func TableIIIDimensions() []Dimension {
	return []Dimension{
		{Name: DimHiddenLayerSizes, Values: []any{
			[]int{30}, []int{30, 30}, []int{40}, []int{40, 40}, []int{50}, []int{50, 50},
		}},
		{Name: DimActivation, Values: []any{"logistic", "tanh", "relu"}},
		{Name: DimSolver, Values: []any{"lbfgs", "sgd", "adam"}},
		{Name: DimLearningRateInit, Values: []any{0.1, 0.05, 0.01}},
		{Name: DimBatchSize, Values: []any{32, 64, 128}},
		{Name: DimLearningRate, Values: []any{"constant", "invscaling", "adaptive"}},
		{Name: DimMomentum, Values: []any{0.7, 0.8, 0.9}},
		{Name: DimEarlyStopping, Values: []any{true, false}},
	}
}

// TableIIISpace returns the space over the first numHPs Table III
// hyperparameters (the paper's Figure 4 grows the space in this order).
// numHPs must be in [1, 8]. The §IV-B HPO experiments use numHPs = 4
// (162 configurations); the §IV-C CV experiments use numHPs = 2
// (18 configurations).
func TableIIISpace(numHPs int) (*Space, error) {
	dims := TableIIIDimensions()
	if numHPs < 1 || numHPs > len(dims) {
		return nil, fmt.Errorf("search: numHPs %d out of [1,%d]", numHPs, len(dims))
	}
	return &Space{Dims: dims[:numHPs]}, nil
}

// ModelSizeSpace returns the Figure 4 model-complexity space: hidden layer
// shapes of every width in widths at every depth in [1, maxDepth], crossed
// with the 3 activations.
func ModelSizeSpace(widths []int, maxDepth int) (*Space, error) {
	if len(widths) == 0 || maxDepth < 1 {
		return nil, fmt.Errorf("search: empty model-size space")
	}
	var shapes []any
	for depth := 1; depth <= maxDepth; depth++ {
		for _, w := range widths {
			shape := make([]int, depth)
			for i := range shape {
				shape[i] = w
			}
			shapes = append(shapes, shape)
		}
	}
	return &Space{Dims: []Dimension{
		{Name: DimHiddenLayerSizes, Values: shapes},
		{Name: DimActivation, Values: []any{"logistic", "tanh", "relu"}},
	}}, nil
}

// ToNNConfig materializes a configuration onto the base nn.Config:
// dimensions present in the space override the base; everything else keeps
// the base value.
func ToNNConfig(c Config, base nn.Config) (nn.Config, error) {
	out := base
	for d, dim := range c.space.Dims {
		v := dim.Values[c.idx[d]]
		switch dim.Name {
		case DimHiddenLayerSizes:
			shape, ok := v.([]int)
			if !ok {
				return out, fmt.Errorf("search: %s value %v is not []int", dim.Name, v)
			}
			out.HiddenLayerSizes = append([]int(nil), shape...)
		case DimActivation:
			act, err := nn.ParseActivation(v.(string))
			if err != nil {
				return out, err
			}
			out.Activation = act
		case DimSolver:
			sol, err := nn.ParseSolver(v.(string))
			if err != nil {
				return out, err
			}
			out.Solver = sol
		case DimLearningRateInit:
			f, ok := v.(float64)
			if !ok {
				return out, fmt.Errorf("search: %s value %v is not float64", dim.Name, v)
			}
			out.LearningRateInit = f
		case DimBatchSize:
			b, ok := v.(int)
			if !ok {
				return out, fmt.Errorf("search: %s value %v is not int", dim.Name, v)
			}
			out.BatchSize = b
		case DimLearningRate:
			sch, err := nn.ParseSchedule(v.(string))
			if err != nil {
				return out, err
			}
			out.LearningRate = sch
		case DimMomentum:
			f, ok := v.(float64)
			if !ok {
				return out, fmt.Errorf("search: %s value %v is not float64", dim.Name, v)
			}
			out.Momentum = f
		case DimEarlyStopping:
			b, ok := v.(bool)
			if !ok {
				return out, fmt.Errorf("search: %s value %v is not bool", dim.Name, v)
			}
			out.EarlyStopping = b
		default:
			return out, fmt.Errorf("search: unknown dimension %q", dim.Name)
		}
	}
	return out, nil
}

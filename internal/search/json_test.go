package search

import (
	"bytes"
	"strings"
	"testing"

	"enhancedbhpo/internal/nn"
)

const sampleSpaceJSON = `{
  "dimensions": [
    {"name": "hidden_layer_sizes", "values": [[30], [30, 30], [64]]},
    {"name": "activation", "values": ["relu", "tanh"]},
    {"name": "learning_rate_init", "values": [0.1, 0.01]},
    {"name": "batch_size", "values": [32, 64]},
    {"name": "early_stopping", "values": [true, false]}
  ]
}`

func TestReadSpaceJSON(t *testing.T) {
	s, err := ReadSpaceJSON(strings.NewReader(sampleSpaceJSON))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Size(); got != 3*2*2*2*2 {
		t.Fatalf("size = %d", got)
	}
	cfg := s.NewConfig([]int{2, 0, 1, 1, 0})
	nnCfg, err := ToNNConfig(cfg, nn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if nnCfg.HiddenLayerSizes[0] != 64 {
		t.Fatalf("hidden = %v", nnCfg.HiddenLayerSizes)
	}
	if nnCfg.BatchSize != 64 {
		t.Fatalf("batch = %d (type decoding wrong)", nnCfg.BatchSize)
	}
	if nnCfg.LearningRateInit != 0.01 {
		t.Fatalf("lr = %v", nnCfg.LearningRateInit)
	}
	if !nnCfg.EarlyStopping {
		t.Fatal("early stopping not decoded")
	}
}

func TestSpaceJSONRoundTrip(t *testing.T) {
	orig, err := TableIIISpace(8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSpaceJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpaceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != orig.Size() {
		t.Fatalf("round trip size %d, want %d", back.Size(), orig.Size())
	}
	// Every configuration must materialize identically.
	base := nn.DefaultConfig()
	idx := []int{3, 1, 2, 0, 1, 2, 1, 0}
	c1, err := ToNNConfig(orig.NewConfig(idx), base)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ToNNConfig(back.NewConfig(idx), base)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Activation != c2.Activation || c1.Solver != c2.Solver ||
		c1.LearningRateInit != c2.LearningRateInit || c1.BatchSize != c2.BatchSize ||
		c1.LearningRate != c2.LearningRate || c1.Momentum != c2.Momentum ||
		c1.EarlyStopping != c2.EarlyStopping {
		t.Fatalf("configs differ after round trip:\n%+v\n%+v", c1, c2)
	}
	if len(c1.HiddenLayerSizes) != len(c2.HiddenLayerSizes) {
		t.Fatal("hidden shapes differ")
	}
}

func TestReadSpaceJSONErrors(t *testing.T) {
	cases := map[string]string{
		"not json":        "nope",
		"unknown field":   `{"dims": []}`,
		"empty":           `{"dimensions": []}`,
		"unnamed":         `{"dimensions": [{"name": "", "values": [1]}]}`,
		"no values":       `{"dimensions": [{"name": "a", "values": []}]}`,
		"null value":      `{"dimensions": [{"name": "a", "values": [null]}]}`,
		"nested object":   `{"dimensions": [{"name": "a", "values": [{"x": 1}]}]}`,
		"float batch":     `{"dimensions": [{"name": "batch_size", "values": [32.5]}]}`,
		"bad shape":       `{"dimensions": [{"name": "hidden_layer_sizes", "values": [[1.5]]}]}`,
		"empty shape":     `{"dimensions": [{"name": "hidden_layer_sizes", "values": [[]]}]}`,
		"duplicate names": `{"dimensions": [{"name": "a", "values": [1]}, {"name": "a", "values": [2]}]}`,
	}
	for name, data := range cases {
		if _, err := ReadSpaceJSON(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

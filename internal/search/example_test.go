package search_test

import (
	"fmt"

	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/search"
)

// The paper's §IV-B HPO experiments search the first four Table III
// hyperparameters: 6·3·3·3 = 162 configurations.
func ExampleTableIIISpace() {
	space, err := search.TableIIISpace(4)
	if err != nil {
		panic(err)
	}
	fmt.Println("configurations:", space.Size())
	cfg := space.NewConfig([]int{4, 2, 1, 0})
	fmt.Println("one of them:", cfg)
	// Output:
	// configurations: 162
	// one of them: hidden_layer_sizes=[50] activation=relu solver=sgd learning_rate_init=0.1
}

// ToNNConfig materializes an abstract configuration onto a base nn.Config:
// searched dimensions override the base, everything else is kept.
func ExampleToNNConfig() {
	space, err := search.TableIIISpace(2)
	if err != nil {
		panic(err)
	}
	base := nn.DefaultConfig()
	base.MaxIter = 40 // not searched: preserved

	cfg, err := search.ToNNConfig(space.NewConfig([]int{1, 1}), base)
	if err != nil {
		panic(err)
	}
	fmt.Println("hidden:", cfg.HiddenLayerSizes)
	fmt.Println("activation:", cfg.Activation)
	fmt.Println("max iter:", cfg.MaxIter)
	// Output:
	// hidden: [30 30]
	// activation: tanh
	// max iter: 40
}

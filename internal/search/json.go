package search

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// JSON (de)serialization of spaces, so CLI users can search custom grids:
//
//	{
//	  "dimensions": [
//	    {"name": "hidden_layer_sizes", "values": [[30], [30, 30], [64]]},
//	    {"name": "activation", "values": ["relu", "tanh"]},
//	    {"name": "learning_rate_init", "values": [0.1, 0.01]},
//	    {"name": "batch_size", "values": [32, 64]},
//	    {"name": "early_stopping", "values": [true, false]}
//	  ]
//	}
//
// Value typing follows the dimension semantics used by ToNNConfig:
// numbers decode to int for integer-valued dimensions (batch_size) and
// float64 otherwise; arrays of numbers decode to []int layer shapes.

type jsonSpace struct {
	Dimensions []jsonDimension `json:"dimensions"`
}

type jsonDimension struct {
	Name   string            `json:"name"`
	Values []json.RawMessage `json:"values"`
}

// ReadSpaceJSON parses a Space from JSON.
func ReadSpaceJSON(r io.Reader) (*Space, error) {
	var js jsonSpace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("search: decoding space: %w", err)
	}
	s := &Space{}
	for _, jd := range js.Dimensions {
		dim := Dimension{Name: jd.Name}
		for vi, raw := range jd.Values {
			v, err := decodeValue(jd.Name, raw)
			if err != nil {
				return nil, fmt.Errorf("search: dimension %q value %d: %w", jd.Name, vi, err)
			}
			dim.Values = append(dim.Values, v)
		}
		s.Dims = append(s.Dims, dim)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteSpaceJSON renders the space as JSON.
func WriteSpaceJSON(w io.Writer, s *Space) error {
	if err := s.Validate(); err != nil {
		return err
	}
	js := jsonSpace{}
	for _, dim := range s.Dims {
		jd := jsonDimension{Name: dim.Name}
		for _, v := range dim.Values {
			raw, err := json.Marshal(v)
			if err != nil {
				return fmt.Errorf("search: encoding %q value %v: %w", dim.Name, v, err)
			}
			jd.Values = append(jd.Values, raw)
		}
		js.Dimensions = append(js.Dimensions, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// intValuedDimensions lists the dimensions whose numeric values are ints.
var intValuedDimensions = map[string]bool{
	DimBatchSize: true,
}

func decodeValue(dimName string, raw json.RawMessage) (any, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	switch t := v.(type) {
	case string:
		return t, nil
	case bool:
		return t, nil
	case float64:
		if intValuedDimensions[dimName] {
			if t != math.Trunc(t) {
				return nil, fmt.Errorf("non-integer value %v for integer dimension", t)
			}
			return int(t), nil
		}
		return t, nil
	case []any:
		shape := make([]int, len(t))
		for i, e := range t {
			f, ok := e.(float64)
			if !ok || f != math.Trunc(f) {
				return nil, fmt.Errorf("layer shape element %v is not an integer", e)
			}
			shape[i] = int(f)
		}
		if len(shape) == 0 {
			return nil, fmt.Errorf("empty layer shape")
		}
		return shape, nil
	default:
		return nil, fmt.Errorf("unsupported value type %T", v)
	}
}

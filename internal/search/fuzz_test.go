package search

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSpaceJSON exercises the space parser: no panics, and any
// accepted space must validate, enumerate and round-trip.
func FuzzReadSpaceJSON(f *testing.F) {
	f.Add(`{"dimensions":[{"name":"activation","values":["relu"]}]}`)
	f.Add(`{"dimensions":[{"name":"hidden_layer_sizes","values":[[30],[40,40]]}]}`)
	f.Add(`{"dimensions":[{"name":"batch_size","values":[32,64]}]}`)
	f.Add(`{"dimensions":[]}`)
	f.Add(`{`)
	f.Add(`{"dimensions":[{"name":"a","values":[1e999]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadSpaceJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		if vErr := s.Validate(); vErr != nil {
			t.Fatalf("accepted space fails validation: %v", vErr)
		}
		if s.Size() <= 0 {
			t.Fatalf("accepted space has size %d", s.Size())
		}
		// Enumerate a bounded prefix (huge spaces would be slow).
		if s.Size() <= 4096 {
			if got := len(s.Enumerate()); got != s.Size() {
				t.Fatalf("enumerated %d of %d", got, s.Size())
			}
		}
		var buf bytes.Buffer
		if wErr := WriteSpaceJSON(&buf, s); wErr != nil {
			t.Fatalf("accepted space fails to serialize: %v", wErr)
		}
		back, rErr := ReadSpaceJSON(&buf)
		if rErr != nil {
			t.Fatalf("round trip failed: %v", rErr)
		}
		if back.Size() != s.Size() {
			t.Fatalf("round trip size %d != %d", back.Size(), s.Size())
		}
	})
}

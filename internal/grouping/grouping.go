// Package grouping implements §III-A of the paper: constructing instance
// groups from feature clusters and label categories (Operation 1,
// GenGroups). The groups are built once before optimization starts and are
// then used by every subset-sampling and fold-construction step.
//
// The construction has two stages:
//
//  1. Per cluster, the top-k most frequent label categories claim their
//     instances for that cluster's group (k is derived from the category
//     count so that roughly one category per group is claimed first).
//  2. Remaining instances are assigned category by category to the group of
//     the cluster in which that category has the highest proportion.
package grouping

import (
	"fmt"
	"sort"

	"enhancedbhpo/internal/cluster"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/rng"
)

// Options configure group construction.
type Options struct {
	// V is the number of groups (= feature clusters). The paper recommends
	// 2–5 so that k_gen + k_spe can stay at the usual 5 folds. 0 selects 2.
	V int
	// RGroup is the balanced-clustering ratio (§III-A). 0 selects the
	// paper's 0.8.
	RGroup float64
	// RareClassRatio triggers rare-class merging (§III-A). 0 selects the
	// paper's 10%.
	RareClassRatio float64
	// RegressionBins is the number of magnitude bins for regression labels.
	// 0 selects 4.
	RegressionBins int
	// TopK is the number of top classes claimed per cluster in stage 1.
	// 0 derives it from the category and group counts.
	TopK int
	// KMeans carries inner clustering settings.
	KMeans cluster.KMeansOptions
	// UseElbow, when true, picks V in [2, 5] with the elbow heuristic
	// instead of using the fixed V.
	UseElbow bool
}

func (o Options) withDefaults() Options {
	if o.V <= 0 {
		o.V = 2
	}
	if o.RGroup <= 0 {
		o.RGroup = cluster.DefaultRGroup
	}
	if o.RareClassRatio <= 0 {
		o.RareClassRatio = dataset.DefaultRareClassRatio
	}
	if o.RegressionBins <= 0 {
		o.RegressionBins = 4
	}
	return o
}

// Groups is the outcome of Operation 1: a partition of the instances into v
// groups aligned with both feature and label structure.
type Groups struct {
	// Assign[i] is the group of instance i, in [0, V).
	Assign []int
	// V is the number of groups.
	V int
	// Members[g] lists the instance indices of group g.
	Members [][]int
	// FeatureCluster[i] is the k-means cluster of instance i (c_i^x).
	FeatureCluster []int
	// LabelCategory[i] is the label category of instance i (c_i^y), after
	// rare-class merging / regression binning.
	LabelCategory []int
	// NumCategories is the number of distinct label categories.
	NumCategories int
}

// Size returns the number of instances in group g.
func (g *Groups) Size(group int) int { return len(g.Members[group]) }

// Build runs the full §III-A pipeline on d: balanced feature clustering,
// label-category extraction, and Operation 1 group generation.
func Build(d *dataset.Dataset, opts Options, r *rng.RNG) (*Groups, error) {
	opts = opts.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.Len()
	v := opts.V
	if opts.UseElbow {
		chosen, err := cluster.Elbow(d.X, 2, 5, opts.KMeans, r.Split(7))
		if err != nil {
			return nil, err
		}
		v = chosen
	}
	if v > n {
		return nil, fmt.Errorf("grouping: v=%d exceeds n=%d", v, n)
	}
	res, err := cluster.BalancedKMeans(d.X, cluster.BalancedOptions{
		K:      v,
		RGroup: opts.RGroup,
		KMeans: opts.KMeans,
	}, r.Split(11))
	if err != nil {
		return nil, err
	}
	labels, numCats := dataset.LabelCategories(d, opts.RareClassRatio, opts.RegressionBins)
	assign := GenGroups(res.Assign, v, labels, numCats, opts.TopK)
	g := &Groups{
		Assign:         assign,
		V:              v,
		Members:        membersOf(assign, v),
		FeatureCluster: res.Assign,
		LabelCategory:  labels,
		NumCategories:  numCats,
	}
	return g, nil
}

// GenGroups is Operation 1 from the paper: it merges feature clusters
// (clusterOf, v clusters) with label categories (catOf, numCats categories)
// into v groups and returns the per-instance group assignment.
//
// Stage 1 walks the clusters; in cluster j the topK most frequent categories
// claim their cluster-j instances for group j. Stage 2 assigns each leftover
// instance (category i, cluster j) to the group of the cluster where
// category i is proportionally strongest.
func GenGroups(clusterOf []int, v int, catOf []int, numCats, topK int) []int {
	n := len(clusterOf)
	if len(catOf) != n {
		panic(fmt.Sprintf("grouping: %d clusters vs %d categories", n, len(catOf)))
	}
	if topK <= 0 {
		// Roughly one category claimed per group first; at least 1.
		topK = (numCats + v - 1) / v
		if topK < 1 {
			topK = 1
		}
	}
	// counts[i][j] = #instances with category i in cluster j (Line 2 of
	// Operation 1).
	counts := make([][]int, numCats)
	for i := range counts {
		counts[i] = make([]int, v)
	}
	for idx, j := range clusterOf {
		counts[catOf[idx]][j]++
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Stage 1: per cluster, the top-k categories claim their instances.
	claimed := make([][]bool, numCats) // claimed[i][j]: category i claimed in cluster j
	for i := range claimed {
		claimed[i] = make([]bool, v)
	}
	for j := 0; j < v; j++ {
		top := topCategories(counts, j, topK)
		for _, cat := range top {
			claimed[cat][j] = true
		}
	}
	for idx := 0; idx < n; idx++ {
		j, cat := clusterOf[idx], catOf[idx]
		if claimed[cat][j] {
			assign[idx] = j
		}
	}
	// Stage 2: each remaining category goes to the group of its strongest
	// cluster (argmax over the category's cluster proportions).
	strongest := make([]int, numCats)
	for i := 0; i < numCats; i++ {
		best, bestCnt := 0, -1
		for j := 0; j < v; j++ {
			if counts[i][j] > bestCnt {
				best, bestCnt = j, counts[i][j]
			}
		}
		strongest[i] = best
	}
	for idx := 0; idx < n; idx++ {
		if assign[idx] < 0 {
			assign[idx] = strongest[catOf[idx]]
		}
	}
	return assign
}

// topCategories returns the indices of the k categories with the highest
// counts in cluster j (ties broken by category order for determinism).
func topCategories(counts [][]int, j, k int) []int {
	type pair struct{ cat, cnt int }
	pairs := make([]pair, 0, len(counts))
	for cat := range counts {
		if counts[cat][j] > 0 {
			pairs = append(pairs, pair{cat, counts[cat][j]})
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].cnt > pairs[b].cnt })
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = pairs[i].cat
	}
	return out
}

func membersOf(assign []int, v int) [][]int {
	out := make([][]int, v)
	for i, g := range assign {
		out[g] = append(out[g], i)
	}
	return out
}

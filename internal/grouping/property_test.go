package grouping

import (
	"testing"
	"testing/quick"

	"enhancedbhpo/internal/rng"
)

// Property tests for Operation 1's structural invariants.

func TestGenGroupsPropertyTotalAssignment(t *testing.T) {
	f := func(seed uint64, nRaw, vRaw, cRaw uint8) bool {
		r := rng.New(seed)
		n := 10 + int(nRaw)%200
		v := 2 + int(vRaw)%4    // 2..5 clusters, the paper's range
		cats := 2 + int(cRaw)%8 // 2..9 label categories
		clusterOf := make([]int, n)
		catOf := make([]int, n)
		for i := 0; i < n; i++ {
			clusterOf[i] = r.Intn(v)
			catOf[i] = r.Intn(cats)
		}
		assign := GenGroups(clusterOf, v, catOf, cats, 0)
		if len(assign) != n {
			return false
		}
		for _, g := range assign {
			if g < 0 || g >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGenGroupsPropertyCategoryCohesion(t *testing.T) {
	// Stage 2 assigns every *unclaimed* category wholesale to one group:
	// therefore each (category, cluster) pair must land in a single group.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 120
		v, cats := 3, 4
		clusterOf := make([]int, n)
		catOf := make([]int, n)
		for i := 0; i < n; i++ {
			clusterOf[i] = r.Intn(v)
			catOf[i] = r.Intn(cats)
		}
		assign := GenGroups(clusterOf, v, catOf, cats, 1)
		type key struct{ cat, cluster int }
		seen := map[key]int{}
		for i := 0; i < n; i++ {
			k := key{catOf[i], clusterOf[i]}
			if prev, ok := seen[k]; ok {
				if prev != assign[i] {
					return false
				}
			} else {
				seen[k] = assign[i]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenGroupsDeterministic(t *testing.T) {
	r := rng.New(77)
	n := 100
	clusterOf := make([]int, n)
	catOf := make([]int, n)
	for i := 0; i < n; i++ {
		clusterOf[i] = r.Intn(3)
		catOf[i] = r.Intn(3)
	}
	a1 := GenGroups(clusterOf, 3, catOf, 3, 1)
	a2 := GenGroups(clusterOf, 3, catOf, 3, 1)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("GenGroups not deterministic")
		}
	}
}

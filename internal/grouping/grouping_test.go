package grouping

import (
	"testing"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

func TestGenGroupsCoversAllInstances(t *testing.T) {
	// 3 clusters, 3 categories as in the paper's Figure 2(c).
	clusterOf := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2}
	catOf := []int{0, 0, 1, 1, 1, 2, 2, 2, 0, 2, 0, 1}
	assign := GenGroups(clusterOf, 3, catOf, 3, 1)
	if len(assign) != len(clusterOf) {
		t.Fatalf("assign length %d", len(assign))
	}
	for i, g := range assign {
		if g < 0 || g >= 3 {
			t.Fatalf("instance %d unassigned or out of range: %d", i, g)
		}
	}
}

func TestGenGroupsTopClassClaimsCluster(t *testing.T) {
	// Cluster 0 dominated by category 0; those instances must land in
	// group 0 via stage 1.
	clusterOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	catOf := []int{0, 0, 0, 1, 1, 1, 1, 0}
	assign := GenGroups(clusterOf, 2, catOf, 2, 1)
	for i := 0; i < 3; i++ {
		if assign[i] != 0 {
			t.Fatalf("dominant-category instance %d assigned to group %d", i, assign[i])
		}
	}
	for i := 4; i < 7; i++ {
		if assign[i] != 1 {
			t.Fatalf("dominant-category instance %d assigned to group %d", i, assign[i])
		}
	}
}

func TestGenGroupsRemainderFollowsStrongestCluster(t *testing.T) {
	// Category 1 is strongest in cluster 1: the stray category-1 instance
	// sitting in cluster 0 must be pulled to group 1 in stage 2 (top-1
	// claims category 0 for cluster 0, category 1 for cluster 1).
	clusterOf := []int{0, 0, 0, 0, 1, 1, 1, 0}
	catOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	assign := GenGroups(clusterOf, 2, catOf, 2, 1)
	if assign[7] != 1 {
		t.Fatalf("stray instance assigned to %d, want 1", assign[7])
	}
}

func TestGenGroupsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	GenGroups([]int{0, 1}, 2, []int{0}, 1, 1)
}

func clusteredDataset(seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	n := 240
	x := mat.NewDense(n, 3)
	class := make([]int, n)
	for i := 0; i < n; i++ {
		// Two feature blobs; labels correlated with blobs but noisy.
		blob := i % 2
		for j := 0; j < 3; j++ {
			center := -4.0
			if blob == 1 {
				center = 4.0
			}
			x.Set(i, j, center+r.Norm())
		}
		class[i] = blob
		if r.Float64() < 0.2 {
			class[i] = 1 - blob
		}
	}
	return &dataset.Dataset{Name: "grp", Kind: dataset.Classification, X: x, Class: class, NumClasses: 2}
}

func TestBuildProducesValidGroups(t *testing.T) {
	d := clusteredDataset(1)
	g, err := Build(d, Options{V: 2}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.V != 2 {
		t.Fatalf("V = %d", g.V)
	}
	if len(g.Assign) != d.Len() {
		t.Fatalf("assign covers %d of %d", len(g.Assign), d.Len())
	}
	total := 0
	for gi := 0; gi < g.V; gi++ {
		total += g.Size(gi)
		if g.Size(gi) == 0 {
			t.Fatalf("group %d empty", gi)
		}
	}
	if total != d.Len() {
		t.Fatalf("groups partition %d of %d", total, d.Len())
	}
	// Members consistent with Assign.
	for gi, members := range g.Members {
		for _, idx := range members {
			if g.Assign[idx] != gi {
				t.Fatalf("member %d of group %d has assign %d", idx, gi, g.Assign[idx])
			}
		}
	}
	if len(g.FeatureCluster) != d.Len() || len(g.LabelCategory) != d.Len() {
		t.Fatal("per-instance metadata missing")
	}
}

func TestBuildGroupsAlignWithFeatureBlobs(t *testing.T) {
	d := clusteredDataset(3)
	g, err := Build(d, Options{V: 2}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// The two feature blobs are far apart; groups should essentially follow
	// them. Count agreement up to label permutation.
	agree := 0
	for i := 0; i < d.Len(); i++ {
		blob := i % 2
		if g.Assign[i] == blob {
			agree++
		}
	}
	frac := float64(agree) / float64(d.Len())
	if frac < 0.5 {
		frac = 1 - frac
	}
	// Labels carry 20% noise and stage 2 reassigns whole categories, so
	// alignment is high but not perfect.
	if frac < 0.75 {
		t.Fatalf("groups align with blobs only %v", frac)
	}
}

func TestBuildRegression(t *testing.T) {
	r := rng.New(5)
	n := 120
	x := mat.NewDense(n, 2)
	target := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Norm())
		x.Set(i, 1, r.Norm())
		target[i] = x.At(i, 0) * 3
	}
	d := &dataset.Dataset{Name: "reg", Kind: dataset.Regression, X: x, Target: target}
	g, err := Build(d, Options{V: 3, RegressionBins: 3}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCategories != 3 {
		t.Fatalf("regression categories = %d", g.NumCategories)
	}
	if g.V != 3 {
		t.Fatalf("V = %d", g.V)
	}
}

func TestBuildWithElbow(t *testing.T) {
	d := clusteredDataset(7)
	g, err := Build(d, Options{UseElbow: true}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if g.V < 2 || g.V > 5 {
		t.Fatalf("elbow V = %d out of [2,5]", g.V)
	}
}

func TestBuildErrors(t *testing.T) {
	d := clusteredDataset(9)
	if _, err := Build(d, Options{V: d.Len() + 1}, rng.New(1)); err == nil {
		t.Error("v>n accepted")
	}
	bad := clusteredDataset(10)
	bad.Class = bad.Class[:5]
	if _, err := Build(bad, Options{V: 2}, rng.New(1)); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	d := clusteredDataset(11)
	g1, err := Build(d, Options{V: 2}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Build(d, Options{V: 2}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Assign {
		if g1.Assign[i] != g2.Assign[i] {
			t.Fatal("same seed produced different groups")
		}
	}
}

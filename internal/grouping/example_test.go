package grouping_test

import (
	"fmt"

	"enhancedbhpo/internal/grouping"
)

// GenGroups (Operation 1) merges feature clusters with label categories.
// Here cluster 0 is dominated by class 0 and cluster 1 by class 1; the
// stray class-1 instance sitting in cluster 0 is pulled to group 1 in
// stage 2 because class 1 is proportionally strongest in cluster 1.
func ExampleGenGroups() {
	clusterOf := []int{0, 0, 0, 0, 1, 1, 1, 0}
	classOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	groups := grouping.GenGroups(clusterOf, 2, classOf, 2, 1)
	fmt.Println(groups)
	// Output:
	// [0 0 0 0 1 1 1 1]
}

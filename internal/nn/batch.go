package nn

import (
	"fmt"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// Lockstep fused training: FitBatch trains several independent trials at
// once, grouping the per-layer matmuls of their concurrent minibatch
// steps into single mat.Batch* dispatches. Grouping changes *when* each
// matmul runs, never the order of any trial's own arithmetic, so every
// model FitBatch produces is bitwise-identical to a solo Fit of the same
// item — the invariant the fused evaluator in internal/serve relies on
// to batch concurrent pool slots without perturbing a single score.

// BatchItem is one trial's training input for FitBatch.
type BatchItem struct {
	Train *dataset.Dataset
	Cfg   Config
}

// BatchStats reports how much work the lockstep trainer actually fused.
type BatchStats struct {
	// Steps counts lockstep minibatch steps where at least two trials
	// were active, i.e. their layer matmuls shared a grouped dispatch.
	Steps int64
	// StackedRows sums the minibatch rows stacked across trials in those
	// fused steps.
	StackedRows int64
}

// batchTrainer carries one trial's training state through the lockstep
// epoch loop.
type batchTrainer struct {
	m      *Model
	st     *sgdState
	es     epochState
	valSet *dataset.Dataset
	done   bool

	// Per-step staging, valid from stepBatch through applyUpdate.
	bx, bt *mat.Dense
	acts   []*mat.Dense
	deltas []*mat.Dense
	delta  *mat.Dense
	loss   float64

	epochLoss float64
}

// groupBufs are the reusable Dense-header slices handed to the grouped
// dispatchers, so the lockstep inner loop allocates nothing per step.
type groupBufs struct{ dsts, as, bs []*mat.Dense }

func (g *groupBufs) reset() { g.dsts, g.as, g.bs = g.dsts[:0], g.as[:0], g.bs[:0] }

// FitBatch trains the given trials in lockstep: each epoch every live
// trial shuffles and sweeps its own minibatches, but the per-layer
// matmuls of the trials' concurrent steps run through one grouped
// mat.Batch* dispatch spread over at most workers goroutines
// (0 = GOMAXPROCS). All per-trial arithmetic — shuffling, bias,
// activation, softmax, solver updates, convergence checks — runs on
// that trial's own state in exactly the order Fit uses, so every
// returned model is bitwise-identical to a solo Fit of the same item
// for any group composition and worker count.
//
// Trials may differ in architecture, dataset size, batch size and epoch
// count; a trial that converges early simply drops out of the group.
// L-BFGS items are rejected (its line search has no lockstep
// decomposition) — callers route those to Fit.
func FitBatch(items []BatchItem, workers int) ([]*Model, BatchStats, error) {
	var stats BatchStats
	models := make([]*Model, len(items))
	if len(items) == 0 {
		return models, stats, nil
	}
	ts := make([]*batchTrainer, len(items))
	for i, it := range items {
		cfg, train := it.Cfg, it.Train
		if err := cfg.Validate(); err != nil {
			return nil, stats, fmt.Errorf("nn: batch item %d: %w", i, err)
		}
		if err := train.Validate(); err != nil {
			return nil, stats, fmt.Errorf("nn: batch item %d: %w", i, err)
		}
		if train.Len() < 2 {
			return nil, stats, fmt.Errorf("nn: batch item %d: need at least 2 training instances, got %d", i, train.Len())
		}
		if cfg.Solver == LBFGS {
			return nil, stats, fmt.Errorf("nn: batch item %d: lbfgs is not lockstep-batchable", i)
		}
		// From here on the setup mirrors Fit line for line: same RNG
		// stream splits, same validation carve-out, same state init.
		r := rng.New(cfg.Seed ^ 0xabcdef1234)
		var outputs int
		softmax := train.Kind == dataset.Classification
		if softmax {
			outputs = train.NumClasses
		} else {
			outputs = 1
		}
		nw := newNetwork(train.Features(), cfg.HiddenLayerSizes, outputs, cfg.Activation, softmax, r.Split(1))
		nw.workers = cfg.KernelWorkers
		m := &Model{cfg: cfg, nw: nw, kind: train.Kind, numClasses: train.NumClasses}

		fitSet := train
		var valSet *dataset.Dataset
		if cfg.EarlyStopping && train.Len() >= 10 {
			f, v := splitValidation(train, cfg.ValidationFraction, r.Split(2))
			fitSet, valSet = f, v
		}
		x := fitSet.X
		target := targetMatrix(fitSet)
		st := m.newSGDState(x, target, r.Split(3))
		m.LossCurve = make([]float64, 0, cfg.MaxIter)
		models[i] = m
		ts[i] = &batchTrainer{m: m, st: st, es: newEpochState(), valSet: valSet}
	}

	live := make([]*batchTrainer, 0, len(ts))
	step := make([]*batchTrainer, 0, len(ts))
	var buf groupBufs
	for epoch := 0; ; epoch++ {
		live = live[:0]
		for _, t := range ts {
			if !t.done && epoch < t.m.cfg.MaxIter {
				live = append(live, t)
			}
		}
		if len(live) == 0 {
			break
		}
		maxSteps := 0
		for _, t := range live {
			t.st.beginEpoch()
			t.epochLoss = 0
			if nb := t.st.numBatches(); nb > maxSteps {
				maxSteps = nb
			}
		}
		for s := 0; s < maxSteps; s++ {
			step = step[:0]
			for _, t := range live {
				if s < t.st.numBatches() {
					step = append(step, t)
				}
			}
			for _, t := range step {
				t.bx, t.bt = t.st.stepBatch(s)
			}
			lossGradBatch(step, workers, &buf)
			for _, t := range step {
				t.epochLoss += t.loss
				t.st.applyUpdate()
			}
			if len(step) > 1 {
				stats.Steps++
				for _, t := range step {
					stats.StackedRows += int64(t.bx.Rows())
				}
			}
		}
		for _, t := range live {
			mean := t.epochLoss / float64(t.st.numBatches())
			if t.m.observeEpoch(&t.es, t.st, t.valSet, mean) {
				t.done = true
			}
		}
	}
	return models, stats, nil
}

// lossGradBatch computes each active trainer's regularized minibatch
// loss and gradient (into t.loss and t.st.grad), grouping the per-layer
// matmul phases of all trainers into single mat.Batch* dispatches.
// Everything else — bias add, activation, softmax, delta folding, L2 —
// runs per trainer on its own buffers in the same order as a solo
// lossGrad call, so each trainer's result is bitwise-identical to solo
// execution regardless of grouping or worker count. Trainers may have
// different depths: a shallow trial simply sits out the layer indices
// it does not have (above its depth on the way up, before its top layer
// on the way down), which preserves its own solo layer order exactly.
func lossGradBatch(ts []*batchTrainer, workers int, buf *groupBufs) {
	maxL := 0
	for _, t := range ts {
		nw := t.m.nw
		s := nw.scratchFor(t.bx.Rows())
		s.acts[0] = t.bx
		t.acts = s.acts
		t.deltas = s.deltas
		if L := nw.layers(); L > maxL {
			maxL = L
		}
	}

	// Forward.
	for l := 0; l < maxL; l++ {
		buf.reset()
		for _, t := range ts {
			if l < t.m.nw.layers() {
				buf.dsts = append(buf.dsts, t.acts[l+1])
				buf.as = append(buf.as, t.acts[l])
				buf.bs = append(buf.bs, t.m.nw.weightMat(l))
			}
		}
		mat.BatchMulWorkers(buf.dsts, buf.as, buf.bs, workers)
		for _, t := range ts {
			nw := t.m.nw
			if l >= nw.layers() {
				continue
			}
			z := t.acts[l+1]
			mat.AddRowVector(z, nw.biases(l))
			if l < nw.layers()-1 {
				applyActivation(z, nw.activation)
			} else if nw.softmaxOut {
				softmaxRows(z)
			}
		}
	}

	// Output delta and data loss.
	for _, t := range ts {
		nw := t.m.nw
		out := t.acts[nw.layers()]
		delta := t.deltas[nw.layers()]
		copy(delta.Data(), out.Data())
		if nw.softmaxOut {
			t.loss = crossEntropy(out, t.bt)
		} else {
			t.loss = halfSquaredError(out, t.bt)
		}
		delta.Sub(t.bt)
		delta.Scale(1 / float64(t.bx.Rows()))
		t.delta = delta
	}

	// Backward, descending global layer index.
	for l := maxL - 1; l >= 0; l-- {
		buf.reset()
		for _, t := range ts {
			if l < t.m.nw.layers() {
				buf.dsts = append(buf.dsts, t.m.nw.gwBuf(l))
				buf.as = append(buf.as, t.acts[l])
				buf.bs = append(buf.bs, t.delta)
			}
		}
		mat.BatchTMulWorkers(buf.dsts, buf.as, buf.bs, workers)
		for _, t := range ts {
			nw := t.m.nw
			if l >= nw.layers() {
				continue
			}
			n := t.bx.Rows()
			grad := t.st.grad
			gwData := nw.gwBuf(l).Data()
			w := nw.weights(l)
			gSlice := grad[nw.wOff[l] : nw.wOff[l]+len(w)]
			alpha := t.m.cfg.Alpha
			for i, wv := range w {
				gSlice[i] = gwData[i] + alpha*wv/float64(n)
			}
			mat.ColSumsInto(grad[nw.bOff[l]:nw.bOff[l]+nw.dims[l+1]], t.delta)
		}
		if l == 0 {
			break
		}
		buf.reset()
		for _, t := range ts {
			if l < t.m.nw.layers() {
				buf.dsts = append(buf.dsts, t.deltas[l])
				buf.as = append(buf.as, t.delta)
				buf.bs = append(buf.bs, t.m.nw.weightMat(l))
			}
		}
		mat.BatchMulTWorkers(buf.dsts, buf.as, buf.bs, workers)
		for _, t := range ts {
			nw := t.m.nw
			if l >= nw.layers() {
				continue
			}
			prev := t.deltas[l]
			applyActivationDeriv(prev, t.acts[l], nw.activation)
			t.delta = prev
		}
	}

	// L2 penalty on weights only, matching lossGrad.
	for _, t := range ts {
		nw := t.m.nw
		var reg float64
		for l := 0; l < nw.layers(); l++ {
			for _, wv := range nw.weights(l) {
				reg += wv * wv
			}
		}
		t.loss += 0.5 * t.m.cfg.Alpha * reg / float64(t.bx.Rows())
	}
}

package nn

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/metrics"
	"enhancedbhpo/internal/rng"
)

// Model is a trained MLP.
type Model struct {
	cfg        Config
	nw         *network
	kind       dataset.Kind
	numClasses int
	// LossCurve records the training loss after each epoch/iteration.
	LossCurve []float64
	// Epochs is the number of epochs/iterations actually run.
	Epochs int
}

// Fit trains an MLP on train. Classification datasets get a softmax
// classifier over train.NumClasses classes; regression datasets get a
// single-output regressor. Training is deterministic given cfg.Seed.
func Fit(train *dataset.Dataset, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.Len() < 2 {
		return nil, fmt.Errorf("nn: need at least 2 training instances, got %d", train.Len())
	}
	r := rng.New(cfg.Seed ^ 0xabcdef1234)
	var outputs int
	softmax := train.Kind == dataset.Classification
	if softmax {
		outputs = train.NumClasses
	} else {
		outputs = 1
	}
	nw := newNetwork(train.Features(), cfg.HiddenLayerSizes, outputs, cfg.Activation, softmax, r.Split(1))
	m := &Model{cfg: cfg, nw: nw, kind: train.Kind, numClasses: train.NumClasses}

	fitSet := train
	var valSet *dataset.Dataset
	if cfg.EarlyStopping && train.Len() >= 10 {
		f, v := splitValidation(train, cfg.ValidationFraction, r.Split(2))
		fitSet, valSet = f, v
	}
	x := fitSet.X
	target := targetMatrix(fitSet)

	switch cfg.Solver {
	case LBFGS:
		m.fitLBFGS(x, target)
	case SGD, Adam:
		m.fitStochastic(x, target, valSet, r.Split(3))
	default:
		return nil, fmt.Errorf("nn: unknown solver %v", cfg.Solver)
	}
	return m, nil
}

// splitValidation carves a validation holdout off train (stratified for
// classification).
func splitValidation(train *dataset.Dataset, fraction float64, r *rng.RNG) (fit, val *dataset.Dataset) {
	n := train.Len()
	k := int(float64(n) * fraction)
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	valIdx := train.StratifiedSample(r, k)
	inVal := make([]bool, n)
	for _, i := range valIdx {
		inVal[i] = true
	}
	fitIdx := make([]int, 0, n-k)
	for i := 0; i < n; i++ {
		if !inVal[i] {
			fitIdx = append(fitIdx, i)
		}
	}
	return train.Select(fitIdx), train.Select(valIdx)
}

// targetMatrix builds the training target: one-hot rows for classification,
// a single column of values for regression.
func targetMatrix(d *dataset.Dataset) *mat.Dense {
	n := d.Len()
	if d.Kind == dataset.Classification {
		t := mat.NewDense(n, d.NumClasses)
		for i, c := range d.Class {
			t.Set(i, c, 1)
		}
		return t
	}
	t := mat.NewDense(n, 1)
	for i, v := range d.Target {
		t.Set(i, 0, v)
	}
	return t
}

// fitStochastic runs the sgd/adam epoch loop with mini-batches, learning
// rate schedules, early stopping and the no-improvement convergence check.
func (m *Model) fitStochastic(x, target *mat.Dense, valSet *dataset.Dataset, r *rng.RNG) {
	cfg := m.cfg
	n := x.Rows()
	batch := cfg.BatchSize
	if batch > n {
		batch = n
	}
	p := len(m.nw.params)
	grad := make([]float64, p)
	var velocity, adamM, adamV []float64
	if cfg.Solver == SGD {
		velocity = make([]float64, p)
	} else {
		adamM = make([]float64, p)
		adamV = make([]float64, p)
	}
	lr := cfg.LearningRateInit
	bestLoss := math.Inf(1)
	bestVal := math.Inf(-1)
	noImprove := 0
	adaptiveStall := 0
	var adamT int
	bx := mat.NewDense(batch, x.Cols())
	bt := mat.NewDense(batch, target.Cols())
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.MaxIter; epoch++ {
		r.Shuffle(order)
		var epochLoss float64
		var batches int
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			size := end - start
			cbx, cbt := bx, bt
			if size != batch {
				cbx = mat.NewDense(size, x.Cols())
				cbt = mat.NewDense(size, target.Cols())
			}
			for bi := 0; bi < size; bi++ {
				src := order[start+bi]
				copy(cbx.Row(bi), x.Row(src))
				copy(cbt.Row(bi), target.Row(src))
			}
			loss := m.nw.lossGrad(cbx, cbt, cfg.Alpha, grad)
			epochLoss += loss
			batches++
			switch cfg.Solver {
			case SGD:
				effLR := lr
				if cfg.LearningRate == InvScaling {
					t := float64(epoch*((n+batch-1)/batch) + batches)
					effLR = cfg.LearningRateInit / math.Pow(t, cfg.PowerT)
				}
				if cfg.Nesterov {
					// Nesterov look-ahead in the standard reformulation
					// (sklearn's): v ← μ·v − lr·∇; params += μ·v − lr·∇.
					for i := range velocity {
						velocity[i] = cfg.Momentum*velocity[i] - effLR*grad[i]
						m.nw.params[i] += cfg.Momentum*velocity[i] - effLR*grad[i]
					}
				} else {
					for i := range velocity {
						velocity[i] = cfg.Momentum*velocity[i] - effLR*grad[i]
						m.nw.params[i] += velocity[i]
					}
				}
			case Adam:
				adamT++
				const beta1, beta2, eps = 0.9, 0.999, 1e-8
				b1c := 1 - math.Pow(beta1, float64(adamT))
				b2c := 1 - math.Pow(beta2, float64(adamT))
				for i := range adamM {
					adamM[i] = beta1*adamM[i] + (1-beta1)*grad[i]
					adamV[i] = beta2*adamV[i] + (1-beta2)*grad[i]*grad[i]
					m.nw.params[i] -= lr * (adamM[i] / b1c) / (math.Sqrt(adamV[i]/b2c) + eps)
				}
			}
		}
		epochLoss /= float64(batches)
		m.LossCurve = append(m.LossCurve, epochLoss)
		m.Epochs = epoch + 1

		// Convergence / early stopping bookkeeping.
		if valSet != nil {
			score := m.Score(valSet)
			if score > bestVal+cfg.Tol {
				bestVal = score
				noImprove = 0
			} else {
				noImprove++
			}
		} else {
			if epochLoss < bestLoss-cfg.Tol {
				bestLoss = epochLoss
				noImprove = 0
			} else {
				noImprove++
			}
		}
		// Adaptive schedule: halve-by-5 when the loss stalls twice in a row.
		if cfg.Solver == SGD && cfg.LearningRate == Adaptive {
			if len(m.LossCurve) >= 2 && epochLoss > m.LossCurve[len(m.LossCurve)-2]-cfg.Tol {
				adaptiveStall++
			} else {
				adaptiveStall = 0
			}
			if adaptiveStall >= 2 {
				lr /= 5
				adaptiveStall = 0
				if lr < 1e-6 {
					break
				}
			}
		}
		if noImprove >= cfg.NIterNoChange {
			break
		}
	}
}

// Predict returns the predicted class for each row of d (classification
// models only).
func (m *Model) Predict(d *dataset.Dataset) []int {
	if m.kind != dataset.Classification {
		panic("nn: Predict on regression model")
	}
	proba := m.PredictProba(d)
	out := make([]int, len(proba))
	for i, row := range proba {
		best, bestP := 0, row[0]
		for c, p := range row {
			if p > bestP {
				best, bestP = c, p
			}
		}
		out[i] = best
	}
	return out
}

// PredictProba returns the class-probability rows for d.
func (m *Model) PredictProba(d *dataset.Dataset) [][]float64 {
	if m.kind != dataset.Classification {
		panic("nn: PredictProba on regression model")
	}
	acts := m.nw.forwardPass(d.X)
	out := acts[len(acts)-1]
	n := out.Rows()
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = append([]float64(nil), out.Row(i)...)
	}
	return rows
}

// PredictReg returns the predicted targets for d (regression models only).
func (m *Model) PredictReg(d *dataset.Dataset) []float64 {
	if m.kind != dataset.Regression {
		panic("nn: PredictReg on classification model")
	}
	acts := m.nw.forwardPass(d.X)
	out := acts[len(acts)-1]
	n := out.Rows()
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = out.At(i, 0)
	}
	return vals
}

// Score returns the model's default metric on d: accuracy for
// classification, R² for regression — matching the paper's Table IV
// reporting (F1 is available through ScoreF1 for imbalanced datasets).
func (m *Model) Score(d *dataset.Dataset) float64 {
	if m.kind == dataset.Classification {
		return metrics.Accuracy(m.Predict(d), d.Class)
	}
	return metrics.R2(m.PredictReg(d), d.Target)
}

// ScoreF1 returns binary F1 for 2-class models and macro F1 otherwise.
func (m *Model) ScoreF1(d *dataset.Dataset) float64 {
	if m.kind != dataset.Classification {
		panic("nn: ScoreF1 on regression model")
	}
	pred := m.Predict(d)
	if m.numClasses == 2 {
		return metrics.F1Binary(pred, d.Class)
	}
	return metrics.F1Macro(pred, d.Class, m.numClasses)
}

// NumParams returns the size of the flat parameter vector.
func (m *Model) NumParams() int { return len(m.nw.params) }

package nn

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/metrics"
	"enhancedbhpo/internal/rng"
)

// Model is a trained MLP.
type Model struct {
	cfg        Config
	nw         *network
	kind       dataset.Kind
	numClasses int
	// LossCurve records the training loss after each epoch/iteration.
	LossCurve []float64
	// Epochs is the number of epochs/iterations actually run.
	Epochs int
}

// Fit trains an MLP on train. Classification datasets get a softmax
// classifier over train.NumClasses classes; regression datasets get a
// single-output regressor. Training is deterministic given cfg.Seed.
func Fit(train *dataset.Dataset, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.Len() < 2 {
		return nil, fmt.Errorf("nn: need at least 2 training instances, got %d", train.Len())
	}
	r := rng.New(cfg.Seed ^ 0xabcdef1234)
	var outputs int
	softmax := train.Kind == dataset.Classification
	if softmax {
		outputs = train.NumClasses
	} else {
		outputs = 1
	}
	nw := newNetwork(train.Features(), cfg.HiddenLayerSizes, outputs, cfg.Activation, softmax, r.Split(1))
	nw.workers = cfg.KernelWorkers
	m := &Model{cfg: cfg, nw: nw, kind: train.Kind, numClasses: train.NumClasses}

	fitSet := train
	var valSet *dataset.Dataset
	if cfg.EarlyStopping && train.Len() >= 10 {
		f, v := splitValidation(train, cfg.ValidationFraction, r.Split(2))
		fitSet, valSet = f, v
	}
	x := fitSet.X
	target := targetMatrix(fitSet)

	switch cfg.Solver {
	case LBFGS:
		m.fitLBFGS(x, target)
	case SGD, Adam:
		m.fitStochastic(x, target, valSet, r.Split(3))
	default:
		return nil, fmt.Errorf("nn: unknown solver %v", cfg.Solver)
	}
	return m, nil
}

// splitValidation carves a validation holdout off train (stratified for
// classification).
func splitValidation(train *dataset.Dataset, fraction float64, r *rng.RNG) (fit, val *dataset.Dataset) {
	n := train.Len()
	k := int(float64(n) * fraction)
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	valIdx := train.StratifiedSample(r, k)
	inVal := make([]bool, n)
	for _, i := range valIdx {
		inVal[i] = true
	}
	fitIdx := make([]int, 0, n-k)
	for i := 0; i < n; i++ {
		if !inVal[i] {
			fitIdx = append(fitIdx, i)
		}
	}
	return train.Select(fitIdx), train.Select(valIdx)
}

// targetMatrix builds the training target: one-hot rows for classification,
// a single column of values for regression.
func targetMatrix(d *dataset.Dataset) *mat.Dense {
	n := d.Len()
	if d.Kind == dataset.Classification {
		t := mat.NewDense(n, d.NumClasses)
		for i, c := range d.Class {
			t.Set(i, c, 1)
		}
		return t
	}
	t := mat.NewDense(n, 1)
	for i, v := range d.Target {
		t.Set(i, 0, v)
	}
	return t
}

// sgdState holds every buffer the stochastic solvers need so the epoch
// loop allocates nothing in steady state (pinned by the AllocsPerRun
// regression test). The minibatch buffers come in two sizes — the full
// batch and the n%batch tail — both preallocated up front.
type sgdState struct {
	m         *Model
	x, target *mat.Dense
	n, batch  int
	r         *rng.RNG

	grad                   []float64
	velocity, adamM, adamV []float64
	lr                     float64
	// step is the global minibatch counter driving the invscaling
	// schedule (equals epoch*batchesPerEpoch + batchInEpoch, 1-based).
	step  int
	adamT int

	order          []int
	bx, bt         *mat.Dense // full-size minibatch buffers
	tailBx, tailBt *mat.Dense // n%batch remainder buffers (nil when none)
}

func (m *Model) newSGDState(x, target *mat.Dense, r *rng.RNG) *sgdState {
	cfg := m.cfg
	n := x.Rows()
	batch := cfg.BatchSize
	if batch > n {
		batch = n
	}
	p := len(m.nw.params)
	st := &sgdState{
		m: m, x: x, target: target, n: n, batch: batch, r: r,
		grad: make([]float64, p),
		lr:   cfg.LearningRateInit,
		bx:   mat.NewDense(batch, x.Cols()),
		bt:   mat.NewDense(batch, target.Cols()),
	}
	if cfg.Solver == SGD {
		st.velocity = make([]float64, p)
	} else {
		st.adamM = make([]float64, p)
		st.adamV = make([]float64, p)
	}
	if rem := n % batch; rem != 0 {
		st.tailBx = mat.NewDense(rem, x.Cols())
		st.tailBt = mat.NewDense(rem, target.Cols())
	}
	st.order = make([]int, n)
	for i := range st.order {
		st.order[i] = i
	}
	return st
}

// beginEpoch reshuffles the minibatch visit order for a new epoch.
func (st *sgdState) beginEpoch() { st.r.Shuffle(st.order) }

// numBatches returns the minibatch steps per epoch.
func (st *sgdState) numBatches() int { return (st.n + st.batch - 1) / st.batch }

// stepBatch gathers minibatch s of the current epoch's order into the
// reusable buffers and returns them (the tail buffers for the final
// short step).
func (st *sgdState) stepBatch(s int) (bx, bt *mat.Dense) {
	start := s * st.batch
	end := start + st.batch
	if end > st.n {
		end = st.n
	}
	size := end - start
	cbx, cbt := st.bx, st.bt
	if size != st.batch {
		cbx, cbt = st.tailBx, st.tailBt
	}
	for bi := 0; bi < size; bi++ {
		src := st.order[start+bi]
		copy(cbx.Row(bi), st.x.Row(src))
		copy(cbt.Row(bi), st.target.Row(src))
	}
	return cbx, cbt
}

// applyUpdate advances the step counters and applies the solver update
// for the gradient currently in st.grad.
func (st *sgdState) applyUpdate() {
	m, cfg := st.m, st.m.cfg
	grad := st.grad
	st.step++
	switch cfg.Solver {
	case SGD:
		effLR := st.lr
		if cfg.LearningRate == InvScaling {
			effLR = cfg.LearningRateInit / math.Pow(float64(st.step), cfg.PowerT)
		}
		if cfg.Nesterov {
			// Nesterov look-ahead in the standard reformulation
			// (sklearn's): v ← μ·v − lr·∇; params += μ·v − lr·∇.
			velocity := st.velocity
			for i := range velocity {
				velocity[i] = cfg.Momentum*velocity[i] - effLR*grad[i]
				m.nw.params[i] += cfg.Momentum*velocity[i] - effLR*grad[i]
			}
		} else {
			velocity := st.velocity
			for i := range velocity {
				velocity[i] = cfg.Momentum*velocity[i] - effLR*grad[i]
				m.nw.params[i] += velocity[i]
			}
		}
	case Adam:
		st.adamT++
		const beta1, beta2, eps = 0.9, 0.999, 1e-8
		b1c := 1 - math.Pow(beta1, float64(st.adamT))
		b2c := 1 - math.Pow(beta2, float64(st.adamT))
		adamM, adamV := st.adamM, st.adamV
		for i := range adamM {
			adamM[i] = beta1*adamM[i] + (1-beta1)*grad[i]
			adamV[i] = beta2*adamV[i] + (1-beta2)*grad[i]*grad[i]
			m.nw.params[i] -= st.lr * (adamM[i] / b1c) / (math.Sqrt(adamV[i]/b2c) + eps)
		}
	}
}

// runEpoch shuffles, sweeps the minibatches and applies the solver
// update, returning the mean minibatch loss. Steady-state calls are
// allocation-free: minibatch buffers, the gradient vector and the
// network's forward/backward scratch are all reused.
func (st *sgdState) runEpoch() float64 {
	st.beginEpoch()
	var epochLoss float64
	nb := st.numBatches()
	for s := 0; s < nb; s++ {
		bx, bt := st.stepBatch(s)
		epochLoss += st.m.nw.lossGrad(bx, bt, st.m.cfg.Alpha, st.grad)
		st.applyUpdate()
	}
	return epochLoss / float64(nb)
}

// epochState is the per-model convergence bookkeeping carried across
// epochs — best loss/score, patience and the adaptive-lr stall counter —
// shared verbatim by the solo and lockstep (FitBatch) trainers so both
// stop at exactly the same epoch.
type epochState struct {
	bestLoss, bestVal        float64
	noImprove, adaptiveStall int
}

func newEpochState() epochState {
	return epochState{bestLoss: math.Inf(1), bestVal: math.Inf(-1)}
}

// observeEpoch records one epoch's mean minibatch loss, runs the
// convergence / early-stopping / adaptive-schedule logic and reports
// whether training should stop.
func (m *Model) observeEpoch(es *epochState, st *sgdState, valSet *dataset.Dataset, epochLoss float64) bool {
	cfg := m.cfg
	m.LossCurve = append(m.LossCurve, epochLoss)
	m.Epochs = len(m.LossCurve)

	// Convergence / early stopping bookkeeping.
	if valSet != nil {
		score := m.Score(valSet)
		if score > es.bestVal+cfg.Tol {
			es.bestVal = score
			es.noImprove = 0
		} else {
			es.noImprove++
		}
	} else {
		if epochLoss < es.bestLoss-cfg.Tol {
			es.bestLoss = epochLoss
			es.noImprove = 0
		} else {
			es.noImprove++
		}
	}
	// Adaptive schedule: halve-by-5 when the loss stalls twice in a row.
	if cfg.Solver == SGD && cfg.LearningRate == Adaptive {
		if len(m.LossCurve) >= 2 && epochLoss > m.LossCurve[len(m.LossCurve)-2]-cfg.Tol {
			es.adaptiveStall++
		} else {
			es.adaptiveStall = 0
		}
		if es.adaptiveStall >= 2 {
			st.lr /= 5
			es.adaptiveStall = 0
			if st.lr < 1e-6 {
				return true
			}
		}
	}
	return es.noImprove >= cfg.NIterNoChange
}

// fitStochastic runs the sgd/adam epoch loop with mini-batches, learning
// rate schedules, early stopping and the no-improvement convergence check.
func (m *Model) fitStochastic(x, target *mat.Dense, valSet *dataset.Dataset, r *rng.RNG) {
	cfg := m.cfg
	st := m.newSGDState(x, target, r)
	es := newEpochState()
	m.LossCurve = make([]float64, 0, cfg.MaxIter)
	for epoch := 0; epoch < cfg.MaxIter; epoch++ {
		epochLoss := st.runEpoch()
		if m.observeEpoch(&es, st, valSet, epochLoss) {
			break
		}
	}
}

// Predict returns the predicted class for each row of d (classification
// models only).
func (m *Model) Predict(d *dataset.Dataset) []int {
	if m.kind != dataset.Classification {
		panic("nn: Predict on regression model")
	}
	proba := m.PredictProba(d)
	out := make([]int, len(proba))
	for i, row := range proba {
		best, bestP := 0, row[0]
		for c, p := range row {
			if p > bestP {
				best, bestP = c, p
			}
		}
		out[i] = best
	}
	return out
}

// PredictProba returns the class-probability rows for d.
func (m *Model) PredictProba(d *dataset.Dataset) [][]float64 {
	if m.kind != dataset.Classification {
		panic("nn: PredictProba on regression model")
	}
	acts := m.nw.forwardPass(d.X)
	out := acts[len(acts)-1]
	n := out.Rows()
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = append([]float64(nil), out.Row(i)...)
	}
	return rows
}

// PredictReg returns the predicted targets for d (regression models only).
func (m *Model) PredictReg(d *dataset.Dataset) []float64 {
	if m.kind != dataset.Regression {
		panic("nn: PredictReg on classification model")
	}
	acts := m.nw.forwardPass(d.X)
	out := acts[len(acts)-1]
	n := out.Rows()
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = out.At(i, 0)
	}
	return vals
}

// Score returns the model's default metric on d: accuracy for
// classification, R² for regression — matching the paper's Table IV
// reporting (F1 is available through ScoreF1 for imbalanced datasets).
func (m *Model) Score(d *dataset.Dataset) float64 {
	if m.kind == dataset.Classification {
		return metrics.Accuracy(m.Predict(d), d.Class)
	}
	return metrics.R2(m.PredictReg(d), d.Target)
}

// ScoreF1 returns binary F1 for 2-class models and macro F1 otherwise.
func (m *Model) ScoreF1(d *dataset.Dataset) float64 {
	if m.kind != dataset.Classification {
		panic("nn: ScoreF1 on regression model")
	}
	pred := m.Predict(d)
	if m.numClasses == 2 {
		return metrics.F1Binary(pred, d.Class)
	}
	return metrics.F1Macro(pred, d.Class, m.numClasses)
}

// NumParams returns the size of the flat parameter vector.
func (m *Model) NumParams() int { return len(m.nw.params) }

package nn

import (
	"bytes"
	"testing"
)

// FuzzLoadModel exercises the binary model parser with arbitrary bytes: it
// must never panic or over-allocate, and any model it accepts must be
// usable for prediction.
func FuzzLoadModel(f *testing.F) {
	// Seed with a genuine model file and mutations of it.
	train := easyClassification(40, 90)
	cfg := DefaultConfig()
	cfg.MaxIter = 3
	cfg.HiddenLayerSizes = []int{3}
	m, err := Fit(train, cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte{})
	truncated := append([]byte(nil), valid...)
	truncated = truncated[:len(truncated)/2]
	f.Add(truncated)
	corrupt := append([]byte(nil), valid...)
	corrupt[8] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted models must predict without panicking.
		if loaded.kind == train.Kind && loaded.nw.dims[0] == train.Features() {
			_ = loaded.Predict(train)
		}
	})
}

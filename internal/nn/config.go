// Package nn implements the multilayer-perceptron models the paper
// optimizes: classifier (softmax + cross-entropy) and regressor (identity +
// squared error), with the complete hyperparameter surface of Table III —
// hidden layer sizes, activation (logistic/tanh/relu), solver
// (lbfgs/sgd/adam), initial learning rate, batch size, learning-rate
// schedule (constant/invscaling/adaptive), momentum, and early stopping.
//
// The implementation deliberately mirrors the semantics of scikit-learn's
// MLPClassifier/MLPRegressor (the models used by the paper's experiments)
// closely enough that the hyperparameters have the same qualitative effect:
// lbfgs is a full-batch quasi-Newton method, sgd supports momentum and the
// three schedules, adam is the usual bias-corrected variant, and early
// stopping holds out a validation fraction.
package nn

import (
	"fmt"
)

// Activation selects a hidden-layer non-linearity.
type Activation int

const (
	// Logistic is the sigmoid activation 1/(1+e^-x).
	Logistic Activation = iota
	// Tanh is the hyperbolic tangent activation.
	Tanh
	// ReLU is max(0, x).
	ReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Logistic:
		return "logistic"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// ParseActivation converts a Table III activation name.
func ParseActivation(s string) (Activation, error) {
	switch s {
	case "logistic":
		return Logistic, nil
	case "tanh":
		return Tanh, nil
	case "relu":
		return ReLU, nil
	}
	return 0, fmt.Errorf("nn: unknown activation %q", s)
}

// Solver selects the weight optimizer.
type Solver int

const (
	// LBFGS is full-batch limited-memory BFGS.
	LBFGS Solver = iota
	// SGD is stochastic gradient descent with momentum and schedules.
	SGD
	// Adam is the adaptive-moment stochastic optimizer.
	Adam
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	switch s {
	case LBFGS:
		return "lbfgs"
	case SGD:
		return "sgd"
	case Adam:
		return "adam"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// ParseSolver converts a Table III solver name.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "lbfgs":
		return LBFGS, nil
	case "sgd":
		return SGD, nil
	case "adam":
		return Adam, nil
	}
	return 0, fmt.Errorf("nn: unknown solver %q", s)
}

// Schedule selects the SGD learning-rate schedule.
type Schedule int

const (
	// Constant keeps the learning rate at LearningRateInit.
	Constant Schedule = iota
	// InvScaling decays the rate as lr_init / t^PowerT.
	InvScaling
	// Adaptive divides the rate by 5 whenever two consecutive epochs fail
	// to decrease the training loss by Tol.
	Adaptive
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Constant:
		return "constant"
	case InvScaling:
		return "invscaling"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ParseSchedule converts a Table III learning-rate schedule name.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "constant":
		return Constant, nil
	case "invscaling":
		return InvScaling, nil
	case "adaptive":
		return Adaptive, nil
	}
	return 0, fmt.Errorf("nn: unknown schedule %q", s)
}

// Config is the full hyperparameter configuration of an MLP, covering every
// Table III dimension plus the usual fixed training knobs.
type Config struct {
	// HiddenLayerSizes lists the width of each hidden layer, e.g. {50, 50}.
	HiddenLayerSizes []int
	// Activation is the hidden-layer non-linearity.
	Activation Activation
	// Solver optimizes the weights.
	Solver Solver
	// LearningRateInit is the initial step size for sgd/adam.
	LearningRateInit float64
	// BatchSize is the mini-batch size for sgd/adam (capped at n).
	BatchSize int
	// LearningRate is the sgd schedule.
	LearningRate Schedule
	// Momentum is the sgd momentum coefficient.
	Momentum float64
	// Nesterov applies Nesterov's accelerated momentum instead of plain
	// momentum (scikit-learn's MLP default is true).
	Nesterov bool
	// EarlyStopping holds out ValidationFraction of the training data and
	// stops when the validation score stops improving.
	EarlyStopping bool

	// MaxIter bounds training epochs (sgd/adam) or iterations (lbfgs).
	MaxIter int
	// Alpha is the L2 regularization strength.
	Alpha float64
	// Tol is the improvement tolerance for convergence checks.
	Tol float64
	// ValidationFraction is the early-stopping holdout fraction.
	ValidationFraction float64
	// NIterNoChange is the patience, in epochs, for early stopping and the
	// adaptive schedule.
	NIterNoChange int
	// PowerT is the invscaling exponent.
	PowerT float64
	// Seed drives weight init and batch shuffling.
	Seed uint64
	// KernelWorkers caps the goroutines a single training run's matmul
	// kernels may use (0 = the mat package default, GOMAXPROCS). Callers
	// running many fits concurrently — e.g. the serve eval pool — set it
	// so pool workers × kernel workers does not oversubscribe the
	// machine. Results are bitwise-identical for any value.
	KernelWorkers int
}

// DefaultConfig returns a configuration with scikit-learn-like defaults
// (hidden layer of 100 is shrunk to 30 to suit the repo's laptop-scale
// simulated datasets).
func DefaultConfig() Config {
	return Config{
		HiddenLayerSizes:   []int{30},
		Activation:         ReLU,
		Solver:             Adam,
		LearningRateInit:   0.001,
		BatchSize:          32,
		LearningRate:       Constant,
		Momentum:           0.9,
		Nesterov:           true,
		EarlyStopping:      false,
		MaxIter:            60,
		Alpha:              1e-4,
		Tol:                1e-4,
		ValidationFraction: 0.1,
		NIterNoChange:      8,
		PowerT:             0.5,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if len(c.HiddenLayerSizes) == 0 {
		return fmt.Errorf("nn: no hidden layers")
	}
	for _, h := range c.HiddenLayerSizes {
		if h <= 0 {
			return fmt.Errorf("nn: hidden layer size %d <= 0", h)
		}
	}
	if c.LearningRateInit <= 0 {
		return fmt.Errorf("nn: learning rate %v <= 0", c.LearningRateInit)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("nn: batch size %d <= 0", c.BatchSize)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("nn: momentum %v out of [0,1)", c.Momentum)
	}
	if c.MaxIter <= 0 {
		return fmt.Errorf("nn: max iter %d <= 0", c.MaxIter)
	}
	if c.ValidationFraction <= 0 || c.ValidationFraction >= 1 {
		return fmt.Errorf("nn: validation fraction %v out of (0,1)", c.ValidationFraction)
	}
	if c.NIterNoChange <= 0 {
		return fmt.Errorf("nn: n_iter_no_change %d <= 0", c.NIterNoChange)
	}
	if c.KernelWorkers < 0 {
		return fmt.Errorf("nn: kernel workers %d < 0", c.KernelWorkers)
	}
	return nil
}

package nn

import (
	"enhancedbhpo/internal/mat"
)

// batchScratch holds the forward/backward buffers for one batch row
// count. Training alternates between at most two row counts (the full
// minibatch and the n%batch tail), so a network accumulates a handful of
// these over its lifetime and every epoch after the first reuses them.
type batchScratch struct {
	// acts[l+1] is the post-activation output of layer l (rows×dims[l+1]);
	// acts[0] is repointed at the caller's input every pass.
	acts []*mat.Dense
	// deltas[l] is the backprop error at layer l's input (rows×dims[l]),
	// for l = 1..layers; deltas[layers] doubles as the initial output
	// delta.
	deltas []*mat.Dense
}

// scratchFor returns (lazily building) the scratch buffers for the given
// batch row count. Lazy construction keeps serialization's struct-literal
// network loads working without a constructor hook.
func (nw *network) scratchFor(rows int) *batchScratch {
	if nw.scratch == nil {
		nw.scratch = make(map[int]*batchScratch)
	}
	if s, ok := nw.scratch[rows]; ok {
		return s
	}
	L := nw.layers()
	s := &batchScratch{
		acts:   make([]*mat.Dense, L+1),
		deltas: make([]*mat.Dense, L+1),
	}
	for l := 0; l < L; l++ {
		s.acts[l+1] = mat.NewDense(rows, nw.dims[l+1])
	}
	for l := 1; l <= L; l++ {
		s.deltas[l] = mat.NewDense(rows, nw.dims[l])
	}
	nw.scratch[rows] = s
	return s
}

// weightMat returns layer l's weight block viewed as fanIn×fanOut. The
// view headers are cached: params is never reallocated, so the views stay
// valid for the network's lifetime.
func (nw *network) weightMat(l int) *mat.Dense {
	if nw.wMats == nil {
		nw.wMats = make([]*mat.Dense, nw.layers())
	}
	if nw.wMats[l] == nil {
		nw.wMats[l] = mat.NewDenseData(nw.dims[l], nw.dims[l+1], nw.weights(l))
	}
	return nw.wMats[l]
}

// gwBuf returns layer l's weight-gradient buffer (fanIn×fanOut). TMul
// needs a Dense destination distinct from its operands; writing into this
// persistent buffer and folding the copy into the L2 add keeps lossGrad
// free of per-call Dense headers.
func (nw *network) gwBuf(l int) *mat.Dense {
	if nw.gwBufs == nil {
		nw.gwBufs = make([]*mat.Dense, nw.layers())
	}
	if nw.gwBufs[l] == nil {
		nw.gwBufs[l] = mat.NewDense(nw.dims[l], nw.dims[l+1])
	}
	return nw.gwBufs[l]
}

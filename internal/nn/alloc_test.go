package nn

import (
	"testing"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// TestFitEpochZeroAlloc pins the zero-allocation contract of the
// stochastic training loop: after the first epoch has warmed the scratch
// arena (minibatch buffers, gradient vector, per-row-count
// forward/backward matrices), steady-state epochs allocate nothing — for
// both the full-batch and the n%batch tail path, under both solvers.
func TestFitEpochZeroAlloc(t *testing.T) {
	for _, solver := range []Solver{SGD, Adam} {
		t.Run(solver.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Solver = solver
			cfg.BatchSize = 8
			cfg.LearningRate = InvScaling // exercises the schedule math too
			cfg.KernelWorkers = 1
			r := rng.New(42)
			const n, features, classes = 37, 6, 3 // 37%8 != 0 → tail batch every epoch
			nw := newNetwork(features, []int{10}, classes, ReLU, true, r.Split(1))
			nw.workers = cfg.KernelWorkers
			m := &Model{cfg: cfg, nw: nw, kind: dataset.Classification, numClasses: classes}

			x := mat.NewDense(n, features)
			xd := x.Data()
			for i := range xd {
				xd[i] = r.Norm()
			}
			target := mat.NewDense(n, classes)
			for i := 0; i < n; i++ {
				target.Set(i, int(r.Uint64()%classes), 1)
			}

			st := m.newSGDState(x, target, r.Split(2))
			st.runEpoch() // warm-up: builds full-batch and tail scratch
			if allocs := testing.AllocsPerRun(5, func() { st.runEpoch() }); allocs != 0 {
				t.Errorf("steady-state epoch allocated %v objects, want 0", allocs)
			}
		})
	}
}

package nn

import (
	"math"

	"enhancedbhpo/internal/mat"
)

// fitLBFGS optimizes the network with limited-memory BFGS over the full
// batch: two-loop recursion with history m=10 and Armijo backtracking line
// search. This mirrors what the "lbfgs" solver choice means in the Table III
// search space — a deterministic full-batch quasi-Newton method whose cost
// profile differs sharply from sgd/adam, which is exactly what makes the
// solver hyperparameter worth searching over.
func (m *Model) fitLBFGS(x, target *mat.Dense) {
	const history = 10
	const c1 = 1e-4 // Armijo sufficient-decrease constant
	cfg := m.cfg
	p := len(m.nw.params)
	grad := make([]float64, p)
	loss := m.nw.lossGrad(x, target, cfg.Alpha, grad)
	m.LossCurve = make([]float64, 0, cfg.MaxIter+1)
	m.LossCurve = append(m.LossCurve, loss)

	var sList, yList [][]float64
	var rhoList []float64
	dir := make([]float64, p)
	trial := make([]float64, p)
	newGrad := make([]float64, p)
	alphaBuf := make([]float64, history)
	// freelist recycles curvature-pair buffers evicted from the history
	// window (or rejected by the sᵀy check), capping total allocation at
	// history+1 pairs no matter how many iterations run.
	var freelist [][]float64
	newPair := func() []float64 {
		if k := len(freelist); k > 0 {
			b := freelist[k-1]
			freelist = freelist[:k-1]
			return b
		}
		return make([]float64, p)
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		gnorm := mat.Norm2(grad)
		if gnorm < cfg.Tol {
			break
		}
		// Two-loop recursion: dir = -H·grad.
		copy(dir, grad)
		k := len(sList)
		for i := k - 1; i >= 0; i-- {
			alphaBuf[i] = rhoList[i] * mat.Dot(sList[i], dir)
			mat.Axpy(-alphaBuf[i], yList[i], dir)
		}
		if k > 0 {
			// Scale by the standard gamma = sᵀy / yᵀy.
			last := k - 1
			gamma := mat.Dot(sList[last], yList[last]) / mat.Dot(yList[last], yList[last])
			if gamma > 0 && !math.IsInf(gamma, 0) && !math.IsNaN(gamma) {
				mat.Scale(gamma, dir)
			}
		}
		for i := 0; i < k; i++ {
			beta := rhoList[i] * mat.Dot(yList[i], dir)
			mat.Axpy(alphaBuf[i]-beta, sList[i], dir)
		}
		mat.Scale(-1, dir)
		descent := mat.Dot(grad, dir)
		if descent >= 0 {
			// Not a descent direction (numerical breakdown); restart with
			// steepest descent.
			freelist = append(append(freelist, sList...), yList...)
			sList, yList, rhoList = nil, nil, nil
			copy(dir, grad)
			mat.Scale(-1, dir)
			descent = -mat.Dot(grad, grad)
			if descent == 0 {
				break
			}
		}
		// Backtracking Armijo line search.
		step := 1.0
		var newLoss float64
		accepted := false
		for ls := 0; ls < 30; ls++ {
			copy(trial, m.nw.params)
			mat.Axpy(step, dir, m.nw.params)
			newLoss = m.nw.lossGrad(x, target, cfg.Alpha, newGrad)
			if newLoss <= loss+c1*step*descent {
				accepted = true
				break
			}
			copy(m.nw.params, trial)
			step *= 0.5
		}
		if !accepted {
			break
		}
		// Curvature pair update.
		s := newPair()
		y := newPair()
		for i := range s {
			s[i] = step * dir[i]
			y[i] = newGrad[i] - grad[i]
		}
		sy := mat.Dot(s, y)
		if sy > 1e-10 {
			sList = append(sList, s)
			yList = append(yList, y)
			rhoList = append(rhoList, 1/sy)
			if len(sList) > history {
				freelist = append(freelist, sList[0], yList[0])
				sList = sList[1:]
				yList = yList[1:]
				rhoList = rhoList[1:]
			}
		} else {
			freelist = append(freelist, s, y)
		}
		if math.Abs(loss-newLoss) < cfg.Tol*math.Max(1, math.Abs(loss)) {
			loss = newLoss
			copy(grad, newGrad)
			m.LossCurve = append(m.LossCurve, loss)
			m.Epochs = iter + 1
			break
		}
		loss = newLoss
		copy(grad, newGrad)
		m.LossCurve = append(m.LossCurve, loss)
		m.Epochs = iter + 1
	}
}

package nn

import (
	"math"
	"testing"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// numericalGrad approximates dLoss/dParams by central differences.
func numericalGrad(nw *network, x, target *mat.Dense, alpha float64) []float64 {
	const h = 1e-6
	grad := make([]float64, len(nw.params))
	scratch := make([]float64, len(nw.params))
	for i := range nw.params {
		orig := nw.params[i]
		nw.params[i] = orig + h
		lp := nw.lossGrad(x, target, alpha, scratch)
		nw.params[i] = orig - h
		lm := nw.lossGrad(x, target, alpha, scratch)
		nw.params[i] = orig
		grad[i] = (lp - lm) / (2 * h)
	}
	return grad
}

func gradCheck(t *testing.T, act Activation, softmax bool) {
	t.Helper()
	r := rng.New(42)
	nw := newNetwork(4, []int{5, 3}, 2, act, softmax, r)
	n := 7
	x := mat.NewDense(n, 4)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, r.Norm())
		}
	}
	target := mat.NewDense(n, 2)
	if softmax {
		for i := 0; i < n; i++ {
			target.Set(i, r.Intn(2), 1)
		}
	} else {
		for i := 0; i < n; i++ {
			target.Set(i, 0, r.Norm())
			target.Set(i, 1, r.Norm())
		}
	}
	analytic := make([]float64, len(nw.params))
	nw.lossGrad(x, target, 0.01, analytic)
	numeric := numericalGrad(nw, x, target, 0.01)
	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := math.Max(1, math.Abs(numeric[i]))
		if diff/scale > 1e-4 {
			t.Fatalf("param %d: analytic %v vs numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func TestGradCheckLogisticSoftmax(t *testing.T) { gradCheck(t, Logistic, true) }
func TestGradCheckTanhSoftmax(t *testing.T)     { gradCheck(t, Tanh, true) }
func TestGradCheckReLUSoftmax(t *testing.T)     { gradCheck(t, ReLU, true) }
func TestGradCheckTanhRegression(t *testing.T)  { gradCheck(t, Tanh, false) }
func TestGradCheckReLURegression(t *testing.T)  { gradCheck(t, ReLU, false) }

// easyClassification builds a well-separated 2-class problem.
func easyClassification(n int, seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	x := mat.NewDense(n, 2)
	class := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		class[i] = c
		shift := -2.0
		if c == 1 {
			shift = 2.0
		}
		x.Set(i, 0, shift+r.Norm()*0.5)
		x.Set(i, 1, -shift+r.Norm()*0.5)
	}
	return &dataset.Dataset{Name: "easy", Kind: dataset.Classification, X: x, Class: class, NumClasses: 2}
}

func easyRegression(n int, seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	x := mat.NewDense(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := r.Norm(), r.Norm(), r.Norm()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		x.Set(i, 2, c)
		y[i] = 2*a - b + 0.5*c + r.Norm()*0.05
	}
	return &dataset.Dataset{Name: "easyreg", Kind: dataset.Regression, X: x, Target: y}
}

func TestFitSolversLearnClassification(t *testing.T) {
	train := easyClassification(200, 1)
	test := easyClassification(100, 2)
	for _, solver := range []Solver{SGD, Adam, LBFGS} {
		cfg := DefaultConfig()
		cfg.Solver = solver
		cfg.HiddenLayerSizes = []int{8}
		cfg.MaxIter = 80
		cfg.LearningRateInit = 0.05
		if solver == Adam {
			cfg.LearningRateInit = 0.01
		}
		cfg.Seed = 7
		m, err := Fit(train, cfg)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if acc := m.Score(test); acc < 0.95 {
			t.Errorf("%v: test accuracy %.3f < 0.95", solver, acc)
		}
	}
}

func TestFitSolversLearnRegression(t *testing.T) {
	train := easyRegression(300, 3)
	test := easyRegression(150, 4)
	for _, solver := range []Solver{SGD, Adam, LBFGS} {
		cfg := DefaultConfig()
		cfg.Solver = solver
		cfg.HiddenLayerSizes = []int{16}
		cfg.Activation = Tanh
		cfg.MaxIter = 120
		cfg.LearningRateInit = 0.02
		if solver == Adam {
			cfg.LearningRateInit = 0.01
		}
		cfg.Seed = 7
		m, err := Fit(train, cfg)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if r2 := m.Score(test); r2 < 0.8 {
			t.Errorf("%v: test R2 %.3f < 0.8", solver, r2)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	train := easyClassification(100, 5)
	cfg := DefaultConfig()
	cfg.Seed = 99
	cfg.MaxIter = 10
	m1, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.LossCurve) != len(m2.LossCurve) {
		t.Fatalf("loss curve lengths differ: %d vs %d", len(m1.LossCurve), len(m2.LossCurve))
	}
	for i := range m1.LossCurve {
		if m1.LossCurve[i] != m2.LossCurve[i] {
			t.Fatalf("loss curves diverge at %d: %v vs %v", i, m1.LossCurve[i], m2.LossCurve[i])
		}
	}
}

func TestEarlyStoppingStopsSooner(t *testing.T) {
	train := easyClassification(300, 6)
	base := DefaultConfig()
	base.MaxIter = 150
	base.Seed = 3
	base.LearningRateInit = 0.02
	base.NIterNoChange = 5
	withES := base
	withES.EarlyStopping = true
	m1, err := Fit(train, base)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(train, withES)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epochs > m1.Epochs {
		t.Errorf("early stopping ran %d epochs, plain run %d", m2.Epochs, m1.Epochs)
	}
	if m2.Score(train) < 0.9 {
		t.Errorf("early-stopped model underfits: %.3f", m2.Score(train))
	}
}

func TestNesterovVsPlainMomentum(t *testing.T) {
	train := easyClassification(200, 12)
	base := DefaultConfig()
	base.Solver = SGD
	base.LearningRateInit = 0.05
	base.MaxIter = 40
	base.Seed = 13
	nesterov := base
	nesterov.Nesterov = true
	plain := base
	plain.Nesterov = false
	m1, err := Fit(train, nesterov)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(train, plain)
	if err != nil {
		t.Fatal(err)
	}
	// Both learn; the updates genuinely differ.
	if m1.Score(train) < 0.9 || m2.Score(train) < 0.9 {
		t.Fatalf("underfit: nesterov %v plain %v", m1.Score(train), m2.Score(train))
	}
	same := true
	for i := range m1.LossCurve {
		if i < len(m2.LossCurve) && m1.LossCurve[i] != m2.LossCurve[i] {
			same = false
			break
		}
	}
	if same && len(m1.LossCurve) == len(m2.LossCurve) {
		t.Fatal("nesterov and plain momentum produced identical training")
	}
}

func TestSchedulesRun(t *testing.T) {
	train := easyClassification(120, 7)
	for _, sch := range []Schedule{Constant, InvScaling, Adaptive} {
		cfg := DefaultConfig()
		cfg.Solver = SGD
		cfg.LearningRate = sch
		cfg.LearningRateInit = 0.05
		cfg.MaxIter = 40
		cfg.Seed = 11
		m, err := Fit(train, cfg)
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		if acc := m.Score(train); acc < 0.9 {
			t.Errorf("%v: train accuracy %.3f < 0.9", sch, acc)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no hidden layers", func(c *Config) { c.HiddenLayerSizes = nil }},
		{"zero width", func(c *Config) { c.HiddenLayerSizes = []int{0} }},
		{"bad lr", func(c *Config) { c.LearningRateInit = 0 }},
		{"bad batch", func(c *Config) { c.BatchSize = 0 }},
		{"bad momentum", func(c *Config) { c.Momentum = 1 }},
		{"bad max iter", func(c *Config) { c.MaxIter = 0 }},
		{"bad val fraction", func(c *Config) { c.ValidationFraction = 1 }},
		{"bad patience", func(c *Config) { c.NIterNoChange = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestParsers(t *testing.T) {
	for _, s := range []string{"logistic", "tanh", "relu"} {
		a, err := ParseActivation(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != s {
			t.Errorf("activation round-trip %q -> %q", s, a.String())
		}
	}
	for _, s := range []string{"lbfgs", "sgd", "adam"} {
		v, err := ParseSolver(s)
		if err != nil {
			t.Fatal(err)
		}
		if v.String() != s {
			t.Errorf("solver round-trip %q -> %q", s, v.String())
		}
	}
	for _, s := range []string{"constant", "invscaling", "adaptive"} {
		v, err := ParseSchedule(s)
		if err != nil {
			t.Fatal(err)
		}
		if v.String() != s {
			t.Errorf("schedule round-trip %q -> %q", s, v.String())
		}
	}
	if _, err := ParseActivation("gelu"); err == nil {
		t.Error("expected error for unknown activation")
	}
	if _, err := ParseSolver("rmsprop"); err == nil {
		t.Error("expected error for unknown solver")
	}
	if _, err := ParseSchedule("cosine"); err == nil {
		t.Error("expected error for unknown schedule")
	}
}

func TestPredictProbaRowsSumToOne(t *testing.T) {
	train := easyClassification(80, 8)
	cfg := DefaultConfig()
	cfg.MaxIter = 10
	cfg.Seed = 1
	m, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range m.PredictProba(train) {
		var sum float64
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("row %d: probability %v out of [0,1]", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d: probabilities sum to %v", i, sum)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	train := easyClassification(60, 9)
	cfg := DefaultConfig()
	cfg.MaxIter = 5
	m, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "PredictReg on classifier", func() { m.PredictReg(train) })

	reg := easyRegression(60, 10)
	cfgR := DefaultConfig()
	cfgR.MaxIter = 5
	mr, err := Fit(reg, cfgR)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "Predict on regressor", func() { mr.Predict(reg) })
	assertPanics(t, "ScoreF1 on regressor", func() { mr.ScoreF1(reg) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

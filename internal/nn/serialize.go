package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"enhancedbhpo/internal/dataset"
)

// Model serialization: a compact little-endian binary format so trained
// models survive process restarts (the paper's workflow retrains the final
// configuration on the full dataset — saving that model is the natural
// next step for a library user).
//
// Layout: magic, version, kind, numClasses, activation, softmax flag,
// layer count, dims, then the flat parameter vector as float64s.

const (
	modelMagic   = uint32(0xb4900d31)
	modelVersion = uint32(1)
)

// Save writes the model to w in the binary model format.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	header := []uint32{
		modelMagic,
		modelVersion,
		uint32(m.kind),
		uint32(m.numClasses),
		uint32(m.cfg.Activation),
	}
	for _, h := range header {
		if err := write(h); err != nil {
			return fmt.Errorf("nn: saving header: %w", err)
		}
	}
	softmax := uint32(0)
	if m.nw.softmaxOut {
		softmax = 1
	}
	if err := write(softmax); err != nil {
		return fmt.Errorf("nn: saving header: %w", err)
	}
	if err := write(uint32(len(m.nw.dims))); err != nil {
		return fmt.Errorf("nn: saving dims: %w", err)
	}
	for _, d := range m.nw.dims {
		if err := write(uint32(d)); err != nil {
			return fmt.Errorf("nn: saving dims: %w", err)
		}
	}
	if err := write(uint64(len(m.nw.params))); err != nil {
		return fmt.Errorf("nn: saving params: %w", err)
	}
	for _, p := range m.nw.params {
		if err := write(math.Float64bits(p)); err != nil {
			return fmt.Errorf("nn: saving params: %w", err)
		}
	}
	return bw.Flush()
}

// LoadModel reads a model previously written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("nn: bad magic %#x", magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("nn: reading version: %w", err)
	}
	if version != modelVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", version)
	}
	kindV, err := readU32()
	if err != nil {
		return nil, err
	}
	numClasses, err := readU32()
	if err != nil {
		return nil, err
	}
	actV, err := readU32()
	if err != nil {
		return nil, err
	}
	softmaxV, err := readU32()
	if err != nil {
		return nil, err
	}
	numDims, err := readU32()
	if err != nil {
		return nil, err
	}
	if numDims < 2 || numDims > 64 {
		return nil, fmt.Errorf("nn: implausible layer count %d", numDims)
	}
	dims := make([]int, numDims)
	for i := range dims {
		d, err := readU32()
		if err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<20 {
			return nil, fmt.Errorf("nn: implausible layer width %d", d)
		}
		dims[i] = int(d)
	}
	var numParams uint64
	if err := binary.Read(br, binary.LittleEndian, &numParams); err != nil {
		return nil, err
	}
	// Rebuild the network shell, then overwrite the parameters.
	kind := dataset.Kind(kindV)
	act := Activation(actV)
	if act != Logistic && act != Tanh && act != ReLU {
		return nil, fmt.Errorf("nn: unknown activation %d", actV)
	}
	nw := &network{
		dims:       dims,
		activation: act,
		softmaxOut: softmaxV == 1,
	}
	total := 0
	nw.wOff = make([]int, len(dims)-1)
	nw.bOff = make([]int, len(dims)-1)
	for l := 0; l < len(dims)-1; l++ {
		nw.wOff[l] = total
		total += dims[l] * dims[l+1]
		nw.bOff[l] = total
		total += dims[l+1]
	}
	if uint64(total) != numParams {
		return nil, fmt.Errorf("nn: parameter count %d does not match dims (want %d)", numParams, total)
	}
	nw.params = make([]float64, total)
	for i := range nw.params {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("nn: reading params: %w", err)
		}
		nw.params[i] = math.Float64frombits(bits)
	}
	cfg := DefaultConfig()
	cfg.Activation = act
	cfg.HiddenLayerSizes = append([]int(nil), dims[1:len(dims)-1]...)
	return &Model{
		cfg:        cfg,
		nw:         nw,
		kind:       kind,
		numClasses: int(numClasses),
	}, nil
}

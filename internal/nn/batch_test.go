package nn

import (
	"fmt"
	"testing"

	"enhancedbhpo/internal/dataset"
)

// batchParityItems builds a deliberately heterogeneous group: different
// solvers, schedules, depths, widths, activations, batch sizes, dataset
// sizes/kinds, epoch counts and early-stopping settings, so trials drop
// out of the lockstep group at different epochs and step counts.
func batchParityItems() []BatchItem {
	mk := func(train *dataset.Dataset, mut func(*Config)) BatchItem {
		cfg := DefaultConfig()
		cfg.MaxIter = 12
		cfg.HiddenLayerSizes = []int{8}
		cfg.BatchSize = 16
		mut(&cfg)
		return BatchItem{Train: train, Cfg: cfg}
	}
	return []BatchItem{
		mk(easyClassification(90, 11), func(c *Config) {
			c.Solver = SGD
			c.LearningRate = Constant
			c.LearningRateInit = 0.05
			c.Seed = 1
		}),
		mk(easyClassification(57, 12), func(c *Config) {
			c.Solver = Adam
			c.HiddenLayerSizes = []int{10, 6}
			c.Activation = Tanh
			c.BatchSize = 13
			c.MaxIter = 9
			c.Seed = 2
		}),
		mk(easyRegression(64, 13), func(c *Config) {
			c.Solver = SGD
			c.LearningRate = InvScaling
			c.Nesterov = false
			c.LearningRateInit = 0.02
			c.BatchSize = 32
			c.Seed = 3
		}),
		mk(easyClassification(120, 14), func(c *Config) {
			c.Solver = Adam
			c.EarlyStopping = true
			c.NIterNoChange = 3
			c.Activation = Logistic
			c.Seed = 4
		}),
		mk(easyRegression(40, 15), func(c *Config) {
			c.Solver = SGD
			c.LearningRate = Adaptive
			c.LearningRateInit = 0.03
			c.HiddenLayerSizes = []int{5, 5, 5}
			c.BatchSize = 7
			c.MaxIter = 15
			c.Seed = 5
		}),
	}
}

func assertModelBitwise(t *testing.T, label string, got, want *Model) {
	t.Helper()
	if got.Epochs != want.Epochs {
		t.Fatalf("%s: epochs %d != solo %d", label, got.Epochs, want.Epochs)
	}
	if len(got.LossCurve) != len(want.LossCurve) {
		t.Fatalf("%s: loss curve length %d != solo %d", label, len(got.LossCurve), len(want.LossCurve))
	}
	for e := range want.LossCurve {
		if got.LossCurve[e] != want.LossCurve[e] {
			t.Fatalf("%s: epoch %d loss %x != solo %x (not bitwise identical)",
				label, e, got.LossCurve[e], want.LossCurve[e])
		}
	}
	for i := range want.nw.params {
		if got.nw.params[i] != want.nw.params[i] {
			t.Fatalf("%s: param %d = %x, want %x (not bitwise identical)",
				label, i, got.nw.params[i], want.nw.params[i])
		}
	}
}

// TestFitBatchMatchesFitBitwise pins the fused-training contract: every
// model a lockstep FitBatch produces is bitwise-identical (params, loss
// curve, epoch count) to a solo Fit of the same item, for heterogeneous
// group compositions and any worker cap.
func TestFitBatchMatchesFitBitwise(t *testing.T) {
	items := batchParityItems()
	solo := make([]*Model, len(items))
	for i, it := range items {
		m, err := Fit(it.Train, it.Cfg)
		if err != nil {
			t.Fatalf("solo fit %d: %v", i, err)
		}
		solo[i] = m
	}
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			models, stats, err := FitBatch(items, workers)
			if err != nil {
				t.Fatalf("FitBatch: %v", err)
			}
			for i := range items {
				assertModelBitwise(t, fmt.Sprintf("item %d workers=%d", i, workers), models[i], solo[i])
			}
			if stats.Steps == 0 || stats.StackedRows == 0 {
				t.Fatalf("no fused steps recorded: %+v", stats)
			}
		})
	}
	// Group composition must not matter either: a sub-group and a
	// single-item batch reproduce the same models.
	sub, _, err := FitBatch(items[1:3], 3)
	if err != nil {
		t.Fatalf("sub-group FitBatch: %v", err)
	}
	assertModelBitwise(t, "sub item 1", sub[0], solo[1])
	assertModelBitwise(t, "sub item 2", sub[1], solo[2])
	one, stats, err := FitBatch(items[:1], 0)
	if err != nil {
		t.Fatalf("single-item FitBatch: %v", err)
	}
	assertModelBitwise(t, "single item", one[0], solo[0])
	if stats.Steps != 0 {
		t.Fatalf("single-item batch recorded fused steps: %+v", stats)
	}
}

// TestFitBatchRejections pins the validation surface: invalid items and
// L-BFGS trials fail up front with the item index, and empty batches are
// no-ops.
func TestFitBatchRejections(t *testing.T) {
	models, stats, err := FitBatch(nil, 0)
	if err != nil || len(models) != 0 || stats.Steps != 0 {
		t.Fatalf("empty batch: %v %v %+v", models, err, stats)
	}
	good := BatchItem{Train: easyClassification(30, 9), Cfg: DefaultConfig()}
	lb := good
	lb.Cfg.Solver = LBFGS
	if _, _, err := FitBatch([]BatchItem{good, lb}, 0); err == nil {
		t.Fatal("FitBatch accepted an lbfgs item")
	}
	bad := good
	bad.Cfg.MaxIter = -1
	if _, _, err := FitBatch([]BatchItem{bad}, 0); err == nil {
		t.Fatal("FitBatch accepted an invalid config")
	}
	tiny := BatchItem{Train: easyClassification(1, 9), Cfg: DefaultConfig()}
	if _, _, err := FitBatch([]BatchItem{tiny}, 0); err == nil {
		t.Fatal("FitBatch accepted a 1-row dataset")
	}
}

package nn

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTripClassifier(t *testing.T) {
	train := easyClassification(120, 21)
	cfg := DefaultConfig()
	cfg.MaxIter = 20
	cfg.LearningRateInit = 0.02
	cfg.HiddenLayerSizes = []int{7, 5}
	cfg.Activation = Tanh
	cfg.Seed = 1
	m, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on the training data.
	origPred := m.Predict(train)
	loadPred := loaded.Predict(train)
	for i := range origPred {
		if origPred[i] != loadPred[i] {
			t.Fatalf("prediction %d differs after round trip", i)
		}
	}
	origProba := m.PredictProba(train)
	loadProba := loaded.PredictProba(train)
	for i := range origProba {
		for c := range origProba[i] {
			if origProba[i][c] != loadProba[i][c] {
				t.Fatalf("probability (%d,%d) differs", i, c)
			}
		}
	}
	if loaded.NumParams() != m.NumParams() {
		t.Fatalf("param count %d vs %d", loaded.NumParams(), m.NumParams())
	}
}

func TestSaveLoadRoundTripRegressor(t *testing.T) {
	train := easyRegression(100, 22)
	cfg := DefaultConfig()
	cfg.MaxIter = 15
	cfg.HiddenLayerSizes = []int{6}
	cfg.Seed = 2
	m, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.PredictReg(train)
	got := loaded.PredictReg(train)
	for i := range orig {
		if orig[i] != got[i] {
			t.Fatalf("regression prediction %d differs", i)
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	}
	for name, data := range cases {
		if _, err := LoadModel(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadModelRejectsTruncated(t *testing.T) {
	train := easyClassification(60, 23)
	cfg := DefaultConfig()
	cfg.MaxIter = 5
	m, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, len(full) / 2, len(full) - 4} {
		if _, err := LoadModel(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadModelRejectsWrongVersion(t *testing.T) {
	train := easyClassification(60, 24)
	cfg := DefaultConfig()
	cfg.MaxIter = 5
	m, err := Fit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // bump version field (little-endian, second uint32)
	if _, err := LoadModel(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
}

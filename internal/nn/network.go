package nn

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// network holds the MLP weights as one flat parameter vector so the three
// solvers (notably L-BFGS) can treat optimization generically. Layer l maps
// dims[l] inputs to dims[l+1] outputs through a weight block and a bias
// block carved out of params.
type network struct {
	dims   []int // layer widths: input, hidden..., output
	params []float64
	// offsets[l] is the start of layer l's weight block; biases follow the
	// weights of each layer.
	wOff, bOff []int
	activation Activation
	// softmaxOut selects a softmax head (classification) vs identity
	// (regression).
	softmaxOut bool

	// workers caps kernel parallelism for this network's matmuls
	// (0 = the mat package default). Results are bitwise-identical for
	// any setting; it only bounds CPU use per evaluation.
	workers int
	// Reused buffers (lazily built — Load constructs networks without
	// newNetwork): weight views, weight-gradient buffers, and per-row-
	// count forward/backward scratch. Their presence makes forwardPass
	// and lossGrad allocation-free in steady state, but also means a
	// network must not be used from multiple goroutines concurrently.
	wMats   []*mat.Dense
	gwBufs  []*mat.Dense
	scratch map[int]*batchScratch
}

func newNetwork(inputs int, hidden []int, outputs int, act Activation, softmax bool, r *rng.RNG) *network {
	dims := make([]int, 0, len(hidden)+2)
	dims = append(dims, inputs)
	dims = append(dims, hidden...)
	dims = append(dims, outputs)
	total := 0
	wOff := make([]int, len(dims)-1)
	bOff := make([]int, len(dims)-1)
	for l := 0; l < len(dims)-1; l++ {
		wOff[l] = total
		total += dims[l] * dims[l+1]
		bOff[l] = total
		total += dims[l+1]
	}
	nw := &network{
		dims:       dims,
		params:     make([]float64, total),
		wOff:       wOff,
		bOff:       bOff,
		activation: act,
		softmaxOut: softmax,
	}
	nw.glorotInit(r)
	return nw
}

// glorotInit fills the weights with the Glorot/Xavier uniform scheme used by
// scikit-learn's MLP (factor 6 for tanh/relu, 2 for logistic).
func (nw *network) glorotInit(r *rng.RNG) {
	factor := 6.0
	if nw.activation == Logistic {
		factor = 2.0
	}
	for l := 0; l < nw.layers(); l++ {
		fanIn, fanOut := nw.dims[l], nw.dims[l+1]
		bound := math.Sqrt(factor / float64(fanIn+fanOut))
		w := nw.weights(l)
		for i := range w {
			w[i] = (2*r.Float64() - 1) * bound
		}
		b := nw.biases(l)
		for i := range b {
			b[i] = (2*r.Float64() - 1) * bound
		}
	}
}

func (nw *network) layers() int { return len(nw.dims) - 1 }

// weights returns layer l's weight block viewed as fanIn×fanOut row-major.
func (nw *network) weights(l int) []float64 {
	return nw.params[nw.wOff[l] : nw.wOff[l]+nw.dims[l]*nw.dims[l+1]]
}

func (nw *network) biases(l int) []float64 {
	return nw.params[nw.bOff[l] : nw.bOff[l]+nw.dims[l+1]]
}

// forwardPass computes activations for a batch. Returns the per-layer
// post-activation matrices (acts[0] is the input), so backprop can reuse
// them. The returned slice is scratch owned by the network: it is valid
// until the next forwardPass with the same row count.
func (nw *network) forwardPass(x *mat.Dense) []*mat.Dense {
	s := nw.scratchFor(x.Rows())
	acts := s.acts
	acts[0] = x
	for l := 0; l < nw.layers(); l++ {
		z := acts[l+1]
		mat.MulWorkers(z, acts[l], nw.weightMat(l), nw.workers)
		mat.AddRowVector(z, nw.biases(l))
		if l < nw.layers()-1 {
			applyActivation(z, nw.activation)
		} else if nw.softmaxOut {
			softmaxRows(z)
		}
	}
	return acts
}

// lossGrad computes the regularized loss and its gradient over the batch.
// For classification target is one-hot rows (softmax + cross-entropy); for
// regression target holds real values (identity + half squared error).
// grad must have len(nw.params); it is overwritten.
func (nw *network) lossGrad(x, target *mat.Dense, alpha float64, grad []float64) float64 {
	n := x.Rows()
	s := nw.scratchFor(n)
	acts := nw.forwardPass(x)
	out := acts[len(acts)-1]
	var loss float64
	// delta starts as dL/dz of the output layer; for both softmax+CE and
	// identity+MSE that is (out - target)/n.
	delta := s.deltas[nw.layers()]
	copy(delta.Data(), out.Data())
	if nw.softmaxOut {
		loss = crossEntropy(out, target)
	} else {
		loss = halfSquaredError(out, target)
	}
	delta.Sub(target)
	delta.Scale(1 / float64(n))

	// Every element of grad is overwritten below (weights via the gw copy,
	// biases via ColSumsInto), so no upfront zeroing is needed.
	for l := nw.layers() - 1; l >= 0; l-- {
		// Weight gradient: actsᵀ[l] * delta  (+ L2 term folded into the
		// copy out of the scratch buffer).
		gw := nw.gwBuf(l)
		mat.TMulWorkers(gw, acts[l], delta, nw.workers)
		w := nw.weights(l)
		gwData := gw.Data()
		gSlice := grad[nw.wOff[l] : nw.wOff[l]+len(w)]
		for i, wv := range w {
			gSlice[i] = gwData[i] + alpha*wv/float64(n)
		}
		// Bias gradient: column sums of delta.
		mat.ColSumsInto(grad[nw.bOff[l]:nw.bOff[l]+nw.dims[l+1]], delta)
		if l == 0 {
			break
		}
		// Propagate: delta_prev = (delta * Wᵀ) ⊙ act'(acts[l]).
		prev := s.deltas[l]
		mat.MulTWorkers(prev, delta, nw.weightMat(l), nw.workers)
		applyActivationDeriv(prev, acts[l], nw.activation)
		delta = prev
	}
	// L2 penalty on weights only (not biases), matching sklearn.
	var reg float64
	for l := 0; l < nw.layers(); l++ {
		for _, wv := range nw.weights(l) {
			reg += wv * wv
		}
	}
	loss += 0.5 * alpha * reg / float64(n)
	return loss
}

func applyActivation(z *mat.Dense, act Activation) {
	switch act {
	case Logistic:
		z.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	case Tanh:
		z.Apply(math.Tanh)
	case ReLU:
		z.Apply(func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		})
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(act)))
	}
}

// applyActivationDeriv multiplies delta in place by act'(z) expressed in
// terms of the post-activation values a.
func applyActivationDeriv(delta, a *mat.Dense, act Activation) {
	dd := delta.Data()
	ad := a.Data()
	switch act {
	case Logistic:
		for i, av := range ad {
			dd[i] *= av * (1 - av)
		}
	case Tanh:
		for i, av := range ad {
			dd[i] *= 1 - av*av
		}
	case ReLU:
		for i, av := range ad {
			if av <= 0 {
				dd[i] = 0
			}
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(act)))
	}
}

func softmaxRows(z *mat.Dense) {
	n, _ := z.Dims()
	for i := 0; i < n; i++ {
		row := z.Row(i)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - mx)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

func crossEntropy(proba, oneHot *mat.Dense) float64 {
	const eps = 1e-12
	n := proba.Rows()
	var loss float64
	pd, td := proba.Data(), oneHot.Data()
	for i, t := range td {
		if t > 0 {
			p := pd[i]
			if p < eps {
				p = eps
			}
			loss -= t * math.Log(p)
		}
	}
	return loss / float64(n)
}

func halfSquaredError(out, target *mat.Dense) float64 {
	n := out.Rows()
	var loss float64
	od, td := out.Data(), target.Data()
	for i, t := range td {
		d := od[i] - t
		loss += d * d
	}
	return loss / (2 * float64(n))
}

package dataset

import (
	"math"
	"testing"
)

func TestPaperSpecsValid(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != 12 {
		t.Fatalf("expected 12 paper specs, got %d", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	// Task mix from Table II: 8 binary, 2 multi-class, 2 regression.
	binary, multi, reg := 0, 0, 0
	for _, s := range specs {
		switch {
		case s.Kind == Regression:
			reg++
		case s.Classes == 2:
			binary++
		default:
			multi++
		}
	}
	if binary != 8 || multi != 2 || reg != 2 {
		t.Fatalf("task mix %d/%d/%d, want 8/2/2", binary, multi, reg)
	}
}

func TestSpecByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("Names returned %d", len(names))
	}
	for _, n := range names {
		if _, err := SpecByName(n); err != nil {
			t.Errorf("SpecByName(%q): %v", n, err)
		}
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec, _ := SpecByName("australian")
	a1, b1 := MustSynthesize(spec, 7)
	a2, b2 := MustSynthesize(spec, 7)
	if a1.Len() != a2.Len() || b1.Len() != b2.Len() {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := 0; i < a1.Len(); i++ {
		for j := 0; j < a1.Features(); j++ {
			if a1.X.At(i, j) != a2.X.At(i, j) {
				t.Fatalf("feature (%d,%d) differs", i, j)
			}
		}
		if a1.Class[i] != a2.Class[i] {
			t.Fatalf("class %d differs", i)
		}
	}
	c1, _ := MustSynthesize(spec, 8)
	diff := 0
	for i := 0; i < a1.Len() && i < c1.Len(); i++ {
		if a1.Class[i] != c1.Class[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical labels")
	}
}

func TestSynthesizeShapes(t *testing.T) {
	for _, spec := range PaperSpecs() {
		train, test := MustSynthesize(spec, 1)
		if train.Len() != spec.Train || test.Len() != spec.Test {
			t.Errorf("%s: sizes %d/%d, want %d/%d", spec.Name, train.Len(), test.Len(), spec.Train, spec.Test)
		}
		if train.Features() != spec.Features {
			t.Errorf("%s: features %d, want %d", spec.Name, train.Features(), spec.Features)
		}
		if err := train.Validate(); err != nil {
			t.Errorf("%s train: %v", spec.Name, err)
		}
		if err := test.Validate(); err != nil {
			t.Errorf("%s test: %v", spec.Name, err)
		}
	}
}

func TestSynthesizeImbalance(t *testing.T) {
	spec, _ := SpecByName("fraud")
	train, _ := MustSynthesize(spec, 3)
	counts := train.ClassCounts()
	minFrac := float64(counts[1]) / float64(train.Len())
	if minFrac > 0.06 || minFrac < 0.002 {
		t.Fatalf("fraud positive fraction %v, want ~0.02", minFrac)
	}
}

func TestSynthesizeBalanced(t *testing.T) {
	spec, _ := SpecByName("usps")
	train, _ := MustSynthesize(spec, 4)
	counts := train.ClassCounts()
	want := float64(train.Len()) / float64(spec.Classes)
	for c, cnt := range counts {
		if math.Abs(float64(cnt)-want) > want*0.35 {
			t.Fatalf("class %d count %d deviates from balanced %v", c, cnt, want)
		}
	}
}

func TestSynthesizeRegressionTargetsVary(t *testing.T) {
	spec, _ := SpecByName("kc-house")
	train, _ := MustSynthesize(spec, 5)
	mn, mx := train.Target[0], train.Target[0]
	for _, v := range train.Target {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx-mn < 1 {
		t.Fatalf("regression target range %v too narrow", mx-mn)
	}
}

func TestSynthesizeSignalLearnable(t *testing.T) {
	// Classes must be separable enough that a nearest-centroid rule beats
	// chance clearly — otherwise HPO experiments have no signal.
	spec, _ := SpecByName("australian")
	train, test := MustSynthesize(spec, 6)
	f := spec.Informative
	centroids := make([][]float64, spec.Classes)
	counts := make([]int, spec.Classes)
	for c := range centroids {
		centroids[c] = make([]float64, f)
	}
	for i := 0; i < train.Len(); i++ {
		c := train.Class[i]
		counts[c]++
		row := train.X.Row(i)
		for j := 0; j < f; j++ {
			centroids[c][j] += row[j]
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		row := test.X.Row(i)
		best, bestD := 0, math.Inf(1)
		for c := range centroids {
			var d float64
			for j := 0; j < f; j++ {
				diff := row[j] - centroids[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == test.Class[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.65 {
		t.Fatalf("nearest-centroid accuracy %v too low: no learnable signal", acc)
	}
}

func TestScaled(t *testing.T) {
	spec, _ := SpecByName("a9a")
	small := spec.Scaled(0.1)
	if small.Train != spec.Train/10 {
		t.Fatalf("scaled train %d", small.Train)
	}
	tiny := spec.Scaled(0.0001)
	if tiny.Train < 32 || tiny.Test < 16 {
		t.Fatalf("scaling floor violated: %d/%d", tiny.Train, tiny.Test)
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	good, _ := SpecByName("australian")
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero train", func(s *Spec) { s.Train = 0 }},
		{"informative > features", func(s *Spec) { s.Informative = s.Features + 1 }},
		{"zero clusters", func(s *Spec) { s.Clusters = 0 }},
		{"one class", func(s *Spec) { s.Classes = 1 }},
		{"priors wrong len", func(s *Spec) { s.Priors = []float64{1} }},
		{"priors not normalized", func(s *Spec) { s.Priors = []float64{0.5, 0.2} }},
		{"negative prior", func(s *Spec) { s.Priors = []float64{1.5, -0.5} }},
	}
	for _, tc := range cases {
		s := good
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, _, err := Synthesize(Spec{Name: "bad"}, 1); err == nil {
		t.Error("Synthesize accepted invalid spec")
	}
}

func TestStandardize(t *testing.T) {
	spec, _ := SpecByName("australian")
	train, test := MustSynthesize(spec, 9)
	Standardize(train, test)
	for j := 0; j < train.Features(); j++ {
		var mean, sq float64
		for i := 0; i < train.Len(); i++ {
			mean += train.X.At(i, j)
		}
		mean /= float64(train.Len())
		for i := 0; i < train.Len(); i++ {
			d := train.X.At(i, j) - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(train.Len()))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v after standardize", j, mean)
		}
		if math.Abs(std-1) > 1e-9 {
			t.Fatalf("column %d std %v after standardize", j, std)
		}
	}
}

func TestSortedClassList(t *testing.T) {
	got := SortedClassList([]int{3, 1, 3, 0, 1})
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

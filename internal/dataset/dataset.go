// Package dataset defines the in-memory dataset representation used across
// the repository and synthetic generators that stand in for the paper's 12
// public datasets (LibSVM/UCI/Kaggle are unavailable offline; see DESIGN.md
// for the substitution rationale).
//
// A Dataset is either a classification problem (integer labels in
// [0, NumClasses)) or a regression problem (float64 targets). The budget
// unit of the paper's bandit methods is the instance, so the package
// provides the row-subset, split and stratification operations those
// methods need.
package dataset

import (
	"fmt"
	"sort"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// Kind distinguishes the two supervised task types in the paper.
type Kind int

const (
	// Classification labels instances with integer classes.
	Classification Kind = iota
	// Regression targets instances with real values.
	Regression
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Classification:
		return "classification"
	case Regression:
		return "regression"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dataset holds features and targets for one supervised problem.
type Dataset struct {
	// Name identifies the dataset (e.g. "gisette-sim").
	Name string
	// Kind is Classification or Regression.
	Kind Kind
	// X holds one instance per row.
	X *mat.Dense
	// Class holds integer labels for classification datasets; nil otherwise.
	Class []int
	// Target holds real targets for regression datasets; nil otherwise.
	Target []float64
	// NumClasses is the number of classes for classification datasets.
	NumClasses int
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return d.X.Rows() }

// Features returns the feature dimensionality.
func (d *Dataset) Features() int { return d.X.Cols() }

// Validate checks internal consistency and returns a descriptive error on
// the first violation found.
func (d *Dataset) Validate() error {
	n := d.X.Rows()
	switch d.Kind {
	case Classification:
		if len(d.Class) != n {
			return fmt.Errorf("dataset %s: %d rows but %d class labels", d.Name, n, len(d.Class))
		}
		if d.NumClasses < 2 {
			return fmt.Errorf("dataset %s: classification with %d classes", d.Name, d.NumClasses)
		}
		for i, c := range d.Class {
			if c < 0 || c >= d.NumClasses {
				return fmt.Errorf("dataset %s: label %d at row %d out of [0,%d)", d.Name, c, i, d.NumClasses)
			}
		}
	case Regression:
		if len(d.Target) != n {
			return fmt.Errorf("dataset %s: %d rows but %d targets", d.Name, n, len(d.Target))
		}
	default:
		return fmt.Errorf("dataset %s: unknown kind %d", d.Name, int(d.Kind))
	}
	return nil
}

// Select returns a new dataset containing the rows at the given indices, in
// order. Indices may repeat. It panics on an out-of-range index.
func (d *Dataset) Select(indices []int) *Dataset {
	f := d.Features()
	x := mat.NewDense(max(len(indices), 1), f)
	if len(indices) == 0 {
		// Keep a 1-row zero matrix to satisfy mat's positive-dims invariant
		// but report zero logical length through labels below. Callers are
		// expected not to Select an empty set; guard anyway.
		panic("dataset: Select with no indices")
	}
	out := &Dataset{Name: d.Name, Kind: d.Kind, X: x, NumClasses: d.NumClasses}
	for row, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			panic(fmt.Sprintf("dataset: Select index %d out of range %d", idx, d.Len()))
		}
		copy(x.Row(row), d.X.Row(idx))
	}
	if d.Kind == Classification {
		out.Class = make([]int, len(indices))
		for row, idx := range indices {
			out.Class[row] = d.Class[idx]
		}
	} else {
		out.Target = make([]float64, len(indices))
		for row, idx := range indices {
			out.Target[row] = d.Target[idx]
		}
	}
	return out
}

// ClassCounts returns the number of instances per class.
// It panics for regression datasets.
func (d *Dataset) ClassCounts() []int {
	if d.Kind != Classification {
		panic("dataset: ClassCounts on regression dataset")
	}
	counts := make([]int, d.NumClasses)
	for _, c := range d.Class {
		counts[c]++
	}
	return counts
}

// ClassIndices returns, per class, the row indices holding that class.
func (d *Dataset) ClassIndices() [][]int {
	if d.Kind != Classification {
		panic("dataset: ClassIndices on regression dataset")
	}
	out := make([][]int, d.NumClasses)
	for i, c := range d.Class {
		out[c] = append(out[c], i)
	}
	return out
}

// TrainTestSplit splits d into train and test parts using the paper's 80/20
// rule, shuffling with r. Classification splits are stratified so that both
// parts preserve class proportions.
func (d *Dataset) TrainTestSplit(r *rng.RNG, testFraction float64) (train, test *Dataset) {
	if testFraction <= 0 || testFraction >= 1 {
		panic(fmt.Sprintf("dataset: testFraction %v out of (0,1)", testFraction))
	}
	var trainIdx, testIdx []int
	if d.Kind == Classification {
		for _, members := range d.ClassIndices() {
			members = append([]int(nil), members...)
			shuffleInts(r, members)
			cut := int(float64(len(members)) * testFraction)
			if cut == 0 && len(members) > 1 {
				cut = 1
			}
			testIdx = append(testIdx, members[:cut]...)
			trainIdx = append(trainIdx, members[cut:]...)
		}
	} else {
		perm := r.Perm(d.Len())
		cut := int(float64(d.Len()) * testFraction)
		testIdx = perm[:cut]
		trainIdx = perm[cut:]
	}
	shuffleInts(r, trainIdx)
	shuffleInts(r, testIdx)
	return d.Select(trainIdx), d.Select(testIdx)
}

// StratifiedSample returns k row indices sampled so that class proportions
// are preserved as closely as integer rounding allows. For regression
// datasets it falls back to uniform sampling. k must be in [1, Len()].
func (d *Dataset) StratifiedSample(r *rng.RNG, k int) []int {
	n := d.Len()
	if k <= 0 || k > n {
		panic(fmt.Sprintf("dataset: StratifiedSample k=%d out of [1,%d]", k, n))
	}
	if d.Kind != Classification {
		return r.Sample(n, k)
	}
	return StratifiedIndices(r, d.Class, d.NumClasses, k)
}

// StratifiedIndices samples k indices from labels preserving class
// proportions. Exported for reuse by the cv package, which stratifies over
// group labels as well as class labels.
func StratifiedIndices(r *rng.RNG, labels []int, numClasses, k int) []int {
	n := len(labels)
	if k <= 0 || k > n {
		panic(fmt.Sprintf("dataset: StratifiedIndices k=%d out of [1,%d]", k, n))
	}
	byClass := make([][]int, numClasses)
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
	}
	// Largest-remainder allocation of k across classes.
	type alloc struct {
		class int
		base  int
		rem   float64
	}
	allocs := make([]alloc, 0, numClasses)
	total := 0
	for c, members := range byClass {
		if len(members) == 0 {
			continue
		}
		exact := float64(k) * float64(len(members)) / float64(n)
		base := int(exact)
		if base > len(members) {
			base = len(members)
		}
		allocs = append(allocs, alloc{class: c, base: base, rem: exact - float64(base)})
		total += base
	}
	sort.SliceStable(allocs, func(i, j int) bool { return allocs[i].rem > allocs[j].rem })
	for i := 0; total < k && i < len(allocs); i++ {
		c := allocs[i].class
		if allocs[i].base < len(byClass[c]) {
			allocs[i].base++
			total++
		}
	}
	// If rounding still left a deficit (tiny classes), top up round-robin.
	for i := 0; total < k; i = (i + 1) % len(allocs) {
		c := allocs[i].class
		if allocs[i].base < len(byClass[c]) {
			allocs[i].base++
			total++
		}
	}
	var out []int
	for _, a := range allocs {
		members := byClass[a.class]
		picked := r.Sample(len(members), a.base)
		for _, p := range picked {
			out = append(out, members[p])
		}
	}
	shuffleInts(r, out)
	return out
}

func shuffleInts(r *rng.RNG, s []int) { r.Shuffle(s) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"enhancedbhpo/internal/mat"
)

// CSV import/export so users can bring their own data instead of the
// synthetic generators. Format: a header row of feature names plus a final
// "label" (classification) or "target" (regression) column; one instance
// per row.

// WriteCSV writes d to w with a header row. Classification labels are
// written as integers, regression targets as floats.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	f := d.Features()
	header := make([]string, f+1)
	for j := 0; j < f; j++ {
		header[j] = fmt.Sprintf("f%d", j)
	}
	if d.Kind == Classification {
		header[f] = "label"
	} else {
		header[f] = "target"
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, f+1)
	for i := 0; i < d.Len(); i++ {
		xr := d.X.Row(i)
		for j, v := range xr {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if d.Kind == Classification {
			row[f] = strconv.Itoa(d.Class[i])
		} else {
			row[f] = strconv.FormatFloat(d.Target[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV whose last
// column is the label/target). kind selects how to interpret the final
// column; name labels the resulting dataset.
func ReadCSV(r io.Reader, kind Kind, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better error message
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("dataset: csv has no data rows")
	}
	width := len(records[0])
	if width < 2 {
		return nil, fmt.Errorf("dataset: csv needs at least one feature and a label column")
	}
	f := width - 1
	n := len(records) - 1
	x := mat.NewDense(n, f)
	d := &Dataset{Name: name, Kind: kind, X: x}
	if kind == Classification {
		d.Class = make([]int, n)
	} else {
		d.Target = make([]float64, n)
	}
	maxClass := 0
	for i, rec := range records[1:] {
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(rec), width)
		}
		row := x.Row(i)
		for j := 0; j < f; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d field %d: %w", i+1, j, err)
			}
			row[j] = v
		}
		if kind == Classification {
			c, err := strconv.Atoi(rec[f])
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d label: %w", i+1, err)
			}
			if c < 0 {
				return nil, fmt.Errorf("dataset: row %d: negative label %d", i+1, c)
			}
			d.Class[i] = c
			if c > maxClass {
				maxClass = c
			}
		} else {
			t, err := strconv.ParseFloat(rec[f], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d target: %w", i+1, err)
			}
			d.Target[i] = t
		}
	}
	if kind == Classification {
		d.NumClasses = maxClass + 1
		if d.NumClasses < 2 {
			return nil, fmt.Errorf("dataset: csv has a single class")
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

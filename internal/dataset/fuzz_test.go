package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV parser with arbitrary input: it must never
// panic, and any dataset it accepts must validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("f0,label\n1,0\n2,1\n")
	f.Add("f0,f1,label\n1.5,-2,0\n0,3,1\n9,9,1\n")
	f.Add("f0,target\n1,0.5\n2,1.5\n")
	f.Add("")
	f.Add("a,b\n\x00,1\n")
	f.Add("f0,label\n1e309,0\n1,1\n")
	f.Fuzz(func(t *testing.T, data string) {
		for _, kind := range []Kind{Classification, Regression} {
			d, err := ReadCSV(strings.NewReader(data), kind, "fuzz")
			if err != nil {
				continue
			}
			if vErr := d.Validate(); vErr != nil {
				t.Fatalf("accepted dataset fails validation: %v", vErr)
			}
			// Round trip must also parse.
			var buf bytes.Buffer
			if wErr := d.WriteCSV(&buf); wErr != nil {
				t.Fatalf("accepted dataset fails to serialize: %v", wErr)
			}
			if _, rErr := ReadCSV(&buf, kind, "fuzz2"); rErr != nil {
				t.Fatalf("round trip failed: %v", rErr)
			}
		}
	})
}

package dataset

import (
	"fmt"
	"sort"
)

// This file implements the label pre-processing from §III-A:
//
//   - MergeRareClasses: "when dealing with highly imbalanced datasets where
//     there are very few instances in a certain class (less than n/u × 10%),
//     we merge that class with other less frequent classes".
//   - BinRegressionTargets: "for the regression problem without
//     classification labels, we can directly divide numerical labels based
//     on their magnitude and assign them to different categories".
//
// Both produce the per-instance label category c_i^y consumed by grouping.

// DefaultRareClassRatio is the paper's 10% threshold relative to the mean
// class size n/u.
const DefaultRareClassRatio = 0.10

// LabelCategories returns the per-instance label category c_i^y for any
// dataset kind: raw (possibly merged) classes for classification, and
// magnitude bins for regression.
func LabelCategories(d *Dataset, rareRatio float64, regressionBins int) (labels []int, numCategories int) {
	if d.Kind == Classification {
		return MergeRareClasses(d.Class, d.NumClasses, rareRatio)
	}
	return BinRegressionTargets(d.Target, regressionBins), regressionBins
}

// MergeRareClasses maps the original classes onto a possibly smaller
// category set: any class with fewer than rareRatio·(n/u) instances is
// merged with the other rare classes into one shared category. When at most
// one class is rare there is nothing to merge with and the identity mapping
// is returned. The returned labels are re-indexed densely from 0.
func MergeRareClasses(class []int, numClasses int, rareRatio float64) (labels []int, numCategories int) {
	n := len(class)
	if n == 0 || numClasses == 0 {
		return nil, 0
	}
	counts := make([]int, numClasses)
	for _, c := range class {
		if c < 0 || c >= numClasses {
			panic(fmt.Sprintf("dataset: class %d out of [0,%d)", c, numClasses))
		}
		counts[c]++
	}
	threshold := rareRatio * float64(n) / float64(numClasses)
	rare := make([]bool, numClasses)
	rareCount := 0
	for c, cnt := range counts {
		if cnt > 0 && float64(cnt) < threshold {
			rare[c] = true
			rareCount++
		}
	}
	if rareCount <= 1 {
		// Nothing to merge (a single rare class has no "other less frequent
		// classes" to join).
		out := append([]int(nil), class...)
		return out, numClasses
	}
	// Dense re-index: non-rare classes keep distinct categories in class
	// order; all rare classes share one trailing category.
	mapping := make([]int, numClasses)
	next := 0
	for c := 0; c < numClasses; c++ {
		if !rare[c] {
			mapping[c] = next
			next++
		}
	}
	mergedCat := next
	for c := 0; c < numClasses; c++ {
		if rare[c] {
			mapping[c] = mergedCat
		}
	}
	labels = make([]int, n)
	for i, c := range class {
		labels[i] = mapping[c]
	}
	return labels, mergedCat + 1
}

// BinRegressionTargets divides real targets into bins of (approximately)
// equal population by magnitude quantiles and returns the per-instance bin
// index. bins must be at least 2.
func BinRegressionTargets(target []float64, bins int) []int {
	if bins < 2 {
		panic(fmt.Sprintf("dataset: regression bins %d < 2", bins))
	}
	n := len(target)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return target[order[a]] < target[order[b]] })
	for rank, idx := range order {
		b := rank * bins / n
		if b >= bins {
			b = bins - 1
		}
		out[idx] = b
	}
	// Instances with identical target values must land in the same bin:
	// sweep the sorted order and pull ties down to the first occurrence's bin.
	for k := 1; k < n; k++ {
		prev, cur := order[k-1], order[k]
		if target[prev] == target[cur] && out[prev] != out[cur] {
			out[cur] = out[prev]
		}
	}
	return out
}

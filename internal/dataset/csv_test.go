package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTripClassification(t *testing.T) {
	d := smallClassification()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, Classification, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Features() != d.Features() {
		t.Fatalf("shape %dx%d, want %dx%d", back.Len(), back.Features(), d.Len(), d.Features())
	}
	if back.NumClasses != d.NumClasses {
		t.Fatalf("classes %d", back.NumClasses)
	}
	for i := 0; i < d.Len(); i++ {
		if back.Class[i] != d.Class[i] {
			t.Fatalf("label %d differs", i)
		}
		for j := 0; j < d.Features(); j++ {
			if back.X.At(i, j) != d.X.At(i, j) {
				t.Fatalf("feature (%d,%d) differs", i, j)
			}
		}
	}
}

func TestCSVRoundTripRegression(t *testing.T) {
	spec, _ := SpecByName("kc-house")
	spec = spec.Scaled(0.02)
	d, _ := MustSynthesize(spec, 31)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "target") {
		t.Fatal("regression header missing target column")
	}
	back, err := ReadCSV(&buf, Regression, "housing")
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Target {
		if back.Target[i] != d.Target[i] {
			t.Fatalf("target %d differs", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no data rows":   "f0,label\n",
		"one column":     "label\n1\n",
		"bad feature":    "f0,label\nx,1\n1,0\n",
		"bad label":      "f0,label\n1,x\n2,0\n",
		"negative label": "f0,label\n1,-1\n2,0\n",
		"single class":   "f0,label\n1,0\n2,0\n",
		"ragged row":     "f0,f1,label\n1,2,0\n1,1\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data), Classification, "bad"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ReadCSV(strings.NewReader("f0,target\n1,x\n"), Regression, "bad"); err == nil {
		t.Error("bad regression target accepted")
	}
}

func TestReadCSVForeignFormat(t *testing.T) {
	// Any CSV with the label in the last column should load.
	data := "sepal,petal,species\n5.1,1.4,0\n4.9,1.5,1\n6.2,4.5,1\n"
	d, err := ReadCSV(strings.NewReader(data), Classification, "iris-ish")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.Features() != 2 || d.NumClasses != 2 {
		t.Fatalf("parsed %dx%d with %d classes", d.Len(), d.Features(), d.NumClasses)
	}
}

package dataset

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/rng"
)

// Noise-injection utilities for robustness experiments: the paper's central
// claim is evaluation *stability*, so the harness stresses the methods with
// corrupted labels and noisy features and checks that the enhanced
// components degrade more gracefully than the vanilla ones.

// CorruptLabels returns a copy of d in which each classification label is
// replaced, with probability rate, by a uniformly random *different* class.
// It panics on regression datasets or a rate outside [0, 1].
func (d *Dataset) CorruptLabels(r *rng.RNG, rate float64) *Dataset {
	if d.Kind != Classification {
		panic("dataset: CorruptLabels on regression dataset")
	}
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("dataset: corruption rate %v out of [0,1]", rate))
	}
	out := d.Select(identity(d.Len()))
	if rate == 0 || d.NumClasses < 2 {
		return out
	}
	for i := range out.Class {
		if r.Float64() < rate {
			// Draw a different class uniformly.
			c := r.Intn(d.NumClasses - 1)
			if c >= out.Class[i] {
				c++
			}
			out.Class[i] = c
		}
	}
	return out
}

// AddFeatureNoise returns a copy of d with zero-mean Gaussian noise of the
// given standard deviation added to every feature value.
func (d *Dataset) AddFeatureNoise(r *rng.RNG, sigma float64) *Dataset {
	if sigma < 0 {
		panic(fmt.Sprintf("dataset: negative noise sigma %v", sigma))
	}
	out := d.Select(identity(d.Len()))
	if sigma == 0 {
		return out
	}
	for i := 0; i < out.Len(); i++ {
		row := out.X.Row(i)
		for j := range row {
			row[j] += r.NormScaled(0, sigma)
		}
	}
	return out
}

// CorruptTargets returns a copy of a regression dataset with heavy-tailed
// target corruption: with probability rate a target is shifted by a draw
// from N(0, (spread·targetStd)²).
func (d *Dataset) CorruptTargets(r *rng.RNG, rate, spread float64) *Dataset {
	if d.Kind != Regression {
		panic("dataset: CorruptTargets on classification dataset")
	}
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("dataset: corruption rate %v out of [0,1]", rate))
	}
	out := d.Select(identity(d.Len()))
	if rate == 0 || spread == 0 {
		return out
	}
	var mean, sq float64
	for _, v := range d.Target {
		mean += v
	}
	mean /= float64(len(d.Target))
	for _, v := range d.Target {
		diff := v - mean
		sq += diff * diff
	}
	std := 0.0
	if len(d.Target) > 1 {
		std = sqrtf(sq / float64(len(d.Target)))
	}
	for i := range out.Target {
		if r.Float64() < rate {
			out.Target[i] += r.NormScaled(0, spread*std)
		}
	}
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

package dataset

import (
	"math"
	"testing"

	"enhancedbhpo/internal/rng"
)

func TestCorruptLabelsRate(t *testing.T) {
	spec, _ := SpecByName("usps")
	spec = spec.Scaled(0.5)
	d, _ := MustSynthesize(spec, 41)
	r := rng.New(42)
	rate := 0.2
	noisy := d.CorruptLabels(r, rate)
	if noisy.Len() != d.Len() {
		t.Fatalf("size changed: %d", noisy.Len())
	}
	changed := 0
	for i := range d.Class {
		if noisy.Class[i] != d.Class[i] {
			changed++
		}
	}
	got := float64(changed) / float64(d.Len())
	if math.Abs(got-rate) > 0.05 {
		t.Fatalf("corruption rate %v, want ~%v", got, rate)
	}
	// Original untouched.
	for i := 0; i < d.Len(); i++ {
		if d.Class[i] < 0 || d.Class[i] >= d.NumClasses {
			t.Fatal("original labels mutated")
		}
	}
	// Labels stay in range and corrupted ones genuinely differ.
	if err := noisy.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptLabelsZeroRateIsCopy(t *testing.T) {
	spec, _ := SpecByName("australian")
	spec = spec.Scaled(0.2)
	d, _ := MustSynthesize(spec, 43)
	noisy := d.CorruptLabels(rng.New(1), 0)
	for i := range d.Class {
		if noisy.Class[i] != d.Class[i] {
			t.Fatal("zero-rate corruption changed labels")
		}
	}
	// Independent storage.
	noisy.Class[0] = (noisy.Class[0] + 1) % d.NumClasses
	if d.Class[0] == noisy.Class[0] && d.Class[1] == noisy.Class[1] {
		// Only fails if aliased; check explicitly:
		t.Log("labels coincide after mutation; verifying storage independence")
	}
	noisy.X.Set(0, 0, 12345)
	if d.X.At(0, 0) == 12345 {
		t.Fatal("feature storage aliased")
	}
}

func TestCorruptLabelsPanics(t *testing.T) {
	spec, _ := SpecByName("kc-house")
	spec = spec.Scaled(0.05)
	reg, _ := MustSynthesize(spec, 44)
	assertPanics(t, "regression", func() { reg.CorruptLabels(rng.New(1), 0.1) })
	cls := smallClassification()
	assertPanics(t, "bad rate", func() { cls.CorruptLabels(rng.New(1), 1.5) })
}

func TestAddFeatureNoise(t *testing.T) {
	d := smallClassification()
	noisy := d.AddFeatureNoise(rng.New(5), 0.5)
	var diff float64
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < d.Features(); j++ {
			diff += math.Abs(noisy.X.At(i, j) - d.X.At(i, j))
		}
	}
	if diff == 0 {
		t.Fatal("no noise added")
	}
	same := d.AddFeatureNoise(rng.New(5), 0)
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < d.Features(); j++ {
			if same.X.At(i, j) != d.X.At(i, j) {
				t.Fatal("sigma=0 changed features")
			}
		}
	}
	assertPanics(t, "negative sigma", func() { d.AddFeatureNoise(rng.New(1), -1) })
}

func TestCorruptTargets(t *testing.T) {
	spec, _ := SpecByName("kc-house")
	spec = spec.Scaled(0.1)
	d, _ := MustSynthesize(spec, 45)
	noisy := d.CorruptTargets(rng.New(6), 0.3, 2)
	changed := 0
	for i := range d.Target {
		if noisy.Target[i] != d.Target[i] {
			changed++
		}
	}
	rate := float64(changed) / float64(d.Len())
	if rate < 0.15 || rate > 0.45 {
		t.Fatalf("target corruption rate %v, want ~0.3", rate)
	}
	clean := d.CorruptTargets(rng.New(6), 0, 2)
	for i := range d.Target {
		if clean.Target[i] != d.Target[i] {
			t.Fatal("zero-rate corruption changed targets")
		}
	}
	cls := smallClassification()
	assertPanics(t, "classification", func() { cls.CorruptTargets(rng.New(1), 0.1, 1) })
	assertPanics(t, "bad rate", func() { d.CorruptTargets(rng.New(1), -0.1, 1) })
}

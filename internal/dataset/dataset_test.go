package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

func smallClassification() *Dataset {
	x := mat.NewDenseData(6, 2, []float64{
		0, 0, 1, 1, 2, 2,
		10, 10, 11, 11, 12, 12,
	})
	return &Dataset{
		Name: "tiny", Kind: Classification, X: x,
		Class: []int{0, 0, 0, 1, 1, 1}, NumClasses: 2,
	}
}

func TestValidate(t *testing.T) {
	d := smallClassification()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallClassification()
	bad.Class = bad.Class[:3]
	if err := bad.Validate(); err == nil {
		t.Error("expected label-count error")
	}
	bad2 := smallClassification()
	bad2.Class[0] = 9
	if err := bad2.Validate(); err == nil {
		t.Error("expected label-range error")
	}
	bad3 := smallClassification()
	bad3.NumClasses = 1
	if err := bad3.Validate(); err == nil {
		t.Error("expected class-count error")
	}
	reg := &Dataset{Name: "r", Kind: Regression, X: mat.NewDense(2, 1), Target: []float64{1, 2}}
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	reg.Target = reg.Target[:1]
	if err := reg.Validate(); err == nil {
		t.Error("expected target-count error")
	}
}

func TestSelect(t *testing.T) {
	d := smallClassification()
	sub := d.Select([]int{5, 0, 3})
	if sub.Len() != 3 {
		t.Fatalf("len = %d", sub.Len())
	}
	if sub.Class[0] != 1 || sub.Class[1] != 0 || sub.Class[2] != 1 {
		t.Fatalf("classes = %v", sub.Class)
	}
	if sub.X.At(0, 0) != 12 {
		t.Fatalf("row copy wrong: %v", sub.X.Row(0))
	}
	// Mutating the subset must not touch the original.
	sub.X.Set(0, 0, -1)
	if d.X.At(5, 0) != 12 {
		t.Fatal("Select aliases original storage")
	}
	assertPanics(t, "out of range", func() { d.Select([]int{99}) })
	assertPanics(t, "empty", func() { d.Select(nil) })
}

func TestClassCountsAndIndices(t *testing.T) {
	d := smallClassification()
	counts := d.ClassCounts()
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	idx := d.ClassIndices()
	if len(idx[0]) != 3 || idx[1][0] != 3 {
		t.Fatalf("indices = %v", idx)
	}
	reg := &Dataset{Kind: Regression, X: mat.NewDense(2, 1), Target: []float64{1, 2}}
	assertPanics(t, "regression counts", func() { reg.ClassCounts() })
	assertPanics(t, "regression indices", func() { reg.ClassIndices() })
}

func TestTrainTestSplitStratified(t *testing.T) {
	spec, err := SpecByName("satimage")
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	train, test := full.TrainTestSplit(r, 0.2)
	if train.Len()+test.Len() != full.Len() {
		t.Fatalf("split sizes %d + %d != %d", train.Len(), test.Len(), full.Len())
	}
	wantTest := float64(full.Len()) * 0.2
	if math.Abs(float64(test.Len())-wantTest) > wantTest*0.2+float64(full.NumClasses) {
		t.Fatalf("test size %d far from %v", test.Len(), wantTest)
	}
	// Class proportions approximately preserved.
	fullCounts := full.ClassCounts()
	trainCounts := train.ClassCounts()
	for c := range fullCounts {
		fullFrac := float64(fullCounts[c]) / float64(full.Len())
		trainFrac := float64(trainCounts[c]) / float64(train.Len())
		if math.Abs(fullFrac-trainFrac) > 0.03 {
			t.Fatalf("class %d fraction drifted: %v vs %v", c, fullFrac, trainFrac)
		}
	}
	assertPanics(t, "bad fraction", func() { full.TrainTestSplit(r, 0) })
}

func TestStratifiedSamplePreservesProportions(t *testing.T) {
	d := smallClassification()
	r := rng.New(3)
	idx := d.StratifiedSample(r, 4)
	if len(idx) != 4 {
		t.Fatalf("sampled %d", len(idx))
	}
	counts := [2]int{}
	for _, i := range idx {
		counts[d.Class[i]]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("stratified counts = %v", counts)
	}
	assertPanics(t, "k too large", func() { d.StratifiedSample(r, 7) })
	assertPanics(t, "k zero", func() { d.StratifiedSample(r, 0) })
}

func TestStratifiedIndicesProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		labels := make([]int, 60)
		for i := range labels {
			labels[i] = r.Intn(3)
		}
		for _, k := range []int{1, 10, 30, 60} {
			idx := StratifiedIndices(r, labels, 3, k)
			if len(idx) != k {
				return false
			}
			seen := map[int]bool{}
			for _, i := range idx {
				if i < 0 || i >= 60 || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMergeRareClasses(t *testing.T) {
	// 100 instances, 4 classes: sizes 60, 30, 6, 4. Mean 25; threshold 2.5.
	// Nothing rare at 10% -> identity.
	labels := buildLabels(60, 30, 6, 4)
	out, n := MergeRareClasses(labels, 4, 0.10)
	if n != 4 {
		t.Fatalf("unexpected merge: %d categories", n)
	}
	for i := range labels {
		if out[i] != labels[i] {
			t.Fatal("identity mapping expected")
		}
	}
	// Higher threshold: classes 2 (6) and 3 (4) fall under 0.5*25=12.5 and merge.
	out, n = MergeRareClasses(labels, 4, 0.5)
	if n != 3 {
		t.Fatalf("expected 3 categories, got %d", n)
	}
	catOfClass2 := out[90]
	catOfClass3 := out[96]
	if catOfClass2 != catOfClass3 {
		t.Fatalf("rare classes not merged: %d vs %d", catOfClass2, catOfClass3)
	}
	if out[0] == catOfClass2 || out[60] == catOfClass2 {
		t.Fatal("frequent class merged with rare")
	}
}

func TestMergeRareClassesSingleRareUntouched(t *testing.T) {
	// Only one rare class: no "other less frequent classes" to merge with.
	labels := buildLabels(50, 45, 5)
	out, n := MergeRareClasses(labels, 3, 0.3)
	if n != 3 {
		t.Fatalf("single rare class should stay: %d categories", n)
	}
	_ = out
}

func buildLabels(sizes ...int) []int {
	var labels []int
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			labels = append(labels, c)
		}
	}
	return labels
}

func TestBinRegressionTargets(t *testing.T) {
	target := []float64{10, 1, 5, 7, 3, 9, 2, 8, 4, 6}
	bins := BinRegressionTargets(target, 2)
	for i, v := range target {
		wantBin := 0
		if v > 5 {
			wantBin = 1
		}
		if bins[i] != wantBin {
			t.Fatalf("value %v in bin %d, want %d", v, bins[i], wantBin)
		}
	}
	assertPanics(t, "one bin", func() { BinRegressionTargets(target, 1) })
}

func TestBinRegressionTiesShareBin(t *testing.T) {
	target := []float64{1, 1, 1, 1, 2, 2}
	bins := BinRegressionTargets(target, 3)
	for i := 1; i < 4; i++ {
		if bins[i] != bins[0] {
			t.Fatalf("equal targets in different bins: %v", bins)
		}
	}
}

func TestLabelCategoriesDispatch(t *testing.T) {
	d := smallClassification()
	labels, n := LabelCategories(d, 0.1, 4)
	if n != 2 || len(labels) != 6 {
		t.Fatalf("classification categories: %d cats, %d labels", n, len(labels))
	}
	reg := &Dataset{Kind: Regression, X: mat.NewDense(8, 1), Target: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	labels, n = LabelCategories(reg, 0.1, 4)
	if n != 4 {
		t.Fatalf("regression bins = %d", n)
	}
	if labels[0] == labels[7] {
		t.Fatal("extreme targets share a bin")
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

package dataset

import (
	"fmt"
	"math"
	"sort"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// Spec describes a synthetic dataset generator. Each of the paper's 12
// datasets has a Spec that matches its task type, class count, class
// balance and (scaled-down) size and dimensionality. The generator plants
// latent feature clusters that are correlated with, but not identical to,
// the class labels — exactly the structure the paper's grouping method
// (feature clusters × label classes) is designed to exploit.
type Spec struct {
	// Name of the simulated dataset, e.g. "gisette".
	Name string
	// Kind is Classification or Regression.
	Kind Kind
	// Classes is the class count (classification only).
	Classes int
	// Train and Test are the instance counts to generate.
	Train, Test int
	// Features is the total feature dimensionality.
	Features int
	// Informative is the number of features carrying signal; the rest are
	// pure noise (simulating high-dimensional sparse problems like gisette).
	Informative int
	// Clusters is the number of latent feature clusters.
	Clusters int
	// ClassSep scales the class-dependent shift in feature space; larger
	// values make the problem easier.
	ClassSep float64
	// ClusterSep scales the spread between latent cluster centers.
	ClusterSep float64
	// Noise is the within-cluster feature standard deviation.
	Noise float64
	// Priors are class priors; nil means balanced. Must sum to ~1.
	Priors []float64
	// TargetNoise is the regression target noise standard deviation.
	TargetNoise float64
}

// Validate reports the first problem with the spec, if any.
func (s Spec) Validate() error {
	if s.Train <= 0 || s.Test < 0 {
		return fmt.Errorf("spec %s: train=%d test=%d", s.Name, s.Train, s.Test)
	}
	if s.Features <= 0 || s.Informative <= 0 || s.Informative > s.Features {
		return fmt.Errorf("spec %s: features=%d informative=%d", s.Name, s.Features, s.Informative)
	}
	if s.Clusters <= 0 {
		return fmt.Errorf("spec %s: clusters=%d", s.Name, s.Clusters)
	}
	if s.Kind == Classification {
		if s.Classes < 2 {
			return fmt.Errorf("spec %s: classes=%d", s.Name, s.Classes)
		}
		if s.Priors != nil {
			if len(s.Priors) != s.Classes {
				return fmt.Errorf("spec %s: %d priors for %d classes", s.Name, len(s.Priors), s.Classes)
			}
			var sum float64
			for _, p := range s.Priors {
				if p <= 0 {
					return fmt.Errorf("spec %s: non-positive prior", s.Name)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("spec %s: priors sum to %v", s.Name, sum)
			}
		}
	}
	return nil
}

// Scaled returns a copy of the spec with train/test sizes multiplied by
// factor (minimum 32 train instances). Used by fast tests and benchmarks.
func (s Spec) Scaled(factor float64) Spec {
	out := s
	out.Train = int(float64(s.Train) * factor)
	if out.Train < 32 {
		out.Train = 32
	}
	out.Test = int(float64(s.Test) * factor)
	if out.Test < 16 {
		out.Test = 16
	}
	return out
}

// PaperSpecs returns the generator specs for all 12 datasets of Table II,
// scaled to laptop size (the shapes, class counts and imbalance profiles
// match the table; instance counts are reduced roughly 10–100×, see
// DESIGN.md).
func PaperSpecs() []Spec {
	return []Spec{
		{Name: "australian", Kind: Classification, Classes: 2, Train: 552, Test: 138, Features: 14, Informative: 10, Clusters: 4, ClassSep: 1.2, ClusterSep: 3.0, Noise: 1.0},
		{Name: "splice", Kind: Classification, Classes: 2, Train: 800, Test: 400, Features: 60, Informative: 20, Clusters: 4, ClassSep: 1.0, ClusterSep: 2.5, Noise: 1.0},
		{Name: "gisette", Kind: Classification, Classes: 2, Train: 1200, Test: 300, Features: 100, Informative: 25, Clusters: 5, ClassSep: 1.1, ClusterSep: 2.5, Noise: 1.0},
		{Name: "machine", Kind: Classification, Classes: 2, Train: 1500, Test: 375, Features: 9, Informative: 7, Clusters: 3, ClassSep: 1.6, ClusterSep: 3.0, Noise: 0.9, Priors: []float64{0.92, 0.08}},
		{Name: "nticusdroid", Kind: Classification, Classes: 2, Train: 1800, Test: 450, Features: 86, Informative: 30, Clusters: 5, ClassSep: 1.3, ClusterSep: 2.8, Noise: 1.0},
		{Name: "a9a", Kind: Classification, Classes: 2, Train: 2000, Test: 1000, Features: 123, Informative: 35, Clusters: 5, ClassSep: 0.9, ClusterSep: 2.2, Noise: 1.1, Priors: []float64{0.76, 0.24}},
		{Name: "fraud", Kind: Classification, Classes: 2, Train: 2400, Test: 600, Features: 30, Informative: 15, Clusters: 4, ClassSep: 2.0, ClusterSep: 2.5, Noise: 0.8, Priors: []float64{0.98, 0.02}},
		{Name: "credit2023", Kind: Classification, Classes: 2, Train: 2800, Test: 700, Features: 29, Informative: 18, Clusters: 4, ClassSep: 1.2, ClusterSep: 2.6, Noise: 1.0},
		{Name: "satimage", Kind: Classification, Classes: 6, Train: 1600, Test: 720, Features: 36, Informative: 20, Clusters: 5, ClassSep: 1.4, ClusterSep: 3.2, Noise: 1.0, Priors: []float64{0.24, 0.11, 0.21, 0.10, 0.11, 0.23}},
		{Name: "usps", Kind: Classification, Classes: 10, Train: 1800, Test: 500, Features: 64, Informative: 40, Clusters: 5, ClassSep: 1.6, ClusterSep: 3.0, Noise: 0.9},
		{Name: "molecules", Kind: Regression, Train: 1600, Test: 400, Features: 60, Informative: 20, Clusters: 4, ClusterSep: 2.8, Noise: 1.0, TargetNoise: 0.3},
		{Name: "kc-house", Kind: Regression, Train: 1700, Test: 425, Features: 18, Informative: 12, Clusters: 4, ClusterSep: 3.0, Noise: 1.0, TargetNoise: 0.25},
	}
}

// SpecByName returns the paper spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range PaperSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown spec %q", name)
}

// Names returns the paper dataset names in Table II order.
func Names() []string {
	specs := PaperSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Synthesize generates train and test datasets from the spec with the given
// seed. The same seed always yields the same data.
func Synthesize(spec Spec, seed uint64) (train, test *Dataset, err error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	r := rng.New(seed)
	g := newGenerator(spec, r)
	train = g.generate(spec.Train, r.Split(1))
	test = g.generate(spec.Test, r.Split(2))
	return train, test, nil
}

// MustSynthesize is Synthesize that panics on error; for tests and examples
// using known-good specs.
func MustSynthesize(spec Spec, seed uint64) (train, test *Dataset) {
	train, test, err := Synthesize(spec, seed)
	if err != nil {
		panic(err)
	}
	return train, test
}

// generator holds the latent structure shared by the train and test splits.
type generator struct {
	spec Spec
	// centers[k] is the latent cluster center over informative features.
	centers [][]float64
	// classDir[c] is the class-dependent shift direction (classification).
	classDir [][]float64
	// clusterWeights[c][k] is P(cluster k | class c) (classification);
	// for regression, clusterWeights[0] is the global cluster mixture.
	clusterWeights [][]float64
	// regW is the linear target weight vector (regression).
	regW []float64
	// clusterOffset[k] biases the regression target per cluster, coupling
	// cluster identity with label magnitude.
	clusterOffset []float64
}

func newGenerator(spec Spec, r *rng.RNG) *generator {
	g := &generator{spec: spec}
	g.centers = make([][]float64, spec.Clusters)
	for k := range g.centers {
		c := make([]float64, spec.Informative)
		for j := range c {
			c[j] = r.NormScaled(0, spec.ClusterSep)
		}
		g.centers[k] = c
	}
	if spec.Kind == Classification {
		g.classDir = make([][]float64, spec.Classes)
		for c := range g.classDir {
			dir := make([]float64, spec.Informative)
			for j := range dir {
				dir[j] = r.Norm()
			}
			norm := mat.Norm2(dir)
			if norm == 0 {
				dir[0] = 1
				norm = 1
			}
			mat.Scale(spec.ClassSep/norm, dir)
			g.classDir[c] = dir
		}
		// Class-conditional cluster mixtures: each class prefers a couple of
		// clusters but leaks into the others, so feature clusters and label
		// classes are correlated yet distinct.
		g.clusterWeights = make([][]float64, spec.Classes)
		for c := range g.clusterWeights {
			w := make([]float64, spec.Clusters)
			for k := range w {
				w[k] = 0.15 + r.Float64() // floor keeps every cluster reachable
			}
			// Boost two preferred clusters per class.
			w[(c*2)%spec.Clusters] += 1.6
			w[(c*2+1)%spec.Clusters] += 0.8
			g.clusterWeights[c] = w
		}
	} else {
		g.clusterWeights = [][]float64{make([]float64, spec.Clusters)}
		for k := range g.clusterWeights[0] {
			g.clusterWeights[0][k] = 0.5 + r.Float64()
		}
		g.regW = make([]float64, spec.Informative)
		for j := range g.regW {
			g.regW[j] = r.Norm()
		}
		mat.Scale(1/math.Sqrt(float64(spec.Informative)), g.regW)
		g.clusterOffset = make([]float64, spec.Clusters)
		for k := range g.clusterOffset {
			g.clusterOffset[k] = r.NormScaled(0, 1.5)
		}
	}
	return g
}

func (g *generator) generate(n int, r *rng.RNG) *Dataset {
	spec := g.spec
	x := mat.NewDense(n, spec.Features)
	d := &Dataset{Name: spec.Name, Kind: spec.Kind, X: x, NumClasses: spec.Classes}
	if spec.Kind == Classification {
		d.Class = make([]int, n)
	} else {
		d.Target = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		var class, cluster int
		if spec.Kind == Classification {
			class = g.drawClass(r)
			cluster = r.Choice(g.clusterWeights[class])
			d.Class[i] = class
		} else {
			cluster = r.Choice(g.clusterWeights[0])
		}
		row := x.Row(i)
		center := g.centers[cluster]
		for j := 0; j < spec.Informative; j++ {
			row[j] = center[j] + r.NormScaled(0, spec.Noise)
		}
		if spec.Kind == Classification {
			mat.Axpy(1, g.classDir[class], row[:spec.Informative])
		}
		for j := spec.Informative; j < spec.Features; j++ {
			row[j] = r.Norm()
		}
		if spec.Kind == Regression {
			lin := mat.Dot(g.regW, row[:spec.Informative])
			// A mild nonlinearity keeps the MLP hyperparameters relevant.
			nl := 0.6*math.Sin(row[0]) + 0.3*row[1]*row[1]/(1+math.Abs(row[1]))
			d.Target[i] = lin + nl + g.clusterOffset[cluster] + r.NormScaled(0, spec.TargetNoise)
		}
	}
	return d
}

func (g *generator) drawClass(r *rng.RNG) int {
	spec := g.spec
	if spec.Priors == nil {
		return r.Intn(spec.Classes)
	}
	x := r.Float64()
	for c, p := range spec.Priors {
		x -= p
		if x < 0 {
			return c
		}
	}
	return spec.Classes - 1
}

// Standardize rescales each feature column of the given datasets jointly to
// zero mean and unit variance computed on the first dataset (the training
// set), mirroring the usual fit-on-train / apply-to-all preprocessing.
// Constant columns are left centered only.
func Standardize(fit *Dataset, apply ...*Dataset) {
	f := fit.Features()
	n := fit.Len()
	means := make([]float64, f)
	stds := make([]float64, f)
	for i := 0; i < n; i++ {
		row := fit.X.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := fit.X.Row(i)
		for j, v := range row {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / float64(n))
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	all := append([]*Dataset{fit}, apply...)
	for _, d := range all {
		for i := 0; i < d.Len(); i++ {
			row := d.X.Row(i)
			for j := range row {
				row[j] = (row[j] - means[j]) / stds[j]
			}
		}
	}
}

// SortedClassList returns the distinct classes present in labels, ascending.
func SortedClassList(labels []int) []int {
	seen := map[int]struct{}{}
	for _, c := range labels {
		seen[c] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

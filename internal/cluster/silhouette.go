package cluster

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// Silhouette analysis — the second k-selection heuristic the paper cites
// (Saputra et al., "elbow and silhouette method"). The silhouette of point
// i is (b−a)/max(a,b) where a is its mean distance to its own cluster and
// b the mean distance to the nearest other cluster; the mean silhouette
// over all points scores a clustering in [−1, 1].

// Silhouette returns the mean silhouette coefficient of the assignment
// over the rows of x. Clusters with a single member contribute 0, the
// standard convention. It returns an error when fewer than 2 clusters are
// populated.
func Silhouette(x *mat.Dense, assign []int) (float64, error) {
	n := x.Rows()
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: %d assignments for %d rows", len(assign), n)
	}
	k := 0
	for _, a := range assign {
		if a < 0 {
			return 0, fmt.Errorf("cluster: negative assignment %d", a)
		}
		if a+1 > k {
			k = a + 1
		}
	}
	sizes := make([]int, k)
	for _, a := range assign {
		sizes[a]++
	}
	populated := 0
	for _, s := range sizes {
		if s > 0 {
			populated++
		}
	}
	if populated < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs >= 2 populated clusters, got %d", populated)
	}
	var total float64
	// meanDist[i][c] = mean distance from i to cluster c.
	for i := 0; i < n; i++ {
		sums := make([]float64, k)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sums[assign[j]] += distance(x.Row(i), x.Row(j))
		}
		own := assign[i]
		if sizes[own] <= 1 {
			continue // singleton: silhouette 0
		}
		a := sums[own] / float64(sizes[own]-1)
		b := -1.0
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			m := sums[c] / float64(sizes[c])
			if b < 0 || m < b {
				b = m
			}
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n), nil
}

// SilhouetteK selects the cluster count in [kMin, kMax] with the highest
// mean silhouette of a k-means fit — the alternative to Elbow.
func SilhouetteK(x *mat.Dense, kMin, kMax int, opts KMeansOptions, r *rng.RNG) (int, error) {
	if kMin < 2 || kMax < kMin {
		return 0, fmt.Errorf("cluster: invalid silhouette range [%d,%d]", kMin, kMax)
	}
	if kMax > x.Rows() {
		kMax = x.Rows()
	}
	bestK, bestScore := kMin, -2.0
	for k := kMin; k <= kMax; k++ {
		o := opts
		o.K = k
		res, err := KMeans(x, o, r.Split(uint64(k)+0x5113))
		if err != nil {
			return 0, err
		}
		score, err := Silhouette(x, res.Assign)
		if err != nil {
			continue // degenerate fit (all points in one cluster)
		}
		if score > bestScore {
			bestK, bestScore = k, score
		}
	}
	return bestK, nil
}

func distance(a, b []float64) float64 {
	return math.Sqrt(mat.SqDist(a, b))
}

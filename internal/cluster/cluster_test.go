package cluster

import (
	"testing"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// blobs builds k well-separated Gaussian blobs of the given size.
func blobs(k, perCluster, dims int, sep float64, seed uint64) (*mat.Dense, []int) {
	r := rng.New(seed)
	n := k * perCluster
	x := mat.NewDense(n, dims)
	truth := make([]int, n)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dims)
		for j := range centers[c] {
			centers[c][j] = r.NormScaled(0, sep)
		}
	}
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		row := x.Row(i)
		for j := 0; j < dims; j++ {
			row[j] = centers[c][j] + r.Norm()*0.3
		}
	}
	return x, truth
}

// clusterPurity computes the fraction of points whose cluster's majority
// true label matches their own true label.
func clusterPurity(assign, truth []int, k, classes int) float64 {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, classes)
	}
	for i, a := range assign {
		counts[a][truth[i]]++
	}
	correct := 0
	for _, row := range counts {
		best := 0
		for _, c := range row {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

func TestKMeansRecoversBlobs(t *testing.T) {
	x, truth := blobs(3, 60, 4, 8, 1)
	res, err := KMeans(x, KMeansOptions{K: 3, MaxIters: 20}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d", res.K())
	}
	if p := clusterPurity(res.Assign, truth, 3, 3); p < 0.95 {
		t.Fatalf("purity %v < 0.95", p)
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia %v", res.Inertia)
	}
}

func TestKMeansAssignmentsInRange(t *testing.T) {
	x, _ := blobs(2, 30, 3, 5, 3)
	res, err := KMeans(x, KMeansOptions{K: 4}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != x.Rows() {
		t.Fatalf("sizes sum %d != n %d", total, x.Rows())
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 4 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	x, _ := blobs(2, 5, 2, 5, 5)
	if _, err := KMeans(x, KMeansOptions{K: 0}, rng.New(1)); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := KMeans(x, KMeansOptions{K: 100}, rng.New(1)); err == nil {
		t.Error("K>n accepted")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	x, _ := blobs(2, 3, 2, 5, 6)
	res, err := KMeans(x, KMeansOptions{K: x.Rows()}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-6 {
		t.Fatalf("k=n inertia %v should be ~0", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	x, _ := blobs(3, 40, 4, 6, 8)
	r1, err := KMeans(x, KMeansOptions{K: 3}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(x, KMeansOptions{K: 3}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestKMeansMiniBatch(t *testing.T) {
	x, truth := blobs(3, 100, 4, 8, 10)
	res, err := KMeans(x, KMeansOptions{K: 3, MaxIters: 15, MiniBatch: 50}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if p := clusterPurity(res.Assign, truth, 3, 3); p < 0.9 {
		t.Fatalf("mini-batch purity %v < 0.9", p)
	}
}

func TestBalancedKMeansEnforcesMinSize(t *testing.T) {
	// Two big blobs plus a handful of outliers: plain k-means with k=3 tends
	// to give the outliers their own tiny cluster; balanced re-clustering
	// must avoid badly undersized clusters.
	r := rng.New(12)
	n := 210
	x := mat.NewDense(n, 2)
	for i := 0; i < 100; i++ {
		x.Set(i, 0, r.NormScaled(-5, 0.4))
		x.Set(i, 1, r.NormScaled(0, 0.4))
	}
	for i := 100; i < 200; i++ {
		x.Set(i, 0, r.NormScaled(5, 0.4))
		x.Set(i, 1, r.NormScaled(0, 0.4))
	}
	for i := 200; i < n; i++ {
		x.Set(i, 0, r.NormScaled(0, 0.2))
		x.Set(i, 1, r.NormScaled(40, 0.2))
	}
	res, err := BalancedKMeans(x, BalancedOptions{K: 2, RGroup: 0.8}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.Sizes()
	minSize := 0.8 * float64(n) / 2 * 0.5 // generous slack: outliers re-attach at the end
	for k, s := range sizes {
		if float64(s) < minSize {
			t.Fatalf("cluster %d size %d below balanced floor", k, s)
		}
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != n {
		t.Fatalf("balanced assignment covers %d of %d", total, n)
	}
}

func TestBalancedKMeansErrors(t *testing.T) {
	x, _ := blobs(2, 5, 2, 5, 14)
	if _, err := BalancedKMeans(x, BalancedOptions{K: 0}, rng.New(1)); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := BalancedKMeans(x, BalancedOptions{K: 100}, rng.New(1)); err == nil {
		t.Error("K>n accepted")
	}
}

func TestElbowFindsBlobCount(t *testing.T) {
	x, _ := blobs(3, 80, 3, 10, 15)
	k, err := Elbow(x, 1, 6, KMeansOptions{MaxIters: 15}, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 || k > 4 {
		t.Fatalf("elbow picked k=%d for 3 blobs", k)
	}
}

func TestElbowErrors(t *testing.T) {
	x, _ := blobs(2, 5, 2, 5, 17)
	if _, err := Elbow(x, 0, 3, KMeansOptions{}, rng.New(1)); err == nil {
		t.Error("kMin=0 accepted")
	}
	if _, err := Elbow(x, 3, 2, KMeansOptions{}, rng.New(1)); err == nil {
		t.Error("kMax<kMin accepted")
	}
	k, err := Elbow(x, 2, 2, KMeansOptions{}, rng.New(1))
	if err != nil || k != 2 {
		t.Fatalf("degenerate range: k=%d err=%v", k, err)
	}
}

func TestMeanShiftSeparatesBlobs(t *testing.T) {
	x, truth := blobs(2, 40, 2, 12, 18)
	res, err := MeanShift(x, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() < 2 {
		t.Fatalf("mean-shift found %d clusters", res.K())
	}
	if p := clusterPurity(res.Assign, truth, res.K(), 2); p < 0.9 {
		t.Fatalf("mean-shift purity %v", p)
	}
}

func TestMeanShiftErrors(t *testing.T) {
	x, _ := blobs(2, 5, 2, 5, 19)
	if _, err := MeanShift(x, 0, 10); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestEstimateBandwidthPositive(t *testing.T) {
	x, _ := blobs(3, 30, 3, 6, 20)
	bw := EstimateBandwidth(x, 50)
	if bw <= 0 {
		t.Fatalf("bandwidth %v", bw)
	}
	if EstimateBandwidth(mat.NewDense(1, 2), 10) != 1 {
		t.Error("single-point bandwidth fallback wrong")
	}
}

package cluster

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/mat"
)

// MeanShift implements the alternative clustering backend the paper lists
// for group construction (§III-A mentions k-means, mean-shift and affinity
// propagation; k-means is the default). The implementation uses a flat
// (truncated Gaussian) kernel with the given bandwidth and merges converged
// modes closer than bandwidth/2.
//
// Unlike k-means, the number of clusters is an output, so callers that need
// exactly v groups should prefer BalancedKMeans; MeanShift exists for
// exploratory use and for the ablation comparing grouping backends.
func MeanShift(x *mat.Dense, bandwidth float64, maxIters int) (*Result, error) {
	n, f := x.Dims()
	if bandwidth <= 0 {
		return nil, fmt.Errorf("cluster: mean-shift bandwidth %v <= 0", bandwidth)
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	bw2 := bandwidth * bandwidth
	// Shift a copy of every point to its local mode.
	modes := make([][]float64, n)
	for i := 0; i < n; i++ {
		p := make([]float64, f)
		copy(p, x.Row(i))
		next := make([]float64, f)
		for it := 0; it < maxIters; it++ {
			for j := range next {
				next[j] = 0
			}
			count := 0
			for q := 0; q < n; q++ {
				if mat.SqDist(p, x.Row(q)) <= bw2 {
					mat.Axpy(1, x.Row(q), next)
					count++
				}
			}
			if count == 0 {
				break
			}
			mat.Scale(1/float64(count), next)
			if mat.SqDist(p, next) < 1e-8 {
				copy(p, next)
				break
			}
			copy(p, next)
		}
		modes[i] = p
	}
	// Merge modes within bandwidth/2 into clusters.
	var centers [][]float64
	assign := make([]int, n)
	mergeR2 := (bandwidth / 2) * (bandwidth / 2)
	for i, m := range modes {
		found := -1
		for k, c := range centers {
			if mat.SqDist(m, c) <= mergeR2 {
				found = k
				break
			}
		}
		if found < 0 {
			c := make([]float64, f)
			copy(c, m)
			centers = append(centers, c)
			found = len(centers) - 1
		}
		assign[i] = found
	}
	var inertia float64
	for i := 0; i < n; i++ {
		inertia += mat.SqDist(x.Row(i), centers[assign[i]])
	}
	return &Result{Assign: assign, Centers: centers, Inertia: inertia, Iters: maxIters}, nil
}

// EstimateBandwidth returns a heuristic mean-shift bandwidth: the mean
// distance from a subsample of points to their q-quantile neighbor distance
// would be costly; instead we use the common rule of the average pairwise
// distance over a capped subsample, scaled by 0.5.
func EstimateBandwidth(x *mat.Dense, cap int) float64 {
	n := x.Rows()
	if cap <= 0 || cap > n {
		cap = n
	}
	if cap < 2 {
		return 1
	}
	var sum float64
	var cnt int
	step := n / cap
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			sum += math.Sqrt(mat.SqDist(x.Row(i), x.Row(j)))
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return 0.5 * sum / float64(cnt)
}

package cluster

import (
	"testing"

	"enhancedbhpo/internal/mat"
)

func TestAffinityPropagationSeparatesBlobs(t *testing.T) {
	x, truth := blobs(3, 20, 2, 12, 30)
	res, err := AffinityPropagation(x, AffinityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() < 2 {
		t.Fatalf("found %d clusters", res.K())
	}
	if p := clusterPurity(res.Assign, truth, res.K(), 3); p < 0.9 {
		t.Fatalf("purity %v", p)
	}
	total := 0
	for _, s := range res.Sizes() {
		total += s
	}
	if total != x.Rows() {
		t.Fatalf("assignments cover %d of %d", total, x.Rows())
	}
}

func TestAffinityPropagationSinglePoint(t *testing.T) {
	x := mat.NewDenseData(1, 2, []float64{1, 2})
	res, err := AffinityPropagation(x, AffinityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 || res.Assign[0] != 0 {
		t.Fatalf("single point result %+v", res)
	}
}

func TestAffinityPropagationPreference(t *testing.T) {
	x, _ := blobs(2, 15, 2, 10, 31)
	// A very negative preference discourages exemplars → fewer clusters.
	few, err := AffinityPropagation(x, AffinityOptions{Preference: -1e6, HasPreference: true})
	if err != nil {
		t.Fatal(err)
	}
	// A zero preference (= max similarity) encourages many exemplars.
	many, err := AffinityPropagation(x, AffinityOptions{Preference: 0, HasPreference: true})
	if err != nil {
		t.Fatal(err)
	}
	if many.K() < few.K() {
		t.Fatalf("higher preference gave fewer clusters: %d vs %d", many.K(), few.K())
	}
}

func TestAffinityPropagationDamping(t *testing.T) {
	x, truth := blobs(2, 15, 2, 10, 32)
	for _, damping := range []float64{0.5, 0.7, 0.9} {
		// Pin the preference so this test exercises the damping dynamics,
		// not the median-preference heuristic (which is borderline when
		// exactly two far-apart blobs make cross-blob pairs the median).
		// Low damping oscillates longer before settling; give it headroom.
		res, err := AffinityPropagation(x, AffinityOptions{Damping: damping, Preference: -50, HasPreference: true, MaxIters: 200})
		if err != nil {
			t.Fatalf("damping %v: %v", damping, err)
		}
		if p := clusterPurity(res.Assign, truth, res.K(), 2); p < 0.85 {
			t.Fatalf("damping %v purity %v", damping, p)
		}
	}
}

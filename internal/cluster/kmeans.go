// Package cluster implements the feature-clustering substrate behind the
// paper's instance grouping (§III-A): k-means with k-means++ seeding, the
// balanced re-clustering loop that drops undersized clusters (controlled by
// the r_group ratio), a mini-batch path for very large datasets (§III-E),
// an elbow heuristic for choosing the cluster count, and mean-shift as the
// alternative backend the paper mentions.
package cluster

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// KMeansOptions configure a k-means run.
type KMeansOptions struct {
	// K is the number of clusters. Must be >= 1.
	K int
	// MaxIters bounds the Lloyd iterations. The paper notes k-means
	// "defaults to 10" iterations in its time analysis; 0 selects that
	// default.
	MaxIters int
	// Tol stops early when the total center movement falls below it.
	Tol float64
	// MiniBatch, when positive, fits centers on mini-batches of that size
	// instead of full passes, trading accuracy for memory/time as the paper
	// suggests for huge datasets. Final assignment is still exact.
	MiniBatch int
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.MaxIters <= 0 {
		o.MaxIters = 10
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	return o
}

// Result holds a clustering outcome.
type Result struct {
	// Assign[i] is the cluster of row i, in [0, K).
	Assign []int
	// Centers[k] is the centroid of cluster k.
	Centers [][]float64
	// Inertia is the total within-cluster squared distance.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centers) }

// Sizes returns the number of points per cluster.
func (r *Result) Sizes() []int {
	s := make([]int, len(r.Centers))
	for _, a := range r.Assign {
		s[a]++
	}
	return s
}

// KMeans clusters the rows of x into opts.K clusters.
func KMeans(x *mat.Dense, opts KMeansOptions, r *rng.RNG) (*Result, error) {
	opts = opts.withDefaults()
	n, f := x.Dims()
	if opts.K < 1 {
		return nil, fmt.Errorf("cluster: k=%d < 1", opts.K)
	}
	if opts.K > n {
		return nil, fmt.Errorf("cluster: k=%d > n=%d", opts.K, n)
	}
	centers := plusPlusInit(x, opts.K, r)
	assign := make([]int, n)
	counts := make([]int, opts.K)
	newCenters := make([][]float64, opts.K)
	for k := range newCenters {
		newCenters[k] = make([]float64, f)
	}
	var iters int
	for iters = 0; iters < opts.MaxIters; iters++ {
		if opts.MiniBatch > 0 && opts.MiniBatch < n {
			miniBatchStep(x, centers, opts.MiniBatch, r)
			continue
		}
		// Assignment step.
		for i := 0; i < n; i++ {
			assign[i] = nearest(x.Row(i), centers)
		}
		// Update step.
		for k := range newCenters {
			for j := range newCenters[k] {
				newCenters[k][j] = 0
			}
			counts[k] = 0
		}
		for i := 0; i < n; i++ {
			k := assign[i]
			counts[k]++
			mat.Axpy(1, x.Row(i), newCenters[k])
		}
		var moved float64
		for k := range newCenters {
			if counts[k] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// center to keep K clusters alive.
				far := farthestPoint(x, centers)
				copy(newCenters[k], x.Row(far))
			} else {
				mat.Scale(1/float64(counts[k]), newCenters[k])
			}
			moved += math.Sqrt(mat.SqDist(centers[k], newCenters[k]))
			copy(centers[k], newCenters[k])
		}
		if moved < opts.Tol {
			iters++
			break
		}
	}
	// Final exact assignment (covers the mini-batch path too).
	var inertia float64
	for i := 0; i < n; i++ {
		k := nearest(x.Row(i), centers)
		assign[i] = k
		inertia += mat.SqDist(x.Row(i), centers[k])
	}
	return &Result{Assign: assign, Centers: centers, Inertia: inertia, Iters: iters}, nil
}

// plusPlusInit seeds centers with the k-means++ strategy.
func plusPlusInit(x *mat.Dense, k int, r *rng.RNG) [][]float64 {
	n, f := x.Dims()
	centers := make([][]float64, 0, k)
	first := r.Intn(n)
	c0 := make([]float64, f)
	copy(c0, x.Row(first))
	centers = append(centers, c0)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = mat.SqDist(x.Row(i), c0)
	}
	for len(centers) < k {
		var total float64
		for _, d := range dist {
			total += d
		}
		var next int
		if total <= 0 {
			next = r.Intn(n) // all points coincide with a center
		} else {
			target := r.Float64() * total
			for i, d := range dist {
				target -= d
				if target < 0 {
					next = i
					break
				}
			}
		}
		c := make([]float64, f)
		copy(c, x.Row(next))
		centers = append(centers, c)
		for i := range dist {
			if d := mat.SqDist(x.Row(i), c); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return centers
}

func nearest(p []float64, centers [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for k, c := range centers {
		if d := mat.SqDist(p, c); d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

func farthestPoint(x *mat.Dense, centers [][]float64) int {
	n := x.Rows()
	best, bestD := 0, -1.0
	for i := 0; i < n; i++ {
		d := mat.SqDist(x.Row(i), centers[nearest(x.Row(i), centers)])
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// miniBatchStep performs one mini-batch center update (Sculley-style with
// per-center learning rates folded into a single batch pass).
func miniBatchStep(x *mat.Dense, centers [][]float64, batch int, r *rng.RNG) {
	n := x.Rows()
	idx := r.Sample(n, batch)
	counts := make([]int, len(centers))
	for _, i := range idx {
		row := x.Row(i)
		k := nearest(row, centers)
		counts[k]++
		lr := 1 / float64(counts[k])
		for j := range centers[k] {
			centers[k][j] = (1-lr)*centers[k][j] + lr*row[j]
		}
	}
}

// Elbow selects a cluster count in [kMin, kMax] with the elbow heuristic
// the paper cites (§III-B): it fits k-means for each k and picks the k whose
// inertia curve has the largest distance from the line joining the curve's
// endpoints. Ties and degenerate curves fall back to kMin.
func Elbow(x *mat.Dense, kMin, kMax int, opts KMeansOptions, r *rng.RNG) (int, error) {
	if kMin < 1 || kMax < kMin {
		return 0, fmt.Errorf("cluster: invalid elbow range [%d,%d]", kMin, kMax)
	}
	if kMax > x.Rows() {
		kMax = x.Rows()
	}
	if kMax <= kMin {
		return kMin, nil
	}
	inertias := make([]float64, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		o := opts
		o.K = k
		res, err := KMeans(x, o, r.Split(uint64(k)))
		if err != nil {
			return 0, err
		}
		inertias[k-kMin] = res.Inertia
	}
	// Perpendicular distance from each point to the end-to-end chord.
	x0, y0 := float64(kMin), inertias[0]
	x1, y1 := float64(kMax), inertias[len(inertias)-1]
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return kMin, nil
	}
	bestK, bestD := kMin, -1.0
	for k := kMin; k <= kMax; k++ {
		px, py := float64(k), inertias[k-kMin]
		d := math.Abs(dy*px-dx*py+x1*y0-y1*x0) / norm
		if d > bestD {
			bestK, bestD = k, d
		}
	}
	return bestK, nil
}

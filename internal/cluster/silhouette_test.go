package cluster

import (
	"testing"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

func TestSilhouetteGoodVsBadClustering(t *testing.T) {
	x, truth := blobs(2, 25, 2, 10, 50)
	good, err := Silhouette(x, truth)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.5 {
		t.Fatalf("true clustering silhouette %v", good)
	}
	// A shuffled (wrong) assignment scores much lower.
	bad := make([]int, len(truth))
	for i := range bad {
		bad[i] = (i / 2) % 2
	}
	badScore, err := Silhouette(x, bad)
	if err != nil {
		t.Fatal(err)
	}
	if badScore >= good {
		t.Fatalf("wrong clustering silhouette %v >= true %v", badScore, good)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	x, truth := blobs(3, 15, 3, 6, 51)
	s, err := Silhouette(x, truth)
	if err != nil {
		t.Fatal(err)
	}
	if s < -1 || s > 1 {
		t.Fatalf("silhouette %v out of [-1,1]", s)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	x, _ := blobs(2, 5, 2, 5, 52)
	if _, err := Silhouette(x, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	allSame := make([]int, x.Rows())
	if _, err := Silhouette(x, allSame); err == nil {
		t.Error("single cluster accepted")
	}
	neg := make([]int, x.Rows())
	neg[0] = -1
	if _, err := Silhouette(x, neg); err == nil {
		t.Error("negative assignment accepted")
	}
}

func TestSilhouetteSingletonContributesZero(t *testing.T) {
	// 3 points: two close together, one singleton cluster.
	x := mat.NewDenseData(3, 1, []float64{0, 0.1, 10})
	s, err := Silhouette(x, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("silhouette %v, want positive (pair is tight)", s)
	}
}

func TestSilhouetteKFindsBlobCount(t *testing.T) {
	// Fixed, well-separated centers (random centers can collide, which
	// would legitimately merge blobs).
	centers := [][2]float64{{-10, 0}, {10, 0}, {0, 12}}
	r := rng.New(53)
	n := 90
	x := mat.NewDense(n, 2)
	for i := 0; i < n; i++ {
		c := centers[i%3]
		x.Set(i, 0, c[0]+r.Norm()*0.5)
		x.Set(i, 1, c[1]+r.Norm()*0.5)
	}
	k, err := SilhouetteK(x, 2, 6, KMeansOptions{MaxIters: 15}, rng.New(54))
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Fatalf("silhouette picked k=%d for 3 blobs", k)
	}
}

func TestSilhouetteKErrors(t *testing.T) {
	x, _ := blobs(2, 5, 2, 5, 55)
	if _, err := SilhouetteK(x, 1, 3, KMeansOptions{}, rng.New(1)); err == nil {
		t.Error("kMin=1 accepted")
	}
	if _, err := SilhouetteK(x, 3, 2, KMeansOptions{}, rng.New(1)); err == nil {
		t.Error("kMax<kMin accepted")
	}
}

package cluster

import (
	"fmt"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/rng"
)

// DefaultRGroup is the paper's experimental setting for the balance ratio
// r_group (§IV-B sets r_group = 0.8).
const DefaultRGroup = 0.8

// BalancedOptions configure the paper's iterative balanced clustering
// (§III-A): "If a particular cluster has very few instances (less than
// r_group ratio of the average number of instances per cluster, n/k ×
// r_group), we remove these instances and re-cluster the rest until each
// cluster has the desired number of instances."
type BalancedOptions struct {
	// K is the desired cluster count v (the paper recommends 2–5).
	K int
	// RGroup is the minimum cluster size as a fraction of the mean cluster
	// size n/k. 0 selects DefaultRGroup.
	RGroup float64
	// MaxRounds bounds the remove-and-recluster loop. 0 selects 5.
	MaxRounds int
	// KMeans carries the inner k-means settings (K is overwritten).
	KMeans KMeansOptions
}

func (o BalancedOptions) withDefaults() BalancedOptions {
	if o.RGroup <= 0 {
		o.RGroup = DefaultRGroup
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 5
	}
	return o
}

// BalancedKMeans runs the paper's iterative re-clustering. Instances that
// fell in undersized clusters during intermediate rounds are assigned to
// their nearest surviving center at the end, so every instance receives a
// cluster label in [0, K).
func BalancedKMeans(x *mat.Dense, opts BalancedOptions, r *rng.RNG) (*Result, error) {
	opts = opts.withDefaults()
	n := x.Rows()
	if opts.K < 1 {
		return nil, fmt.Errorf("cluster: balanced k=%d < 1", opts.K)
	}
	if opts.K > n {
		return nil, fmt.Errorf("cluster: balanced k=%d > n=%d", opts.K, n)
	}
	active := make([]int, n) // row indices still participating
	for i := range active {
		active[i] = i
	}
	var res *Result
	var sub *mat.Dense
	for round := 0; round < opts.MaxRounds; round++ {
		sub = selectRows(x, active)
		o := opts.KMeans
		o.K = opts.K
		var err error
		res, err = KMeans(sub, o, r.Split(uint64(round)+101))
		if err != nil {
			return nil, err
		}
		minSize := opts.RGroup * float64(len(active)) / float64(opts.K)
		sizes := res.Sizes()
		undersized := false
		for _, s := range sizes {
			if float64(s) < minSize {
				undersized = true
				break
			}
		}
		if !undersized {
			break
		}
		// Remove the instances of undersized clusters and re-cluster the rest
		// — unless that would leave too few points for K clusters, in which
		// case we accept the current result.
		keep := active[:0:0]
		for localIdx, a := range res.Assign {
			if float64(sizes[a]) >= minSize {
				keep = append(keep, active[localIdx])
			}
		}
		if len(keep) < opts.K*2 {
			break
		}
		active = keep
	}
	// Map every original row (including removed ones) to its nearest final
	// center.
	assign := make([]int, n)
	var inertia float64
	for i := 0; i < n; i++ {
		k := nearest(x.Row(i), res.Centers)
		assign[i] = k
		inertia += mat.SqDist(x.Row(i), res.Centers[k])
	}
	return &Result{Assign: assign, Centers: res.Centers, Inertia: inertia, Iters: res.Iters}, nil
}

func selectRows(x *mat.Dense, rows []int) *mat.Dense {
	out := mat.NewDense(len(rows), x.Cols())
	for i, rIdx := range rows {
		copy(out.Row(i), x.Row(rIdx))
	}
	return out
}

package cluster

import (
	"fmt"
	"sort"
	"strings"

	"enhancedbhpo/internal/mat"
)

// AffinityPropagation implements the third clustering backend §III-A
// mentions (Frey & Dueck, 2007): message passing between points exchanges
// "responsibility" (how well-suited point k is as exemplar for i) and
// "availability" (how appropriate it is for i to choose k) until a set of
// exemplars emerges. Like mean-shift, the cluster count is an output.
//
// Similarity is negative squared Euclidean distance; the shared preference
// (diagonal) defaults to the median similarity, the authors' suggestion
// for a moderate number of clusters.
type AffinityOptions struct {
	// Damping in [0.5, 1) stabilizes the message updates. 0 selects 0.7.
	Damping float64
	// MaxIters bounds the message-passing rounds. 0 selects 60.
	MaxIters int
	// Convergence stops after this many rounds without exemplar changes.
	// 0 selects 8.
	Convergence int
	// Preference overrides the diagonal similarity; 0 selects the median
	// pairwise similarity (NaN cannot occur since similarities are finite).
	Preference float64
	// HasPreference marks Preference as explicitly set (0 is a valid
	// preference value).
	HasPreference bool
}

func (o AffinityOptions) withDefaults() AffinityOptions {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.7
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 60
	}
	if o.Convergence <= 0 {
		o.Convergence = 8
	}
	return o
}

// AffinityPropagation clusters the rows of x. It returns an error for
// empty input; a degenerate outcome (no exemplar emerged) falls back to a
// single cluster at the medoid.
func AffinityPropagation(x *mat.Dense, opts AffinityOptions) (*Result, error) {
	opts = opts.withDefaults()
	n := x.Rows()
	if n == 0 {
		return nil, fmt.Errorf("cluster: affinity propagation on empty input")
	}
	if n == 1 {
		center := append([]float64(nil), x.Row(0)...)
		return &Result{Assign: []int{0}, Centers: [][]float64{center}}, nil
	}
	// Similarity matrix.
	s := make([][]float64, n)
	var sims []float64
	for i := 0; i < n; i++ {
		s[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s[i][j] = -mat.SqDist(x.Row(i), x.Row(j))
			if i < j {
				sims = append(sims, s[i][j])
			}
		}
	}
	pref := opts.Preference
	if !opts.HasPreference {
		pref = medianOf(sims)
	}
	for i := 0; i < n; i++ {
		s[i][i] = pref
	}
	r := make([][]float64, n) // responsibilities
	a := make([][]float64, n) // availabilities
	for i := 0; i < n; i++ {
		r[i] = make([]float64, n)
		a[i] = make([]float64, n)
	}
	lam := opts.Damping
	prevExemplars := ""
	stable := 0
	iters := 0
	for iters = 0; iters < opts.MaxIters; iters++ {
		// Responsibilities: r(i,k) = s(i,k) − max_{k'≠k} (a(i,k') + s(i,k')).
		for i := 0; i < n; i++ {
			max1, max2 := negInf, negInf
			arg1 := -1
			for k := 0; k < n; k++ {
				v := a[i][k] + s[i][k]
				if v > max1 {
					max2 = max1
					max1, arg1 = v, k
				} else if v > max2 {
					max2 = v
				}
			}
			for k := 0; k < n; k++ {
				sub := max1
				if k == arg1 {
					sub = max2
				}
				r[i][k] = lam*r[i][k] + (1-lam)*(s[i][k]-sub)
			}
		}
		// Availabilities: a(i,k) = min(0, r(k,k) + Σ_{i'∉{i,k}} max(0, r(i',k)));
		// a(k,k) = Σ_{i'≠k} max(0, r(i',k)).
		for k := 0; k < n; k++ {
			var sumPos float64
			for i := 0; i < n; i++ {
				if i != k && r[i][k] > 0 {
					sumPos += r[i][k]
				}
			}
			for i := 0; i < n; i++ {
				var v float64
				if i == k {
					v = sumPos
				} else {
					v = r[k][k] + sumPos
					if r[i][k] > 0 {
						v -= r[i][k]
					}
					if v > 0 {
						v = 0
					}
				}
				a[i][k] = lam*a[i][k] + (1-lam)*v
			}
		}
		// Exemplars: points with r(k,k)+a(k,k) > 0. Stability only counts
		// once at least one exemplar has emerged — early rounds where all
		// self-evidence is still non-positive must not trigger convergence.
		sig := exemplarSignature(r, a)
		if sig == prevExemplars && strings.ContainsRune(sig, '1') {
			stable++
			if stable >= opts.Convergence {
				iters++
				break
			}
		} else {
			stable = 0
			prevExemplars = sig
		}
	}
	// Collect exemplars and assign points.
	var exemplars []int
	for k := 0; k < n; k++ {
		if r[k][k]+a[k][k] > 0 {
			exemplars = append(exemplars, k)
		}
	}
	if len(exemplars) == 0 {
		// Degenerate: fall back to the point with the highest self-evidence.
		best, bestV := 0, negInf
		for k := 0; k < n; k++ {
			if v := r[k][k] + a[k][k]; v > bestV {
				best, bestV = k, v
			}
		}
		exemplars = []int{best}
	}
	assign := make([]int, n)
	centers := make([][]float64, len(exemplars))
	for c, e := range exemplars {
		centers[c] = append([]float64(nil), x.Row(e)...)
	}
	var inertia float64
	for i := 0; i < n; i++ {
		bestC, bestSim := 0, negInf
		for c, e := range exemplars {
			if i == e {
				bestC = c
				bestSim = 0
				break
			}
			if s[i][e] > bestSim {
				bestC, bestSim = c, s[i][e]
			}
		}
		assign[i] = bestC
		inertia += mat.SqDist(x.Row(i), centers[bestC])
	}
	return &Result{Assign: assign, Centers: centers, Inertia: inertia, Iters: iters}, nil
}

const negInf = -1e308

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	return tmp[len(tmp)/2]
}

func exemplarSignature(r, a [][]float64) string {
	sig := make([]byte, len(r))
	for k := range r {
		if r[k][k]+a[k][k] > 0 {
			sig[k] = '1'
		} else {
			sig[k] = '0'
		}
	}
	return string(sig)
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/serve/journal"
	"enhancedbhpo/internal/serve/tracestore"
	"enhancedbhpo/internal/trace"
)

// wedgeEvaluator stalls its first evaluation for sleep, then behaves
// normally — the shape of a trial that wedges on a pathological config.
type wedgeEvaluator struct {
	inner hpo.Evaluator
	sleep time.Duration
	calls atomic.Int64
}

func (w *wedgeEvaluator) FullBudget() int { return w.inner.FullBudget() }

func (w *wedgeEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if w.calls.Add(1) == 1 {
		time.Sleep(w.sleep)
	}
	return w.inner.Evaluate(cfg, budget, r)
}

// TestEvalDeadlineAbandonsWedgedTrial: a trial that wedges far past
// -eval-timeout must be abandoned — slot released, trial charged to the
// failure budget — and the job must still finish long before the wedge
// would have cleared on its own.
func TestEvalDeadlineAbandonsWedgedTrial(t *testing.T) {
	const wedge = 30 * time.Second
	m := NewManager(Config{
		PoolSize:      2,
		MaxJobs:       1,
		EvalTimeout:   150 * time.Millisecond,
		EvalAttempts:  2,
		RetryBackoff:  time.Millisecond,
		FailureBudget: 5,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			return &wedgeEvaluator{inner: inner, sleep: wedge}
		},
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	start := time.Now()
	job, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID, func(s Status) bool { return s == StatusDone }, "done")
	elapsed := time.Since(start)
	if elapsed >= wedge {
		t.Fatalf("job took %s: it waited out the wedged evaluation instead of abandoning it", elapsed)
	}
	snap := job.Snapshot()
	if snap.Failures != 1 {
		t.Errorf("failures = %d, want exactly 1 (deadline is definitive, no retry)", snap.Failures)
	}
	if got := m.Metrics().DeadlineExceeded; got != 1 {
		t.Errorf("DeadlineExceeded = %d, want 1", got)
	}
	// The abandoned slot was handed back: the job finished, which needed
	// every remaining trial to get through the same pool.
	if got := m.pool.InUse(); got != 0 {
		t.Errorf("pool InUse = %d after job done, want 0", got)
	}
}

// postRaw submits a spec and returns the raw response (caller closes).
func postRaw(t *testing.T, base string, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdmissionControl429: once MaxPending jobs are queued, POST /jobs
// sheds with 429 + a positive Retry-After, /healthz turns "overloaded",
// and freeing a pending slot (cancelling a queued job) re-opens admission.
func TestAdmissionControl429(t *testing.T) {
	gate := make(chan struct{})
	ts, m := newTestServer(t, Config{
		PoolSize:   1,
		MaxJobs:    1,
		MaxPending: 2,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			return &gateEvaluator{inner: inner, gate: gate, entered: make(chan struct{})}
		},
	})
	defer close(gate)

	// Job 1 wedges in its first (gated) evaluation, occupying the single
	// job slot; running means it no longer counts against the queue.
	j1 := postJob(t, ts.URL, smallSpec())
	pollUntil(t, ts.URL, j1.ID, func(s Snapshot) bool { return s.Status == StatusRunning }, "running")

	j2 := postJob(t, ts.URL, smallSpec())
	j3 := postJob(t, ts.URL, smallSpec())
	if got := m.PendingDepth(); got != 2 {
		t.Fatalf("PendingDepth = %d with 2 queued jobs, want 2", got)
	}

	// Health flips to overloaded (alive, serving reads, shedding writes).
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb healthBody
	if err := jsonDecode(resp, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "overloaded" || hb.Pending != 2 || hb.MaxPending != 2 {
		t.Fatalf("healthz = %+v, want overloaded with pending 2/2", hb)
	}

	// The queue is full: the next submission is shed.
	resp = postRaw(t, ts.URL, smallSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		resp.Body.Close()
		t.Fatalf("POST over limit: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer second count", ra)
	}
	var ob overloadBody
	if err := jsonDecode(resp, &ob); err != nil {
		t.Fatal(err)
	}
	if ob.RetryAfterSec != secs {
		t.Fatalf("body retry_after_sec %d != header %d", ob.RetryAfterSec, secs)
	}
	if ob.Error == "" {
		t.Fatal("429 body has no error message")
	}
	if got := m.Metrics().ShedRequests; got != 1 {
		t.Fatalf("ShedRequests = %d, want 1", got)
	}
	if _, ok := m.Get("job-4"); ok {
		t.Fatal("shed submission was registered in the job table")
	}

	// Cancelling a queued job frees its pending slot and re-opens
	// admission; health goes back to ok.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+j2.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for m.PendingDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("PendingDepth stuck at %d after cancelling a queued job", m.PendingDepth())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.Overloaded() {
		t.Fatal("still overloaded after a pending slot freed up")
	}
	j5 := postJob(t, ts.URL, smallSpec())
	if j5.Status != StatusQueued {
		t.Fatalf("re-opened admission returned status %s", j5.Status)
	}
	_ = j3
}

// TestChaosOverload is the chaos harness: sustained over-capacity HTTP
// submissions against a journaled manager with injected evaluation
// panics (every 7th job) and wedged evaluations (every 5th job, abandoned
// by the -eval-timeout watchdog), while the journal rotates online and
// idle scopes are TTL-evicted. Throughout, under -race:
//
//   - the service never deadlocks and never exceeds MaxPending,
//   - every shed submission gets 429 with a positive Retry-After,
//   - the journal directory stays bounded by the compacted live state
//     plus two segment generations,
//
// and after a kill -9 equivalent (a second manager recovers the same
// data dir while the first still holds a job mid-evaluation) the replay
// is consistent: no accepted job is lost, terminal outcomes match, and
// the mid-run job comes back cancelled/interrupted.
//
// The storm runs ~2s by default; `make chaos` sets BHPOD_CHAOS_SECONDS=30.
func TestChaosOverload(t *testing.T) {
	secs := 2.0
	if s := os.Getenv("BHPOD_CHAOS_SECONDS"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			secs = v
		}
	}
	const (
		poolSize = 2
		maxPend  = 8
		maxBytes = int64(8 << 10)
	)
	evalTmo := 250 * time.Millisecond
	dir := t.TempDir()

	freezeGate := make(chan struct{})
	frozenEntered := make(chan struct{})
	var freezeArm atomic.Bool
	var openGate sync.Once
	releaseFrozen := func() { openGate.Do(func() { close(freezeGate) }) }
	t.Cleanup(releaseFrozen)

	cfg := Config{
		PoolSize:        poolSize,
		MaxJobs:         2,
		MaxPending:      maxPend,
		EvalTimeout:     evalTmo,
		EvalAttempts:    1,
		RetryBackoff:    time.Millisecond,
		FailureBudget:   50,
		ScopeTTL:        300 * time.Millisecond,
		DataDir:         dir,
		JournalMaxBytes: maxBytes,
		TraceMaxBytes:   4 << 10, // force trace compactions under the storm
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			if freezeArm.CompareAndSwap(true, false) {
				return &gateEvaluator{inner: inner, gate: freezeGate, entered: frozenEntered}
			}
			var n int
			fmt.Sscanf(id, "job-%d", &n)
			switch {
			case n%7 == 0: // injected panic on the first evaluation
				return &flakyEvaluator{inner: inner, failFirst: 1, panics: true}
			case n%5 == 0: // first evaluation wedges well past the deadline
				return &wedgeEvaluator{inner: inner, sleep: 4 * evalTmo}
			}
			return inner
		},
	}
	m1, err := NewManagerFromJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(m1))
	t.Cleanup(func() {
		ts.Close()
		releaseFrozen()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := m1.Shutdown(ctx); err != nil {
			t.Errorf("m1 shutdown: %v", err)
		}
	})

	// The storm: 3 submitters racing 2 pool slots and an 8-deep queue.
	stop := make(chan struct{})
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		accepted  = map[string]struct{}{}
		shedN     atomic.Int64
		seedCtr   atomic.Uint64
		badRetry  atomic.Bool
		pendOver  atomic.Bool
		maxJBytes atomic.Int64
	)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				spec := smallSpec()
				spec.Seed = seedCtr.Add(1)
				body, err := json.Marshal(spec)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := client.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					var snap Snapshot
					if err := json.NewDecoder(resp.Body).Decode(&snap); err == nil {
						mu.Lock()
						accepted[snap.ID] = struct{}{}
						mu.Unlock()
					}
				case http.StatusTooManyRequests:
					shedN.Add(1)
					// Acceptance: every shed submission carries a positive
					// Retry-After, header and body agreeing.
					ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
					var ob overloadBody
					if derr := json.NewDecoder(resp.Body).Decode(&ob); err != nil || ra < 1 || derr != nil || ob.RetryAfterSec < 1 {
						if badRetry.CompareAndSwap(false, true) {
							t.Errorf("429 without a positive Retry-After (header %q, body %+v)",
								resp.Header.Get("Retry-After"), ob)
						}
					}
				default:
					t.Errorf("unexpected POST /jobs status %d", resp.StatusCode)
				}
				resp.Body.Close()
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Watchdog sampler: queue depth and journal size stay bounded at all
	// times, not just at the end.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if d := m1.PendingDepth(); d > maxPend && pendOver.CompareAndSwap(false, true) {
					t.Errorf("pending depth %d exceeded max %d", d, maxPend)
				}
				if b := journal.DirStats(dir).Bytes; b > maxJBytes.Load() {
					maxJBytes.Store(b)
				}
			}
		}
	}()

	// Run the storm for the configured duration, extending briefly if the
	// interesting events (sheds, wedge abandonments, enough accepted jobs
	// to hit the every-5th/7th fault schedule) have not all fired yet.
	time.Sleep(time.Duration(secs * float64(time.Second)))
	extend := time.Now().Add(60 * time.Second)
	for time.Now().Before(extend) {
		mu.Lock()
		n := len(accepted)
		mu.Unlock()
		if n >= 15 && shedN.Load() >= 1 && m1.Metrics().DeadlineExceeded >= 1 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	<-samplerDone

	// Everything accepted must settle — no deadlock, no stuck job.
	drainBy := time.Now().Add(120 * time.Second)
	for {
		mt := m1.Metrics()
		if mt.JobsQueued == 0 && mt.JobsRunning == 0 && mt.PendingDepth == 0 {
			break
		}
		if time.Now().After(drainBy) {
			t.Fatalf("jobs never drained: %d queued, %d running, %d pending",
				mt.JobsQueued, mt.JobsRunning, mt.PendingDepth)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mt := m1.Metrics()
	mu.Lock()
	nAccepted := len(accepted)
	mu.Unlock()
	if nAccepted == 0 {
		t.Fatal("storm accepted no jobs")
	}
	if shedN.Load() == 0 {
		t.Error("storm never shed a submission: admission control untested")
	}
	if mt.ShedRequests != shedN.Load() {
		t.Errorf("ShedRequests = %d, submitters saw %d 429s", mt.ShedRequests, shedN.Load())
	}
	if mt.DeadlineExceeded == 0 {
		t.Error("no evaluation was ever abandoned: deadline watchdog untested")
	}
	if mt.TrialFailures == 0 {
		t.Error("no trial failure recorded despite injected panics")
	}
	if mt.JobsDone == 0 {
		t.Error("no job finished successfully under chaos")
	}
	if mt.JournalErrors != 0 {
		t.Errorf("journal recorded %d errors", mt.JournalErrors)
	}
	if seq := maxSegmentSeq(t, dir); seq < 2 {
		t.Errorf("active segment still at sequence %d: journal never rotated", seq)
	}

	// Kill phase: arm the gate, submit one more job, and once it is wedged
	// mid-evaluation abandon m1 without shutdown (no Close, no final
	// fsync) and recover the same directory with a second manager.
	freezeArm.Store(true)
	frozen, err := m1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-frozenEntered:
	case <-time.After(60 * time.Second):
		t.Fatal("frozen job never reached its evaluation")
	}
	time.Sleep(50 * time.Millisecond) // let any fold spawned by its submit records land

	cfg2 := cfg
	cfg2.WrapEvaluator = nil
	m2, err := NewManagerFromJournal(cfg2)
	if err != nil {
		t.Fatalf("post-kill replay: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m2.Shutdown(ctx); err != nil {
			t.Errorf("m2 shutdown: %v", err)
		}
	})

	if got, want := len(m2.Jobs()), nAccepted+1; got != want {
		t.Errorf("replay rebuilt %d jobs, want %d (%d accepted + the frozen one)", got, want, nAccepted)
	}
	mu.Lock()
	for id := range accepted {
		j2, ok := m2.Get(id)
		if !ok {
			mu.Unlock()
			t.Fatalf("accepted job %s lost across the kill", id)
		}
		st := j2.Status()
		if !terminal(st) {
			t.Errorf("job %s replayed as %s, want a terminal status", id, st)
		}
		if j1, ok := m1.Get(id); ok {
			if got := j1.Status(); got != st {
				t.Errorf("job %s: m1 settled as %s but replay says %s", id, got, st)
			}
		}
		if st == StatusDone {
			if snap := j2.Snapshot(); snap.BestScore == nil || snap.TestScore == nil {
				t.Errorf("done job %s replayed without scores", id)
			}
		}
	}
	mu.Unlock()
	fj, ok := m2.Get(frozen.ID)
	if !ok {
		t.Fatalf("frozen job %s missing after replay", frozen.ID)
	}
	fsnap := fj.Snapshot()
	if fsnap.Status != StatusCancelled || fsnap.Reason != ReasonInterrupted {
		t.Errorf("frozen job replayed as %s/%s, want cancelled/interrupted", fsnap.Status, fsnap.Reason)
	}

	// Trace integrity: a mid-storm kill must never corrupt a trace file.
	// Every per-job trace on disk still parses (a torn final line is
	// tolerated by the reader; a torn middle is not), its event sequence
	// numbers are strictly increasing across any compactions that ran
	// under the storm, and every job the journal replayed as done still
	// has its complete anytime curve and terminal event on disk.
	if mt.TraceStoreErrors != 0 {
		t.Errorf("trace store recorded %d errors under the storm", mt.TraceStoreErrors)
	}
	traceDir := TraceDir(dir)
	mu.Lock()
	traceIDs := make([]string, 0, len(accepted)+1)
	for id := range accepted {
		traceIDs = append(traceIDs, id)
	}
	mu.Unlock()
	traceIDs = append(traceIDs, frozen.ID)
	for _, id := range traceIDs {
		evs, err := tracestore.Read(traceDir, id)
		if err != nil {
			t.Errorf("trace for %s unreadable after kill: %v", id, err)
			continue
		}
		var lastSeq uint64
		ordered := true
		for i, ev := range evs {
			if ev.Seq <= lastSeq {
				t.Errorf("trace for %s: seq %d at position %d does not increase past %d", id, ev.Seq, i, lastSeq)
				ordered = false
				break
			}
			lastSeq = ev.Seq
		}
		j2, ok := m2.Get(id)
		if !ok || !ordered || j2.Status() != StatusDone {
			continue
		}
		var curve []trace.Point
		terminalSeen := false
		for _, ev := range evs {
			if ev.Type == events.TypeCurvePoint && ev.Point != nil {
				curve = append(curve, *ev.Point)
			}
			terminalSeen = terminalSeen || ev.Terminal
		}
		if !terminalSeen {
			t.Errorf("done job %s: trace lost its terminal event", id)
		}
		snap := j2.Snapshot()
		if len(curve) != len(snap.Curve) {
			t.Errorf("done job %s: trace holds %d curve points, replayed snapshot %d", id, len(curve), len(snap.Curve))
			continue
		}
		for i := range curve {
			if curve[i] != snap.Curve[i] {
				t.Errorf("done job %s: curve point %d differs across the kill: %+v vs %+v", id, i, curve[i], snap.Curve[i])
				break
			}
		}
	}

	// Journal bound: the directory may transiently hold the compacted
	// state plus one sealed generation plus the active segment — never
	// more. The post-recovery compacted size is an upper bound on the live
	// state at any earlier point (jobs only accumulate).
	final := journal.DirStats(dir)
	slack := int64(16 << 10)
	if peak, bound := maxJBytes.Load(), final.Bytes+2*maxBytes+slack; peak > bound {
		t.Errorf("journal dir peaked at %d bytes, bound %d (compacted %d + 2×%d + %d slack)",
			peak, bound, final.Bytes, maxBytes, slack)
	}
}

// maxSegmentSeq reports the highest journal segment sequence in dir.
func maxSegmentSeq(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "journal-%06d.jsonl", &n); err == nil && n > max {
			max = n
		}
	}
	return max
}

package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/serve/evalcache"
)

// Config tunes the Manager.
type Config struct {
	// PoolSize is the shared evaluation-slot count across all jobs.
	// 0 selects runtime.NumCPU().
	PoolSize int
	// MaxJobs bounds concurrently running jobs; submissions beyond it
	// wait in the queued state. 0 selects 4.
	MaxJobs int
	// CacheEntries caps each evaluation-cache scope. 0 selects 1<<16.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.NumCPU()
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1 << 16
	}
	return c
}

// evalScope is the shared, deterministic substrate of every job that
// agrees on a JobSpec cache scope: the synthesized data, the fold
// components and the memoizing evaluator. Scopes are built once and
// reused, so resubmissions hit warm caches.
type evalScope struct {
	train, test *dataset.Dataset
	comps       hpo.Components
	cv          *hpo.CVEvaluator
	cache       *evalcache.Cache
}

// Manager owns the job table, the shared pool and the cache scopes.
type Manager struct {
	cfg      Config
	pool     *Pool
	started  time.Time
	jobSlots chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	evals atomic.Int64

	mu     sync.Mutex
	seq    int
	jobs   map[string]*Job
	order  []string
	scopes map[string]*evalScope
}

// NewManager returns a ready manager; callers should Shutdown it to stop
// running jobs.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:        cfg,
		pool:       NewPool(cfg.PoolSize),
		started:    time.Now(),
		jobSlots:   make(chan struct{}, cfg.MaxJobs),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		scopes:     map[string]*evalScope{},
	}
}

// Submit validates the spec, registers a queued job and starts it in the
// background.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	if spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, time.Duration(spec.TimeoutSec*float64(time.Second)))
	}
	job := &Job{
		Spec:      spec,
		cancel:    cancel,
		status:    StatusQueued,
		submitted: time.Now(),
	}
	m.mu.Lock()
	m.seq++
	job.ID = fmt.Sprintf("job-%d", m.seq)
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.mu.Unlock()
	m.wg.Add(1)
	go m.run(ctx, job, cancel)
	return job, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Shutdown cancels every job and waits for runners to exit or ctx to
// expire.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.baseCancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// scopeFor returns (building on first use) the evaluation scope shared by
// all jobs with the spec's cache scope. Construction is deterministic in
// the spec: data synthesis and grouping draw only on DatasetSeed.
func (m *Manager) scopeFor(spec JobSpec) (*evalScope, error) {
	key := spec.cacheScope()
	m.mu.Lock()
	if sc, ok := m.scopes[key]; ok {
		m.mu.Unlock()
		return sc, nil
	}
	m.mu.Unlock()

	// Build outside the lock: synthesis and grouping can take a while and
	// must not stall the HTTP handlers. A racing duplicate build is
	// harmless — identical inputs give an identical scope and the loser
	// is dropped.
	ds, err := dataset.SpecByName(spec.Dataset)
	if err != nil {
		return nil, err
	}
	train, test, err := dataset.Synthesize(ds.Scaled(spec.Scale), spec.DatasetSeed)
	if err != nil {
		return nil, err
	}
	dataset.Standardize(train, test)
	var comps hpo.Components
	if spec.Enhanced {
		comps, err = hpo.EnhancedComponents(train, hpo.EnhancedOptions{}, rng.New(spec.DatasetSeed^0x9e37))
		if err != nil {
			return nil, err
		}
	} else {
		comps = hpo.VanillaComponents(0)
	}
	if spec.UseF1 {
		comps = comps.WithF1()
	}
	base := nn.DefaultConfig()
	base.MaxIter = spec.Iters
	base.LearningRateInit = 0.02
	cv := hpo.NewCVEvaluator(train, base, comps)
	sc := &evalScope{
		train: train,
		test:  test,
		comps: comps,
		cv:    cv,
		cache: evalcache.New(cv, m.cfg.CacheEntries),
	}
	m.mu.Lock()
	if existing, ok := m.scopes[key]; ok {
		sc = existing
	} else {
		m.scopes[key] = sc
	}
	m.mu.Unlock()
	return sc, nil
}

// Metrics is the GET /metrics payload.
type Metrics struct {
	UptimeSec         float64 `json:"uptime_sec"`
	JobsQueued        int     `json:"jobs_queued"`
	JobsRunning       int     `json:"jobs_running"`
	JobsDone          int     `json:"jobs_done"`
	JobsFailed        int     `json:"jobs_failed"`
	JobsCancelled     int     `json:"jobs_cancelled"`
	PoolSize          int     `json:"pool_size"`
	PoolInUse         int     `json:"pool_in_use"`
	Evaluations       int64   `json:"evaluations"`
	EvaluationsPerSec float64 `json:"evaluations_per_sec"`
	CacheScopes       int     `json:"cache_scopes"`
	CacheEntries      int     `json:"cache_entries"`
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
}

// Metrics snapshots the service counters.
func (m *Manager) Metrics() Metrics {
	uptime := time.Since(m.started).Seconds()
	out := Metrics{
		UptimeSec:   uptime,
		PoolSize:    m.pool.Size(),
		PoolInUse:   m.pool.InUse(),
		Evaluations: m.evals.Load(),
	}
	if uptime > 0 {
		out.EvaluationsPerSec = float64(out.Evaluations) / uptime
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		switch j.Status() {
		case StatusQueued:
			out.JobsQueued++
		case StatusRunning:
			out.JobsRunning++
		case StatusDone:
			out.JobsDone++
		case StatusFailed:
			out.JobsFailed++
		case StatusCancelled:
			out.JobsCancelled++
		}
	}
	out.CacheScopes = len(m.scopes)
	var agg evalcache.Stats
	for _, sc := range m.scopes {
		s := sc.cache.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Entries += s.Entries
	}
	m.mu.Unlock()
	out.CacheEntries = agg.Entries
	out.CacheHits = agg.Hits
	out.CacheMisses = agg.Misses
	out.CacheHitRate = agg.HitRate()
	return out
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/serve/evalcache"
	"enhancedbhpo/internal/serve/journal"
	"enhancedbhpo/internal/serve/sched"
	"enhancedbhpo/internal/serve/shipper"
	"enhancedbhpo/internal/serve/tracestore"
	"enhancedbhpo/internal/trace"
)

// ErrOverloaded is returned by Submit when the scheduler's global
// queued-job cap (MaxPending) is reached: the service sheds the
// submission instead of accepting unbounded work. The HTTP layer maps it
// to 429 with a Retry-After computed from the observed evaluation
// latency. A per-tenant quota rejection surfaces as *sched.QuotaError
// instead, priced for that tenant specifically.
var ErrOverloaded = errors.New("serve: pending queue full")

// Config tunes the Manager.
type Config struct {
	// PoolSize is the shared evaluation-slot count across all jobs.
	// 0 selects runtime.NumCPU().
	PoolSize int
	// MaxJobs bounds concurrently running jobs; submissions beyond it
	// wait in the queued state. 0 selects 4.
	MaxJobs int
	// MaxPending bounds the queued (accepted but not yet running) jobs
	// across all tenants; submissions beyond it are shed with
	// ErrOverloaded. Jobs recovered from the journal are never shed.
	// 0 selects 64.
	MaxPending int
	// TenantWeights maps tenant names to their weighted-fair-share
	// weights (≥ 1): at saturation, a weight-3 tenant receives three
	// times the evaluation budget of a weight-1 tenant. Tenants absent
	// from the map get TenantDefaultWeight.
	TenantWeights map[string]int
	// TenantDefaultWeight is the weight of tenants not named in
	// TenantWeights. 0 selects 1.
	TenantDefaultWeight int
	// TenantQuota caps one tenant's queued (not yet running) jobs;
	// submissions beyond it are shed with a *sched.QuotaError 429 priced
	// for that tenant, independent of the global MaxPending cap.
	// 0 disables per-tenant quotas.
	TenantQuota int
	// MaxPreempts bounds how many times a single job yields its slot at
	// rung boundaries before it becomes immune to further preemption —
	// bounded churn, guaranteed progress. 0 selects 8; negative disables
	// preemption entirely.
	MaxPreempts int
	// DeterministicTiming replaces each observed trial's wall-clock
	// elapsed time with a synthetic duration proportional to its budget
	// (budget × 1ms), making anytime curves — including their CumTime
	// column — bit-identical across runs, preemptions and restarts. Used
	// by the determinism tests and reproducibility studies; production
	// keeps real timings.
	DeterministicTiming bool
	// EvalTimeout abandons an evaluation that has run longer than this:
	// its pool slot is released, the wedged goroutine's eventual result
	// is discarded, and the trial is charged to the job's failure budget
	// (worst-case score). 0 disables the watchdog.
	EvalTimeout time.Duration
	// CacheEntries caps each evaluation-cache scope (LRU). 0 selects 1<<16.
	CacheEntries int
	// DataDir, when non-empty, enables journaled persistence: job specs
	// and terminal results are appended to a segmented JSONL journal in
	// DataDir so NewManagerFromJournal can rebuild the job table after a
	// restart.
	DataDir string
	// JournalMaxBytes rotates the journal's active segment past this
	// size and re-compacts the sealed history in the background, keeping
	// the directory bounded at roughly the compacted state plus two
	// segments. 0 selects 4 MiB; negative disables rotation.
	JournalMaxBytes int64
	// ScopeTTL releases an evalScope's dataset/fold memory once no live
	// job has referenced it for this long; the scope is rebuilt
	// deterministically on next use (same spec → same data, folds and
	// cache scope key, so only the memoized scores are lost). 0 disables
	// eviction.
	ScopeTTL time.Duration
	// EvalAttempts is the total tries per evaluation before it counts as
	// a definitive failure (panics and errors alike; retries are spaced
	// by a jittered RetryBackoff). 0 selects 2.
	EvalAttempts int
	// RetryBackoff is the base delay before an evaluation retry; the
	// actual sleep is jittered in [backoff/2, backoff). 0 selects 50ms.
	RetryBackoff time.Duration
	// FailureBudget is how many definitive evaluation failures a job
	// absorbs — each failed trial scores worst-case instead of aborting —
	// before the job flips to StatusFailed. 0 selects 3.
	FailureBudget int
	// EventBuffer is each event subscriber's buffered window (SSE
	// streams, internal consumers). A subscriber lagging further than
	// this has events dropped from its channel — counted in
	// events_dropped_slow_consumer — and recovers via Last-Event-ID
	// resume; the retained history loses nothing. 0 selects 256.
	EventBuffer int
	// TraceMaxBytes caps each job's durable trace file: once a file
	// grows this much past its last compaction it is rewritten
	// crash-safely (temp + fsync + atomic rename), keeping every curve
	// point and lifecycle transition and shedding observational events.
	// Only meaningful with DataDir set. 0 selects 1 MiB; negative
	// disables compaction.
	TraceMaxBytes int64
	// KernelWorkers caps the matmul-kernel goroutines of each pooled
	// evaluation. 0 selects GOMAXPROCS/PoolSize (at least 1); explicit
	// values are clamped so PoolSize × KernelWorkers never exceeds
	// GOMAXPROCS — with fusion a group of g trials dispatches with
	// g × KernelWorkers workers, so an oversubscribed product would
	// multiply, not just double. Kernel results are bitwise-identical
	// for any value, so this only shapes CPU use.
	KernelWorkers int
	// DisableEvalFusion turns off cross-trial fused evaluation: with it
	// set, concurrent cache-missing evaluations each train their fold
	// models alone instead of batching same-budget groups through the
	// lockstep trainer. Fusion never changes a score (each member's
	// results are bitwise-identical to solo execution), so this is a
	// debugging/benchmarking switch, not a correctness one. The zero
	// value (fusion on) is the default; cmd/bhpod exposes it as
	// -fuse-evals.
	DisableEvalFusion bool
	// FuseWindow is how long a fuse group's leader waits for same-budget
	// peers before running the group (cut short when the group reaches
	// pool size, skipped entirely when nothing else is in flight).
	// 0 selects 2ms.
	FuseWindow time.Duration
	// WrapEvaluator, when non-nil, wraps each job's evaluator between
	// the pool gate and the cache. It is the fault-injection point used
	// by the crash/restart and chaos tests and is applied per job as the
	// job starts optimizing.
	WrapEvaluator func(jobID string, inner hpo.Evaluator) hpo.Evaluator
	// NodeName identifies this daemon in a cluster: it is surfaced in
	// /healthz and /metrics so a coordinator's probes and a replacement
	// node's operators can tell nodes apart. Empty outside a cluster.
	NodeName string
	// Shipper, when non-nil, replicates the journal and trace files to
	// its sink as they grow and seal, so a replacement node can rebuild
	// this node's job table after the machine dies (shipper.Restore +
	// NewManagerFromJournal). Requires DataDir. The manager wires the
	// journal and trace-store hooks; ownership (Close) stays with the
	// caller, which should close it after Shutdown so the final state
	// flushes.
	Shipper *shipper.Shipper
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.NumCPU()
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 64
	}
	if c.TenantDefaultWeight <= 0 {
		c.TenantDefaultWeight = 1
	}
	switch {
	case c.MaxPreempts == 0:
		c.MaxPreempts = 8
	case c.MaxPreempts < 0:
		c.MaxPreempts = 0 // preemption disabled
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1 << 16
	}
	if c.JournalMaxBytes == 0 {
		c.JournalMaxBytes = 4 << 20
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.TraceMaxBytes == 0 {
		c.TraceMaxBytes = 1 << 20
	}
	if c.EvalAttempts <= 0 {
		c.EvalAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.FailureBudget <= 0 {
		c.FailureBudget = 3
	}
	maxProcs := runtime.GOMAXPROCS(0)
	if c.KernelWorkers <= 0 || c.KernelWorkers*c.PoolSize > maxProcs {
		c.KernelWorkers = maxProcs / c.PoolSize
		if c.KernelWorkers < 1 {
			c.KernelWorkers = 1
		}
	}
	if c.FuseWindow <= 0 {
		c.FuseWindow = 2 * time.Millisecond
	}
	return c
}

// evalScope is the shared, deterministic substrate of every job that
// agrees on a JobSpec cache scope: the synthesized data, the fold
// components and the memoizing evaluator. Scopes are built once and
// reused, so resubmissions hit warm caches; an idle scope (no live job
// referencing it for ScopeTTL) is evicted to reclaim its dataset and
// fold memory and rebuilt deterministically on next use.
type evalScope struct {
	train, test *dataset.Dataset
	comps       hpo.Components
	cv          *hpo.CVEvaluator
	cache       *evalcache.Cache
}

// scopeEntry tracks one live scope in the manager's table: how many jobs
// currently hold it (janitor never evicts refs > 0) and when it was last
// released.
type scopeEntry struct {
	scope    *evalScope
	refs     int
	lastUsed time.Time
}

// Manager owns the job table, the shared pool, the weighted-fair
// scheduler and the cache scopes.
type Manager struct {
	cfg     Config
	pool    *Pool
	started time.Time
	// sched replaces the old FIFO job-slot channel: admission (global cap
	// + per-tenant quota), slot dispatch in weighted-fair order and
	// rung-boundary preemption marking all live here.
	sched *sched.Scheduler

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// hub fans each job's telemetry (curve points, rung promotions,
	// retries, deadline abandonments, failure-budget charges, lifecycle
	// transitions) out to SSE subscribers; traces, when persistence is
	// on, durably records the same stream per job behind the hub's sink.
	hub    *events.Hub
	traces *tracestore.Store // nil when persistence is disabled

	evals            atomic.Int64
	evalsFused       atomic.Int64
	fusedRows        atomic.Int64
	fuseFallbacks    atomic.Int64
	trialFailures    atomic.Int64
	traceErrs        atomic.Int64
	journalErrs      atomic.Int64
	shed             atomic.Int64
	resumes          atomic.Int64
	deadlineExceeded atomic.Int64
	scopesEvicted    atomic.Int64
	evalEWMA         atomic.Uint64 // math.Float64bits of the latency EWMA in seconds

	journal *journal.Writer // nil when persistence is disabled

	mu     sync.Mutex
	seq    int
	jobs   map[string]*Job
	order  []string
	tokens map[string]string // submit token → job ID (idempotent retries)
	scopes map[string]*scopeEntry
}

// NewManager returns a ready, non-persistent manager; callers should
// Shutdown it to stop running jobs. For a journaled manager that
// recovers its job table across restarts, use NewManagerFromJournal.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		pool:    NewPool(cfg.PoolSize),
		started: time.Now(),
		sched: sched.New(sched.Config{
			Slots:         cfg.MaxJobs,
			MaxQueued:     cfg.MaxPending,
			Quota:         cfg.TenantQuota,
			DefaultWeight: cfg.TenantDefaultWeight,
			Weights:       cfg.TenantWeights,
		}),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		tokens:     map[string]string{},
		scopes:     map[string]*scopeEntry{},
	}
	m.hub = events.NewHub(events.Options{
		SubscriberBuffer: cfg.EventBuffer,
		Sink: func(ev events.Event) {
			// m.traces is set (at most once) before any job can publish,
			// so this read never races the write in NewManagerFromJournal.
			if m.traces == nil {
				return
			}
			if err := m.traces.Append(ev); err != nil {
				m.traceErrs.Add(1)
			}
		},
	})
	if cfg.ScopeTTL > 0 {
		go m.scopeJanitor()
	}
	return m
}

// NewManagerFromJournal opens (creating if needed) the journal in
// cfg.DataDir, replays it, and returns a manager with the previous
// process's job table rebuilt: terminal jobs are restored with their
// results and anytime curves, jobs that were mid-run when the process
// died are marked cancelled with reason "interrupted", and jobs that
// were still queued are re-enqueued and run again. The journal is
// compacted to one submit (plus one terminal) record per job before new
// records are appended; while the daemon runs, segments past
// JournalMaxBytes are rotated and re-compacted online.
func NewManagerFromJournal(cfg Config) (*Manager, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: NewManagerFromJournal needs Config.DataDir")
	}
	states, err := journal.Replay(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	for i := range states {
		if states[i].Status != string(StatusRunning) {
			continue
		}
		if len(states[i].Checkpoint) > 0 {
			// The job had yielded at a rung boundary at least once before
			// the process died: its journaled checkpoint makes it resumable
			// instead of lost — back to queued, to replay from the prefix.
			states[i].Status = string(StatusQueued)
			continue
		}
		states[i].Status = string(StatusCancelled)
		states[i].Reason = string(ReasonInterrupted)
		states[i].FinishedAt = now
	}
	if err := journal.Compact(cfg.DataDir, states); err != nil {
		return nil, err
	}
	m := NewManager(cfg)
	traceOpts := tracestore.Options{MaxBytes: m.cfg.TraceMaxBytes}
	if ship := cfg.Shipper; ship != nil {
		// Trace files ship under their directory-relative name so a
		// restored replica has the same traces/ layout the manager opens.
		traceOpts.OnChange = func(name string, final bool) {
			rel := "traces/" + name
			if final {
				ship.Sealed(rel)
			} else {
				ship.Changed(rel)
			}
		}
	}
	traces, err := tracestore.Open(TraceDir(cfg.DataDir), traceOpts)
	if err != nil {
		return nil, err
	}
	m.traces = traces
	maxBytes := m.cfg.JournalMaxBytes
	if maxBytes < 0 {
		maxBytes = 0 // negative config value = rotation disabled
	}
	jopts := journal.Options{
		MaxBytes: maxBytes,
		OnError:  func(error) { m.journalErrs.Add(1) },
	}
	if ship := cfg.Shipper; ship != nil {
		jopts.OnAppend = ship.Changed
		jopts.OnSeal = ship.Sealed
	}
	w, err := journal.OpenOptions(cfg.DataDir, jopts)
	if err != nil {
		return nil, err
	}
	m.journal = w
	if cfg.Shipper != nil {
		// Ship whatever is already on disk (compacted bases, sealed
		// segments, pre-crash traces) so the replica is complete even for
		// files that will never change again.
		cfg.Shipper.SnapshotRoot(w.ActiveSegment())
	}
	for _, st := range states {
		var spec JobSpec
		if len(st.Spec) > 0 {
			if err := json.Unmarshal(st.Spec, &spec); err != nil {
				return nil, fmt.Errorf("serve: replaying %s: %w", st.ID, err)
			}
		}
		job := &Job{
			ID:        st.ID,
			Spec:      spec,
			token:     st.Token,
			cancel:    func() {},
			submitted: st.SubmittedAt,
			// Preemption counts survive restarts like the rest of the
			// accounting; restoreCheckpoint overwrites this with the
			// checkpoint's own (authoritative) count for resumable jobs.
			preempts: st.Preemptions,
		}
		m.register(job)
		// Re-arm the event feed from the durable trace: sequence numbers
		// continue where the dead process stopped, and subscribers can
		// resume (or fetch the full pre-crash curve) across the restart.
		if evs, err := traces.ReadJob(st.ID); err != nil {
			m.traceErrs.Add(1)
		} else {
			m.hub.Prime(st.ID, evs)
		}
		// Re-seed the tenant's cumulative accounting (service = the
		// curve's final cumulative budget — exactly what was charged) so
		// /tenants survives the restart; virtual times restart level.
		var service float64
		if n := len(st.Curve); n > 0 {
			service = float64(st.Curve[n-1].CumBudget)
		}
		if !st.Terminal() {
			// Queued (or checkpoint-resumable) when the process died: run
			// it again under this manager (the compacted journal already
			// holds its submit record, so launching appends only the new
			// transitions). Replayed jobs bypass admission control — they
			// were already accepted once.
			job.status = StatusQueued
			if len(st.Checkpoint) > 0 {
				if err := job.restoreCheckpoint(st.Checkpoint); err != nil {
					// An undecodable checkpoint is dropped, not fatal: the
					// job still runs, just from scratch.
					m.journalErrs.Add(1)
				} else {
					job.mu.Lock()
					service = float64(job.cumBudget)
					job.mu.Unlock()
				}
			}
			m.sched.Restore(job.tenant(), service, int64(st.Evaluations), int64(st.Preemptions))
			ticket, _ := m.sched.Enqueue(job.tenant(), job.ID, true) // bypass: never errors
			m.launch(job, ticket)
			continue
		}
		m.sched.Restore(job.tenant(), service, int64(st.Evaluations), int64(st.Preemptions))
		curve := st.Curve
		if curve == nil {
			curve = []trace.Point{}
		}
		job.status = Status(st.Status)
		job.reason = Reason(st.Reason)
		job.errMsg = st.Error
		job.stack = st.Stack
		job.started = st.StartedAt
		job.finished = st.FinishedAt
		job.restored = &restoredState{
			curve:       curve,
			bestConfig:  st.BestConfig,
			bestScore:   st.BestScore,
			testScore:   st.TestScore,
			evaluations: st.Evaluations,
		}
		if !m.hub.Done(job.ID) {
			// The trace never saw the final transition (the job was
			// reclassified at replay, or the process died between the
			// journal fsync and the trace fsync): close the feed now so
			// late subscribers get a terminal event instead of hanging.
			m.publishStatus(job, true, st.FinishedAt)
		}
	}
	return m, nil
}

// TraceDir is where a data directory keeps its per-job trace files.
func TraceDir(dataDir string) string {
	return filepath.Join(dataDir, "traces")
}

// NodeName returns the cluster node name this manager was configured
// with ("" outside a cluster).
func (m *Manager) NodeName() string { return m.cfg.NodeName }

// publish stamps the event time (when unset) and routes it through the
// hub — and so to SSE subscribers and, when persistence is on, the
// durable trace store.
func (m *Manager) publish(jobID string, ev events.Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	m.hub.Publish(jobID, ev)
}

// publishStatus emits a lifecycle transition for the job's current
// state. Terminal transitions close the job's event feed and fsync its
// trace file.
func (m *Manager) publishStatus(job *Job, terminal bool, at time.Time) {
	job.mu.Lock()
	ev := events.Event{
		Type:     events.TypeStatus,
		Time:     at,
		Status:   string(job.status),
		Reason:   string(job.reason),
		Error:    job.errMsg,
		Terminal: terminal,
	}
	job.mu.Unlock()
	m.publish(job.ID, ev)
}

// observeTrial is the per-trial observer behind every running job: it
// folds the trial into the job's incumbent state, streams the new curve
// point (plus a rung event when the trial entered a new round), charges
// the trial's budget to the job's tenant, and — when the scheduler has
// marked this job as a preemption victim — cancels the current run
// segment so the slot is yielded at this trial boundary. Called
// concurrently by optimizer workers; the job lock is held across
// record-and-publish so the event stream's curve points arrive in the
// same order as the job's trial list — the streamed curve is always a
// prefix of what Snapshot computes. (Lock order job.mu → feed.mu and
// job.mu → sched.mu are both safe: no hub or scheduler path takes a job
// lock.)
func (m *Manager) observeTrial(job *Job, tr hpo.Trial) {
	job.mu.Lock()
	defer job.mu.Unlock()
	if m.cfg.DeterministicTiming {
		tr.Elapsed = time.Duration(tr.Budget) * time.Millisecond
	}
	if job.replaySkip > 0 {
		// Replaying the checkpointed prefix after a preemption or restart:
		// these trials were already recorded, published and charged in the
		// segment that produced the checkpoint.
		job.replaySkip--
		return
	}
	pt, newRound, promoted := job.recordTrialLocked(tr)
	if promoted {
		m.publish(job.ID, events.Event{Type: events.TypeRung, Round: newRound, Budget: tr.Budget})
	}
	m.publish(job.ID, events.Event{Type: events.TypeCurvePoint, Point: &pt})
	m.sched.Charge(job.tenant(), float64(tr.Budget))
	if m.cfg.MaxPreempts > 0 && job.preempts < m.cfg.MaxPreempts &&
		len(job.trials) > job.checkpointLen && job.segCancel != nil &&
		m.sched.ShouldPreempt(job.ID) {
		// Yield, but only with at least one new trial recorded this
		// segment: a job that resumes straight into a victim mark must
		// make progress before yielding again, or preemption could starve
		// it into a replay loop.
		job.segCancel(errPreempted)
	}
}

// register inserts the job into the table, keeping seq ahead of every
// known numeric ID suffix so replayed and fresh jobs never collide.
func (m *Manager) register(job *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int
	if _, err := fmt.Sscanf(job.ID, "job-%d", &n); err == nil && n > m.seq {
		m.seq = n
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	if job.token != "" {
		m.tokens[job.token] = job.ID
	}
}

// launch builds the job's context (with the spec timeout, restarted from
// now for replayed jobs) and starts the runner goroutine with its
// scheduler ticket.
func (m *Manager) launch(job *Job, ticket *sched.Ticket) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	if job.Spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, time.Duration(job.Spec.TimeoutSec*float64(time.Second)))
	}
	job.mu.Lock()
	job.cancel = cancel
	preCancelled := job.reason != ""
	job.mu.Unlock()
	if preCancelled {
		// A cancel raced in before the cancel func existed; honor it now.
		cancel()
	}
	m.wg.Add(1)
	go m.run(ctx, job, cancel, ticket)
}

// Submit validates the spec, applies admission control (the global
// queued cap and the submitting tenant's quota), registers a queued job,
// journals the submission and starts the job in the background. A full
// queue sheds the submission with ErrOverloaded; a tenant at quota with
// a *sched.QuotaError.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	return m.SubmitToken(spec, "")
}

// SubmitToken is Submit with an idempotency key: a coordinator retrying
// a submission it is not sure was accepted (the node died between
// routing and ack, or the retry landed on a restored replacement that
// replayed the original) sends the same token, and a token the manager
// has already accepted returns the existing job instead of running the
// work twice. Tokens persist in the journal's submit records, so the
// guarantee survives restart and restore. An empty token is an ordinary
// submission.
func (m *Manager) SubmitToken(spec JobSpec, token string) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	job := &Job{
		Spec:      spec,
		token:     token,
		cancel:    func() {},
		status:    StatusQueued,
		submitted: time.Now(),
	}
	m.mu.Lock()
	if token != "" {
		if id, ok := m.tokens[token]; ok {
			dup := m.jobs[id]
			m.mu.Unlock()
			return dup, nil
		}
	}
	// ID assignment and enqueue happen under m.mu so concurrent
	// submissions cannot interleave IDs and scheduler order differently
	// (lock order m.mu → sched.mu).
	id := fmt.Sprintf("job-%d", m.seq+1)
	ticket, err := m.sched.Enqueue(spec.Tenant, id, false)
	if err != nil {
		m.mu.Unlock()
		m.shed.Add(1)
		if errors.Is(err, sched.ErrQueueFull) {
			return nil, fmt.Errorf("%w: %v", ErrOverloaded, err)
		}
		return nil, err
	}
	m.seq++
	job.ID = id
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	if token != "" {
		m.tokens[token] = job.ID
	}
	m.mu.Unlock()
	m.journalSubmit(job)
	m.launch(job, ticket)
	return job, nil
}

// BatchError names the batch item that failed validation, so the HTTP
// layer can return a structured 400 pointing at the offending entry.
type BatchError struct {
	// Index is the zero-based position in the submitted batch.
	Index int
	// Err is the underlying spec error (often a *SpecFieldError).
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("serve: batch item %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// SubmitBatch admits every spec or none: validation failures reject the
// batch with a *BatchError before anything is enqueued, and admission —
// the global queued cap plus every named tenant's quota, counting the
// batch itself — is checked atomically under one scheduler lock, so a
// batch is never half-accepted. On success the returned jobs are
// index-aligned with specs. A non-empty token dedupes the whole batch:
// a retried token returns the originally accepted jobs.
func (m *Manager) SubmitBatch(specs []JobSpec, token string) ([]*Job, error) {
	if len(specs) == 0 {
		return nil, &BatchError{Index: 0, Err: errors.New("empty batch")}
	}
	jobs := make([]*Job, len(specs))
	items := make([]sched.BatchItem, len(specs))
	now := time.Now()
	for i, spec := range specs {
		spec = spec.withDefaults()
		if err := spec.Validate(); err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		itemToken := ""
		if token != "" {
			itemToken = fmt.Sprintf("%s#%d", token, i)
		}
		jobs[i] = &Job{
			Spec:      spec,
			token:     itemToken,
			cancel:    func() {},
			status:    StatusQueued,
			submitted: now,
		}
		items[i].Tenant = spec.Tenant
	}
	m.mu.Lock()
	if token != "" {
		if id, ok := m.tokens[fmt.Sprintf("%s#%d", token, 0)]; ok {
			// The whole batch was registered atomically under m.mu, so the
			// first item's token implies every item's.
			out := make([]*Job, len(specs))
			out[0] = m.jobs[id]
			for i := 1; i < len(specs); i++ {
				out[i] = m.jobs[m.tokens[fmt.Sprintf("%s#%d", token, i)]]
			}
			m.mu.Unlock()
			return out, nil
		}
	}
	for i := range items {
		items[i].ID = fmt.Sprintf("job-%d", m.seq+1+i)
	}
	tickets, err := m.sched.EnqueueBatch(items)
	if err != nil {
		m.mu.Unlock()
		m.shed.Add(int64(len(specs)))
		if errors.Is(err, sched.ErrQueueFull) {
			return nil, fmt.Errorf("%w: %v", ErrOverloaded, err)
		}
		return nil, err
	}
	m.seq += len(specs)
	for i, job := range jobs {
		job.ID = items[i].ID
		m.jobs[job.ID] = job
		m.order = append(m.order, job.ID)
		if job.token != "" {
			m.tokens[job.token] = job.ID
		}
	}
	m.mu.Unlock()
	for i, job := range jobs {
		m.journalSubmit(job)
		m.launch(job, tickets[i])
	}
	return jobs, nil
}

// PendingDepth returns the number of accepted jobs not yet running.
func (m *Manager) PendingDepth() int { return m.sched.Queued() }

// Overloaded reports whether the global queued-job cap is reached — the
// readiness signal behind /healthz's "overloaded" state: the daemon is
// alive and serving reads, but POST /jobs is being shed.
func (m *Manager) Overloaded() bool { return m.sched.Overloaded() }

// Tenants returns per-tenant usage: the scheduler's fair-share
// accounting merged with job lifecycle counts from the job table,
// sorted by tenant name. Served by GET /tenants.
func (m *Manager) Tenants() []TenantStatus {
	stats := m.sched.Stats()
	out := make([]TenantStatus, len(stats))
	byName := map[string]int{}
	for i, st := range stats {
		out[i] = TenantStatus{TenantStats: st}
		byName[st.Tenant] = i
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		name := j.tenant()
		i, ok := byName[name]
		if !ok {
			// Journal-restored terminal jobs of a tenant that has not
			// submitted since the restart.
			i = len(out)
			out = append(out, TenantStatus{TenantStats: sched.TenantStats{
				Tenant: name, Weight: m.tenantWeight(name),
			}})
			byName[name] = i
		}
		switch j.Status() {
		case StatusQueued:
			out[i].JobsQueued++
		case StatusRunning:
			out[i].JobsRunning++
		case StatusDone:
			out[i].JobsDone++
		case StatusFailed:
			out[i].JobsFailed++
		case StatusCancelled:
			out[i].JobsCancelled++
		}
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// tenantWeight resolves a tenant's configured weight without touching
// scheduler state.
func (m *Manager) tenantWeight(name string) int {
	if w, ok := m.cfg.TenantWeights[name]; ok && w >= 1 {
		return w
	}
	return m.cfg.TenantDefaultWeight
}

// TenantStatus is one row of GET /tenants: scheduler-side fair-share
// usage plus job lifecycle counts.
type TenantStatus struct {
	sched.TenantStats
	JobsQueued    int `json:"jobs_queued"`
	JobsRunning   int `json:"jobs_running"`
	JobsDone      int `json:"jobs_done"`
	JobsFailed    int `json:"jobs_failed"`
	JobsCancelled int `json:"jobs_cancelled"`
}

// observeEvalLatency folds one successful evaluation's wall time into
// the latency EWMA that prices Retry-After.
func (m *Manager) observeEvalLatency(d time.Duration) {
	const alpha = 0.2
	secs := d.Seconds()
	for {
		old := m.evalEWMA.Load()
		prev := math.Float64frombits(old)
		next := secs
		if old != 0 {
			next = (1-alpha)*prev + alpha*secs
		}
		if m.evalEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RetryAfter estimates when a shed client should retry, priced for the
// whole service (all queued jobs, full pool). Per-tenant shed responses
// use RetryAfterTenant instead.
func (m *Manager) RetryAfter() time.Duration {
	return m.retryAfter(m.sched.Queued(), 1)
}

// RetryAfterTenant prices a shed response for one tenant: the observed
// per-evaluation latency EWMA scaled by that tenant's own queue and
// divided by the slice of the pool its weighted fair share entitles it
// to — a heavy, over-quota tenant is told to back off longer than a
// light one shed by the same global cap.
func (m *Manager) RetryAfterTenant(tenant string) time.Duration {
	if tenant == "" {
		tenant = DefaultTenant
	}
	return m.retryAfter(m.sched.TenantQueued(tenant), m.sched.Share(tenant))
}

// retryAfter is the shared Retry-After formula, clamped to [1s, 10m] so
// the header is always positive and never absurd.
func (m *Manager) retryAfter(queued int, share float64) time.Duration {
	ew := math.Float64frombits(m.evalEWMA.Load())
	if ew <= 0 {
		ew = 1 // no evaluation observed yet: a conservative guess
	}
	if share <= 0 || share > 1 {
		share = 1
	}
	secs := ew * float64(queued+1) / (float64(m.cfg.PoolSize) * share)
	switch {
	case secs < 1:
		secs = 1
	case secs > 600:
		secs = 600
	}
	return time.Duration(secs * float64(time.Second))
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Drain waits for every job runner to finish naturally — nothing is
// cancelled — or for ctx to expire. It is the first phase of a graceful
// SIGTERM stop: admission is closed at the HTTP layer, in-flight work
// runs to completion, and whatever outlives ctx is then cancelled by
// Shutdown with reason "shutdown".
func (m *Manager) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown cancels every remaining job (recording reason "shutdown"),
// waits for runners to exit or ctx to expire, and closes the journal so
// every terminal record is on disk. The scope janitor stops with the
// base context.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		// Record the reason before the shared cancel fires so finish()
		// can distinguish shutdown from a user cancel.
		j.mu.Lock()
		if j.reason == "" && !terminalStatus(j.status) {
			j.reason = ReasonShutdown
		}
		j.mu.Unlock()
	}
	m.baseCancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if m.traces != nil {
		if cerr := m.traces.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if m.journal != nil {
		if cerr := m.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// journalSubmit, journalStatus, journalTerminal and journalEvent persist
// lifecycle records when a journal is configured. Journaling is
// best-effort for the live path: an append error is counted
// (journal_errors in the metrics) rather than failing the job, since the
// in-memory table is still authoritative until the next restart.
func (m *Manager) journalSubmit(job *Job) {
	if m.journal == nil {
		return
	}
	spec, err := json.Marshal(job.Spec)
	if err == nil {
		err = m.journal.Append(journal.Record{
			Type:   journal.TypeSubmit,
			Time:   job.submitted,
			JobID:  job.ID,
			Token:  job.token,
			Tenant: job.tenant(),
			Spec:   spec,
		})
	}
	if err != nil {
		m.journalErrs.Add(1)
	}
}

// journalPreempt durably records a rung-boundary yield: the checkpoint
// payload (trial prefix + preemption count) is what a restart resumes
// from, so the record is fsynced like a terminal record.
func (m *Manager) journalPreempt(job *Job, checkpoint []byte, evals int, at time.Time) {
	if m.journal == nil {
		return
	}
	if err := m.journal.Append(journal.Record{
		Type:        journal.TypePreempt,
		Time:        at,
		JobID:       job.ID,
		Tenant:      job.tenant(),
		Evaluations: evals,
		Checkpoint:  checkpoint,
	}); err != nil {
		m.journalErrs.Add(1)
	}
}

func (m *Manager) journalStatus(job *Job, status Status, at time.Time) {
	if m.journal == nil {
		return
	}
	if err := m.journal.Append(journal.Record{
		Type:   journal.TypeStatus,
		Time:   at,
		JobID:  job.ID,
		Status: string(status),
	}); err != nil {
		m.journalErrs.Add(1)
	}
}

func (m *Manager) journalTerminal(job *Job) {
	if m.journal == nil {
		return
	}
	snap := job.Snapshot()
	if err := m.journal.Append(journal.Record{
		Type:        journal.TypeResult,
		Time:        snap.FinishedAtOr(time.Now()),
		JobID:       job.ID,
		Status:      string(snap.Status),
		Reason:      string(snap.Reason),
		Error:       snap.Error,
		Stack:       snap.Stack,
		Evaluations: snap.Evaluations,
		Curve:       snap.Curve,
		BestConfig:  snap.BestConfig,
		BestScore:   snap.BestScore,
		TestScore:   snap.TestScore,
		Preemptions: snap.Preemptions,
	}); err != nil {
		m.journalErrs.Add(1)
	}
}

// journalEvent records an observational incident (e.g. an abandoned
// evaluation, reason "deadline"); events never change replayed job state
// and are dropped by compaction.
func (m *Manager) journalEvent(job *Job, reason Reason) {
	if m.journal == nil {
		return
	}
	if err := m.journal.Append(journal.Record{
		Type:   journal.TypeEvent,
		Time:   time.Now(),
		JobID:  job.ID,
		Reason: string(reason),
	}); err != nil {
		m.journalErrs.Add(1)
	}
}

// acquireScope returns (building on first use) the evaluation scope
// shared by all jobs with the spec's cache scope, pinned against TTL
// eviction until the returned release func is called. Construction is
// deterministic in the spec: data synthesis and grouping draw only on
// DatasetSeed, so an evicted scope rebuilds to the same folds and the
// same cache scope key.
func (m *Manager) acquireScope(spec JobSpec) (*evalScope, func(), error) {
	key := spec.CacheScope()
	m.mu.Lock()
	if e, ok := m.scopes[key]; ok {
		e.refs++
		m.mu.Unlock()
		return e.scope, m.scopeReleaser(key), nil
	}
	m.mu.Unlock()

	// Build outside the lock: synthesis and grouping can take a while and
	// must not stall the HTTP handlers. A racing duplicate build is
	// harmless — identical inputs give an identical scope and the loser
	// is dropped.
	sc, err := m.buildScope(spec)
	if err != nil {
		return nil, nil, err
	}
	m.mu.Lock()
	e, ok := m.scopes[key]
	if !ok {
		e = &scopeEntry{scope: sc}
		m.scopes[key] = e
	}
	e.refs++
	m.mu.Unlock()
	return e.scope, m.scopeReleaser(key), nil
}

// scopeReleaser returns the once-only unpin for one acquisition.
func (m *Manager) scopeReleaser(key string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			if e, ok := m.scopes[key]; ok {
				e.refs--
				e.lastUsed = time.Now()
			}
			m.mu.Unlock()
		})
	}
}

// buildScope synthesizes the scope's data, folds and cache.
func (m *Manager) buildScope(spec JobSpec) (*evalScope, error) {
	ds, err := dataset.SpecByName(spec.Dataset)
	if err != nil {
		return nil, err
	}
	train, test, err := dataset.Synthesize(ds.Scaled(spec.Scale), spec.DatasetSeed)
	if err != nil {
		return nil, err
	}
	dataset.Standardize(train, test)
	var comps hpo.Components
	if spec.Enhanced {
		comps, err = hpo.EnhancedComponents(train, hpo.EnhancedOptions{}, rng.New(spec.DatasetSeed^0x9e37))
		if err != nil {
			return nil, err
		}
	} else {
		comps = hpo.VanillaComponents(0)
	}
	if spec.UseF1 {
		comps = comps.WithF1()
	}
	base := nn.DefaultConfig()
	base.MaxIter = spec.Iters
	base.LearningRateInit = 0.02
	base.KernelWorkers = m.cfg.KernelWorkers
	cv := hpo.NewCVEvaluator(train, base, comps)
	var inner hpo.Evaluator = cv
	if !m.cfg.DisableEvalFusion && m.pool.Size() > 1 {
		// The fuser sits between the cache and the CV evaluator so only
		// cache misses reach it; hits never pay the collection window.
		inner = newFusedEvaluator(cv, m.pool, m.cfg.FuseWindow, m.cfg.KernelWorkers,
			func(trials, rows int64) {
				m.evalsFused.Add(trials)
				m.fusedRows.Add(rows)
			},
			func(n int64) { m.fuseFallbacks.Add(n) })
	}
	return &evalScope{
		train: train,
		test:  test,
		comps: comps,
		cv:    cv,
		cache: evalcache.New(inner, m.cfg.CacheEntries),
	}, nil
}

// scopeJanitor periodically sweeps idle scopes. It stops when the
// manager's base context is cancelled (Shutdown).
func (m *Manager) scopeJanitor() {
	tick := m.cfg.ScopeTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Minute {
		tick = time.Minute
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case now := <-t.C:
			m.sweepScopes(now)
		}
	}
}

// sweepScopes evicts every scope with no live reference that has been
// idle past ScopeTTL, releasing its dataset and fold memory. A scope
// that was never released (refs > 0, or freshly built) is never taken.
// Returns how many scopes were evicted.
func (m *Manager) sweepScopes(now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for key, e := range m.scopes {
		if e.refs == 0 && !e.lastUsed.IsZero() && now.Sub(e.lastUsed) > m.cfg.ScopeTTL {
			delete(m.scopes, key)
			m.scopesEvicted.Add(1)
			n++
		}
	}
	return n
}

// Metrics is the GET /metrics payload.
type Metrics struct {
	UptimeSec     float64 `json:"uptime_sec"`
	JobsQueued    int     `json:"jobs_queued"`
	JobsRunning   int     `json:"jobs_running"`
	JobsDone      int     `json:"jobs_done"`
	JobsFailed    int     `json:"jobs_failed"`
	JobsCancelled int     `json:"jobs_cancelled"`
	PendingDepth  int     `json:"pending_depth"`
	MaxPending    int     `json:"max_pending"`
	ShedRequests  int64   `json:"shed_requests"`
	QuotaShed     int64   `json:"quota_shed"`
	Tenants       int     `json:"tenants"`
	Preemptions   int64   `json:"preemptions"`
	Resumes       int64   `json:"resumes"`
	PoolSize      int     `json:"pool_size"`
	PoolInUse     int     `json:"pool_in_use"`
	// PoolInflight is the scheduler-side evaluation gauge, incremented
	// only while a slot is actually held (EvalStarted/EvalFinished pair
	// with slot ownership), so it never under-reports during
	// acquire/release races the way a detached counter would.
	PoolInflight      int     `json:"pool_inflight"`
	Evaluations       int64   `json:"evaluations"`
	EvaluationsPerSec float64 `json:"evaluations_per_sec"`
	EvalsFused        int64   `json:"evals_fused"`
	FusedRows         int64   `json:"fused_rows"`
	FuseFallbacks     int64   `json:"fuse_fallbacks"`
	Kernel            string  `json:"kernel"`
	CPUFeatures       string  `json:"cpu_features,omitempty"`
	KernelWorkers     int     `json:"kernel_workers"`
	TrialFailures     int64   `json:"trial_failures"`
	DeadlineExceeded  int64   `json:"deadline_exceeded"`
	EventSubscribers  int64   `json:"event_subscribers"`
	EventsPublished   int64   `json:"events_published"`
	EventsDropped     int64   `json:"events_dropped_slow_consumer"`
	TraceStoreBytes   int64   `json:"trace_store_bytes"`
	TraceStoreErrors  int64   `json:"trace_store_errors"`
	JournalErrors     int64   `json:"journal_errors"`
	JournalSegments   int     `json:"journal_segments"`
	JournalBytes      int64   `json:"journal_bytes"`
	CacheScopes       int     `json:"cache_scopes"`
	ScopesEvicted     int64   `json:"scopes_evicted"`
	CacheEntries      int     `json:"cache_entries"`
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	Node              string  `json:"node,omitempty"`
	SegmentsShipped   int64   `json:"segments_shipped"`
	ShipRetries       int64   `json:"ship_retries"`
	ShipBytes         int64   `json:"ship_bytes"`
}

// Metrics snapshots the service counters.
func (m *Manager) Metrics() Metrics {
	uptime := time.Since(m.started).Seconds()
	out := Metrics{
		UptimeSec:        uptime,
		Node:             m.cfg.NodeName,
		MaxPending:       m.cfg.MaxPending,
		ShedRequests:     m.shed.Load(),
		QuotaShed:        m.sched.QuotaShed(),
		Preemptions:      m.sched.Preemptions(),
		Resumes:          m.resumes.Load(),
		PoolSize:         m.pool.Size(),
		PoolInUse:        m.pool.InUse(),
		PoolInflight:     m.sched.Inflight(),
		Evaluations:      m.evals.Load(),
		EvalsFused:       m.evalsFused.Load(),
		FusedRows:        m.fusedRows.Load(),
		FuseFallbacks:    m.fuseFallbacks.Load(),
		Kernel:           mat.ActiveKernel().String(),
		CPUFeatures:      mat.CPUFeatures(),
		KernelWorkers:    m.cfg.KernelWorkers,
		TrialFailures:    m.trialFailures.Load(),
		DeadlineExceeded: m.deadlineExceeded.Load(),
		JournalErrors:    m.journalErrs.Load(),
		TraceStoreErrors: m.traceErrs.Load(),
		ScopesEvicted:    m.scopesEvicted.Load(),
	}
	es := m.hub.Stats()
	out.EventSubscribers = es.Subscribers
	out.EventsPublished = es.Published
	out.EventsDropped = es.Dropped
	if m.traces != nil {
		out.TraceStoreBytes = m.traces.Bytes()
	}
	if uptime > 0 {
		out.EvaluationsPerSec = float64(out.Evaluations) / uptime
	}
	if m.cfg.DataDir != "" {
		js := journal.DirStats(m.cfg.DataDir)
		out.JournalSegments = js.Segments
		out.JournalBytes = js.Bytes
	}
	if m.cfg.Shipper != nil {
		ss := m.cfg.Shipper.Stats()
		out.SegmentsShipped = ss.SegmentsShipped
		out.ShipRetries = ss.Retries
		out.ShipBytes = ss.Bytes
	}
	out.PendingDepth = m.sched.Queued()
	out.Tenants = len(m.sched.Stats())
	m.mu.Lock()
	for _, j := range m.jobs {
		switch j.Status() {
		case StatusQueued:
			out.JobsQueued++
		case StatusRunning:
			out.JobsRunning++
		case StatusDone:
			out.JobsDone++
		case StatusFailed:
			out.JobsFailed++
		case StatusCancelled:
			out.JobsCancelled++
		}
	}
	out.CacheScopes = len(m.scopes)
	var agg evalcache.Stats
	for _, e := range m.scopes {
		s := e.scope.cache.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Entries += s.Entries
	}
	m.mu.Unlock()
	out.CacheEntries = agg.Entries
	out.CacheHits = agg.Hits
	out.CacheMisses = agg.Misses
	out.CacheHitRate = agg.HitRate()
	return out
}

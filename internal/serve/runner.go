package serve

import (
	"context"
	"errors"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// run executes one job end to end: wait for a job slot, build the shared
// scope, run the optimizer over the pooled, cached evaluator, then refit
// the winner and score it on the held-out test split.
func (m *Manager) run(ctx context.Context, job *Job, cancel context.CancelFunc) {
	defer m.wg.Done()
	defer cancel()

	// Queued until a job slot frees up (MaxJobs gate); cancellation while
	// queued never touches the pool.
	select {
	case m.jobSlots <- struct{}{}:
	case <-ctx.Done():
		m.finish(job, nil, nil, ctx.Err())
		return
	}
	defer func() { <-m.jobSlots }()

	job.mu.Lock()
	job.status = StatusRunning
	job.started = time.Now()
	job.mu.Unlock()

	scope, err := m.scopeFor(job.Spec)
	if err != nil {
		m.finish(job, nil, nil, err)
		return
	}
	res, err := m.optimize(ctx, job, scope)
	m.finish(job, scope, res, err)
}

// optimize dispatches to the context-aware optimizer selected by the spec.
func (m *Manager) optimize(ctx context.Context, job *Job, scope *evalScope) (*hpo.Result, error) {
	spec := job.Spec
	space, err := search.TableIIISpace(spec.NumHPs)
	if err != nil {
		return nil, err
	}
	comps := scope.comps.WithObserver(job.observe)
	ev := &pooledEvaluator{
		inner:  scope.cache,
		pool:   m.pool,
		ctx:    ctx,
		onEval: func() { m.evals.Add(1) },
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = m.pool.Size()
	}
	switch spec.Method {
	case "sha":
		configs := space.Enumerate()
		if spec.MaxConfigs > 0 && spec.MaxConfigs < len(configs) {
			// Mirror core.Run's sampling stream so service runs match CLI
			// runs with the same seed.
			configs = space.SampleN(rng.New(spec.Seed^0xc0de).Split(2), spec.MaxConfigs)
		}
		return hpo.SuccessiveHalvingCtx(ctx, configs, ev, comps, hpo.SHAOptions{
			Seed: spec.Seed, Workers: workers,
		})
	case "hyperband":
		return hpo.HyperbandCtx(ctx, space, ev, comps, hpo.HyperbandOptions{Seed: spec.Seed})
	case "bohb":
		return hpo.BOHBCtx(ctx, space, ev, comps, hpo.BOHBOptions{
			Hyperband: hpo.HyperbandOptions{Seed: spec.Seed},
		})
	case "asha":
		return hpo.ASHACtx(ctx, space, ev, comps, hpo.ASHAOptions{
			MaxConfigs: spec.MaxConfigs, Workers: workers, Seed: spec.Seed,
		})
	}
	// Unreachable: Validate rejects other methods at submission.
	return nil, errors.New("serve: unsupported method")
}

// finish records the job's terminal state. A successful run is refitted on
// the full training set and scored on the test split, matching the
// paper's final step.
func (m *Manager) finish(job *Job, scope *evalScope, res *hpo.Result, err error) {
	status := StatusDone
	var testScore float64
	hasTest := false
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = StatusCancelled
		res = nil
		err = nil
	case err != nil:
		status = StatusFailed
		res = nil
	default:
		model, ferr := scope.cv.FitFull(res.Best, rng.New(job.Spec.Seed^0xf17).Uint64())
		if ferr != nil {
			status = StatusFailed
			err = ferr
			res = nil
		} else if job.Spec.UseF1 && scope.test.Kind == dataset.Classification {
			testScore, hasTest = model.ScoreF1(scope.test), true
		} else {
			testScore, hasTest = model.Score(scope.test), true
		}
	}
	job.mu.Lock()
	job.status = status
	job.finished = time.Now()
	if err != nil {
		job.errMsg = err.Error()
	}
	job.result = res
	job.testScore = testScore
	job.hasTest = hasTest
	job.mu.Unlock()
}

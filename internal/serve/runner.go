package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/serve/sched"
)

// errPreempted is the cancellation cause of a run segment yielded at a
// rung boundary: the scheduler marked the job a victim and observeTrial
// cancelled the segment context with this cause. The runner tells a
// preemption apart from a real cancel by this cause plus the job context
// still being live.
var errPreempted = errors.New("serve: preempted at rung boundary")

// run executes one job as a sequence of run segments: wait on the
// scheduler ticket for a job slot, build the shared scope, run the
// optimizer over the pooled, cached evaluator — and either finish (refit
// the winner, score it on the held-out test split) or, when the
// weighted-fair scheduler reclaimed the slot at a rung boundary,
// checkpoint the completed trials, re-enqueue, and resume in a later
// segment by deterministic replay.
func (m *Manager) run(ctx context.Context, job *Job, cancel context.CancelFunc, ticket *sched.Ticket) {
	defer m.wg.Done()
	defer cancel()

	for {
		// Queued until the scheduler grants the ticket; cancellation while
		// queued withdraws it without ever touching the pool.
		if err := ticket.Wait(ctx); err != nil {
			m.finish(job, nil, nil, err)
			return
		}

		started := time.Now()
		segCtx, segCancel := context.WithCancelCause(ctx)
		job.mu.Lock()
		job.status = StatusRunning
		if job.started.IsZero() {
			job.started = started
		}
		resumed := job.checkpointLen > 0
		// Arm the replay skip: the optimizer restarts from scratch each
		// segment, regenerating the checkpointed prefix via evaluation-cache
		// hits; those observations must not be re-recorded or re-charged.
		job.replaySkip = job.checkpointLen
		job.segCancel = segCancel
		round := job.maxRound
		job.mu.Unlock()
		m.journalStatus(job, StatusRunning, started)
		if resumed {
			m.resumes.Add(1)
			m.publish(job.ID, events.Event{
				Type:   events.TypeResumed,
				Time:   started,
				Status: string(StatusRunning),
				Round:  round,
			})
		} else {
			m.publishStatus(job, false, started)
		}

		// The scope stays pinned (TTL eviction cannot take it) until the
		// segment is over — finish() reads scope.cv and scope.test.
		scope, release, err := m.acquireScope(job.Spec)
		if err != nil {
			segCancel(nil)
			m.finish(job, nil, nil, err)
			m.sched.Release(ticket)
			return
		}
		res, err := m.optimize(segCtx, job, scope)
		if context.Cause(segCtx) == errPreempted && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// A rung-boundary yield, not a real cancel: checkpoint, give the
			// slot back, rejoin the queue, go around.
			segCancel(nil)
			release()
			m.preemptJob(job)
			ticket = m.sched.Preempt(ticket)
			continue
		}
		segCancel(nil)
		// finish holds the job slot through the final FitFull so the refit
		// competes for CPU like any other evaluation.
		m.finish(job, scope, res, err)
		m.sched.Release(ticket)
		release()
		return
	}
}

// preemptJob transitions a yielded job back to queued: the completed
// trial prefix and preemption count are checkpointed to the journal
// (fsynced — the resume point must survive a crash), and subscribers see
// a preempted event at the rung the job reached.
func (m *Manager) preemptJob(job *Job) {
	at := time.Now()
	job.mu.Lock()
	job.status = StatusQueued
	job.preempts++
	job.checkpointLen = len(job.trials)
	job.segCancel = nil
	ck := job.checkpointLocked()
	evals := len(job.trials)
	round := job.maxRound
	job.mu.Unlock()
	raw, err := json.Marshal(ck)
	if err != nil {
		m.journalErrs.Add(1)
		raw = nil
	}
	m.journalPreempt(job, raw, evals, at)
	m.publish(job.ID, events.Event{
		Type:   events.TypePreempted,
		Time:   at,
		Status: string(StatusQueued),
		Round:  round,
	})
}

// optimize dispatches to the context-aware optimizer selected by the spec.
func (m *Manager) optimize(ctx context.Context, job *Job, scope *evalScope) (*hpo.Result, error) {
	spec := job.Spec
	space, err := search.TableIIISpace(spec.NumHPs)
	if err != nil {
		return nil, err
	}
	comps := scope.comps.WithObserver(func(tr hpo.Trial) { m.observeTrial(job, tr) })
	var inner hpo.Evaluator = scope.cache
	if m.cfg.WrapEvaluator != nil {
		// Fault-injection point: sits between the pool gate (with its
		// recover/retry armor) and the cache, so injected panics and
		// errors exercise the real isolation path.
		inner = m.cfg.WrapEvaluator(job.ID, inner)
	}
	tenant := job.tenant()
	ev := &pooledEvaluator{
		inner:     inner,
		pool:      m.pool,
		ctx:       ctx,
		onEval:    func() { m.evals.Add(1) },
		onFailure: func() { m.trialFailures.Add(1) },
		onDeadline: func(budget int) {
			m.deadlineExceeded.Add(1)
			m.journalEvent(job, ReasonDeadline)
			m.publish(job.ID, events.Event{Type: events.TypeDeadline, Budget: budget, Reason: string(ReasonDeadline)})
		},
		onRetry: func(attempt int, err error) {
			m.publish(job.ID, events.Event{Type: events.TypeRetry, Attempt: attempt, Error: err.Error()})
		},
		onCharge: func(failures int, absorbed bool) {
			reason := "absorbed"
			if !absorbed {
				reason = "exhausted"
			}
			m.publish(job.ID, events.Event{Type: events.TypeFailure, Failures: failures, Reason: reason})
		},
		onLatency: m.observeEvalLatency,
		// The inflight gauge is charged to the tenant only while the slot
		// is actually held, so pool_inflight is always consistent with
		// pool occupancy.
		onSlotAcquired: func() { m.sched.EvalStarted(tenant) },
		onSlotReleased: func() { m.sched.EvalFinished(tenant) },
		job:            job,
		attempts:       m.cfg.EvalAttempts,
		backoff:        m.cfg.RetryBackoff,
		failureBudget:  m.cfg.FailureBudget,
		evalTimeout:    m.cfg.EvalTimeout,
	}
	method, ok := hpo.LookupMethod(spec.Method)
	if !ok {
		// Unreachable for submitted jobs: Validate rejects unknown methods.
		return nil, fmt.Errorf("serve: unknown method %q", spec.Method)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = m.pool.Size()
	}
	// The registry adapters run the same code path as core.Run, so a
	// served job and a CLI run with the same seed agree bit for bit.
	// Workers only reaches methods that honor it (Validate rejects an
	// explicit setting for the rest); the pool-size default is harmless
	// for methods that ignore it.
	return method.Run(ctx, space, ev, comps, hpo.RunOptions{
		Seed:       spec.Seed,
		Workers:    workers,
		MaxConfigs: spec.MaxConfigs,
		Trials:     spec.Trials,
	})
}

// finish records the job's terminal state and journals it. A successful
// run is refitted on the full training set and scored on the test split,
// matching the paper's final step. Cancelled jobs keep the reason set at
// the cancel source (user_cancel, shutdown) or derived here (timeout).
func (m *Manager) finish(job *Job, scope *evalScope, res *hpo.Result, err error) {
	status := StatusDone
	var testScore float64
	hasTest := false
	timedOut := errors.Is(err, context.DeadlineExceeded)
	switch {
	case errors.Is(err, context.Canceled), timedOut:
		status = StatusCancelled
		res = nil
		err = nil
	case err != nil:
		status = StatusFailed
		res = nil
	default:
		model, ferr := scope.cv.FitFull(res.Best, rng.New(job.Spec.Seed^0xf17).Uint64())
		if ferr != nil {
			status = StatusFailed
			err = ferr
			res = nil
		} else if job.Spec.UseF1 && scope.test.Kind == dataset.Classification {
			testScore, hasTest = model.ScoreF1(scope.test), true
		} else {
			testScore, hasTest = model.Score(scope.test), true
		}
	}
	job.mu.Lock()
	job.status = status
	job.segCancel = nil
	switch {
	case status != StatusCancelled:
		// A speculative shutdown mark on a job that still finished (or
		// failed) on its own does not apply.
		job.reason = ""
	case timedOut:
		// The deadline fired before any explicit cancel: the context
		// reports DeadlineExceeded only in that case.
		job.reason = ReasonTimeout
	case job.reason == "":
		job.reason = ReasonShutdown
	}
	finishedAt := time.Now()
	job.finished = finishedAt
	if err != nil {
		job.errMsg = err.Error()
	}
	job.result = res
	job.testScore = testScore
	job.hasTest = hasTest
	job.mu.Unlock()
	// Terminal event before the journal record: the publish fsyncs the
	// job's trace file and closes its feed, so by the time the journal
	// says "terminal" the full curve is durably on disk.
	m.publishStatus(job, true, finishedAt)
	m.journalTerminal(job)
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// run executes one job end to end: wait for a job slot, build the shared
// scope, run the optimizer over the pooled, cached evaluator, then refit
// the winner and score it on the held-out test split.
func (m *Manager) run(ctx context.Context, job *Job, cancel context.CancelFunc) {
	defer m.wg.Done()
	defer cancel()

	// Queued until a job slot frees up (MaxJobs gate); cancellation while
	// queued never touches the pool. Either way the job stops counting
	// against the admission (pending) queue here.
	select {
	case m.jobSlots <- struct{}{}:
		m.decPending()
	case <-ctx.Done():
		m.decPending()
		m.finish(job, nil, nil, ctx.Err())
		return
	}
	defer func() { <-m.jobSlots }()

	started := time.Now()
	job.mu.Lock()
	job.status = StatusRunning
	job.started = started
	job.mu.Unlock()
	m.journalStatus(job, StatusRunning, started)
	m.publishStatus(job, false, started)

	// The scope stays pinned (TTL eviction cannot take it) until the
	// runner is done with it — finish() reads scope.cv and scope.test.
	scope, release, err := m.acquireScope(job.Spec)
	if err != nil {
		m.finish(job, nil, nil, err)
		return
	}
	defer release()
	res, err := m.optimize(ctx, job, scope)
	m.finish(job, scope, res, err)
}

// optimize dispatches to the context-aware optimizer selected by the spec.
func (m *Manager) optimize(ctx context.Context, job *Job, scope *evalScope) (*hpo.Result, error) {
	spec := job.Spec
	space, err := search.TableIIISpace(spec.NumHPs)
	if err != nil {
		return nil, err
	}
	comps := scope.comps.WithObserver(func(tr hpo.Trial) { m.observeTrial(job, tr) })
	var inner hpo.Evaluator = scope.cache
	if m.cfg.WrapEvaluator != nil {
		// Fault-injection point: sits between the pool gate (with its
		// recover/retry armor) and the cache, so injected panics and
		// errors exercise the real isolation path.
		inner = m.cfg.WrapEvaluator(job.ID, inner)
	}
	ev := &pooledEvaluator{
		inner:     inner,
		pool:      m.pool,
		ctx:       ctx,
		onEval:    func() { m.evals.Add(1) },
		onFailure: func() { m.trialFailures.Add(1) },
		onDeadline: func(budget int) {
			m.deadlineExceeded.Add(1)
			m.journalEvent(job, ReasonDeadline)
			m.publish(job.ID, events.Event{Type: events.TypeDeadline, Budget: budget, Reason: string(ReasonDeadline)})
		},
		onRetry: func(attempt int, err error) {
			m.publish(job.ID, events.Event{Type: events.TypeRetry, Attempt: attempt, Error: err.Error()})
		},
		onCharge: func(failures int, absorbed bool) {
			reason := "absorbed"
			if !absorbed {
				reason = "exhausted"
			}
			m.publish(job.ID, events.Event{Type: events.TypeFailure, Failures: failures, Reason: reason})
		},
		onLatency:     m.observeEvalLatency,
		job:           job,
		attempts:      m.cfg.EvalAttempts,
		backoff:       m.cfg.RetryBackoff,
		failureBudget: m.cfg.FailureBudget,
		evalTimeout:   m.cfg.EvalTimeout,
	}
	method, ok := hpo.LookupMethod(spec.Method)
	if !ok {
		// Unreachable for submitted jobs: Validate rejects unknown methods.
		return nil, fmt.Errorf("serve: unknown method %q", spec.Method)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = m.pool.Size()
	}
	// The registry adapters run the same code path as core.Run, so a
	// served job and a CLI run with the same seed agree bit for bit.
	// Workers only reaches methods that honor it (Validate rejects an
	// explicit setting for the rest); the pool-size default is harmless
	// for methods that ignore it.
	return method.Run(ctx, space, ev, comps, hpo.RunOptions{
		Seed:       spec.Seed,
		Workers:    workers,
		MaxConfigs: spec.MaxConfigs,
		Trials:     spec.Trials,
	})
}

// finish records the job's terminal state and journals it. A successful
// run is refitted on the full training set and scored on the test split,
// matching the paper's final step. Cancelled jobs keep the reason set at
// the cancel source (user_cancel, shutdown) or derived here (timeout).
func (m *Manager) finish(job *Job, scope *evalScope, res *hpo.Result, err error) {
	status := StatusDone
	var testScore float64
	hasTest := false
	timedOut := errors.Is(err, context.DeadlineExceeded)
	switch {
	case errors.Is(err, context.Canceled), timedOut:
		status = StatusCancelled
		res = nil
		err = nil
	case err != nil:
		status = StatusFailed
		res = nil
	default:
		model, ferr := scope.cv.FitFull(res.Best, rng.New(job.Spec.Seed^0xf17).Uint64())
		if ferr != nil {
			status = StatusFailed
			err = ferr
			res = nil
		} else if job.Spec.UseF1 && scope.test.Kind == dataset.Classification {
			testScore, hasTest = model.ScoreF1(scope.test), true
		} else {
			testScore, hasTest = model.Score(scope.test), true
		}
	}
	job.mu.Lock()
	job.status = status
	switch {
	case status != StatusCancelled:
		// A speculative shutdown mark on a job that still finished (or
		// failed) on its own does not apply.
		job.reason = ""
	case timedOut:
		// The deadline fired before any explicit cancel: the context
		// reports DeadlineExceeded only in that case.
		job.reason = ReasonTimeout
	case job.reason == "":
		job.reason = ReasonShutdown
	}
	finishedAt := time.Now()
	job.finished = finishedAt
	if err != nil {
		job.errMsg = err.Error()
	}
	job.result = res
	job.testScore = testScore
	job.hasTest = hasTest
	job.mu.Unlock()
	// Terminal event before the journal record: the publish fsyncs the
	// job's trace file and closes its feed, so by the time the journal
	// says "terminal" the full curve is durably on disk.
	m.publishStatus(job, true, finishedAt)
	m.journalTerminal(job)
}

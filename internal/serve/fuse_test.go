package serve

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// runFuseJob runs one job to completion on a fresh manager and returns
// its terminal snapshot plus the fusion counters.
func runFuseJob(t *testing.T, cfg Config, spec JobSpec) (Snapshot, int64, int64) {
	t.Helper()
	m := NewManager(cfg)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for !terminal(job.Status()) {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return job.Snapshot(), m.evalsFused.Load(), m.fuseFallbacks.Load()
}

// TestFusedEvaluationDeterminism pins the tentpole invariant end to end
// at the service layer: a seeded ASHA job produces the identical anytime
// curve — same evaluations, budgets and bitwise-equal incumbent scores —
// and the identical winner, test score and trial count at pool sizes 1,
// 4 and 8, with fused evaluation on and off. Fusion may only change
// wall-clock scheduling, never a number. At pool 8 with a generous
// collection window it also asserts that fusion actually happened.
func TestFusedEvaluationDeterminism(t *testing.T) {
	// On a single-P runtime the pool's evaluations serialize — one worker
	// goroutine runs eval after eval without yielding — so occupancy never
	// exceeds one and the fuser (correctly) skips its collection window.
	// Raise GOMAXPROCS so pool workers genuinely overlap; every number is
	// pinned to be identical at any parallelism, so the baseline comparison
	// is unaffected.
	if runtime.GOMAXPROCS(0) < 8 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	}
	spec := smallSpec()
	spec.Method = "asha"
	base, _, _ := runFuseJob(t, Config{PoolSize: 1, DisableEvalFusion: true}, spec)
	if base.Status != StatusDone {
		t.Fatalf("baseline job: %s (%s)", base.Status, base.Error)
	}
	if len(base.Curve) == 0 || base.BestScore == nil || base.TestScore == nil {
		t.Fatalf("baseline missing results: %+v", base)
	}
	for _, ps := range []int{1, 4, 8} {
		for _, fuse := range []bool{false, true} {
			name := fmt.Sprintf("pool=%d/fuse=%v", ps, fuse)
			cfg := Config{
				PoolSize:          ps,
				DisableEvalFusion: !fuse,
				// A wide window so that, on a loaded test machine, the
				// concurrent first-rung evaluations reliably coalesce.
				FuseWindow: 100 * time.Millisecond,
			}
			snap, fused, fallbacks := runFuseJob(t, cfg, spec)
			if snap.Status != StatusDone {
				t.Fatalf("%s: job %s (%s)", name, snap.Status, snap.Error)
			}
			if snap.Evaluations != base.Evaluations {
				t.Fatalf("%s: %d evaluations, baseline %d", name, snap.Evaluations, base.Evaluations)
			}
			if len(snap.Curve) != len(base.Curve) {
				t.Fatalf("%s: curve length %d, baseline %d", name, len(snap.Curve), len(base.Curve))
			}
			for i, pt := range snap.Curve {
				bp := base.Curve[i]
				// CumTime is wall time and legitimately varies; everything
				// else must be bitwise-identical.
				if pt.Evaluations != bp.Evaluations || pt.CumBudget != bp.CumBudget || pt.BestScore != bp.BestScore {
					t.Fatalf("%s: curve[%d] = %+v, baseline %+v", name, i, pt, bp)
				}
			}
			if *snap.BestScore != *base.BestScore || *snap.TestScore != *base.TestScore {
				t.Fatalf("%s: best/test %v/%v, baseline %v/%v",
					name, *snap.BestScore, *snap.TestScore, *base.BestScore, *base.TestScore)
			}
			if fmt.Sprint(snap.BestConfig) != fmt.Sprint(base.BestConfig) {
				t.Fatalf("%s: best config %v, baseline %v", name, snap.BestConfig, base.BestConfig)
			}
			if !fuse && fused != 0 {
				t.Fatalf("%s: fusion disabled but %d evals fused", name, fused)
			}
			if fuse && ps == 8 && fused == 0 {
				t.Fatalf("%s: no evaluations fused (fallbacks=%d)", name, fallbacks)
			}
		}
	}
}

// Package sched is bhpod's tenant-aware admission and dispatch layer: a
// weighted-fair queue (stride scheduling over per-tenant virtual time)
// that replaces the old FIFO pending queue. Every job submission names a
// tenant; the scheduler grants job slots to the tenant with the lowest
// virtual time, advances that time by the service consumed divided by
// the tenant's weight, and — when the slots are saturated — marks a
// running job of an over-served tenant as a preemption victim so the
// runner can yield at the next rung boundary. Per-tenant quotas bound
// how much any one tenant can queue, independent of the global cap.
//
// Virtual-time math (stride/SFQ): each tenant carries vtime, a
// monotonically increasing float. Granting a slot charges a fixed
// grantCost/weight; each completed evaluation charges budget/weight
// (the budget is the trial's instance count — the natural service unit
// of this system). The dispatcher always picks the backlogged tenant
// with minimal (vtime, name) — the name is the deterministic tie-break
// — so over any saturated interval tenants receive service
// proportional to their weights. A tenant going from idle to backlogged
// has its vtime lifted to the minimum vtime of the currently active
// tenants, so idle periods earn no credit (the standard SFQ arrival
// rule); symmetrically it never loses the level it already reached.
//
// Preemption: when no slot is free and some waiting tenant's vtime is
// strictly below a running tenant's, the scheduler marks one running
// job of the most over-served such tenant (the youngest grant, losing
// the least progress) as a victim. The serve runner polls the mark at
// every trial observation — a rung boundary, where trial state is
// already journaled and replayable — and yields the slot voluntarily.
// The mark is re-evaluated as virtual times advance, so entitlement
// that emerges mid-run (the common case: the waiter arrived level and
// the runner kept charging) still triggers.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// grantCost is the virtual-time charge for receiving a slot, on top of
// the per-evaluation budget charges. It keeps zero-trial jobs from
// being free and breaks symmetry between tenants that only ever submit
// cached work.
const grantCost = 1.0

// maxGrantLog bounds the retained grant-order log (a debugging and
// determinism-test aid, not an accounting structure).
const maxGrantLog = 1 << 16

// ErrQueueFull is returned by Enqueue when the global queued-job cap is
// reached. The serve layer maps it to its ErrOverloaded 429.
var ErrQueueFull = errors.New("sched: queue full")

// QuotaError is returned by Enqueue when the submitting tenant is at
// its per-tenant queued-job quota. The HTTP layer maps it to a 429
// priced for that tenant specifically.
type QuotaError struct {
	Tenant string
	Queued int
	Quota  int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sched: tenant %q at quota (%d queued, quota %d)", e.Tenant, e.Queued, e.Quota)
}

// Config tunes a Scheduler.
type Config struct {
	// Slots is the number of jobs that may run concurrently (the serve
	// layer's MaxJobs). Minimum 1.
	Slots int
	// MaxQueued caps jobs accepted but not yet granted a slot, across
	// all tenants. 0 = unbounded. Bypass enqueues (journal replays,
	// preemption resumes) are exempt and not counted against it.
	MaxQueued int
	// Quota caps one tenant's queued jobs. 0 = no per-tenant cap.
	Quota int
	// DefaultWeight is the weight of tenants absent from Weights. 0
	// selects 1.
	DefaultWeight int
	// Weights maps tenant name → weight (≥ 1). Higher weight = more
	// service per unit of virtual time.
	Weights map[string]int
}

// tenant is one tenant's scheduling state.
type tenant struct {
	name   string
	weight int
	vtime  float64
	queue  []*Ticket // waiting tickets, FIFO within the tenant

	queuedAdmitted int // queue entries counted against MaxQueued/Quota
	running        int
	inflight       int // evaluations currently holding pool slots

	granted     int64
	evals       int64
	service     float64 // cumulative charged budget units
	shed        int64
	preemptions int64
}

// ticket states.
const (
	tkQueued = iota
	tkGranted
	tkAbandoned
	tkReleased
)

// Ticket is one job's place in the scheduler: returned by Enqueue,
// waited on for a slot grant, and released when the job's run segment
// ends (completion or preemption yield).
type Ticket struct {
	// ID is the job ID the ticket was enqueued under.
	ID string
	// Tenant is the tenant the ticket is charged to.
	Tenant string

	s        *Scheduler
	grant    chan struct{}
	state    int
	admitted bool // counted against admission caps
	grantSeq uint64
}

// Scheduler is the weighted-fair queue. All methods are safe for
// concurrent use.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*tenant
	running  map[string]*Ticket // job ID → granted ticket
	victims  map[string]bool    // job IDs marked for rung-boundary preemption
	free     int
	queued   int // total waiting tickets
	admitted int // waiting tickets counted against MaxQueued
	inflight int // evaluations currently holding pool slots
	grantSeq uint64
	grants   []string // grant-order log (job IDs), capped at maxGrantLog

	preemptions int64
	quotaShed   int64
}

// New returns a scheduler with all slots free.
func New(cfg Config) *Scheduler {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.DefaultWeight < 1 {
		cfg.DefaultWeight = 1
	}
	return &Scheduler{
		cfg:     cfg,
		tenants: map[string]*tenant{},
		running: map[string]*Ticket{},
		victims: map[string]bool{},
		free:    cfg.Slots,
	}
}

// tenantLocked returns (creating on first reference) the tenant record.
func (s *Scheduler) tenantLocked(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		w := s.cfg.DefaultWeight
		if cw, ok := s.cfg.Weights[name]; ok && cw >= 1 {
			w = cw
		}
		t = &tenant{name: name, weight: w}
		s.tenants[name] = t
	}
	return t
}

// minActiveVtimeLocked returns the minimum vtime over tenants with
// queued or running work, and whether any such tenant exists.
func (s *Scheduler) minActiveVtimeLocked() (float64, bool) {
	min, ok := 0.0, false
	for _, t := range s.tenants {
		if len(t.queue) == 0 && t.running == 0 {
			continue
		}
		if !ok || t.vtime < min {
			min, ok = t.vtime, true
		}
	}
	return min, ok
}

// Enqueue admits one job for tenant and returns its ticket. With bypass
// false it enforces the global MaxQueued cap (ErrQueueFull) and the
// per-tenant Quota (QuotaError); bypass true skips both — journal
// replays were admitted by the previous process, and a preempted job
// re-entering the queue was admitted at submission.
func (s *Scheduler) Enqueue(tenantName, id string, bypass bool) (*Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(tenantName)
	if !bypass {
		if s.cfg.MaxQueued > 0 && s.admitted >= s.cfg.MaxQueued {
			t.shed++
			return nil, fmt.Errorf("%w (%d queued, max %d)", ErrQueueFull, s.admitted, s.cfg.MaxQueued)
		}
		if s.cfg.Quota > 0 && t.queuedAdmitted >= s.cfg.Quota {
			t.shed++
			s.quotaShed++
			return nil, &QuotaError{Tenant: tenantName, Queued: t.queuedAdmitted, Quota: s.cfg.Quota}
		}
	}
	tk := s.enqueueLocked(t, id, !bypass)
	s.rebalanceLocked()
	return tk, nil
}

// BatchItem is one entry of an EnqueueBatch.
type BatchItem struct {
	Tenant string
	ID     string
}

// EnqueueBatch admits every item or none: the whole batch is checked
// against the global cap and each tenant's quota before any ticket is
// created, under one lock, so a concurrent submission cannot split the
// batch. On success the returned tickets are index-aligned with items.
func (s *Scheduler) EnqueueBatch(items []BatchItem) ([]*Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxQueued > 0 && s.admitted+len(items) > s.cfg.MaxQueued {
		for _, it := range items {
			s.tenantLocked(it.Tenant).shed++
		}
		return nil, fmt.Errorf("%w (%d queued + %d batched, max %d)",
			ErrQueueFull, s.admitted, len(items), s.cfg.MaxQueued)
	}
	if s.cfg.Quota > 0 {
		perTenant := map[string]int{}
		for _, it := range items {
			perTenant[it.Tenant]++
		}
		// Deterministic error: report the alphabetically first tenant over
		// quota, not map-iteration luck.
		names := make([]string, 0, len(perTenant))
		for name := range perTenant {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := s.tenantLocked(name)
			if t.queuedAdmitted+perTenant[name] > s.cfg.Quota {
				t.shed += int64(perTenant[name])
				s.quotaShed += int64(perTenant[name])
				return nil, &QuotaError{Tenant: name, Queued: t.queuedAdmitted + perTenant[name], Quota: s.cfg.Quota}
			}
		}
	}
	out := make([]*Ticket, len(items))
	for i, it := range items {
		out[i] = s.enqueueLocked(s.tenantLocked(it.Tenant), it.ID, true)
	}
	s.rebalanceLocked()
	return out, nil
}

// enqueueLocked appends a ticket to the tenant's queue, applying the
// SFQ arrival rule to a tenant going from idle to active.
func (s *Scheduler) enqueueLocked(t *tenant, id string, admitted bool) *Ticket {
	if len(t.queue) == 0 && t.running == 0 {
		if min, ok := s.minActiveVtimeLocked(); ok && min > t.vtime {
			t.vtime = min
		}
	}
	tk := &Ticket{ID: id, Tenant: t.name, s: s, grant: make(chan struct{}), admitted: admitted}
	t.queue = append(t.queue, tk)
	s.queued++
	if admitted {
		t.queuedAdmitted++
		s.admitted++
	}
	return tk
}

// rebalanceLocked grants free slots to the lowest-vtime backlogged
// tenants, then — if waiters remain with no free slot — refreshes the
// preemption victim mark.
func (s *Scheduler) rebalanceLocked() {
	for s.free > 0 {
		t := s.minQueuedTenantLocked()
		if t == nil {
			break
		}
		tk := t.queue[0]
		t.queue = t.queue[1:]
		s.queued--
		if tk.admitted {
			t.queuedAdmitted--
			s.admitted--
		}
		s.free--
		t.running++
		t.granted++
		t.vtime += grantCost / float64(t.weight)
		s.grantSeq++
		tk.state = tkGranted
		tk.grantSeq = s.grantSeq
		s.running[tk.ID] = tk
		if len(s.grants) < maxGrantLog {
			s.grants = append(s.grants, tk.ID)
		}
		close(tk.grant)
	}
	if s.free == 0 && s.queued > 0 {
		s.markVictimLocked()
	}
}

// minQueuedTenantLocked picks the backlogged tenant with minimal
// (vtime, name) — the deterministic dispatch order.
func (s *Scheduler) minQueuedTenantLocked() *tenant {
	var best *tenant
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if best == nil || t.vtime < best.vtime || (t.vtime == best.vtime && t.name < best.name) {
			best = t
		}
	}
	return best
}

// markVictimLocked marks at most one running job for rung-boundary
// preemption: a job of the running tenant with the highest vtime that
// strictly exceeds the lowest-vtime waiter's — i.e. the waiter is
// entitled to service before that tenant's next unit. Among that
// tenant's running jobs the youngest grant is chosen (least progress
// to re-enqueue). No-op while a victim is already marked.
func (s *Scheduler) markVictimLocked() {
	if len(s.victims) > 0 {
		return
	}
	waiter := s.minQueuedTenantLocked()
	if waiter == nil {
		return
	}
	var victim *Ticket
	var victimT *tenant
	for _, tk := range s.running {
		t := s.tenants[tk.Tenant]
		if t.vtime <= waiter.vtime {
			continue
		}
		if victim == nil ||
			t.vtime > victimT.vtime ||
			(t.vtime == victimT.vtime && tk.grantSeq > victim.grantSeq) {
			victim, victimT = tk, t
		}
	}
	if victim != nil {
		s.victims[victim.ID] = true
	}
}

// Wait blocks until the ticket is granted a slot or ctx is done. On a
// context error the ticket is withdrawn — removed from its queue, or,
// if the grant raced the cancellation, the slot is handed straight
// back — so Wait never returns an error while holding a slot.
func (tk *Ticket) Wait(ctx context.Context) error {
	select {
	case <-tk.grant:
		return nil
	case <-ctx.Done():
	}
	tk.s.mu.Lock()
	if tk.state == tkQueued {
		tk.s.withdrawLocked(tk)
		tk.s.mu.Unlock()
		return ctx.Err()
	}
	tk.s.mu.Unlock()
	// Granted between the select arms: release the slot we now own.
	tk.s.Release(tk)
	return ctx.Err()
}

// withdrawLocked removes a still-queued ticket from its tenant's queue.
func (s *Scheduler) withdrawLocked(tk *Ticket) {
	t := s.tenants[tk.Tenant]
	for i, q := range t.queue {
		if q == tk {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			s.queued--
			if tk.admitted {
				t.queuedAdmitted--
				s.admitted--
			}
			break
		}
	}
	tk.state = tkAbandoned
}

// Release returns a granted ticket's slot (run segment over — the job
// finished, failed, was cancelled, or is yielding to a preemption) and
// dispatches the next waiter. Idempotent; a never-granted ticket is a
// no-op.
func (s *Scheduler) Release(tk *Ticket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tk.state != tkGranted {
		return
	}
	tk.state = tkReleased
	t := s.tenants[tk.Tenant]
	t.running--
	s.free++
	delete(s.running, tk.ID)
	delete(s.victims, tk.ID)
	s.rebalanceLocked()
}

// Preempt records a rung-boundary yield: the ticket's slot is released
// (dispatching the entitled waiter) and the job re-enters its tenant's
// queue with a fresh ticket, exempt from admission caps — it was
// admitted once at submission.
func (s *Scheduler) Preempt(tk *Ticket) *Ticket {
	s.mu.Lock()
	t := s.tenants[tk.Tenant]
	t.preemptions++
	s.preemptions++
	s.mu.Unlock()
	s.Release(tk)
	nt, _ := s.Enqueue(tk.Tenant, tk.ID, true) // bypass admission: never errors
	return nt
}

// ShouldPreempt reports whether the job is currently marked as a
// preemption victim. The runner polls it at rung boundaries.
func (s *Scheduler) ShouldPreempt(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.victims[id]
}

// Charge advances the tenant's virtual time by units of service (trial
// instance budgets) over its weight, then refreshes the victim mark —
// entitlement often emerges exactly here, as a running tenant charges
// past a waiter that arrived level with it.
func (s *Scheduler) Charge(tenantName string, units float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(tenantName)
	t.vtime += units / float64(t.weight)
	t.service += units
	t.evals++
	if s.free == 0 && s.queued > 0 {
		s.markVictimLocked()
	}
}

// Restore re-seeds a tenant's cumulative accounting from journaled
// state after a restart, without touching virtual time: vtimes restart
// level — the SFQ idle-arrival rule applied to everyone — while the
// usage counters surfaced by /tenants survive exactly.
func (s *Scheduler) Restore(tenantName string, service float64, evals, preemptions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(tenantName)
	t.service += service
	t.evals += evals
	t.preemptions += preemptions
	s.preemptions += preemptions
}

// EvalStarted and EvalFinished maintain the consistent inflight gauge:
// called by the pooled evaluator immediately after acquiring and
// immediately before releasing a pool slot, so the count is paired with
// slot ownership and can never go negative or leak.
func (s *Scheduler) EvalStarted(tenantName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(tenantName)
	t.inflight++
	s.inflight++
}

// EvalFinished is the paired decrement of EvalStarted.
func (s *Scheduler) EvalFinished(tenantName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(tenantName)
	t.inflight--
	s.inflight--
}

// Inflight returns the evaluations currently holding pool slots — the
// pool_inflight gauge.
func (s *Scheduler) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Queued returns the total waiting jobs (admitted and bypass alike).
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Overloaded reports whether the global admission cap is reached.
func (s *Scheduler) Overloaded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.MaxQueued > 0 && s.admitted >= s.cfg.MaxQueued
}

// TenantQueued returns one tenant's admission-counted queue depth.
func (s *Scheduler) TenantQueued(tenantName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenantName]; ok {
		return t.queuedAdmitted
	}
	return 0
}

// Share returns the tenant's weighted fair share of service in (0, 1]:
// weight over the sum of active tenants' weights (itself included even
// when idle — the share it would get if it submitted now). Used to
// price per-tenant Retry-After.
func (s *Scheduler) Share(tenantName string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(tenantName)
	total := t.weight
	for _, o := range s.tenants {
		if o != t && (len(o.queue) > 0 || o.running > 0) {
			total += o.weight
		}
	}
	return float64(t.weight) / float64(total)
}

// Preemptions returns the total rung-boundary preemptions recorded.
func (s *Scheduler) Preemptions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.preemptions
}

// QuotaShed returns submissions shed by per-tenant quota (a subset of
// the serve layer's total shed count).
func (s *Scheduler) QuotaShed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quotaShed
}

// Grants returns the grant-order log: job IDs in the order they were
// granted slots, capped at maxGrantLog. The determinism tests compare
// these across worker counts.
func (s *Scheduler) Grants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.grants))
	copy(out, s.grants)
	return out
}

// TenantStats is one tenant's scheduler-side usage snapshot.
type TenantStats struct {
	Tenant        string  `json:"tenant"`
	Weight        int     `json:"weight"`
	VTime         float64 `json:"vtime"`
	Queued        int     `json:"queued"`
	Running       int     `json:"running"`
	InflightEvals int     `json:"inflight_evals"`
	Granted       int64   `json:"granted"`
	Evaluations   int64   `json:"evaluations"`
	ServiceUnits  float64 `json:"service_units"`
	Shed          int64   `json:"shed"`
	Preemptions   int64   `json:"preemptions"`
}

// Stats snapshots every tenant the scheduler has seen, sorted by name.
func (s *Scheduler) Stats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, TenantStats{
			Tenant:        t.name,
			Weight:        t.weight,
			VTime:         t.vtime,
			Queued:        len(t.queue),
			Running:       t.running,
			InflightEvals: t.inflight,
			Granted:       t.granted,
			Evaluations:   t.evals,
			ServiceUnits:  t.service,
			Shed:          t.shed,
			Preemptions:   t.preemptions,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

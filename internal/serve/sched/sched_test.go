package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

// drain grants s's free slots to n enqueued jobs and returns their
// tickets in grant order by reading the grant log.
func mustEnqueue(t *testing.T, s *Scheduler, tenant, id string) *Ticket {
	t.Helper()
	tk, err := s.Enqueue(tenant, id, false)
	if err != nil {
		t.Fatalf("Enqueue(%s, %s): %v", tenant, id, err)
	}
	return tk
}

func granted(tk *Ticket) bool {
	select {
	case <-tk.grant:
		return true
	default:
		return false
	}
}

// TestWeightedGrantOrder: with deep backlogs for two tenants at weights
// 3:1 and one slot, grants interleave 3-to-1 — the stride invariant.
func TestWeightedGrantOrder(t *testing.T) {
	s := New(Config{Slots: 1, Weights: map[string]int{"a": 3, "b": 1}})
	// Occupy the slot so the backlog forms deterministically.
	blocker := mustEnqueue(t, s, "z", "blocker")
	if !granted(blocker) {
		t.Fatal("blocker not granted an empty scheduler's slot")
	}
	var ticks []*Ticket
	for i := 0; i < 8; i++ {
		ticks = append(ticks, mustEnqueue(t, s, "a", "a-"+string(rune('0'+i))))
		if i < 3 {
			ticks = append(ticks, mustEnqueue(t, s, "b", "b-"+string(rune('0'+i))))
		}
	}
	// Serve the backlog: each grant is released immediately after charging
	// one unit of service, as a 1-trial job would.
	s.Release(blocker)
	for range ticks {
		var cur *Ticket
		for _, tk := range ticks {
			if granted(tk) && tk.state == tkGranted {
				cur = tk
				break
			}
		}
		if cur == nil {
			t.Fatal("no granted ticket while backlog remains")
		}
		s.Charge(cur.Tenant, 12) // equal-cost jobs
		s.Release(cur)
	}
	log := s.Grants()[1:] // drop the blocker
	counts := map[byte]int{}
	// In any window of the first 8 grants, a should have ~3× b's share.
	for _, id := range log[:8] {
		counts[id[0]]++
	}
	if counts['a'] < 5 || counts['b'] < 1 {
		t.Fatalf("first 8 grants not weighted 3:1: %v (log %v)", counts, log)
	}
}

// TestDeterministicGrantLog: the same submission trace always yields
// the same grant order (names break vtime ties).
func TestDeterministicGrantLog(t *testing.T) {
	run := func() []string {
		s := New(Config{Slots: 1, Weights: map[string]int{"x": 2, "y": 1, "z": 1}})
		blocker := mustEnqueue(t, s, "blk", "blocker")
		var ticks []*Ticket
		for i := 0; i < 4; i++ {
			for _, tenant := range []string{"y", "x", "z"} {
				ticks = append(ticks, mustEnqueue(t, s, tenant, tenant+"-"+string(rune('0'+i))))
			}
		}
		s.Charge("blk", 5)
		s.Release(blocker)
		for range ticks {
			var cur *Ticket
			for _, tk := range ticks {
				if granted(tk) && tk.state == tkGranted {
					cur = tk
					break
				}
			}
			s.Charge(cur.Tenant, 7)
			s.Release(cur)
		}
		return s.Grants()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("grant log length changed: %d vs %d", len(got), len(first))
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("grant log diverged at %d: %v vs %v", j, got, first)
				}
			}
		}
	}
}

// TestQuotaAndQueueCaps: the global cap returns ErrQueueFull, the
// per-tenant quota a QuotaError naming the tenant, and bypass enqueues
// are exempt from both.
func TestQuotaAndQueueCaps(t *testing.T) {
	s := New(Config{Slots: 1, MaxQueued: 3, Quota: 2})
	blocker := mustEnqueue(t, s, "z", "blocker")
	if !granted(blocker) {
		t.Fatal("blocker not granted")
	}
	mustEnqueue(t, s, "a", "a-1")
	mustEnqueue(t, s, "a", "a-2")
	if _, err := s.Enqueue("a", "a-3", false); err == nil {
		t.Fatal("third queued job for tenant a should exceed quota 2")
	} else {
		var qe *QuotaError
		if !errors.As(err, &qe) || qe.Tenant != "a" {
			t.Fatalf("want QuotaError for tenant a, got %v", err)
		}
	}
	mustEnqueue(t, s, "b", "b-1")
	if _, err := s.Enqueue("c", "c-1", false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull at global cap, got %v", err)
	}
	if _, err := s.Enqueue("c", "c-bypass", true); err != nil {
		t.Fatalf("bypass enqueue should ignore caps: %v", err)
	}
	if s.QuotaShed() != 1 {
		t.Fatalf("quota shed = %d, want 1", s.QuotaShed())
	}
}

// TestBatchAtomicity: a batch that would push one tenant past quota is
// rejected whole — nothing enqueued.
func TestBatchAtomicity(t *testing.T) {
	s := New(Config{Slots: 1, MaxQueued: 10, Quota: 2})
	blocker := mustEnqueue(t, s, "z", "blocker")
	_ = blocker
	mustEnqueue(t, s, "a", "a-0")
	before := s.Queued()
	_, err := s.EnqueueBatch([]BatchItem{
		{Tenant: "b", ID: "b-0"},
		{Tenant: "a", ID: "a-1"},
		{Tenant: "a", ID: "a-2"}, // a would reach 3 > quota 2
	})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "a" {
		t.Fatalf("want QuotaError for tenant a, got %v", err)
	}
	if got := s.Queued(); got != before {
		t.Fatalf("failed batch leaked queue entries: %d -> %d", before, got)
	}
	ticks, err := s.EnqueueBatch([]BatchItem{
		{Tenant: "b", ID: "b-0"},
		{Tenant: "a", ID: "a-1"},
	})
	if err != nil || len(ticks) != 2 {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

// TestPreemptionVictim: a running job of an over-served tenant is
// marked once a cheaper tenant waits, and Preempt re-enqueues it.
func TestPreemptionVictim(t *testing.T) {
	s := New(Config{Slots: 1, Weights: map[string]int{"low": 1, "vip": 8}})
	lowTk := mustEnqueue(t, s, "low", "low-1")
	if !granted(lowTk) {
		t.Fatal("low-1 not granted")
	}
	s.Charge("low", 10)
	vipTk := mustEnqueue(t, s, "vip", "vip-1")
	if granted(vipTk) {
		t.Fatal("vip granted with no free slot")
	}
	// vip arrived level with low (arrival rule); one more charge makes low
	// strictly over-served and the mark must appear.
	if s.ShouldPreempt("low-1") {
		t.Fatal("victim marked before entitlement")
	}
	s.Charge("low", 10)
	if !s.ShouldPreempt("low-1") {
		t.Fatal("low-1 not marked after charging past the waiting vip")
	}
	lowTk2 := s.Preempt(lowTk)
	if !granted(vipTk) {
		t.Fatal("vip not granted the yielded slot")
	}
	if granted(lowTk2) {
		t.Fatal("preempted job re-granted while vip holds the slot")
	}
	if s.ShouldPreempt("vip-1") {
		t.Fatal("stale victim mark")
	}
	s.Charge("vip", 1)
	s.Release(vipTk)
	if !granted(lowTk2) {
		t.Fatal("preempted job not resumed after vip finished")
	}
	if s.Preemptions() != 1 {
		t.Fatalf("preemptions = %d, want 1", s.Preemptions())
	}
}

// TestWaitContextWithdraws: a cancelled waiter leaves the queue; a
// cancellation racing the grant returns the slot.
func TestWaitContextWithdraws(t *testing.T) {
	s := New(Config{Slots: 1})
	blocker := mustEnqueue(t, s, "z", "blocker")
	tk := mustEnqueue(t, s, "a", "a-1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tk.Wait(ctx); err == nil {
		t.Fatal("Wait with cancelled ctx returned nil")
	}
	if got := s.Queued(); got != 0 {
		t.Fatalf("withdrawn ticket still queued: %d", got)
	}
	s.Release(blocker)
	// The withdrawn ticket must not have consumed the freed slot.
	tk2 := mustEnqueue(t, s, "a", "a-2")
	if !granted(tk2) {
		t.Fatal("slot lost to a withdrawn ticket")
	}
}

// TestInflightGauge pairs EvalStarted/EvalFinished.
func TestInflightGauge(t *testing.T) {
	s := New(Config{Slots: 2})
	s.EvalStarted("a")
	s.EvalStarted("a")
	s.EvalStarted("b")
	if got := s.Inflight(); got != 3 {
		t.Fatalf("inflight = %d, want 3", got)
	}
	s.EvalFinished("a")
	s.EvalFinished("b")
	s.EvalFinished("a")
	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
	for _, st := range s.Stats() {
		if st.InflightEvals != 0 {
			t.Fatalf("tenant %s inflight = %d, want 0", st.Tenant, st.InflightEvals)
		}
	}
}

// TestArrivalRuleNoIdleCredit: a tenant idle through another's service
// re-enters level with it, not with banked credit.
func TestArrivalRuleNoIdleCredit(t *testing.T) {
	s := New(Config{Slots: 1})
	tk := mustEnqueue(t, s, "busy", "busy-1")
	s.Charge("busy", 100)
	idle := mustEnqueue(t, s, "idle", "idle-1")
	s.mu.Lock()
	bv, iv := s.tenants["busy"].vtime, s.tenants["idle"].vtime
	s.mu.Unlock()
	if iv < bv {
		t.Fatalf("idle arrival banked credit: idle vtime %v < busy %v", iv, bv)
	}
	s.Release(tk)
	if !granted(idle) {
		t.Fatal("idle tenant not granted freed slot")
	}
}

// TestWaitGrantNoDeadlock: concurrent waiters all eventually run.
func TestWaitGrantNoDeadlock(t *testing.T) {
	s := New(Config{Slots: 2})
	done := make(chan string, 20)
	for i := 0; i < 20; i++ {
		tenant := string(rune('a' + i%4))
		tk := mustEnqueue(t, s, tenant, tenant+"-"+string(rune('0'+i/4)))
		go func(tk *Ticket) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := tk.Wait(ctx); err != nil {
				done <- "err:" + err.Error()
				return
			}
			s.Charge(tk.Tenant, 3)
			s.Release(tk)
			done <- tk.ID
		}(tk)
	}
	for i := 0; i < 20; i++ {
		select {
		case id := <-done:
			if len(id) > 4 && id[:4] == "err:" {
				t.Fatalf("waiter failed: %s", id)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiters deadlocked")
		}
	}
}

// Package evalcache memoizes hpo.Evaluator calls. Evaluations in this
// repository are deterministic functions of (configuration, budget, RNG
// stream): the evaluator derives every random choice — subset sampling,
// fold assignment, training seeds — from the RNG it is handed, and Split
// never advances the parent. A cache keyed on (config ID, budget, RNG
// fingerprint) therefore returns bit-identical fold scores, so repeated
// job submissions over the same dataset — re-runs, method comparisons,
// larger-budget follow-ups that revisit low rungs — skip the training
// entirely.
//
// The cache must be scoped to one evaluator identity (dataset, base
// config, fold builder, groups): config IDs are space-relative indices and
// carry no meaning across datasets or spaces. The serve layer keys caches
// by a job-spec signature for exactly this reason.
package evalcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// key identifies one deterministic evaluation.
type key struct {
	cfg    string
	budget int
	seed   uint64 // fingerprint of the RNG stream the evaluation consumes
}

// entry is one cached result on the recency list.
type entry struct {
	k      key
	scores []float64
}

// Cache wraps an Evaluator with a concurrency-safe LRU memo table.
type Cache struct {
	inner hpo.Evaluator
	// maxEntries bounds the table (0 = unbounded). When full, eviction is
	// cost-aware LRU: among the evictWindow least-recently-used entries
	// the lowest-budget one goes first (see evictOne). Recency tracks
	// which entries the active jobs still need while long-cold entries
	// from finished scopes age out; budget-weighting keeps expensive
	// full-budget results alive ahead of cheap low-rung ones.
	maxEntries int

	mu      sync.Mutex
	entries map[key]*list.Element // values are *entry
	recency list.List             // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

// New wraps inner with a cache holding at most maxEntries results
// (0 = unbounded), evicting least-recently-used entries at capacity.
func New(inner hpo.Evaluator, maxEntries int) *Cache {
	c := &Cache{
		inner:      inner,
		maxEntries: maxEntries,
		entries:    map[key]*list.Element{},
	}
	c.recency.Init()
	return c
}

// FullBudget implements hpo.Evaluator.
func (c *Cache) FullBudget() int { return c.inner.FullBudget() }

// Evaluate implements hpo.Evaluator: it returns the memoized fold scores
// when the same (config, budget, RNG stream) has been evaluated before,
// and delegates to the wrapped evaluator otherwise. Hits refresh the
// entry's recency. Concurrent misses on the same key may both compute;
// determinism makes the duplicate store a no-op, trading a little
// duplicated work for never blocking one evaluation on another.
func (c *Cache) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	k := key{cfg: cfg.ID(), budget: budget, seed: r.Fingerprint()}
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.recency.MoveToFront(el)
		scores := append([]float64(nil), el.Value.(*entry).scores...)
		c.mu.Unlock()
		c.hits.Add(1)
		return scores, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	scores, err := c.inner.Evaluate(cfg, budget, r)
	if err != nil {
		return nil, err
	}
	stored := append([]float64(nil), scores...)
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		// A concurrent miss stored the (identical) result first.
		c.recency.MoveToFront(el)
	} else {
		c.entries[k] = c.recency.PushFront(&entry{k: k, scores: stored})
		for c.maxEntries > 0 && len(c.entries) > c.maxEntries {
			c.evictOne()
		}
	}
	c.mu.Unlock()
	return scores, nil
}

// evictWindow is how many of the least-recently-used entries evictOne
// considers when choosing a victim. A small window keeps eviction O(1)
// amortized while still letting recorded cost matter near the cold end.
const evictWindow = 8

// evictOne removes one entry, weighting LRU victims by recorded budget:
// among the evictWindow least-recently-used entries it evicts the one
// with the lowest budget (ties go to the least recently used), because a
// low-budget entry is cheap to recompute while a full-budget entry
// represents the bulk of a job's spent wall-clock. The most recently
// used entry is never considered. Callers must hold c.mu.
func (c *Cache) evictOne() {
	victim := c.recency.Back()
	scanned := 1
	for el := victim.Prev(); el != nil && el != c.recency.Front() && scanned < evictWindow; el = el.Prev() {
		// Strict < keeps ties on the older (further-back) entry, so equal
		// budgets degrade to exact LRU order.
		if el.Value.(*entry).k.budget < victim.Value.(*entry).k.budget {
			victim = el
		}
		scanned++
	}
	c.recency.Remove(victim)
	delete(c.entries, victim.Value.(*entry).k)
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: entries}
}

package evalcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// fakeEvaluator returns deterministic pseudo-scores derived from the
// arguments, counting calls.
type fakeEvaluator struct {
	calls atomic.Int64
	fail  bool
}

func (f *fakeEvaluator) FullBudget() int { return 1000 }

func (f *fakeEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	f.calls.Add(1)
	if f.fail {
		return nil, fmt.Errorf("evalcache test: injected failure")
	}
	scores := make([]float64, 3)
	for i := range scores {
		scores[i] = float64(budget) + r.Float64() + float64(cfg.Index(0))
	}
	return scores, nil
}

func testSpace() *search.Space {
	return &search.Space{Dims: []search.Dimension{
		{Name: "a", Values: []any{0, 1, 2, 3}},
		{Name: "b", Values: []any{0, 1}},
	}}
}

func TestCacheHitMissAccounting(t *testing.T) {
	space := testSpace()
	inner := &fakeEvaluator{}
	c := New(inner, 0)
	cfg := space.NewConfig([]int{1, 0})
	root := rng.New(9)

	first, err := c.Evaluate(cfg, 100, root.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after one miss: %+v", s)
	}
	second, err := c.Evaluate(cfg, 100, root.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after one hit: %+v", s)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("inner evaluator ran %d times, want 1", inner.calls.Load())
	}
	// Cached scores equal uncached ones bit-for-bit.
	fresh, err := (&fakeEvaluator{}).Evaluate(cfg, 100, root.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if first[i] != fresh[i] || second[i] != fresh[i] {
			t.Fatalf("score %d: cached %v / %v, uncached %v", i, first[i], second[i], fresh[i])
		}
	}
	if rate := c.Stats().HitRate(); rate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", rate)
	}

	// Different budget, different config, or different RNG stream all miss.
	if _, err := c.Evaluate(cfg, 200, root.Split(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(space.NewConfig([]int{2, 0}), 100, root.Split(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(cfg, 100, root.Split(2)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 4 {
		t.Fatalf("distinct keys should all miss: %+v", s)
	}
}

func TestCacheReturnsCopies(t *testing.T) {
	space := testSpace()
	c := New(&fakeEvaluator{}, 0)
	cfg := space.NewConfig([]int{0, 0})
	r := rng.New(3)
	got, err := c.Evaluate(cfg, 50, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	got[0] = -1 // caller mutates its slice
	again, err := c.Evaluate(cfg, 50, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	if again[0] == -1 {
		t.Fatal("caller mutation leaked into the cache")
	}
	again[0] = -2
	third, err := c.Evaluate(cfg, 50, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	if third[0] == -2 {
		t.Fatal("hit result aliases the cached slice")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	space := testSpace()
	inner := &fakeEvaluator{fail: true}
	c := New(inner, 0)
	cfg := space.NewConfig([]int{0, 0})
	r := rng.New(4)
	if _, err := c.Evaluate(cfg, 50, r.Split(1)); err == nil {
		t.Fatal("expected injected failure")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("failed evaluation was cached: %+v", s)
	}
	inner.fail = false
	if _, err := c.Evaluate(cfg, 50, r.Split(1)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("retry after failure: %+v", s)
	}
}

func TestCacheMaxEntries(t *testing.T) {
	space := testSpace()
	c := New(&fakeEvaluator{}, 2)
	r := rng.New(5)
	for i := 0; i < 4; i++ {
		if _, err := c.Evaluate(space.NewConfig([]int{i, 0}), 50, r.Split(1)); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries > 2 {
		t.Fatalf("cache grew past maxEntries: %+v", s)
	}
}

// TestCacheLRUEvictionOrder pins the eviction policy: at capacity the
// least recently *used* entry goes, so an old entry refreshed by a hit
// outlives a younger never-touched one.
func TestCacheLRUEvictionOrder(t *testing.T) {
	space := testSpace()
	inner := &fakeEvaluator{}
	c := New(inner, 2)
	r := rng.New(6)
	a := space.NewConfig([]int{0, 0})
	b := space.NewConfig([]int{1, 0})
	d := space.NewConfig([]int{2, 0})

	eval := func(cfg search.Config) {
		t.Helper()
		if _, err := c.Evaluate(cfg, 50, r.Split(1)); err != nil {
			t.Fatal(err)
		}
	}
	eval(a) // miss: {a}
	eval(b) // miss: {a, b}
	eval(a) // hit: refreshes a, so b is now least recently used
	eval(d) // miss at capacity: evicts b, not a

	callsBefore := inner.calls.Load()
	eval(a) // must still be cached
	eval(d) // must still be cached
	if got := inner.calls.Load(); got != callsBefore {
		t.Fatalf("refreshed/new entries were evicted: %d extra evaluations", got-callsBefore)
	}
	eval(b) // was evicted: recomputes
	if got := inner.calls.Load(); got != callsBefore+1 {
		t.Fatalf("LRU victim: want exactly b recomputed, got %d extra evaluations", got-callsBefore)
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("entries %d, want 2", s.Entries)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines under -race:
// all must observe identical scores for identical keys, and total
// accounting must add up.
func TestCacheConcurrent(t *testing.T) {
	space := testSpace()
	c := New(&fakeEvaluator{}, 0)
	configs := space.Enumerate()
	root := rng.New(11)
	const goroutines = 16
	const iters = 200
	want := make([][]float64, len(configs))
	for i, cfg := range configs {
		scores, err := (&fakeEvaluator{}).Evaluate(cfg, 64, root.Split(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = scores
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(configs)
				got, err := c.Evaluate(configs[i], 64, root.Split(uint64(i)))
				if err != nil {
					errc <- err
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						errc <- fmt.Errorf("config %d score %d: %v != %v", i, j, got[j], want[i][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Hits+s.Misses != goroutines*iters {
		t.Fatalf("hits %d + misses %d != %d lookups", s.Hits, s.Misses, goroutines*iters)
	}
	if s.Entries != len(configs) {
		t.Fatalf("%d entries for %d distinct keys", s.Entries, len(configs))
	}
	if s.Hits == 0 {
		t.Fatal("concurrent run recorded no hits")
	}
}

// TestCacheCostAwareEviction pins the budget-weighted victim order: at
// capacity the cheapest (lowest-budget) entry inside the LRU window is
// evicted before more expensive ones, even when it is not the least
// recently used — and the most recently used entry is never the victim.
func TestCacheCostAwareEviction(t *testing.T) {
	space := testSpace()
	inner := &fakeEvaluator{}
	c := New(inner, 3)
	r := rng.New(7)
	a := space.NewConfig([]int{0, 0})
	b := space.NewConfig([]int{1, 0})
	d := space.NewConfig([]int{2, 0})
	e := space.NewConfig([]int{3, 0})

	eval := func(cfg search.Config, budget int) {
		t.Helper()
		if _, err := c.Evaluate(cfg, budget, r.Split(1)); err != nil {
			t.Fatal(err)
		}
	}
	eval(a, 100) // oldest but expensive
	eval(b, 10)  // cheap low-rung entry
	eval(d, 50)
	eval(e, 75) // at capacity: victim must be b (budget 10), not LRU a

	callsBefore := inner.calls.Load()
	eval(a, 100)
	eval(d, 50)
	eval(e, 75)
	if got := inner.calls.Load(); got != callsBefore {
		t.Fatalf("expensive entries were evicted: %d extra evaluations", got-callsBefore)
	}
	eval(b, 10) // was evicted: recomputes, evicting the next-cheapest (d)
	if got := inner.calls.Load(); got != callsBefore+1 {
		t.Fatalf("cost-aware victim: want exactly b recomputed, got %d extra", got-callsBefore)
	}
	eval(d, 50)
	if got := inner.calls.Load(); got != callsBefore+2 {
		t.Fatalf("second victim: want d recomputed, got %d extra", got-callsBefore-1)
	}
	// a (budget 100) survived both rounds despite being least recently used.
	eval(a, 100)
	if got := inner.calls.Load(); got != callsBefore+2 {
		t.Fatalf("highest-budget entry was evicted after %d extra evaluations", got-callsBefore-2)
	}
}

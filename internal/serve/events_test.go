package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/serve/tracestore"
	"enhancedbhpo/internal/trace"
)

// sseStream reads Server-Sent Events frames off one GET /events
// connection. Close the underlying body to simulate a dropped client.
type sseStream struct {
	resp *http.Response
	sc   *bufio.Scanner
}

// openSSE connects to a job's event feed, resuming after lastID when
// non-zero — the reconnect path a real EventSource client takes.
func openSSE(t *testing.T, base, jobID string, lastID uint64) *sseStream {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET /events: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("GET /events content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &sseStream{resp: resp, sc: sc}
}

// next returns the stream's next event, or ok=false at end of stream.
func (s *sseStream) next(t *testing.T) (events.Event, bool) {
	t.Helper()
	var data []byte
	var sawID string
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue // keepalive comment
			}
			var ev events.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				t.Fatalf("decoding SSE data %q: %v", data, err)
			}
			if sawID != fmt.Sprint(ev.Seq) {
				t.Fatalf("SSE id %q does not match payload seq %d", sawID, ev.Seq)
			}
			return ev, true
		case strings.HasPrefix(line, "id:"):
			sawID = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		}
	}
	return events.Event{}, false
}

func (s *sseStream) close() { s.resp.Body.Close() }

// TestSSEOrderedResumable is the streaming acceptance scenario, run
// under -race by `make sse`: a client follows a job's SSE feed, loses
// its connection mid-run, reconnects with Last-Event-ID, and must end up
// having seen every event exactly once, in order, ending with the
// terminal transition — and the streamed curve points must equal the
// job's final snapshot curve.
func TestSSEOrderedResumable(t *testing.T) {
	ts, m := newTestServer(t, Config{PoolSize: 2, MaxJobs: 1})
	sub := postJob(t, ts.URL, smallSpec())

	// Phase 1: stream the first few events, then drop the connection —
	// an unlucky proxy timeout mid-run.
	s1 := openSSE(t, ts.URL, sub.ID, 0)
	var got []events.Event
	for len(got) < 3 {
		ev, ok := s1.next(t)
		if !ok {
			t.Fatalf("stream ended after %d events, wanted to drop at 3", len(got))
		}
		got = append(got, ev)
	}
	s1.close()

	// Phase 2: resume exactly after the last seen sequence number.
	s2 := openSSE(t, ts.URL, sub.ID, got[len(got)-1].Seq)
	defer s2.close()
	for {
		ev, ok := s2.next(t)
		if !ok {
			break
		}
		got = append(got, ev)
	}

	// Exactly once, in order, nothing missing.
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d — the feed lost or duplicated events: %+v", i, ev.Seq, got)
		}
		if ev.JobID != sub.ID {
			t.Fatalf("event %d carries job %q, want %q", i, ev.JobID, sub.ID)
		}
	}
	last := got[len(got)-1]
	if !last.Terminal || last.Type != events.TypeStatus || last.Status != string(StatusDone) {
		t.Fatalf("stream did not end with a terminal done event: %+v", last)
	}
	if got[0].Type != events.TypeStatus || got[0].Status != string(StatusRunning) {
		t.Fatalf("first event is not the running transition: %+v", got[0])
	}

	// The streamed curve equals the snapshot's anytime curve.
	snap := getJob(t, ts.URL, sub.ID)
	var streamed []trace.Point
	for _, ev := range got {
		if ev.Type == events.TypeCurvePoint {
			streamed = append(streamed, *ev.Point)
		}
	}
	if len(streamed) != len(snap.Curve) {
		t.Fatalf("streamed %d curve points, snapshot has %d", len(streamed), len(snap.Curve))
	}
	for i := range streamed {
		if streamed[i] != snap.Curve[i] {
			t.Fatalf("curve point %d: streamed %+v, snapshot %+v", i, streamed[i], snap.Curve[i])
		}
	}
	if snap.LastSeq != last.Seq {
		t.Fatalf("snapshot last_seq %d, stream ended at %d", snap.LastSeq, last.Seq)
	}
	if m.Metrics().EventsPublished < int64(len(got)) {
		t.Fatalf("events_published %d < %d events delivered", m.Metrics().EventsPublished, len(got))
	}
}

// TestSSESubscribeAfterTerminal: a subscriber arriving after the job
// finished gets the entire history as backlog and a stream that ends
// immediately — no hang, no missing terminal.
func TestSSESubscribeAfterTerminal(t *testing.T) {
	ts, _ := newTestServer(t, Config{PoolSize: 2, MaxJobs: 1})
	sub := postJob(t, ts.URL, smallSpec())
	pollUntil(t, ts.URL, sub.ID, func(s Snapshot) bool { return terminal(s.Status) }, "terminal")

	s := openSSE(t, ts.URL, sub.ID, 0)
	defer s.close()
	var got []events.Event
	for {
		ev, ok := s.next(t)
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if len(got) == 0 || !got[len(got)-1].Terminal {
		t.Fatalf("late subscriber got %d events, terminal missing", len(got))
	}
}

// TestTraceSurvivesKillAndRestart is the durability acceptance scenario:
// a job runs to completion on a journaled daemon, the daemon dies
// without any shutdown, and a restarted daemon must serve GET
// /jobs/{id}/trace byte-identically — the complete pre-crash anytime
// curve — plus a resumable event feed for the finished job.
func TestTraceSurvivesKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PoolSize: 2, MaxJobs: 1, DataDir: dir}
	m1, err := NewManagerFromJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(NewServer(m1))
	job, err := m1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m1, job.ID, func(s Status) bool { return s == StatusDone }, "done")

	fetchTrace := func(base, id, query string) []byte {
		resp, err := http.Get(base + "/jobs/" + id + "/trace" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /trace: status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	before := fetchTrace(ts1.URL, job.ID, "")
	ts1.Close()
	// Kill: no Shutdown, no journal or trace-store close. The terminal
	// event was fsynced when the job finished, so the curve is on disk.

	m2, err := NewManagerFromJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewServer(m2))
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m2.Shutdown(ctx); err != nil {
			t.Errorf("m2 shutdown: %v", err)
		}
	})
	after := fetchTrace(ts2.URL, job.ID, "")
	if string(before) != string(after) {
		t.Fatalf("trace differs across restart:\n before %s\n after  %s", before, after)
	}
	curve, err := trace.DecodeAnytime(strings.NewReader(string(after)))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("restarted trace is empty")
	}

	// The raw event log survived too, terminal tail intact, and the SSE
	// feed on the restarted daemon replays it and closes.
	var evs []events.Event
	if err := json.Unmarshal(fetchTrace(ts2.URL, job.ID, "?events=1"), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || !evs[len(evs)-1].Terminal {
		t.Fatalf("restarted event log missing its terminal tail (%d events)", len(evs))
	}
	s := openSSE(t, ts2.URL, job.ID, 0)
	defer s.close()
	n := 0
	for {
		ev, ok := s.next(t)
		if !ok {
			break
		}
		n++
		if ev.Seq != evs[n-1].Seq {
			t.Fatalf("restarted feed seq %d at position %d, event log says %d", ev.Seq, n-1, evs[n-1].Seq)
		}
	}
	if n != len(evs) {
		t.Fatalf("restarted feed replayed %d events, log holds %d", n, len(evs))
	}

	// A fresh poll with ?since= past the end returns an empty delta.
	snap := getJob(t, ts2.URL, job.ID)
	if snap.LastSeq != evs[len(evs)-1].Seq {
		t.Fatalf("restarted last_seq %d, want %d", snap.LastSeq, evs[len(evs)-1].Seq)
	}
}

// TestGetJobSince: ?since=N returns only the curve points past event
// sequence N — the incremental poll behind cheap dashboards.
func TestGetJobSince(t *testing.T) {
	ts, _ := newTestServer(t, Config{PoolSize: 2, MaxJobs: 1})
	sub := postJob(t, ts.URL, smallSpec())
	pollUntil(t, ts.URL, sub.ID, func(s Snapshot) bool { return terminal(s.Status) }, "terminal")

	// The raw event log gives the seq of each curve point.
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/trace?events=1")
	if err != nil {
		t.Fatal(err)
	}
	var evs []events.Event
	if err := jsonDecode(resp, &evs); err != nil {
		t.Fatal(err)
	}
	var curveSeqs []uint64
	for _, ev := range evs {
		if ev.Type == events.TypeCurvePoint {
			curveSeqs = append(curveSeqs, ev.Seq)
		}
	}
	if len(curveSeqs) < 2 {
		t.Fatalf("job produced %d curve points, need at least 2", len(curveSeqs))
	}

	since := curveSeqs[1] // past the first two curve points
	snap := Snapshot{}
	resp, err = http.Get(ts.URL + "/jobs/" + sub.ID + "?since=" + strconv.FormatUint(since, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(resp, &snap); err != nil {
		t.Fatal(err)
	}
	full := getJob(t, ts.URL, sub.ID)
	if want := len(full.Curve) - 2; len(snap.Curve) != want {
		t.Fatalf("?since=%d returned %d points, want %d of %d", since, len(snap.Curve), want, len(full.Curve))
	}
	for i, p := range snap.Curve {
		if p != full.Curve[i+2] {
			t.Fatalf("delta point %d: %+v, want %+v", i, p, full.Curve[i+2])
		}
	}
	if snap.LastSeq == 0 || snap.Status != full.Status {
		t.Fatalf("delta snapshot lost status or cursor: %+v", snap)
	}

	// Cursor at the end → empty delta; garbage → 400.
	resp, err = http.Get(ts.URL + "/jobs/" + sub.ID + "?since=" + strconv.FormatUint(snap.LastSeq, 10))
	if err != nil {
		t.Fatal(err)
	}
	var empty Snapshot
	if err := jsonDecode(resp, &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Curve) != 0 {
		t.Fatalf("?since=last_seq returned %d points, want 0", len(empty.Curve))
	}
	resp, err = http.Get(ts.URL + "/jobs/" + sub.ID + "?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?since=banana: status %d, want 400", resp.StatusCode)
	}
}

// TestSSEDrainClosesStreams: turning on drain mode ends open event
// streams promptly, so a graceful shutdown is never held open by a
// subscriber watching a long job.
func TestSSEDrainClosesStreams(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	m := NewManager(Config{
		PoolSize: 1, MaxJobs: 1,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			return &gateEvaluator{inner: inner, gate: gate, entered: entered}
		},
	})
	srv := NewServer(m)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	job, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the job is wedged mid-evaluation: the feed stays open

	s := openSSE(t, ts.URL, job.ID, 0)
	defer s.close()
	if ev, ok := s.next(t); !ok || ev.Status != string(StatusRunning) {
		t.Fatalf("first event = %+v, %v; want the running transition", ev, ok)
	}
	if got := m.Metrics().EventSubscribers; got != 1 {
		t.Fatalf("event_subscribers = %d with one open stream, want 1", got)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for s.sc.Scan() {
			// Drain frames until the server ends the stream.
		}
	}()
	srv.SetDraining(true)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream survived drain mode")
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.Metrics().EventSubscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("event_subscribers stuck at %d after drain", m.Metrics().EventSubscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSlowConsumerDropsCounted: with a one-slot subscriber buffer a
// stalled subscriber has events dropped from its stream — counted both
// per-subscription and in the service metrics — while the hub history
// keeps everything, so a backfill read is still complete.
func TestSlowConsumerDropsCounted(t *testing.T) {
	_, m := newTestServer(t, Config{PoolSize: 1, MaxJobs: 1, EventBuffer: 1})
	const jobID = "job-synthetic"
	stuck, _ := m.hub.Subscribe(jobID, 0)
	defer stuck.Close()

	const published = 5
	for i := 0; i < published; i++ {
		m.hub.Publish(jobID, events.Event{Type: events.TypeRung, Round: i})
	}
	// One slot in the buffer; everything else must have been shed.
	if got := stuck.Dropped(); got != published-1 {
		t.Fatalf("subscription dropped %d events, want %d", got, published-1)
	}
	if got := m.Metrics().EventsDropped; got != published-1 {
		t.Fatalf("events_dropped_slow_consumer = %d, want %d", got, published-1)
	}
	// Drops never touch history: the gap backfill still has every event.
	backlog := m.hub.Since(jobID, 0)
	if len(backlog) != published {
		t.Fatalf("hub history holds %d events, want %d", len(backlog), published)
	}
	for i, ev := range backlog {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("history seq %d at position %d", ev.Seq, i)
		}
	}
}

// TestMetricsExposeEventCounters: the /metrics payload carries the
// streaming-telemetry counters by their documented JSON names.
func TestMetricsExposeEventCounters(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManagerFromJournal(Config{PoolSize: 2, MaxJobs: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	job, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID, func(s Status) bool { return s == StatusDone }, "done")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := jsonDecode(resp, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"event_subscribers", "events_published", "events_dropped_slow_consumer", "trace_store_bytes"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
	mt := m.Metrics()
	if mt.EventsPublished == 0 {
		t.Error("events_published = 0 after a finished job")
	}
	if mt.TraceStoreBytes == 0 {
		t.Error("trace_store_bytes = 0 with persistence on")
	}
	if mt.TraceStoreErrors != 0 {
		t.Errorf("trace_store_errors = %d", mt.TraceStoreErrors)
	}

	// The durable trace really is on disk where the metric says.
	evs, err := tracestore.Read(TraceDir(dir), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || !evs[len(evs)-1].Terminal {
		t.Fatalf("trace store holds %d events for the finished job", len(evs))
	}
}

package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestPoolAcquireCancelRace is the regression for the acquire/cancel
// race: when a context is cancelled concurrently with acquisition, the
// select inside Acquire can win the slot even though the context is
// already done. Acquire must hand that slot straight back and report the
// cancellation — it may never return an error while holding a slot, nor
// strand a slot the caller was told it did not get. Run under -race via
// make check.
func TestPoolAcquireCancelRace(t *testing.T) {
	p := NewPool(2)
	var wg sync.WaitGroup
	for i := 0; i < 400; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			// Cancel on a sibling goroutine so it lands before, during
			// and after the slot send across iterations.
			go cancel()
			if err := p.Acquire(ctx); err == nil {
				p.Release()
			}
		}()
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("%d slots still counted in use after churn", got)
	}
	// Every slot must still be acquirable; a leaked slot makes this time
	// out instead of hanging the suite.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < p.Size(); i++ {
		if err := p.Acquire(ctx); err != nil {
			t.Fatalf("slot %d unacquirable after churn: %v (leaked by a cancelled Acquire)", i, err)
		}
	}
	if got := p.InUse(); got != p.Size() {
		t.Fatalf("InUse %d after acquiring all %d slots", got, p.Size())
	}
	for i := 0; i < p.Size(); i++ {
		p.Release()
	}
}

// TestPoolAcquirePreCancelled: a context that is already done must never
// acquire, even though the select could otherwise pick the slot case.
func TestPoolAcquirePreCancelled(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 200; i++ {
		if err := p.Acquire(ctx); err == nil {
			t.Fatal("pre-cancelled context acquired a slot")
		}
	}
	if got := p.InUse(); got != 0 {
		t.Fatalf("InUse %d after refused acquires", got)
	}
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatalf("pool unusable after refused acquires: %v", err)
	}
	p.Release()
}

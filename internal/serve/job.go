package serve

import (
	"fmt"
	"sync"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/trace"
)

// JobSpec is the JSON body of POST /jobs: a dataset reference, a search
// space, a method and its options.
type JobSpec struct {
	// Dataset names one of the simulated paper datasets (dataset.Names).
	Dataset string `json:"dataset"`
	// Scale shrinks or grows the dataset. 0 selects 0.35, the repo's
	// laptop-scale default.
	Scale float64 `json:"scale,omitempty"`
	// DatasetSeed drives data synthesis and (for enhanced jobs) group
	// construction. Jobs with equal spec-except-seed/method share one
	// evaluation-cache scope, so it is separate from Seed. 0 selects 1.
	DatasetSeed uint64 `json:"dataset_seed,omitempty"`
	// Method is one of sha, hyperband, bohb, asha.
	Method string `json:"method"`
	// Enhanced switches to the paper's "+" components (instance grouping,
	// general+special folds, UCB-β score).
	Enhanced bool `json:"enhanced,omitempty"`
	// NumHPs is the Table III search-space prefix length (1-8). 0
	// selects 4, the paper's HPO setting.
	NumHPs int `json:"hps,omitempty"`
	// MaxConfigs caps the configurations considered (SHA start set /
	// ASHA samples). 0 selects the method default.
	MaxConfigs int `json:"max_configs,omitempty"`
	// Seed drives the search (sampling, per-trial streams). 0 selects 1.
	Seed uint64 `json:"seed,omitempty"`
	// Iters is the MLP training epoch count. 0 selects 20.
	Iters int `json:"iters,omitempty"`
	// UseF1 scores classification folds and the final model by F1.
	UseF1 bool `json:"use_f1,omitempty"`
	// Workers is the job's own evaluation-goroutine count; every
	// evaluation still needs a slot of the shared pool. 0 selects the
	// pool size.
	Workers int `json:"workers,omitempty"`
	// TimeoutSec aborts the job after the given wall time. 0 = no limit.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Scale == 0 {
		s.Scale = 0.35
	}
	if s.DatasetSeed == 0 {
		s.DatasetSeed = 1
	}
	if s.NumHPs == 0 {
		s.NumHPs = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Iters == 0 {
		s.Iters = 20
	}
	return s
}

// Validate reports the first problem with the spec.
func (s JobSpec) Validate() error {
	if _, err := dataset.SpecByName(s.Dataset); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	switch s.Method {
	case "sha", "hyperband", "bohb", "asha":
	default:
		return fmt.Errorf("serve: unknown method %q (want sha, hyperband, bohb or asha)", s.Method)
	}
	if s.Scale < 0 || s.Scale > 3 {
		return fmt.Errorf("serve: scale %v out of (0, 3]", s.Scale)
	}
	if s.NumHPs < 0 || s.NumHPs > 8 {
		return fmt.Errorf("serve: hps %d out of [1, 8]", s.NumHPs)
	}
	if s.MaxConfigs < 0 {
		return fmt.Errorf("serve: negative max_configs")
	}
	if s.Iters < 0 || s.Iters > 10_000 {
		return fmt.Errorf("serve: iters %d out of [1, 10000]", s.Iters)
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("serve: negative timeout_sec")
	}
	return nil
}

// cacheScope is the evaluation-cache key prefix: everything that shapes
// what Evaluate(config, budget, rng) computes — the data, the base model
// and the fold machinery — but not the search itself. Jobs agreeing on
// this string share cached fold scores.
func (s JobSpec) cacheScope() string {
	variant := "vanilla"
	if s.Enhanced {
		variant = "enhanced"
	}
	return fmt.Sprintf("%s|%g|%d|%d|%d|%t|%s",
		s.Dataset, s.Scale, s.DatasetSeed, s.NumHPs, s.Iters, s.UseF1, variant)
}

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted, waiting for a job slot.
	StatusQueued Status = "queued"
	// StatusRunning: evaluations in progress.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; result available.
	StatusDone Status = "done"
	// StatusFailed: aborted with an error.
	StatusFailed Status = "failed"
	// StatusCancelled: stopped by DELETE /jobs/{id} or timeout.
	StatusCancelled Status = "cancelled"
)

// Job is one tracked optimization run.
type Job struct {
	// ID is the handle used by the HTTP API.
	ID string
	// Spec is the submission after defaulting.
	Spec JobSpec

	cancel func()

	mu        sync.Mutex
	status    Status
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	trials    []hpo.Trial
	result    *hpo.Result
	testScore float64
	hasTest   bool
}

// observe implements the hpo.Components trial observer; it is called
// concurrently by optimizer workers.
func (j *Job) observe(tr hpo.Trial) {
	j.mu.Lock()
	j.trials = append(j.trials, tr)
	j.mu.Unlock()
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Cancel asks the job to stop after its in-flight evaluations. Safe to
// call in any state; cancelling a finished job is a no-op.
func (j *Job) Cancel() {
	j.cancel()
}

// Snapshot is a point-in-time JSON view of a job, served by GET
// /jobs/{id}. Curve uses the trace package's shared serialization.
type Snapshot struct {
	ID          string         `json:"id"`
	Status      Status         `json:"status"`
	Spec        JobSpec        `json:"spec"`
	Error       string         `json:"error,omitempty"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Evaluations int            `json:"evaluations"`
	Curve       []trace.Point  `json:"curve"`
	Sparkline   string         `json:"sparkline,omitempty"`
	BestConfig  map[string]any `json:"best_config,omitempty"`
	BestScore   *float64       `json:"best_score,omitempty"`
	TestScore   *float64       `json:"test_score,omitempty"`
}

// Snapshot renders the job's current state, including the live anytime
// curve of a run still in flight.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := Snapshot{
		ID:          j.ID,
		Status:      j.status,
		Spec:        j.Spec,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		Evaluations: len(j.trials),
		Curve:       trace.Anytime(j.trials),
	}
	if !j.started.IsZero() {
		t := j.started
		snap.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		snap.FinishedAt = &t
	}
	snap.Sparkline = trace.Sparkline(snap.Curve, 40)
	if j.result != nil {
		if sp := j.result.Best.Space(); sp != nil {
			cfg := map[string]any{}
			for _, dim := range sp.Dims {
				cfg[dim.Name] = j.result.Best.Value(dim.Name)
			}
			snap.BestConfig = cfg
		}
		score := j.result.BestScore
		snap.BestScore = &score
	}
	if j.hasTest {
		ts := j.testScore
		snap.TestScore = &ts
	}
	return snap
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/trace"
)

// DefaultTenant is the tenant charged for submissions that name none.
const DefaultTenant = "default"

// JobSpec is the JSON body of POST /jobs: a dataset reference, a search
// space, a method and its options.
type JobSpec struct {
	// Tenant names who the job is charged to: the weighted-fair
	// scheduler's accounting key for slot grants, virtual-time charges
	// and quotas. Empty selects "default". Deliberately not part of
	// CacheScope — tenants submitting identical workloads share warm
	// evaluation caches.
	Tenant string `json:"tenant,omitempty"`
	// Dataset names one of the simulated paper datasets (dataset.Names).
	Dataset string `json:"dataset"`
	// Scale shrinks or grows the dataset. 0 selects 0.35, the repo's
	// laptop-scale default.
	Scale float64 `json:"scale,omitempty"`
	// DatasetSeed drives data synthesis and (for enhanced jobs) group
	// construction. Jobs with equal spec-except-seed/method share one
	// evaluation-cache scope, so it is separate from Seed. 0 selects 1.
	DatasetSeed uint64 `json:"dataset_seed,omitempty"`
	// Method names a registered optimizer (hpo.MethodNames or an alias;
	// GET /methods lists them with their capabilities).
	Method string `json:"method"`
	// Enhanced switches to the paper's "+" components (instance grouping,
	// general+special folds, UCB-β score).
	Enhanced bool `json:"enhanced,omitempty"`
	// NumHPs is the Table III search-space prefix length (1-8). 0
	// selects 4, the paper's HPO setting.
	NumHPs int `json:"hps,omitempty"`
	// MaxConfigs caps the configurations considered (SHA start set,
	// ASHA/PASHA samples, grid cap). 0 selects the method default.
	// Rejected for methods that do not honor it.
	MaxConfigs int `json:"max_configs,omitempty"`
	// Trials is the evaluation count of the full-budget methods (random,
	// smac, tpe). 0 selects the method default (10). Rejected for methods
	// that do not honor it.
	Trials int `json:"trials,omitempty"`
	// Seed drives the search (sampling, per-trial streams). 0 selects 1.
	Seed uint64 `json:"seed,omitempty"`
	// Iters is the MLP training epoch count. 0 selects 20.
	Iters int `json:"iters,omitempty"`
	// UseF1 scores classification folds and the final model by F1.
	UseF1 bool `json:"use_f1,omitempty"`
	// Workers is the job's own evaluation-goroutine count; every
	// evaluation still needs a slot of the shared pool. 0 selects the
	// pool size.
	Workers int `json:"workers,omitempty"`
	// TimeoutSec aborts the job after the given wall time. 0 = no limit.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if s.Scale == 0 {
		s.Scale = 0.35
	}
	if s.DatasetSeed == 0 {
		s.DatasetSeed = 1
	}
	if s.NumHPs == 0 {
		s.NumHPs = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Iters == 0 {
		s.Iters = 20
	}
	return s
}

// SpecFieldError names the JobSpec field that failed validation, so the
// HTTP layer can return a structured 400 pointing at the offending field.
type SpecFieldError struct {
	// Field is the JSON field name of the spec.
	Field string
	// Msg says what is wrong with it.
	Msg string
}

// Error implements error.
func (e *SpecFieldError) Error() string {
	return fmt.Sprintf("serve: %s: %s", e.Field, e.Msg)
}

// fieldErr builds a SpecFieldError.
func fieldErr(field, format string, args ...any) error {
	return &SpecFieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Validate reports the first problem with the spec. The method name is
// resolved against the hpo registry, and option fields a method cannot
// honor (per its capability flags) are rejected here — a named-field 400
// at submission — instead of being silently ignored at run time.
func (s JobSpec) Validate() error {
	if err := validTenant(s.Tenant); err != nil {
		return err
	}
	if _, err := dataset.SpecByName(s.Dataset); err != nil {
		return fieldErr("dataset", "%v", err)
	}
	method, ok := hpo.LookupMethod(s.Method)
	if !ok {
		return fieldErr("method", "unknown method %q (known: %s)",
			s.Method, strings.Join(hpo.MethodNames(), ", "))
	}
	info := method.Info()
	if s.MaxConfigs > 0 && !info.HonorsMaxConfigs {
		return fieldErr("max_configs", "method %q does not honor max_configs", info.Name)
	}
	if s.Workers > 0 && !info.HonorsWorkers {
		return fieldErr("workers", "method %q does not honor workers", info.Name)
	}
	if s.Trials > 0 && !info.HonorsTrials {
		return fieldErr("trials", "method %q does not honor trials (full-budget methods only)", info.Name)
	}
	if s.Scale < 0 || s.Scale > 3 {
		return fieldErr("scale", "scale %v out of (0, 3]", s.Scale)
	}
	if s.NumHPs < 0 || s.NumHPs > 8 {
		return fieldErr("hps", "hps %d out of [1, 8]", s.NumHPs)
	}
	if s.MaxConfigs < 0 {
		return fieldErr("max_configs", "negative max_configs")
	}
	if s.Trials < 0 {
		return fieldErr("trials", "negative trials")
	}
	if s.Workers < 0 {
		return fieldErr("workers", "negative workers")
	}
	if s.Iters < 0 || s.Iters > 10_000 {
		return fieldErr("iters", "iters %d out of [1, 10000]", s.Iters)
	}
	if s.TimeoutSec < 0 {
		return fieldErr("timeout_sec", "negative timeout_sec")
	}
	return nil
}

// validTenant bounds tenant names: they key scheduler accounting and
// appear in journals, metrics and CLI tables, so keep them short and
// free of separators.
func validTenant(name string) error {
	if len(name) > 64 {
		return fieldErr("tenant", "tenant name longer than 64 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fieldErr("tenant", "tenant name may only contain [a-zA-Z0-9._-], got %q", name)
		}
	}
	return nil
}

// CacheScope is the evaluation-cache key prefix: everything that shapes
// what Evaluate(config, budget, rng) computes — the data, the base model
// and the fold machinery — but not the search itself. Jobs agreeing on
// this string share cached fold scores, which is also why the cluster
// coordinator routes jobs by it: co-locating a scope's jobs on one node
// keeps its memoized evaluations warm. Defaults are applied first so an
// un-defaulted client spec maps to the same scope the worker computes.
func (s JobSpec) CacheScope() string {
	s = s.withDefaults()
	variant := "vanilla"
	if s.Enhanced {
		variant = "enhanced"
	}
	return fmt.Sprintf("%s|%g|%d|%d|%d|%t|%s",
		s.Dataset, s.Scale, s.DatasetSeed, s.NumHPs, s.Iters, s.UseF1, variant)
}

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted, waiting for a job slot.
	StatusQueued Status = "queued"
	// StatusRunning: evaluations in progress.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; result available.
	StatusDone Status = "done"
	// StatusFailed: aborted with an error (including an exhausted
	// evaluation failure budget).
	StatusFailed Status = "failed"
	// StatusCancelled: stopped before finishing; Reason says why.
	StatusCancelled Status = "cancelled"
)

// Reason qualifies StatusCancelled: what stopped the job.
type Reason string

const (
	// ReasonUserCancel: DELETE /jobs/{id}.
	ReasonUserCancel Reason = "user_cancel"
	// ReasonTimeout: the spec's TimeoutSec expired.
	ReasonTimeout Reason = "timeout"
	// ReasonShutdown: the daemon was draining or shutting down.
	ReasonShutdown Reason = "shutdown"
	// ReasonInterrupted: the job was mid-run when the daemon died; set
	// during journal recovery.
	ReasonInterrupted Reason = "interrupted"
	// ReasonDeadline: an evaluation ran past -eval-timeout and was
	// abandoned by the watchdog. It qualifies journal *event* records
	// (and the trial charged to the failure budget), not a terminal job
	// status.
	ReasonDeadline Reason = "deadline"
)

// terminalStatus reports whether a status is final.
func terminalStatus(s Status) bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// restoredState carries a journaled terminal outcome across a restart:
// the live fields (trials, hpo.Result) cannot be rebuilt from disk, so a
// recovered job serves snapshots from this instead.
type restoredState struct {
	curve       []trace.Point
	bestConfig  map[string]any
	bestScore   *float64
	testScore   *float64
	evaluations int
}

// Job is one tracked optimization run.
type Job struct {
	// ID is the handle used by the HTTP API.
	ID string
	// Spec is the submission after defaulting.
	Spec JobSpec

	cancel func()

	// token is the coordinator-issued submit token (idempotency key) this
	// job was accepted under, "" for direct submissions. Immutable after
	// registration; journaled with the submit record so a replayed journal
	// still deduplicates a re-sent submission.
	token string

	mu        sync.Mutex
	status    Status
	reason    Reason
	errMsg    string
	stack     string
	failures  int
	submitted time.Time
	started   time.Time
	finished  time.Time
	trials    []hpo.Trial
	result    *hpo.Result
	testScore float64
	hasTest   bool
	restored  *restoredState

	// Preemption/resume state. segCancel cancels the current run
	// segment's context with cause errPreempted; preempts counts the
	// rung-boundary yields so far (capped by Config.MaxPreempts);
	// checkpointLen is how many leading trials were recorded in earlier
	// segments; replaySkip counts how many upcoming observations are
	// deterministic replays of that prefix and must not be re-recorded.
	segCancel     context.CancelCauseFunc
	preempts      int
	checkpointLen int
	replaySkip    int

	// Incumbent recurrence, maintained trial by trial so each observed
	// trial yields its anytime-curve point without recomputing the whole
	// curve. Matches trace.Anytime exactly: a full recompute over trials
	// produces the same points bit for bit.
	cumBudget int
	cumTime   time.Duration
	best      float64
	haveBest  bool
	maxRound  int
}

// recordTrialLocked appends one observed trial and extends the incumbent
// recurrence, returning the trial's anytime-curve point plus whether it
// opened a new halving round (a rung promotion). Called with j.mu held —
// the manager keeps the lock across record+publish so the event stream
// order matches the trial order.
func (j *Job) recordTrialLocked(tr hpo.Trial) (pt trace.Point, newRound int, promoted bool) {
	j.trials = append(j.trials, tr)
	j.cumBudget += tr.Budget
	j.cumTime += tr.Elapsed
	if !j.haveBest || tr.Score > j.best {
		j.best = tr.Score
		j.haveBest = true
	}
	if tr.Round > j.maxRound {
		j.maxRound = tr.Round
		promoted = tr.Round > 0
		newRound = tr.Round
	}
	pt = trace.Point{
		Evaluations: len(j.trials),
		CumBudget:   j.cumBudget,
		CumTime:     j.cumTime,
		BestScore:   j.best,
	}
	return pt, newRound, promoted
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Cancel asks the job to stop after its in-flight evaluations, recording
// the user_cancel reason. Safe to call in any state; cancelling a
// finished job is a no-op.
func (j *Job) Cancel() {
	j.cancelWith(ReasonUserCancel)
}

// cancelWith records why the job is being stopped (first reason wins)
// and fires the context cancellation. The cancel func is read under the
// job lock because launch installs it after the job is visible in the
// table; launch re-checks the reason so a cancel landing in that window
// still takes effect.
func (j *Job) cancelWith(reason Reason) {
	j.mu.Lock()
	if j.reason == "" && !terminalStatus(j.status) {
		j.reason = reason
	}
	cancel := j.cancel
	j.mu.Unlock()
	cancel()
}

// tenant returns the job's (defaulted) tenant.
func (j *Job) tenant() string {
	if j.Spec.Tenant == "" {
		return DefaultTenant
	}
	return j.Spec.Tenant
}

// ckTrial is one checkpointed trial: everything the curve, snapshot and
// incumbent recurrence need. The configuration itself is omitted — the
// resume re-derives it deterministically from the spec seed, and the
// replayed observations are skipped rather than compared.
type ckTrial struct {
	Budget     int       `json:"budget"`
	Round      int       `json:"round"`
	Score      float64   `json:"score"`
	FoldScores []float64 `json:"fold_scores,omitempty"`
	Gamma      float64   `json:"gamma,omitempty"`
	ElapsedNS  int64     `json:"elapsed_ns"`
}

// checkpointState is the journal's preempt-record payload: the trial
// prefix completed before the slot was reclaimed, plus the preemption
// count so a restart keeps honoring the per-job cap.
type checkpointState struct {
	Preempts int       `json:"preempts"`
	Trials   []ckTrial `json:"trials"`
}

// checkpointLocked snapshots the job's completed trials for the
// journal. Called with j.mu held.
func (j *Job) checkpointLocked() checkpointState {
	ck := checkpointState{Preempts: j.preempts, Trials: make([]ckTrial, len(j.trials))}
	for i, tr := range j.trials {
		ck.Trials[i] = ckTrial{
			Budget:     tr.Budget,
			Round:      tr.Round,
			Score:      tr.Score,
			FoldScores: append([]float64(nil), tr.FoldScores...),
			Gamma:      tr.Gamma,
			ElapsedNS:  int64(tr.Elapsed),
		}
	}
	return ck
}

// restoreCheckpoint seeds a replayed job from a journaled checkpoint:
// the trial prefix is re-recorded through the same incumbent recurrence
// the live path uses (so the curve is bit-identical to what the dead
// process had), and the replay-skip counter arms the observer to let
// the optimizer regenerate that prefix without double-recording it.
func (j *Job) restoreCheckpoint(raw json.RawMessage) error {
	var ck checkpointState
	if err := json.Unmarshal(raw, &ck); err != nil {
		return fmt.Errorf("serve: decoding checkpoint: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, t := range ck.Trials {
		j.recordTrialLocked(hpo.Trial{
			Budget:     t.Budget,
			Round:      t.Round,
			Score:      t.Score,
			FoldScores: t.FoldScores,
			Gamma:      t.Gamma,
			Elapsed:    time.Duration(t.ElapsedNS),
		})
	}
	j.preempts = ck.Preempts
	j.checkpointLen = len(j.trials)
	return nil
}

// recordEvalFailure counts one definitive evaluation failure against the
// job's failure budget, keeping the most recent stack for the job
// record. It returns the new failure count and whether the failure is
// absorbed (budget not yet exhausted) — if not, the caller surfaces the
// error and the job fails.
func (j *Job) recordEvalFailure(stack string, budget int) (failures int, absorbed bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.failures++
	if stack != "" {
		j.stack = stack
	}
	return j.failures, j.failures <= budget
}

// Snapshot is a point-in-time JSON view of a job, served by GET
// /jobs/{id}. Curve uses the trace package's shared serialization.
type Snapshot struct {
	ID     string  `json:"id"`
	Status Status  `json:"status"`
	Spec   JobSpec `json:"spec"`
	// Tenant is the job's (defaulted) accounting tenant, surfaced at the
	// top level so listings and the coordinator's merged job view can
	// filter without digging into the spec.
	Tenant string `json:"tenant"`
	// Preemptions counts the rung-boundary slot yields this job has
	// absorbed; each one checkpointed its trials and re-queued the rest.
	Preemptions int `json:"preemptions,omitempty"`
	// Reason qualifies a cancelled status: user_cancel, timeout,
	// shutdown or interrupted.
	Reason Reason `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
	// Stack is the captured stack of the most recent evaluation panic,
	// kept in the job record for post-mortems.
	Stack       string         `json:"stack,omitempty"`
	Failures    int            `json:"failures,omitempty"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Evaluations int            `json:"evaluations"`
	Curve       []trace.Point  `json:"curve"`
	Sparkline   string         `json:"sparkline,omitempty"`
	BestConfig  map[string]any `json:"best_config,omitempty"`
	BestScore   *float64       `json:"best_score,omitempty"`
	TestScore   *float64       `json:"test_score,omitempty"`
	// LastSeq is the job's highest published event sequence number —
	// the resume point for /jobs/{id}/events (Last-Event-ID) and the
	// ?since=N incremental poll.
	LastSeq uint64 `json:"last_seq,omitempty"`
}

// FinishedAtOr returns the snapshot's finish time, or fallback when the
// job has not finished.
func (s Snapshot) FinishedAtOr(fallback time.Time) time.Time {
	if s.FinishedAt != nil {
		return *s.FinishedAt
	}
	return fallback
}

// Snapshot renders the job's current state, including the live anytime
// curve of a run still in flight.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := Snapshot{
		ID:          j.ID,
		Status:      j.status,
		Spec:        j.Spec,
		Tenant:      j.tenant(),
		Preemptions: j.preempts,
		Reason:      j.reason,
		Error:       j.errMsg,
		Stack:       j.stack,
		Failures:    j.failures,
		SubmittedAt: j.submitted,
		Evaluations: len(j.trials),
		Curve:       trace.Anytime(j.trials),
	}
	if !j.started.IsZero() {
		t := j.started
		snap.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		snap.FinishedAt = &t
	}
	if j.result != nil {
		if sp := j.result.Best.Space(); sp != nil {
			cfg := map[string]any{}
			for _, dim := range sp.Dims {
				cfg[dim.Name] = j.result.Best.Value(dim.Name)
			}
			snap.BestConfig = cfg
		}
		score := j.result.BestScore
		snap.BestScore = &score
	}
	if j.hasTest {
		ts := j.testScore
		snap.TestScore = &ts
	}
	if j.restored != nil {
		// Journal-recovered job: serve the persisted terminal view.
		snap.Evaluations = j.restored.evaluations
		snap.Curve = j.restored.curve
		snap.BestConfig = j.restored.bestConfig
		snap.BestScore = j.restored.bestScore
		snap.TestScore = j.restored.testScore
	}
	snap.Sparkline = trace.Sparkline(snap.Curve, 40)
	return snap
}

// Package serve is the HPO job service behind cmd/bhpod: a long-running
// manager that accepts job submissions over HTTP, schedules their
// evaluations on one shared bounded worker pool, memoizes fold scores in
// per-dataset evaluation caches, streams live anytime curves from runs in
// flight, and cancels jobs on request. It turns the blocking library calls
// of internal/hpo into an observable, multi-tenant service.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// Pool is a bounded slot pool shared by every job's evaluations. Each
// optimizer may spin up its own worker goroutines, but an evaluation only
// proceeds while holding a slot, so total concurrent training across all
// jobs never exceeds the pool size — the service's one global knob for CPU
// pressure.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool with the given number of slots (minimum 1).
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{slots: make(chan struct{}, size)}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case. When both are ready at once the select may
// win the slot anyway; the re-check below gives the cancellation
// priority and hands the slot straight back, so Acquire never returns an
// error while holding a slot and never returns nil for a context that
// was already done — the caller's "on error, don't Release" contract
// cannot leak a slot.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		<-p.slots
		return err
	}
	return nil
}

// Release frees a slot acquired with Acquire.
func (p *Pool) Release() {
	<-p.slots
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return cap(p.slots) }

// InUse returns the number of slots currently held. It reads the slot
// channel's occupancy directly, so — unlike the separate counter it
// replaced, which was incremented after the channel send and so
// under-reported momentarily during Acquire/Release races — it is
// always consistent with what the pool will actually admit. The
// per-tenant pool_inflight gauge (sched.EvalStarted/EvalFinished) is
// maintained by the pooled evaluator while the slot is held.
func (p *Pool) InUse() int { return len(p.slots) }

// panicError is an evaluation panic converted to an error by the
// pooled evaluator's recover armor, with the goroutine stack captured at
// the panic site.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("evaluation panicked: %v", e.value)
}

// errEvalDeadline marks an evaluation abandoned by the per-evaluation
// watchdog: the trial's goroutine may still be running, but its slot is
// released and its result, if one ever comes, is discarded.
var errEvalDeadline = errors.New("serve: evaluation exceeded deadline")

// pooledEvaluator gates a job's evaluations through the shared pool,
// counts them for the service metrics, and isolates the daemon from
// misbehaving evaluations: panics are recovered into errors, transient
// failures are retried with a jittered backoff, a wedged evaluation is
// abandoned at the deadline so it cannot hold its slot forever, and
// definitive failures are charged against the job's failure budget —
// within budget the trial scores worst-case and the run continues; past
// it the error surfaces and only that job fails. It carries the job's
// context so a cancelled job stops waiting for slots immediately.
type pooledEvaluator struct {
	inner      hpo.Evaluator
	pool       *Pool
	ctx        context.Context
	onEval     func()
	onFailure  func()
	onDeadline func(budget int)
	onRetry    func(attempt int, err error)
	onCharge   func(failures int, absorbed bool)
	onLatency  func(time.Duration)
	// onSlotAcquired/onSlotReleased bracket slot ownership exactly: the
	// scheduler's per-tenant inflight gauge is incremented only after the
	// slot is actually held and decremented before it is returned, so the
	// gauge can never under- or over-report relative to pool occupancy.
	onSlotAcquired func()
	onSlotReleased func()
	job            *Job
	attempts       int
	backoff        time.Duration
	failureBudget  int
	evalTimeout    time.Duration
}

func (e *pooledEvaluator) FullBudget() int { return e.inner.FullBudget() }

func (e *pooledEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if err := e.pool.Acquire(e.ctx); err != nil {
		return nil, err
	}
	if e.onSlotAcquired != nil {
		e.onSlotAcquired()
	}
	defer func() {
		if e.onSlotReleased != nil {
			e.onSlotReleased()
		}
		e.pool.Release()
	}()
	attempts := e.attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if e.onRetry != nil {
				e.onRetry(attempt, lastErr)
			}
			if err := e.sleepBackoff(attempt); err != nil {
				return nil, err
			}
		}
		// Retrying with the same RNG is sound: evaluators derive their
		// streams via Split, which never advances r.
		start := time.Now()
		scores, err := e.evalOnce(cfg, budget, r)
		if err == nil {
			if e.onLatency != nil {
				e.onLatency(time.Since(start))
			}
			if e.onEval != nil {
				e.onEval()
			}
			return scores, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
		if errors.Is(err, errEvalDeadline) {
			// A wedged evaluation wedges again on retry (and each retry
			// would abandon another goroutine): a deadline exceedance is
			// definitive immediately.
			break
		}
	}
	if e.onFailure != nil {
		e.onFailure()
	}
	var stack string
	var pe *panicError
	if errors.As(lastErr, &pe) {
		stack = string(pe.stack)
	}
	if e.job != nil {
		failures, absorbed := e.job.recordEvalFailure(stack, e.failureBudget)
		if e.onCharge != nil {
			e.onCharge(failures, absorbed)
		}
		if absorbed {
			// Absorbed: this trial alone fails, scoring worst-case so the
			// optimizer ranks the configuration last and moves on.
			return []float64{0}, nil
		}
	}
	return nil, fmt.Errorf("serve: evaluation failed after %d attempts: %w", attempts, lastErr)
}

// evalOnce runs one attempt. Without a deadline it calls straight
// through; with one it runs the attempt in a watchdogged goroutine and
// abandons it — slot released by the caller, result discarded via the
// buffered channel — once the deadline or the job's context fires. The
// abandoned goroutine only touches concurrency-safe state (the
// evaluation cache, and an RNG it reads via non-advancing Splits), so it
// can finish (or sleep) harmlessly in the background.
func (e *pooledEvaluator) evalOnce(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if e.evalTimeout <= 0 {
		return e.evalDirect(cfg, budget, r)
	}
	type outcome struct {
		scores []float64
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		scores, err := e.evalDirect(cfg, budget, r)
		ch <- outcome{scores, err}
	}()
	t := time.NewTimer(e.evalTimeout)
	defer t.Stop()
	select {
	case out := <-ch:
		return out.scores, out.err
	case <-t.C:
		if e.onDeadline != nil {
			e.onDeadline(budget)
		}
		return nil, fmt.Errorf("%w (%s)", errEvalDeadline, e.evalTimeout)
	case <-e.ctx.Done():
		return nil, e.ctx.Err()
	}
}

// evalDirect runs one attempt with recover armor, turning a panicking
// evaluation into an error instead of killing the daemon.
func (e *pooledEvaluator) evalDirect(cfg search.Config, budget int, r *rng.RNG) (scores []float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &panicError{value: v, stack: debug.Stack()}
		}
	}()
	return e.inner.Evaluate(cfg, budget, r)
}

// sleepBackoff waits the jittered, exponentially grown backoff for the
// given retry attempt, aborting early when the job is cancelled.
func (e *pooledEvaluator) sleepBackoff(attempt int) error {
	d := e.backoff << (attempt - 1)
	if d <= 0 {
		return e.ctx.Err()
	}
	// Jitter into [d/2, d) so synchronized failures across workers do
	// not retry in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-e.ctx.Done():
		return e.ctx.Err()
	}
}

// Package serve is the HPO job service behind cmd/bhpod: a long-running
// manager that accepts job submissions over HTTP, schedules their
// evaluations on one shared bounded worker pool, memoizes fold scores in
// per-dataset evaluation caches, streams live anytime curves from runs in
// flight, and cancels jobs on request. It turns the blocking library calls
// of internal/hpo into an observable, multi-tenant service.
package serve

import (
	"context"
	"sync/atomic"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// Pool is a bounded slot pool shared by every job's evaluations. Each
// optimizer may spin up its own worker goroutines, but an evaluation only
// proceeds while holding a slot, so total concurrent training across all
// jobs never exceeds the pool size — the service's one global knob for CPU
// pressure.
type Pool struct {
	slots chan struct{}
	inUse atomic.Int64
}

// NewPool returns a pool with the given number of slots (minimum 1).
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{slots: make(chan struct{}, size)}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		p.inUse.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (p *Pool) Release() {
	p.inUse.Add(-1)
	<-p.slots
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return cap(p.slots) }

// InUse returns the number of slots currently held.
func (p *Pool) InUse() int { return int(p.inUse.Load()) }

// pooledEvaluator gates a job's evaluations through the shared pool and
// counts them for the service metrics. It carries the job's context so a
// cancelled job stops waiting for slots immediately.
type pooledEvaluator struct {
	inner  hpo.Evaluator
	pool   *Pool
	ctx    context.Context
	onEval func()
}

func (e *pooledEvaluator) FullBudget() int { return e.inner.FullBudget() }

func (e *pooledEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if err := e.pool.Acquire(e.ctx); err != nil {
		return nil, err
	}
	defer e.pool.Release()
	scores, err := e.inner.Evaluate(cfg, budget, r)
	if err == nil && e.onEval != nil {
		e.onEval()
	}
	return scores, err
}

// Package shipper replicates a bhpod data directory — journal segments,
// compacted bases and per-job trace files — to a sink, so a *replacement*
// node (not just a restarted process) can rebuild a dead machine's job
// table with journal.Replay and serve its traces byte-identically.
//
// The unit of shipping is one file, addressed by its path relative to the
// data directory ("journal-000003.jsonl", "traces/job-7.trace.jsonl").
// Files move in two phases matching how the journal and trace store write
// them:
//
//   - a *changed* file (the active journal segment, a live job's trace)
//     ships incrementally: the shipper reads the local bytes past the
//     sink's resumable offset and appends them. A file that shrank
//     locally (trace compaction rewrote it) restarts at offset zero.
//   - a *sealed* file (a rotated segment, a new base, a terminal trace)
//     ships its remaining tail and is then sealed at the sink with its
//     size and SHA-256, which records it in the sink's checksummed
//     manifest. Sealed content is what Restore verifies.
//
// Shipping is asynchronous by default (a background loop drains the dirty
// set on an interval, retrying failures with capped backoff); with
// Options.Sync each hook ships inline before returning, so an
// acknowledged job submission is already at the sink when the HTTP 202
// goes out — the synchronous-replication mode the failover harness runs,
// where a kill -9 must lose zero accepted jobs.
package shipper

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Named failure modes surfaced by sinks and Restore.
var (
	// ErrChecksumMismatch marks shipped content that does not hash to its
	// manifest (or seal-time) checksum. The offending file is quarantined
	// (renamed with a .quarantine suffix), never silently used.
	ErrChecksumMismatch = errors.New("shipper: checksum mismatch")
	// ErrOffsetMismatch marks an append at the wrong resume offset — the
	// shipper re-queries the sink offset and reships.
	ErrOffsetMismatch = errors.New("shipper: offset mismatch")
)

// Sink is one destination for shipped files. Implementations: DirSink
// (local directory, also the storage behind the peer-push Receiver) and
// HTTPSink (push to a peer node's /ship/ receiver).
type Sink interface {
	// Offset reports how many bytes of name the sink already holds — the
	// resume point after a shipper or sink crash.
	Offset(name string) (int64, error)
	// Append writes data at offset off. off zero (re)starts the file from
	// scratch; any other off must equal the sink's current offset, else
	// ErrOffsetMismatch.
	Append(name string, off int64, data []byte) error
	// Seal finalizes name at the given size and SHA-256 hex digest,
	// verifying the held bytes and recording the file in the manifest. A
	// digest mismatch quarantines the held bytes and returns
	// ErrChecksumMismatch; an incomplete file returns ErrOffsetMismatch.
	Seal(name string, size int64, sum string) error
}

// Options tunes a Shipper.
type Options struct {
	// Interval paces the background ship loop. 0 selects 250ms.
	Interval time.Duration
	// MaxBackoff caps the retry backoff after consecutive ship failures.
	// 0 selects 5s.
	MaxBackoff time.Duration
	// Sync ships inline from each Changed/Sealed hook before it returns
	// (synchronous replication); failures fall back to the background
	// retry loop, so durability degrades to async rather than failing the
	// write path.
	Sync bool
	// OnError receives background ship errors (best-effort; the dirty
	// file stays queued and is retried).
	OnError func(error)
}

// Stats is the shipper's counter snapshot, feeding the node's /metrics.
type Stats struct {
	// SegmentsShipped counts successfully sealed files (journal segments,
	// bases and terminal traces).
	SegmentsShipped int64
	// Retries counts ship attempts that failed and were requeued.
	Retries int64
	// Bytes counts payload bytes appended to the sink.
	Bytes int64
}

// fileState tracks one file's shipping progress.
type fileState struct {
	mu     sync.Mutex
	offset int64 // bytes known to be at the sink; -1 = unknown, query
	sealed bool  // a seal is owed once the bytes are shipped
	done   bool  // sealed at the sink; nothing more to do unless it changes
}

// Shipper watches a data directory and pushes its files to a sink.
type Shipper struct {
	root string
	sink Sink
	opts Options

	segmentsShipped atomic.Int64
	retries         atomic.Int64
	bytes           atomic.Int64

	mu     sync.Mutex
	files  map[string]*fileState
	dirty  map[string]struct{}
	closed bool

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// New returns a shipper replicating root into sink and starts its
// background loop. Close it to flush and stop.
func New(root string, sink Sink, opts Options) *Shipper {
	if opts.Interval <= 0 {
		opts.Interval = 250 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	s := &Shipper{
		root:  root,
		sink:  sink,
		opts:  opts,
		files: map[string]*fileState{},
		dirty: map[string]struct{}{},
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Stats snapshots the ship counters.
func (s *Shipper) Stats() Stats {
	return Stats{
		SegmentsShipped: s.segmentsShipped.Load(),
		Retries:         s.retries.Load(),
		Bytes:           s.bytes.Load(),
	}
}

// state returns (creating if needed) the file's tracking state.
func (s *Shipper) state(rel string) *fileState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.files[rel]
	if !ok {
		st = &fileState{offset: -1}
		s.files[rel] = st
	}
	return st
}

// markDirty queues the file for the background loop.
func (s *Shipper) markDirty(rel string) {
	s.mu.Lock()
	if !s.closed {
		s.dirty[rel] = struct{}{}
	}
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Changed notes that rel (relative to the data dir, slash-separated) grew
// or was rewritten. With Options.Sync the delta ships before Changed
// returns; otherwise the background loop picks it up.
func (s *Shipper) Changed(rel string) {
	st := s.state(rel)
	st.mu.Lock()
	st.done = false
	st.mu.Unlock()
	if s.opts.Sync {
		if err := s.shipFile(rel); err == nil {
			return
		}
	}
	s.markDirty(rel)
}

// Sealed notes that rel reached its final content (a rotated journal
// segment, a freshly folded base, a terminal trace): the remaining tail
// ships and the file is sealed into the sink's checksummed manifest.
func (s *Shipper) Sealed(rel string) {
	st := s.state(rel)
	st.mu.Lock()
	st.sealed = true
	st.done = false
	st.mu.Unlock()
	if s.opts.Sync {
		if err := s.shipFile(rel); err == nil {
			return
		}
	}
	s.markDirty(rel)
}

// SnapshotRoot marks every journal and trace file currently in the data
// directory for shipping — the startup sync after a restart (or the first
// run against an already-populated directory). Journal files other than
// the active segment, and bases, are final and marked sealed; the active
// segment and the trace files ship incrementally.
func (s *Shipper) SnapshotRoot(activeSegment string) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		isSeg := strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".jsonl")
		isBase := strings.HasPrefix(name, "base-") && strings.HasSuffix(name, ".jsonl")
		if !isSeg && !isBase {
			continue
		}
		if name == activeSegment {
			s.Changed(name)
		} else {
			s.Sealed(name)
		}
	}
	traces, err := os.ReadDir(filepath.Join(s.root, "traces"))
	if err != nil {
		return
	}
	for _, e := range traces {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".trace.jsonl") {
			s.Changed("traces/" + e.Name())
		}
	}
}

// shipFile pushes one file's outstanding bytes (and owed seal) to the
// sink. Per-file serialization via the file state lock; safe to call
// concurrently with hooks for the same file.
func (s *Shipper) shipFile(rel string) error {
	st := s.state(rel)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return nil
	}
	path := filepath.Join(s.root, filepath.FromSlash(rel))
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		// Folded away (the journal deletes segments once a newer base
		// carries their data) — nothing left to ship; the base ships in
		// its own right.
		st.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("shipper: %s: %w", rel, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("shipper: %s: %w", rel, err)
	}
	size := info.Size()
	if st.offset < 0 {
		off, err := s.sink.Offset(rel)
		if err != nil {
			return fmt.Errorf("shipper: %s: offset: %w", rel, err)
		}
		st.offset = off
	}
	if size < st.offset {
		// The file was rewritten smaller (trace compaction): restart it.
		st.offset = 0
	}
	if size == 0 && st.sealed && st.offset == 0 {
		// An empty sealed file (a base folded from zero jobs) never gets
		// an append, but it still has to exist at the sink to seal.
		if err := s.sink.Append(rel, 0, nil); err != nil {
			return fmt.Errorf("shipper: %s: %w", rel, err)
		}
	}
	if size > st.offset {
		if err := s.shipRange(f, rel, st, size); err != nil {
			if !errors.Is(err, ErrOffsetMismatch) {
				return err
			}
			// The sink's idea of the offset moved (sink restarted, another
			// writer generation): re-query once and reship.
			off, oerr := s.sink.Offset(rel)
			if oerr != nil {
				return fmt.Errorf("shipper: %s: offset: %w", rel, oerr)
			}
			st.offset = off
			if off > size {
				st.offset = 0
			}
			if err := s.shipRange(f, rel, st, size); err != nil {
				return err
			}
		}
	}
	if st.sealed {
		sum, n, err := hashFile(f)
		if err != nil {
			return fmt.Errorf("shipper: %s: %w", rel, err)
		}
		if n != size {
			// Grew between stat and hash (should not happen for sealed
			// files); ship the rest next round.
			return fmt.Errorf("shipper: %s: grew while sealing", rel)
		}
		if err := s.sink.Seal(rel, size, sum); err != nil {
			// Whatever the sink holds is not what we think it holds (short
			// part, quarantined content): forget the cached offset so the
			// retry re-queries and reships from the sink's truth.
			st.offset = -1
			return fmt.Errorf("shipper: sealing %s: %w", rel, err)
		}
		s.segmentsShipped.Add(1)
		st.done = true
	}
	return nil
}

// shipRange appends f's bytes in [st.offset, size) to the sink. An
// offset-zero append truncates at the sink, so a restarted file ships its
// whole current content in one shot.
func (s *Shipper) shipRange(f *os.File, rel string, st *fileState, size int64) error {
	off := st.offset
	data := make([]byte, size-off)
	if _, err := f.ReadAt(data, off); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("shipper: reading %s: %w", rel, err)
	}
	if err := s.sink.Append(rel, off, data); err != nil {
		return err
	}
	st.offset = size
	s.bytes.Add(int64(len(data)))
	return nil
}

// hashFile returns the SHA-256 hex digest and length of f's full content.
func hashFile(f *os.File) (string, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", 0, err
	}
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// loop drains the dirty set on the interval, with capped backoff while
// the sink is failing.
func (s *Shipper) loop() {
	defer s.wg.Done()
	backoff := s.opts.Interval
	timer := time.NewTimer(s.opts.Interval)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-timer.C:
		}
		if s.drainDirty() {
			backoff = s.opts.Interval
		} else {
			s.retries.Add(1)
			backoff *= 2
			if backoff > s.opts.MaxBackoff {
				backoff = s.opts.MaxBackoff
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(backoff)
	}
}

// drainDirty ships every queued file once, reporting whether the pass was
// clean. Failed files stay queued.
func (s *Shipper) drainDirty() bool {
	s.mu.Lock()
	rels := make([]string, 0, len(s.dirty))
	for rel := range s.dirty {
		rels = append(rels, rel)
	}
	s.mu.Unlock()
	sort.Strings(rels) // deterministic order: segments before traces
	clean := true
	for _, rel := range rels {
		if err := s.shipFile(rel); err != nil {
			clean = false
			if s.opts.OnError != nil {
				s.opts.OnError(err)
			}
			continue
		}
		s.mu.Lock()
		delete(s.dirty, rel)
		s.mu.Unlock()
	}
	return clean
}

// Flush ships everything queued right now, returning the first error.
// Used by tests and Close; the background loop keeps retrying failures.
func (s *Shipper) Flush() error {
	s.mu.Lock()
	rels := make([]string, 0, len(s.dirty))
	for rel := range s.dirty {
		rels = append(rels, rel)
	}
	s.mu.Unlock()
	sort.Strings(rels)
	var first error
	for _, rel := range rels {
		if err := s.shipFile(rel); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		s.mu.Lock()
		delete(s.dirty, rel)
		s.mu.Unlock()
	}
	return first
}

// Close stops the background loop after a final best-effort flush.
// Idempotent.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.Flush()
	close(s.stop)
	s.wg.Wait()
	return err
}

// Package shipper replicates a bhpod data directory — journal segments,
// compacted bases and per-job trace files — to one or more sinks, so a
// *replacement* node (not just a restarted process) can rebuild a dead
// machine's job table with journal.Replay and serve its traces
// byte-identically.
//
// The unit of shipping is one file, addressed by its path relative to the
// data directory ("journal-000003.jsonl", "traces/job-7.trace.jsonl").
// Files move in two phases matching how the journal and trace store write
// them:
//
//   - a *changed* file (the active journal segment, a live job's trace)
//     ships incrementally: the shipper reads the local bytes past the
//     sink's resumable offset and appends them. A file that shrank
//     locally (trace compaction rewrote it) restarts at offset zero.
//   - a *sealed* file (a rotated segment, a new base, a terminal trace)
//     ships its remaining tail and is then sealed at the sink with its
//     size and SHA-256, which records it in the sink's checksummed
//     manifest. Sealed content is what Restore verifies.
//
// With several sinks (bhpod -ship-to repeated) the shipper replicates
// N-way: every sink runs its own *lane* — an independent resumable
// offset per file, its own dirty set, its own retry loop with capped
// backoff — so one sink being down never stalls the others, and the
// lagging sink catches up from its own offsets when it returns. Restore
// picks the first replica whose manifest verifies, falling back across
// sinks on checksum mismatch (RestoreAny).
//
// Shipping is asynchronous by default (each lane's background loop
// drains its dirty set on an interval, retrying failures with capped
// backoff); with Options.Sync each hook ships inline to every sink
// before returning, so an acknowledged job submission is already at the
// sinks when the HTTP 202 goes out — the synchronous-replication mode
// the failover harness runs, where a kill -9 must lose zero accepted
// jobs. A sync-mode sink failure degrades that sink to async retry
// rather than failing the write path.
package shipper

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Named failure modes surfaced by sinks and Restore.
var (
	// ErrChecksumMismatch marks shipped content that does not hash to its
	// manifest (or seal-time) checksum. The offending file is quarantined
	// (renamed with a .quarantine suffix), never silently used.
	ErrChecksumMismatch = errors.New("shipper: checksum mismatch")
	// ErrOffsetMismatch marks an append at the wrong resume offset — the
	// shipper re-queries the sink offset and reships.
	ErrOffsetMismatch = errors.New("shipper: offset mismatch")
)

// Sink is one destination for shipped files. Implementations: DirSink
// (local directory, also the storage behind the peer-push Receiver) and
// HTTPSink (push to a peer node's /ship/ receiver).
type Sink interface {
	// Offset reports how many bytes of name the sink already holds — the
	// resume point after a shipper or sink crash.
	Offset(name string) (int64, error)
	// Append writes data at offset off. off zero (re)starts the file from
	// scratch; any other off must equal the sink's current offset, else
	// ErrOffsetMismatch.
	Append(name string, off int64, data []byte) error
	// Seal finalizes name at the given size and SHA-256 hex digest,
	// verifying the held bytes and recording the file in the manifest. A
	// digest mismatch quarantines the held bytes and returns
	// ErrChecksumMismatch; an incomplete file returns ErrOffsetMismatch.
	Seal(name string, size int64, sum string) error
}

// Options tunes a Shipper.
type Options struct {
	// Interval paces each lane's background ship loop. 0 selects 250ms.
	Interval time.Duration
	// MaxBackoff caps a lane's retry backoff after consecutive ship
	// failures. 0 selects 5s.
	MaxBackoff time.Duration
	// Sync ships inline from each Changed/Sealed hook before it returns
	// (synchronous replication) to every sink; a sink that fails falls
	// back to its lane's background retry loop, so durability degrades to
	// async on that sink rather than failing the write path.
	Sync bool
	// OnError receives background ship errors (best-effort; the dirty
	// file stays queued in its lane and is retried).
	OnError func(error)
}

// Stats is a shipping counter snapshot, feeding the node's /metrics.
// For a multi-sink shipper the top-level Stats sums every lane; PerSink
// carries the per-sink breakdown.
type Stats struct {
	// SegmentsShipped counts successfully sealed files (journal segments,
	// bases and terminal traces). With N sinks one local seal counts N
	// times — it is a count of sink-seal operations, not of local files.
	SegmentsShipped int64
	// Retries counts ship attempts that failed and were requeued.
	Retries int64
	// Bytes counts payload bytes appended to sinks.
	Bytes int64
}

// fileState tracks one file's shipping progress on one lane.
type fileState struct {
	mu     sync.Mutex
	offset int64 // bytes known to be at the sink; -1 = unknown, query
	sealed bool  // a seal is owed once the bytes are shipped
	done   bool  // sealed at the sink; nothing more to do unless it changes
}

// lane is one sink's independent replication state: its own per-file
// offsets, dirty set and retry loop. Lanes never share failure state —
// sink A being down is invisible to sink B.
type lane struct {
	root string
	sink Sink
	opts Options

	segmentsShipped atomic.Int64
	retries         atomic.Int64
	bytes           atomic.Int64

	mu     sync.Mutex
	files  map[string]*fileState
	dirty  map[string]struct{}
	closed bool

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// Shipper watches a data directory and pushes its files to every sink,
// one independent lane per sink.
type Shipper struct {
	root  string
	opts  Options
	lanes []*lane
}

// New returns a shipper replicating root into one sink and starts its
// background loop. Close it to flush and stop.
func New(root string, sink Sink, opts Options) *Shipper {
	return NewMulti(root, []Sink{sink}, opts)
}

// NewMulti returns a shipper replicating root into every sink — N-way
// replication with one independent lane (offsets, dirty set, retry
// backoff) per sink — and starts the lanes' background loops.
func NewMulti(root string, sinks []Sink, opts Options) *Shipper {
	if opts.Interval <= 0 {
		opts.Interval = 250 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	s := &Shipper{root: root, opts: opts}
	for _, sink := range sinks {
		ln := &lane{
			root:  root,
			sink:  sink,
			opts:  opts,
			files: map[string]*fileState{},
			dirty: map[string]struct{}{},
			kick:  make(chan struct{}, 1),
			stop:  make(chan struct{}),
		}
		ln.wg.Add(1)
		go ln.loop()
		s.lanes = append(s.lanes, ln)
	}
	return s
}

// Sinks reports the replication factor.
func (s *Shipper) Sinks() int { return len(s.lanes) }

// Stats snapshots the ship counters summed across every lane.
func (s *Shipper) Stats() Stats {
	var out Stats
	for _, ln := range s.lanes {
		out.SegmentsShipped += ln.segmentsShipped.Load()
		out.Retries += ln.retries.Load()
		out.Bytes += ln.bytes.Load()
	}
	return out
}

// PerSink snapshots each lane's counters in sink order.
func (s *Shipper) PerSink() []Stats {
	out := make([]Stats, len(s.lanes))
	for i, ln := range s.lanes {
		out[i] = Stats{
			SegmentsShipped: ln.segmentsShipped.Load(),
			Retries:         ln.retries.Load(),
			Bytes:           ln.bytes.Load(),
		}
	}
	return out
}

// Changed notes that rel (relative to the data dir, slash-separated) grew
// or was rewritten. With Options.Sync the delta ships to every sink
// before Changed returns; a failing sink degrades to its lane's
// background retry.
func (s *Shipper) Changed(rel string) {
	for _, ln := range s.lanes {
		ln.changed(rel)
	}
}

// Sealed notes that rel reached its final content (a rotated journal
// segment, a freshly folded base, a terminal trace): the remaining tail
// ships and the file is sealed into each sink's checksummed manifest.
func (s *Shipper) Sealed(rel string) {
	for _, ln := range s.lanes {
		ln.sealed(rel)
	}
}

// SnapshotRoot marks every journal and trace file currently in the data
// directory for shipping — the startup sync after a restart (or the first
// run against an already-populated directory). Journal files other than
// the active segment, and bases, are final and marked sealed; the active
// segment and the trace files ship incrementally.
func (s *Shipper) SnapshotRoot(activeSegment string) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		isSeg := strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".jsonl")
		isBase := strings.HasPrefix(name, "base-") && strings.HasSuffix(name, ".jsonl")
		if !isSeg && !isBase {
			continue
		}
		if name == activeSegment {
			s.Changed(name)
		} else {
			s.Sealed(name)
		}
	}
	traces, err := os.ReadDir(filepath.Join(s.root, "traces"))
	if err != nil {
		return
	}
	for _, e := range traces {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".trace.jsonl") {
			s.Changed("traces/" + e.Name())
		}
	}
}

// Flush ships everything queued right now on every lane, returning the
// first error. Used by tests and Close; the background loops keep
// retrying failures.
func (s *Shipper) Flush() error {
	var first error
	for _, ln := range s.lanes {
		if err := ln.flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops every lane's background loop after a final best-effort
// flush. Idempotent.
func (s *Shipper) Close() error {
	var first error
	for _, ln := range s.lanes {
		if err := ln.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// state returns (creating if needed) the lane's tracking state for rel.
func (ln *lane) state(rel string) *fileState {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	st, ok := ln.files[rel]
	if !ok {
		st = &fileState{offset: -1}
		ln.files[rel] = st
	}
	return st
}

// markDirty queues the file for the lane's background loop.
func (ln *lane) markDirty(rel string) {
	ln.mu.Lock()
	if !ln.closed {
		ln.dirty[rel] = struct{}{}
	}
	ln.mu.Unlock()
	select {
	case ln.kick <- struct{}{}:
	default:
	}
}

// changed implements Shipper.Changed for one lane.
func (ln *lane) changed(rel string) {
	st := ln.state(rel)
	st.mu.Lock()
	st.done = false
	st.mu.Unlock()
	if ln.opts.Sync {
		if err := ln.shipFile(rel); err == nil {
			return
		}
	}
	ln.markDirty(rel)
}

// sealed implements Shipper.Sealed for one lane.
func (ln *lane) sealed(rel string) {
	st := ln.state(rel)
	st.mu.Lock()
	st.sealed = true
	st.done = false
	st.mu.Unlock()
	if ln.opts.Sync {
		if err := ln.shipFile(rel); err == nil {
			return
		}
	}
	ln.markDirty(rel)
}

// shipFile pushes one file's outstanding bytes (and owed seal) to the
// lane's sink. Per-file serialization via the file state lock; safe to
// call concurrently with hooks for the same file.
func (ln *lane) shipFile(rel string) error {
	st := ln.state(rel)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return nil
	}
	path := filepath.Join(ln.root, filepath.FromSlash(rel))
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		// Folded away (the journal deletes segments once a newer base
		// carries their data) — nothing left to ship; the base ships in
		// its own right.
		st.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("shipper: %s: %w", rel, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("shipper: %s: %w", rel, err)
	}
	size := info.Size()
	if st.offset < 0 {
		off, err := ln.sink.Offset(rel)
		if err != nil {
			return fmt.Errorf("shipper: %s: offset: %w", rel, err)
		}
		st.offset = off
	}
	if size < st.offset {
		// The file was rewritten smaller (trace compaction): restart it.
		st.offset = 0
	}
	if size == 0 && st.sealed && st.offset == 0 {
		// An empty sealed file (a base folded from zero jobs) never gets
		// an append, but it still has to exist at the sink to seal.
		if err := ln.sink.Append(rel, 0, nil); err != nil {
			return fmt.Errorf("shipper: %s: %w", rel, err)
		}
	}
	if size > st.offset {
		if err := ln.shipRange(f, rel, st, size); err != nil {
			if !errors.Is(err, ErrOffsetMismatch) {
				return err
			}
			// The sink's idea of the offset moved (sink restarted, another
			// writer generation): re-query once and reship.
			off, oerr := ln.sink.Offset(rel)
			if oerr != nil {
				return fmt.Errorf("shipper: %s: offset: %w", rel, oerr)
			}
			st.offset = off
			if off > size {
				st.offset = 0
			}
			if err := ln.shipRange(f, rel, st, size); err != nil {
				return err
			}
		}
	}
	if st.sealed {
		sum, n, err := hashFile(f)
		if err != nil {
			return fmt.Errorf("shipper: %s: %w", rel, err)
		}
		if n != size {
			// Grew between stat and hash (should not happen for sealed
			// files); ship the rest next round.
			return fmt.Errorf("shipper: %s: grew while sealing", rel)
		}
		if err := ln.sink.Seal(rel, size, sum); err != nil {
			// Whatever the sink holds is not what we think it holds (short
			// part, quarantined content): forget the cached offset so the
			// retry re-queries and reships from the sink's truth.
			st.offset = -1
			return fmt.Errorf("shipper: sealing %s: %w", rel, err)
		}
		ln.segmentsShipped.Add(1)
		st.done = true
	}
	return nil
}

// shipRange appends f's bytes in [st.offset, size) to the sink. An
// offset-zero append truncates at the sink, so a restarted file ships its
// whole current content in one shot.
func (ln *lane) shipRange(f *os.File, rel string, st *fileState, size int64) error {
	off := st.offset
	data := make([]byte, size-off)
	if _, err := f.ReadAt(data, off); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("shipper: reading %s: %w", rel, err)
	}
	if err := ln.sink.Append(rel, off, data); err != nil {
		return err
	}
	st.offset = size
	ln.bytes.Add(int64(len(data)))
	return nil
}

// hashFile returns the SHA-256 hex digest and length of f's full content.
func hashFile(f *os.File) (string, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", 0, err
	}
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// loop drains the lane's dirty set on the interval, with capped backoff
// while its sink is failing.
func (ln *lane) loop() {
	defer ln.wg.Done()
	backoff := ln.opts.Interval
	timer := time.NewTimer(ln.opts.Interval)
	defer timer.Stop()
	for {
		select {
		case <-ln.stop:
			return
		case <-ln.kick:
		case <-timer.C:
		}
		if ln.drainDirty() {
			backoff = ln.opts.Interval
		} else {
			ln.retries.Add(1)
			backoff *= 2
			if backoff > ln.opts.MaxBackoff {
				backoff = ln.opts.MaxBackoff
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(backoff)
	}
}

// drainDirty ships every queued file once, reporting whether the pass was
// clean. Failed files stay queued.
func (ln *lane) drainDirty() bool {
	ln.mu.Lock()
	rels := make([]string, 0, len(ln.dirty))
	for rel := range ln.dirty {
		rels = append(rels, rel)
	}
	ln.mu.Unlock()
	sort.Strings(rels) // deterministic order: segments before traces
	clean := true
	for _, rel := range rels {
		if err := ln.shipFile(rel); err != nil {
			clean = false
			if ln.opts.OnError != nil {
				ln.opts.OnError(err)
			}
			continue
		}
		ln.mu.Lock()
		delete(ln.dirty, rel)
		ln.mu.Unlock()
	}
	return clean
}

// flush ships everything queued right now, returning the first error.
func (ln *lane) flush() error {
	ln.mu.Lock()
	rels := make([]string, 0, len(ln.dirty))
	for rel := range ln.dirty {
		rels = append(rels, rel)
	}
	ln.mu.Unlock()
	sort.Strings(rels)
	var first error
	for _, rel := range rels {
		if err := ln.shipFile(rel); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		ln.mu.Lock()
		delete(ln.dirty, rel)
		ln.mu.Unlock()
	}
	return first
}

// close stops the lane's loop after a final best-effort flush. Idempotent.
func (ln *lane) close() error {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return nil
	}
	ln.closed = true
	ln.mu.Unlock()
	err := ln.flush()
	close(ln.stop)
	ln.wg.Wait()
	return err
}

package shipper

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Restore materializes a shipped replica as a bhpod data directory: every
// manifest-listed (sealed) file is checksum-verified and copied, and
// every in-progress .part file — the active journal segment and live
// trace tails, whose torn final line journal.Replay and the trace store
// already tolerate — is copied under its bare name. The result is a
// directory NewManagerFromJournal can open as if the dead node had merely
// been restarted.
//
// A sealed file whose bytes no longer match its manifest checksum is
// quarantined (renamed with a .quarantine suffix inside the replica) and
// Restore fails with an error matching ErrChecksumMismatch — a replica
// that lies about its journal must never be promoted silently.
func Restore(srcDir, destDir string) error {
	manifest, err := ReadManifest(srcDir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return fmt.Errorf("shipper: restore: %w", err)
	}
	// Sealed files first: verified whole, these are the trusted history.
	for name, entry := range manifest {
		src := filepath.Join(srcDir, filepath.FromSlash(name))
		sum, size, err := hashPath(src)
		if errors.Is(err, os.ErrNotExist) {
			// Sealed but gone: a later fold's base supersedes old journal
			// segments; nothing to restore under this name.
			continue
		}
		if err != nil {
			return fmt.Errorf("shipper: restore %s: %w", name, err)
		}
		if size != entry.Size || sum != entry.SHA256 {
			os.Rename(src, src+quarantineSuffix)
			return fmt.Errorf("shipper: restore %s: %w", name, ErrChecksumMismatch)
		}
		if err := copyFile(src, filepath.Join(destDir, filepath.FromSlash(name))); err != nil {
			return fmt.Errorf("shipper: restore %s: %w", name, err)
		}
	}
	// Then the in-progress tails. A part shadowing a sealed name is newer
	// (the file restarted after its seal) and wins.
	err = filepath.WalkDir(srcDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(srcDir, path)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		name, isPart := strings.CutSuffix(rel, partSuffix)
		if !isPart || strings.HasSuffix(rel, quarantineSuffix) {
			return nil
		}
		return copyFile(path, filepath.Join(destDir, filepath.FromSlash(name)))
	})
	if err != nil {
		return fmt.Errorf("shipper: restore: %w", err)
	}
	return nil
}

// VerifyReplica checks a shipped replica without touching it: the sink
// directory must exist, and every manifest-listed file still present must
// hash to its manifest checksum (a listed-but-missing file was superseded
// by a later base fold, same as in Restore). Unlike Restore it is
// read-only — nothing is quarantined — so the coordinator can probe
// candidate replicas before committing a restore. A corrupt file fails
// with an error matching ErrChecksumMismatch.
func VerifyReplica(dir string) error {
	if st, err := os.Stat(dir); err != nil {
		return fmt.Errorf("shipper: verify %s: %w", dir, err)
	} else if !st.IsDir() {
		return fmt.Errorf("shipper: verify %s: not a directory", dir)
	}
	manifest, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	// A replica that never sealed anything has no manifest to vouch for
	// it. Refusing it here keeps RestoreAny from preferring an empty sink
	// directory (say, one whose shipping never caught up) over a complete
	// replica later in the preference list.
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("shipper: verify %s: no manifest: %w", dir, err)
	}
	for name, entry := range manifest {
		sum, size, err := hashPath(filepath.Join(dir, filepath.FromSlash(name)))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("shipper: verify %s: %w", name, err)
		}
		if size != entry.Size || sum != entry.SHA256 {
			return fmt.Errorf("shipper: verify %s: %w", name, ErrChecksumMismatch)
		}
	}
	return nil
}

// RestoreAny restores the first replica in srcDirs that verifies and
// restores cleanly, returning the directory it used. Each attempt runs
// into a scratch directory that replaces destDir only on success, so a
// replica failing mid-restore (checksum mismatch discovered on copy)
// can never leave a half-restored data directory behind — the next
// replica starts clean. destDir must not already exist (an existing data
// directory is someone's journal; refusing beats silently replacing it).
func RestoreAny(srcDirs []string, destDir string) (string, error) {
	if len(srcDirs) == 0 {
		return "", errors.New("shipper: restore: no replicas given")
	}
	if _, err := os.Stat(destDir); err == nil {
		return "", fmt.Errorf("shipper: restore: %s already exists", destDir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return "", fmt.Errorf("shipper: restore: %w", err)
	}
	scratch := destDir + ".restoring"
	var errs []error
	for _, src := range srcDirs {
		if err := VerifyReplica(src); err != nil {
			errs = append(errs, err)
			continue
		}
		if err := os.RemoveAll(scratch); err != nil {
			return "", fmt.Errorf("shipper: restore: %w", err)
		}
		if err := Restore(src, scratch); err != nil {
			errs = append(errs, err)
			continue
		}
		if err := os.Rename(scratch, destDir); err != nil {
			return "", fmt.Errorf("shipper: restore: %w", err)
		}
		return src, nil
	}
	os.RemoveAll(scratch)
	return "", fmt.Errorf("shipper: restore: no usable replica: %w", errors.Join(errs...))
}

// copyFile copies src to dest (creating parent directories), fsyncing the
// result so a restored journal is durable before the replacement opens it.
func copyFile(src, dest string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
		return err
	}
	out, err := os.OpenFile(dest, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

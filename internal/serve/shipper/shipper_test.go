package shipper

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDirSinkAppendSealRoundTrip: bytes appended in pieces seal into a
// final file plus a manifest entry carrying its checksum.
func TestDirSinkAppendSealRoundTrip(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, replicated world\n")
	if err := sink.Append("journal-000001.jsonl", 0, data[:10]); err != nil {
		t.Fatal(err)
	}
	off, err := sink.Offset("journal-000001.jsonl")
	if err != nil || off != 10 {
		t.Fatalf("offset = %d, %v; want 10", off, err)
	}
	if err := sink.Append("journal-000001.jsonl", 10, data[10:]); err != nil {
		t.Fatal(err)
	}
	if err := sink.Seal("journal-000001.jsonl", int64(len(data)), sha(data)); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, filepath.Join(sink.Root(), "journal-000001.jsonl"))
	if string(got) != string(data) {
		t.Fatalf("sealed content %q, want %q", got, data)
	}
	manifest, err := ReadManifest(sink.Root())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := manifest["journal-000001.jsonl"]
	if !ok || e.Size != int64(len(data)) || e.SHA256 != sha(data) {
		t.Fatalf("manifest entry = %+v, ok=%v", e, ok)
	}
	// A sealed file's offset is its final size — a re-querying shipper
	// sees nothing left to ship.
	off, err = sink.Offset("journal-000001.jsonl")
	if err != nil || off != int64(len(data)) {
		t.Fatalf("post-seal offset = %d, %v", off, err)
	}
}

// TestDirSinkOffsetMismatch: appending anywhere but the current part size
// (except a restart at zero) is refused with the named error.
func TestDirSinkOffsetMismatch(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Append("f", 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := sink.Append("f", 7, []byte("xyz")); !errors.Is(err, ErrOffsetMismatch) {
		t.Fatalf("gap append error = %v, want ErrOffsetMismatch", err)
	}
	// Restarting at zero is the rewrite path and must succeed.
	if err := sink.Append("f", 0, []byte("restart")); err != nil {
		t.Fatal(err)
	}
	off, _ := sink.Offset("f")
	if off != int64(len("restart")) {
		t.Fatalf("offset after restart = %d", off)
	}
}

// TestDirSinkChecksumQuarantine: a seal whose digest does not match the
// held bytes must quarantine them under a .quarantine name and fail with
// ErrChecksumMismatch — corrupted history is preserved for post-mortems,
// never promoted.
func TestDirSinkChecksumQuarantine(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Append("seg", 0, []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	err = sink.Seal("seg", int64(len("good bytes")), sha([]byte("evil bytes")))
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("seal error = %v, want ErrChecksumMismatch", err)
	}
	if _, err := os.Stat(filepath.Join(sink.Root(), "seg"+quarantineSuffix)); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sink.Root(), "seg")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("mismatched content was promoted to its final name")
	}
	if m, _ := ReadManifest(sink.Root()); len(m) != 0 {
		t.Fatalf("manifest recorded a failed seal: %v", m)
	}
}

// TestDirSinkRejectsEscapingNames: traversal and absolute names must be
// refused before touching the filesystem.
func TestDirSinkRejectsEscapingNames(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../evil", "a/../../evil", "/abs", `a\b`, ManifestName} {
		if err := sink.Append(name, 0, []byte("x")); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}

// TestShipperMidShipCrashResumes: a shipper that dies mid-ship leaves a
// resumable part at the sink; a *fresh* shipper (no in-memory state, the
// crash-restart shape) must resume from the sink's offset and complete
// the seal without re-shipping what already landed.
func TestShipperMidShipCrashResumes(t *testing.T) {
	root := t.TempDir()
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := []byte(strings.Repeat("r1 ", 100))
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), first)

	s1 := New(root, sink, Options{Sync: true})
	s1.Changed("journal-000001.jsonl")
	// "Crash": abandon s1 without Close. The sink holds a part file.
	partPath := filepath.Join(sink.Root(), "journal-000001.jsonl"+partSuffix)
	if got := readFile(t, partPath); string(got) != string(first) {
		t.Fatalf("sink part holds %d bytes, want %d", len(got), len(first))
	}

	// The file grows after the crash; a fresh shipper must ship only the
	// tail (the sink offset proves resume: the part already has len(first)
	// bytes and an offset-0 restart would be detectable — instead, its
	// content must remain a strict prefix-extension).
	tail := []byte("tail after restart\n")
	all := append(append([]byte{}, first...), tail...)
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), all)
	s2 := New(root, sink, Options{Sync: true})
	defer s2.Close()
	s2.Sealed("journal-000001.jsonl")
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got.Bytes != int64(len(tail)) {
		t.Fatalf("fresh shipper shipped %d bytes, want only the %d-byte tail (resume failed)", got.Bytes, len(tail))
	}
	got := readFile(t, filepath.Join(sink.Root(), "journal-000001.jsonl"))
	if string(got) != string(all) {
		t.Fatalf("sealed content mismatch: %d bytes vs %d", len(got), len(all))
	}
	m, _ := ReadManifest(sink.Root())
	if e := m["journal-000001.jsonl"]; e.SHA256 != sha(all) {
		t.Fatalf("manifest checksum %q, want %q", e.SHA256, sha(all))
	}
}

// TestShipperShrunkFileRestarts: a file rewritten smaller locally (trace
// compaction) must restart at the sink rather than appending garbage past
// its end.
func TestShipperShrunkFileRestarts(t *testing.T) {
	root := t.TempDir()
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "traces", "job-1.trace.jsonl")
	writeFile(t, path, []byte(strings.Repeat("x", 500)))
	s := New(root, sink, Options{Sync: true})
	defer s.Close()
	s.Changed("traces/job-1.trace.jsonl")

	compacted := []byte("compacted\n")
	writeFile(t, path, compacted)
	s.Changed("traces/job-1.trace.jsonl")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, filepath.Join(sink.Root(), "traces", "job-1.trace.jsonl"+partSuffix))
	if string(got) != string(compacted) {
		t.Fatalf("sink holds %q, want the compacted content %q", got, compacted)
	}
}

// TestShipperMissingFileIsDone: a queued file deleted locally (the
// journal fold removed a superseded segment) must resolve as done, not
// retry forever.
func TestShipperMissingFileIsDone(t *testing.T) {
	root := t.TempDir()
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(root, sink, Options{})
	defer s.Close()
	s.Sealed("journal-000009.jsonl") // never existed locally
	if err := s.Flush(); err != nil {
		t.Fatalf("missing file errored: %v", err)
	}
}

// TestReceiverHTTPSinkRoundTrip: the peer-push path — HTTPSink against a
// mounted Receiver — must behave like a local DirSink, including carrying
// the named sentinel errors across the wire.
func TestReceiverHTTPSinkRoundTrip(t *testing.T) {
	recvRoot := t.TempDir()
	recv, err := NewReceiver(recvRoot)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.StripPrefix("/ship", recv))
	defer ts.Close()
	sink, err := NewHTTPSink(ts.URL+"/ship", "node-a", nil)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("pushed across the wire\n")
	if err := sink.Append("journal-000001.jsonl", 0, data); err != nil {
		t.Fatal(err)
	}
	off, err := sink.Offset("journal-000001.jsonl")
	if err != nil || off != int64(len(data)) {
		t.Fatalf("offset = %d, %v", off, err)
	}
	if err := sink.Append("journal-000001.jsonl", 5, []byte("x")); !errors.Is(err, ErrOffsetMismatch) {
		t.Fatalf("gap append over HTTP = %v, want ErrOffsetMismatch", err)
	}
	if err := sink.Seal("journal-000001.jsonl", int64(len(data)), sha([]byte("wrong"))); !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("bad seal over HTTP = %v, want ErrChecksumMismatch", err)
	}
	// The quarantine consumed the part; re-push and seal correctly.
	if err := sink.Append("journal-000001.jsonl", 0, data); err != nil {
		t.Fatal(err)
	}
	if err := sink.Seal("journal-000001.jsonl", int64(len(data)), sha(data)); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, filepath.Join(recv.NodeDir("node-a"), "journal-000001.jsonl"))
	if string(got) != string(data) {
		t.Fatalf("receiver holds %q", got)
	}
}

// TestRestoreVerifiesChecksums: Restore must copy manifest-listed files
// only after re-verifying them, quarantine corruption, and carry .part
// tails under their bare names.
func TestRestoreVerifiesChecksums(t *testing.T) {
	sinkDir := t.TempDir()
	sink, err := NewDirSink(sinkDir)
	if err != nil {
		t.Fatal(err)
	}
	sealed := []byte("sealed segment\n")
	if err := sink.Append("journal-000001.jsonl", 0, sealed); err != nil {
		t.Fatal(err)
	}
	if err := sink.Seal("journal-000001.jsonl", int64(len(sealed)), sha(sealed)); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(sinkDir, "journal-000002.jsonl"+partSuffix), []byte("active tail"))

	dest := t.TempDir()
	if err := Restore(sinkDir, dest); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, filepath.Join(dest, "journal-000001.jsonl")); string(got) != string(sealed) {
		t.Fatalf("restored sealed file = %q", got)
	}
	if got := readFile(t, filepath.Join(dest, "journal-000002.jsonl")); string(got) != "active tail" {
		t.Fatalf("restored part = %q", got)
	}

	// Corrupt the sealed replica: Restore must refuse and quarantine.
	writeFile(t, filepath.Join(sinkDir, "journal-000001.jsonl"), []byte("bitrot"))
	err = Restore(sinkDir, t.TempDir())
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("restore of corrupted replica = %v, want ErrChecksumMismatch", err)
	}
	if _, err := os.Stat(filepath.Join(sinkDir, "journal-000001.jsonl"+quarantineSuffix)); err != nil {
		t.Fatalf("corrupted file not quarantined: %v", err)
	}
}

// TestShipperAsyncRetriesAfterSinkFailure: with a sink that fails first,
// the background loop must retry with backoff until it heals, counting
// the retries.
func TestShipperAsyncRetriesAfterSinkFailure(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), []byte("data"))
	flaky := &flakySink{inner: mustDirSink(t), failFirst: 2}
	s := New(root, flaky, Options{Interval: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	defer s.Close()
	s.Sealed("journal-000001.jsonl")
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().SegmentsShipped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("segment never shipped through the flaky sink")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().Retries; got == 0 {
		t.Fatal("retries counter stayed zero despite injected failures")
	}
}

func mustDirSink(t *testing.T) *DirSink {
	t.Helper()
	d, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// flakySink fails its first failFirst operations, then delegates.
type flakySink struct {
	inner     Sink
	failFirst int
	mu        sync.Mutex
	calls     int
}

func (f *flakySink) bump() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failFirst {
		return errors.New("injected sink outage")
	}
	return nil
}

func (f *flakySink) Offset(name string) (int64, error) {
	if err := f.bump(); err != nil {
		return 0, err
	}
	return f.inner.Offset(name)
}

func (f *flakySink) Append(name string, off int64, data []byte) error {
	if err := f.bump(); err != nil {
		return err
	}
	return f.inner.Append(name, off, data)
}

func (f *flakySink) Seal(name string, size int64, sum string) error {
	if err := f.bump(); err != nil {
		return err
	}
	return f.inner.Seal(name, size, sum)
}

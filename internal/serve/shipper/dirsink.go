package shipper

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ManifestName is the sink-side index of sealed files: one JSON line per
// seal with the file's name, size and SHA-256. Appended (fsynced) after
// the sealed bytes are verified and renamed into place, so a manifest
// entry always describes a whole, checksummed file; duplicate entries for
// one name can appear after a restart-and-reseal and the last one wins.
const ManifestName = "MANIFEST.jsonl"

// partSuffix marks an in-progress (resumable) file at the sink; the bare
// name is only ever a verified, sealed file.
const partSuffix = ".part"

// quarantineSuffix is where Seal and Restore move content that failed its
// checksum — kept for post-mortems, ignored by every read path.
const quarantineSuffix = ".quarantine"

// ManifestEntry is one sealed file in the manifest.
type ManifestEntry struct {
	Name   string    `json:"name"`
	Size   int64     `json:"size"`
	SHA256 string    `json:"sha256"`
	Time   time.Time `json:"time"`
}

// DirSink stores shipped files under a local directory — the
// local-directory sink (shared filesystem, mounted object store) and the
// storage behind the peer-push Receiver. In-progress files carry a .part
// suffix and resume by size; Seal verifies the checksum, renames the part
// to its final name and appends the manifest entry. A crash mid-ship
// leaves a resumable part plus a manifest describing only whole files.
type DirSink struct {
	root string

	mu sync.Mutex // serializes seals and manifest appends
}

// NewDirSink returns a sink rooted at dir, creating it if needed.
func NewDirSink(dir string) (*DirSink, error) {
	if dir == "" {
		return nil, errors.New("shipper: empty sink directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shipper: %w", err)
	}
	return &DirSink{root: dir}, nil
}

// Root returns the sink's directory.
func (d *DirSink) Root() string { return d.root }

// validName rejects names that would escape the sink root.
func validName(name string) error {
	if name == "" || strings.HasPrefix(name, "/") || strings.Contains(name, `\`) {
		return fmt.Errorf("shipper: invalid name %q", name)
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("shipper: invalid name %q", name)
		}
	}
	if name == ManifestName {
		return fmt.Errorf("shipper: reserved name %q", name)
	}
	return nil
}

// paths returns the final and part paths for name.
func (d *DirSink) paths(name string) (final, part string, err error) {
	if err := validName(name); err != nil {
		return "", "", err
	}
	final = filepath.Join(d.root, filepath.FromSlash(name))
	return final, final + partSuffix, nil
}

// Offset implements Sink: the size of the in-progress part, or of the
// sealed file when no part exists, or zero.
func (d *DirSink) Offset(name string) (int64, error) {
	final, part, err := d.paths(name)
	if err != nil {
		return 0, err
	}
	if st, err := os.Stat(part); err == nil {
		return st.Size(), nil
	}
	if st, err := os.Stat(final); err == nil {
		return st.Size(), nil
	}
	return 0, nil
}

// Append implements Sink: writes data to the part file at off. Offset
// zero restarts the part from scratch (the shipper's path for a locally
// rewritten file); any other offset must match the part's current size.
func (d *DirSink) Append(name string, off int64, data []byte) error {
	_, part, err := d.paths(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(part), 0o755); err != nil {
		return fmt.Errorf("shipper: %w", err)
	}
	flags := os.O_WRONLY | os.O_CREATE
	if off == 0 {
		flags |= os.O_TRUNC
	} else {
		st, err := os.Stat(part)
		if err != nil || st.Size() != off {
			have := int64(0)
			if err == nil {
				have = st.Size()
			}
			return fmt.Errorf("shipper: %s: append at %d, have %d: %w", name, off, have, ErrOffsetMismatch)
		}
		flags |= os.O_APPEND
	}
	f, err := os.OpenFile(part, flags, 0o644)
	if err != nil {
		return fmt.Errorf("shipper: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("shipper: writing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shipper: %w", err)
	}
	return nil
}

// Seal implements Sink: verifies the part (or an already-sealed file)
// against size and sum, renames it into place and appends the manifest
// entry. Content failing the checksum is quarantined and the seal returns
// ErrChecksumMismatch; a short part returns ErrOffsetMismatch so the
// shipper ships the missing tail and retries.
func (d *DirSink) Seal(name string, size int64, sum string) error {
	final, part, err := d.paths(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	src := part
	if _, err := os.Stat(part); errors.Is(err, os.ErrNotExist) {
		// Re-seal of an already-finalized file (restart after a crash
		// between rename and manifest append): verify in place.
		src = final
	}
	gotSum, gotSize, err := hashPath(src)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("shipper: sealing %s: nothing shipped: %w", name, ErrOffsetMismatch)
	}
	if err != nil {
		return fmt.Errorf("shipper: sealing %s: %w", name, err)
	}
	if gotSize < size {
		return fmt.Errorf("shipper: sealing %s: have %d bytes, want %d: %w", name, gotSize, size, ErrOffsetMismatch)
	}
	if gotSize != size || gotSum != sum {
		os.Rename(src, final+quarantineSuffix)
		return fmt.Errorf("shipper: sealing %s: %w", name, ErrChecksumMismatch)
	}
	if src == part {
		if err := fsyncFile(part); err != nil {
			return fmt.Errorf("shipper: sealing %s: %w", name, err)
		}
		if err := os.Rename(part, final); err != nil {
			return fmt.Errorf("shipper: sealing %s: %w", name, err)
		}
	}
	return d.appendManifest(ManifestEntry{Name: name, Size: size, SHA256: sum, Time: time.Now()})
}

// appendManifest records one sealed file. Called with d.mu held.
func (d *DirSink) appendManifest(e ManifestEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("shipper: manifest: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(d.root, ManifestName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shipper: manifest: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("shipper: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shipper: manifest: %w", err)
	}
	return f.Close()
}

// ReadManifest returns a sink directory's sealed-file index, last entry
// per name winning. A torn final line (crash mid-append) ends the
// manifest at the last whole entry; a missing manifest is empty.
func ReadManifest(dir string) (map[string]ManifestEntry, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return map[string]ManifestEntry{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shipper: manifest: %w", err)
	}
	defer f.Close()
	out := map[string]ManifestEntry{}
	dec := json.NewDecoder(f)
	for {
		var e ManifestEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			// Torn tail: the entries before it are whole.
			return out, nil
		}
		out[e.Name] = e
	}
}

// hashPath returns the SHA-256 hex digest and size of the file at path.
func hashPath(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// fsyncFile syncs the file at path.
func fsyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

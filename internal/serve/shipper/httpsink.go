package shipper

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// shipErrHeader carries the receiver's named error class back to the
// HTTPSink so errors.Is keeps working across the wire.
const shipErrHeader = "X-Ship-Error"

const (
	shipErrOffset   = "offset_mismatch"
	shipErrChecksum = "checksum_mismatch"
)

// HTTPSink pushes shipped files to a peer node's /ship/ receiver — the
// peer-node sink. Every node namespaces its files under its own name, so
// one receiver can hold replicas for a whole cluster.
type HTTPSink struct {
	base   string // e.g. http://peer:8149/ship
	node   string
	client *http.Client
}

// NewHTTPSink returns a sink pushing node's files to the receiver at
// base (the mount point of a Receiver, e.g. "http://peer:8149/ship").
// A nil client selects a default with a 10s timeout.
func NewHTTPSink(base, node string, client *http.Client) (*HTTPSink, error) {
	if _, err := url.Parse(base); err != nil || base == "" {
		return nil, fmt.Errorf("shipper: bad sink URL %q", base)
	}
	if node == "" || strings.ContainsAny(node, "/\\ ") {
		return nil, fmt.Errorf("shipper: bad node name %q", node)
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPSink{base: strings.TrimSuffix(base, "/"), node: node, client: client}, nil
}

// endpoint builds one receiver URL.
func (h *HTTPSink) endpoint(op, name string, extra url.Values) string {
	v := url.Values{"name": {name}}
	for k, vals := range extra {
		v[k] = vals
	}
	return h.base + "/" + h.node + "/" + op + "?" + v.Encode()
}

// decodeErr maps a receiver error response to the named sentinel errors.
func decodeErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	msg := strings.TrimSpace(string(body))
	switch resp.Header.Get(shipErrHeader) {
	case shipErrOffset:
		return fmt.Errorf("shipper: peer: %s: %w", msg, ErrOffsetMismatch)
	case shipErrChecksum:
		return fmt.Errorf("shipper: peer: %s: %w", msg, ErrChecksumMismatch)
	}
	return fmt.Errorf("shipper: peer: %s: %s", resp.Status, msg)
}

// Offset implements Sink.
func (h *HTTPSink) Offset(name string) (int64, error) {
	resp, err := h.client.Get(h.endpoint("offset", name, nil))
	if err != nil {
		return 0, fmt.Errorf("shipper: peer offset: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeErr(resp)
	}
	var out struct {
		Offset int64 `json:"offset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("shipper: peer offset: %w", err)
	}
	return out.Offset, nil
}

// Append implements Sink.
func (h *HTTPSink) Append(name string, off int64, data []byte) error {
	u := h.endpoint("append", name, url.Values{"off": {strconv.FormatInt(off, 10)}})
	resp, err := h.client.Post(u, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("shipper: peer append: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Seal implements Sink.
func (h *HTTPSink) Seal(name string, size int64, sum string) error {
	u := h.endpoint("seal", name, url.Values{
		"size": {strconv.FormatInt(size, 10)},
		"sum":  {sum},
	})
	resp, err := h.client.Post(u, "application/json", nil)
	if err != nil {
		return fmt.Errorf("shipper: peer seal: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Receiver is the peer-node ship endpoint: an http.Handler a node mounts
// (bhpod -ship-recv-dir, under /ship/) to hold replicas for its peers.
// Each pushing node gets its own subdirectory (and so its own manifest)
// under the receiver root:
//
//	GET  {node}/offset?name=F          → {"offset": N}
//	POST {node}/append?name=F&off=N    body = the bytes
//	POST {node}/seal?name=F&size=N&sum=H
//
// Mount with http.StripPrefix so the node name is the first path element.
type Receiver struct {
	root string

	mu    sync.Mutex
	sinks map[string]*DirSink
}

// NewReceiver returns a receiver storing under root.
func NewReceiver(root string) (*Receiver, error) {
	if root == "" {
		return nil, errors.New("shipper: empty receiver directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("shipper: %w", err)
	}
	return &Receiver{root: root, sinks: map[string]*DirSink{}}, nil
}

// sink returns (creating if needed) the pushing node's DirSink.
func (rc *Receiver) sink(node string) (*DirSink, error) {
	if node == "" || node == "." || node == ".." || strings.ContainsAny(node, `/\`) {
		return nil, fmt.Errorf("shipper: bad node %q", node)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if d, ok := rc.sinks[node]; ok {
		return d, nil
	}
	d, err := NewDirSink(filepath.Join(rc.root, node))
	if err != nil {
		return nil, err
	}
	rc.sinks[node] = d
	return d, nil
}

// NodeDir returns where a node's shipped replica lives under the
// receiver — the directory Restore reads when that node needs replacing.
func (rc *Receiver) NodeDir(node string) string {
	return filepath.Join(rc.root, node)
}

// ServeHTTP implements http.Handler.
func (rc *Receiver) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	node, op, ok := strings.Cut(strings.TrimPrefix(r.URL.Path, "/"), "/")
	if !ok {
		http.Error(w, "want {node}/{offset|append|seal}", http.StatusNotFound)
		return
	}
	sink, err := rc.sink(node)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name := r.URL.Query().Get("name")
	writeErr := func(err error) {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrOffsetMismatch):
			w.Header().Set(shipErrHeader, shipErrOffset)
			status = http.StatusConflict
		case errors.Is(err, ErrChecksumMismatch):
			w.Header().Set(shipErrHeader, shipErrChecksum)
			status = http.StatusConflict
		case strings.Contains(err.Error(), "invalid name"), strings.Contains(err.Error(), "reserved name"):
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
	}
	switch {
	case op == "offset" && r.Method == http.MethodGet:
		off, err := sink.Offset(name)
		if err != nil {
			writeErr(err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"offset\": %d}\n", off)
	case op == "append" && r.Method == http.MethodPost:
		off, err := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
		if err != nil || off < 0 {
			http.Error(w, "bad off", http.StatusBadRequest)
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := sink.Append(name, off, data); err != nil {
			writeErr(err)
			return
		}
		w.WriteHeader(http.StatusOK)
	case op == "seal" && r.Method == http.MethodPost:
		size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
		if err != nil || size < 0 {
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
		if err := sink.Seal(name, size, r.URL.Query().Get("sum")); err != nil {
			writeErr(err)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "want {node}/{offset|append|seal}", http.StatusNotFound)
	}
}

package shipper

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// gateSink wraps a sink with an outage switch: while down, every
// operation fails — the injected "sink unreachable" fault.
type gateSink struct {
	inner Sink
	down  atomic.Bool
}

func (g *gateSink) gate() error {
	if g.down.Load() {
		return errors.New("injected sink outage")
	}
	return nil
}

func (g *gateSink) Offset(name string) (int64, error) {
	if err := g.gate(); err != nil {
		return 0, err
	}
	return g.inner.Offset(name)
}

func (g *gateSink) Append(name string, off int64, data []byte) error {
	if err := g.gate(); err != nil {
		return err
	}
	return g.inner.Append(name, off, data)
}

func (g *gateSink) Seal(name string, size int64, sum string) error {
	if err := g.gate(); err != nil {
		return err
	}
	return g.inner.Seal(name, size, sum)
}

// TestMultiSinkShipsToAll: a sealed segment must land, checksummed and
// manifested, in every configured sink, and the per-sink stats must
// account for each lane separately.
func TestMultiSinkShipsToAll(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := t.TempDir(), t.TempDir()
	sinkA, err := NewDirSink(dirA)
	if err != nil {
		t.Fatal(err)
	}
	sinkB, err := NewDirSink(dirB)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("replicated twice\n")
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), data)

	s := NewMulti(root, []Sink{sinkA, sinkB}, Options{Interval: time.Hour})
	defer s.Close()
	if s.Sinks() != 2 {
		t.Fatalf("Sinks() = %d, want 2", s.Sinks())
	}
	s.Sealed("journal-000001.jsonl")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{dirA, dirB} {
		if got := readFile(t, filepath.Join(dir, "journal-000001.jsonl")); string(got) != string(data) {
			t.Fatalf("sink %s holds %q", dir, got)
		}
		if err := VerifyReplica(dir); err != nil {
			t.Fatalf("sink %s does not verify: %v", dir, err)
		}
	}
	per := s.PerSink()
	if len(per) != 2 {
		t.Fatalf("PerSink() returned %d entries, want 2", len(per))
	}
	for i, st := range per {
		if st.SegmentsShipped != 1 || st.Bytes != int64(len(data)) {
			t.Fatalf("sink %d stats = %+v, want 1 segment / %d bytes", i, st, len(data))
		}
	}
	// The aggregate counts per-sink seals: one local segment, two sinks.
	if got := s.Stats().SegmentsShipped; got != 2 {
		t.Fatalf("aggregate SegmentsShipped = %d, want 2", got)
	}
}

// TestMultiSinkOneDownOtherStaysCurrent: an outage on one sink must not
// hold the healthy sink back — it stays current inline — and once the
// outage ends the background retry loop catches the lagging sink up on
// its own.
func TestMultiSinkOneDownOtherStaysCurrent(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := t.TempDir(), t.TempDir()
	sinkA, err := NewDirSink(dirA)
	if err != nil {
		t.Fatal(err)
	}
	inB, err := NewDirSink(dirB)
	if err != nil {
		t.Fatal(err)
	}
	sinkB := &gateSink{inner: inB}
	sinkB.down.Store(true)

	data := []byte("must not be held back by the dead sink\n")
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), data)
	s := NewMulti(root, []Sink{sinkA, sinkB}, Options{
		Interval: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	})
	defer s.Close()
	s.Sealed("journal-000001.jsonl")

	// The healthy sink converges while B is still down.
	deadline := time.Now().Add(10 * time.Second)
	for s.PerSink()[0].SegmentsShipped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("healthy sink never converged while the other was down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := VerifyReplica(dirA); err != nil {
		t.Fatalf("healthy sink does not verify: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dirB, "journal-000001.jsonl")); err == nil {
		t.Fatal("down sink received the segment")
	}

	// Outage over: the async retry loop catches B up with no new writes.
	sinkB.down.Store(false)
	for s.PerSink()[1].SegmentsShipped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lagging sink never caught up after the outage")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := VerifyReplica(dirB); err != nil {
		t.Fatalf("caught-up sink does not verify: %v", err)
	}
	if got := readFile(t, filepath.Join(dirB, "journal-000001.jsonl")); string(got) != string(data) {
		t.Fatalf("caught-up sink holds %q", got)
	}
	per := s.PerSink()
	if per[1].Retries == 0 {
		t.Fatal("lagging sink's lane recorded no retries")
	}
	if per[0].Retries != 0 {
		t.Fatalf("healthy sink's lane recorded %d retries", per[0].Retries)
	}
}

// TestRestoreAnyFallsBackOnMismatch: a replica whose bytes no longer
// match its manifest must be skipped, restoring from the next sink —
// and the corrupt attempt must leave no partial destination behind.
func TestRestoreAnyFallsBackOnMismatch(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := t.TempDir(), t.TempDir()
	sinkA, _ := NewDirSink(dirA)
	sinkB, _ := NewDirSink(dirB)
	data := []byte("the authoritative journal\n")
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), data)
	s := NewMulti(root, []Sink{sinkA, sinkB}, Options{Interval: time.Hour})
	s.Sealed("journal-000001.jsonl")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Bitrot on A: its manifest now lies about the sealed bytes.
	writeFile(t, filepath.Join(dirA, "journal-000001.jsonl"), []byte("bitrot"))

	dest := filepath.Join(t.TempDir(), "restored")
	src, err := RestoreAny([]string{dirA, dirB}, dest)
	if err != nil {
		t.Fatal(err)
	}
	if src != dirB {
		t.Fatalf("restored from %s, want the clean sink %s", src, dirB)
	}
	if got := readFile(t, filepath.Join(dest, "journal-000001.jsonl")); string(got) != string(data) {
		t.Fatalf("restored journal = %q", got)
	}
	if _, err := os.Stat(dest + ".restoring"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("scratch dir left behind: %v", err)
	}

	// Both corrupt: the error must carry the mismatch, and the existing
	// destination must be refused rather than replaced.
	writeFile(t, filepath.Join(dirB, "journal-000001.jsonl"), []byte("worse"))
	if _, err := RestoreAny([]string{dirA, dirB}, filepath.Join(t.TempDir(), "r2")); !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("all-corrupt restore = %v, want ErrChecksumMismatch", err)
	}
	if _, err := RestoreAny([]string{dirB}, dest); err == nil {
		t.Fatal("RestoreAny replaced an existing destination")
	}
}

// TestMultiSinkCrashResumesPerSinkOffsets: after a shipper crash
// mid-ship, a fresh shipper must resume each sink from that sink's own
// offset — the sinks were at different points when the process died.
func TestMultiSinkCrashResumesPerSinkOffsets(t *testing.T) {
	root := t.TempDir()
	dirA, dirB := t.TempDir(), t.TempDir()
	sinkA, _ := NewDirSink(dirA)
	inB, _ := NewDirSink(dirB)
	sinkB := &gateSink{inner: inB}

	// First life: A receives the first ten bytes, B is down and receives
	// nothing. The process then "crashes" — the shipper is abandoned
	// without Close, its in-memory offsets lost.
	full := []byte("0123456789abcdefghij\n")
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), full[:10])
	sinkB.down.Store(true)
	s1 := NewMulti(root, []Sink{sinkA, sinkB}, Options{Interval: time.Hour})
	s1.Changed("journal-000001.jsonl")
	if err := s1.Flush(); err == nil {
		t.Fatal("flush with a down sink reported success")
	}
	if off, _ := sinkA.Offset("journal-000001.jsonl"); off != 10 {
		t.Fatalf("sink A offset = %d before crash, want 10", off)
	}

	// Second life: the file has grown and sealed; B is back. The new
	// shipper knows nothing — each lane must query its own sink's offset
	// and ship exactly the missing suffix.
	writeFile(t, filepath.Join(root, "journal-000001.jsonl"), full)
	sinkB.down.Store(false)
	s2 := NewMulti(root, []Sink{sinkA, sinkB}, Options{Interval: time.Hour})
	defer s2.Close()
	s2.Sealed("journal-000001.jsonl")
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	for name, dir := range map[string]string{"A": dirA, "B": dirB} {
		if err := VerifyReplica(dir); err != nil {
			t.Fatalf("sink %s after resume: %v", name, err)
		}
		if got := readFile(t, filepath.Join(dir, "journal-000001.jsonl")); string(got) != string(full) {
			t.Fatalf("sink %s holds %q after resume", name, got)
		}
	}
	// A resumed at 10, shipping only the suffix; B started at 0.
	per := s2.PerSink()
	if per[0].Bytes != int64(len(full)-10) {
		t.Fatalf("sink A resumed shipping %d bytes, want %d (the missing suffix)", per[0].Bytes, len(full)-10)
	}
	if per[1].Bytes != int64(len(full)) {
		t.Fatalf("sink B resumed shipping %d bytes, want the whole file (%d)", per[1].Bytes, len(full))
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// instantEvaluator replaces MLP training with a fixed fold score so
// scheduler tests measure grant accounting, not math kernels. A gate,
// when set, blocks evaluations for the job IDs in gateIDs (nil = all)
// until the channel closes — the standard trick to pile up a backlog
// before the scheduler makes any choices.
type instantEvaluator struct {
	inner   hpo.Evaluator
	gate    chan struct{}
	gated   bool
	entered chan struct{}
}

func (e *instantEvaluator) FullBudget() int { return e.inner.FullBudget() }

func (e *instantEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if e.entered != nil {
		select {
		case e.entered <- struct{}{}:
		default:
		}
	}
	if e.gated {
		<-e.gate
	}
	return []float64{0.5}, nil
}

// tinySpec is the cheapest real job: one random trial, one evaluation.
func tinySpec(tenant string, seed uint64) JobSpec {
	return JobSpec{
		Tenant:  tenant,
		Dataset: "australian",
		Scale:   0.06,
		Method:  "random",
		Trials:  1,
		Iters:   2,
		Seed:    seed,
	}
}

// TestFairnessWeighted3to1: two tenants at weights 3:1 saturating a
// single run slot must complete jobs at a throughput ratio in
// [2.5, 3.5]. The first evaluation is gated so the full backlog exists
// before the scheduler grants anything; from then on every grant is a
// weighted-fair choice among both backlogged tenants.
func TestFairnessWeighted3to1(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	first := true
	m := NewManager(Config{
		PoolSize:      1,
		MaxJobs:       1,
		MaxPending:    256,
		TenantWeights: map[string]int{"gold": 3, "bronze": 1},
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			ev := &instantEvaluator{inner: inner, gate: gate, gated: first, entered: entered}
			first = false
			return ev
		},
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})

	// The barrier job occupies the only run slot, wedged in its gated
	// evaluation, while 60+60 jobs pile up behind it.
	barrier, err := m.Submit(tinySpec("gold", 1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	tenantOf := map[string]string{barrier.ID: "gold"}
	for i := 0; i < 60; i++ {
		jg, err := m.Submit(tinySpec("gold", uint64(100+i)))
		if err != nil {
			t.Fatalf("gold submit %d: %v", i, err)
		}
		jb, err := m.Submit(tinySpec("bronze", uint64(200+i)))
		if err != nil {
			t.Fatalf("bronze submit %d: %v", i, err)
		}
		tenantOf[jg.ID] = "gold"
		tenantOf[jb.ID] = "bronze"
	}
	close(gate)

	// Wait for a big enough grant prefix, then score the weighted split
	// over it. Counting grants rather than completions keeps the ratio
	// exact: grants are the scheduler's own decisions, completions add
	// timing noise.
	const prefix = 48
	deadline := time.Now().Add(60 * time.Second)
	var grants []string
	for {
		grants = m.sched.Grants()
		if len(grants) >= prefix+1 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(grants) < prefix+1 {
		t.Fatalf("only %d grants before deadline", len(grants))
	}
	gold, bronze := 0, 0
	// Skip the barrier grant: it was admitted to an empty scheduler, not
	// chosen against a backlog.
	for _, id := range grants[1 : prefix+1] {
		switch tenantOf[id] {
		case "gold":
			gold++
		case "bronze":
			bronze++
		default:
			t.Fatalf("grant %q has unknown tenant", id)
		}
	}
	if bronze == 0 {
		t.Fatalf("bronze starved: grants gold=%d bronze=0", gold)
	}
	ratio := float64(gold) / float64(bronze)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("throughput ratio %.2f (gold=%d bronze=%d), want [2.5, 3.5]", ratio, gold, bronze)
	}
}

// TestSchedulerDeterminism: the same submission trace must produce an
// identical grant order whether evaluations run on 1 worker or 8 —
// per-tenant completion order is a pure function of the trace, not of
// evaluation parallelism. With MaxJobs=1, jobs complete serially in
// grant order, so grant-order equality is completion-order equality.
func TestSchedulerDeterminism(t *testing.T) {
	trace := func() []JobSpec {
		var specs []JobSpec
		for i := 0; i < 8; i++ {
			specs = append(specs, tinySpec("a", uint64(10+i)))
			specs = append(specs, tinySpec("b", uint64(20+i)))
			specs = append(specs, tinySpec("c", uint64(30+i)))
		}
		return specs
	}
	run := func(pool int) []string {
		gate := make(chan struct{})
		entered := make(chan struct{}, 1)
		first := true
		m := NewManager(Config{
			PoolSize:      pool,
			MaxJobs:       1,
			MaxPending:    256,
			TenantWeights: map[string]int{"a": 3, "b": 2, "c": 1},
			WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
				ev := &instantEvaluator{inner: inner, gate: gate, gated: first, entered: entered}
				first = false
				return ev
			},
		})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			m.Shutdown(ctx)
		}()
		barrier, err := m.Submit(tinySpec("a", 1))
		if err != nil {
			t.Fatal(err)
		}
		<-entered
		var jobs []*Job
		for _, spec := range trace() {
			j, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		close(gate)
		waitJob(t, m, barrier.ID, func(s Status) bool { return s == StatusDone }, "done")
		for _, j := range jobs {
			waitJob(t, m, j.ID, func(s Status) bool { return s == StatusDone }, "done")
		}
		return m.sched.Grants()
	}
	g1 := run(1)
	g8 := run(8)
	if len(g1) != len(g8) {
		t.Fatalf("grant counts differ: %d vs %d", len(g1), len(g8))
	}
	for i := range g1 {
		if g1[i] != g8[i] {
			t.Fatalf("grant %d differs: workers=1 granted %s, workers=8 granted %s\n1: %v\n8: %v",
				i, g1[i], g8[i], g1, g8)
		}
	}
}

// wideSpec is a multi-rung ASHA job with enough trials for a rung
// boundary to land while a rival backlog exists.
func wideSpec(tenant string) JobSpec {
	return JobSpec{
		Tenant:     tenant,
		Dataset:    "australian",
		Scale:      0.06,
		Method:     "asha",
		NumHPs:     2,
		MaxConfigs: 9,
		Iters:      2,
		Seed:       7,
	}
}

// TestPreemptResumeByteIdenticalCurve: a job preempted at a rung
// boundary and later resumed must finish with an anytime curve byte
// identical to a never-preempted twin. DeterministicTiming pins the
// curves' elapsed columns; the real evaluator (seeded synthesis,
// deterministic training) pins the scores.
func TestPreemptResumeByteIdenticalCurve(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	cfg := Config{
		PoolSize:            1,
		MaxJobs:             1,
		MaxPending:          256,
		DeterministicTiming: true,
		TenantWeights:       map[string]int{"victim": 1, "vip": 8},
	}
	cfgGate := cfg
	cfgGate.WrapEvaluator = func(id string, inner hpo.Evaluator) hpo.Evaluator {
		if id != "job-1" {
			return inner
		}
		// Gate only the victim's first evaluation so the vip backlog is
		// in place before any rung completes.
		return &gateOnceEvaluator{inner: inner, gate: gate, entered: entered}
	}
	m := NewManager(cfgGate)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	victim, err := m.Submit(wideSpec("victim"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 0; i < 6; i++ {
		if _, err := m.Submit(tinySpec("vip", uint64(50+i))); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	waitJob(t, m, victim.ID, func(s Status) bool { return s == StatusDone }, "done")
	snap := victim.Snapshot()
	if snap.Preemptions == 0 {
		t.Fatal("victim was never preempted; the test exercised nothing")
	}
	if got := m.Metrics().Preemptions; got == 0 {
		t.Error("Metrics().Preemptions = 0 after a preemption")
	}
	if got := m.Metrics().Resumes; got == 0 {
		t.Error("Metrics().Resumes = 0 after a resume")
	}

	// The twin runs the same spec alone on a fresh manager: same seeds,
	// same synthetic data, no preemption.
	m2 := NewManager(Config{
		PoolSize:            1,
		MaxJobs:             1,
		DeterministicTiming: true,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m2.Shutdown(ctx)
	})
	twin, err := m2.Submit(wideSpec("victim"))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m2, twin.ID, func(s Status) bool { return s == StatusDone }, "done")
	twinSnap := twin.Snapshot()
	if twinSnap.Preemptions != 0 {
		t.Fatalf("twin was preempted %d times; it must run alone", twinSnap.Preemptions)
	}
	got, err := json.Marshal(snap.Curve)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(twinSnap.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("preempted curve differs from solo twin\npreempted: %s\nsolo:      %s", got, want)
	}
	if snap.Evaluations != twinSnap.Evaluations {
		t.Errorf("evaluations differ: preempted %d vs solo %d", snap.Evaluations, twinSnap.Evaluations)
	}
}

// gateOnceEvaluator blocks only its first evaluation.
type gateOnceEvaluator struct {
	inner   hpo.Evaluator
	gate    chan struct{}
	entered chan struct{}
	done    bool
}

func (g *gateOnceEvaluator) FullBudget() int { return g.inner.FullBudget() }

func (g *gateOnceEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if !g.done {
		g.done = true
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.gate
	}
	return g.inner.Evaluate(cfg, budget, r)
}

// TestTenantQuota429: the per-tenant queued-job quota sheds with a 429
// carrying the tenant name and a per-tenant Retry-After, while other
// tenants keep submitting freely; Metrics counts the quota sheds
// separately from global backpressure.
func TestTenantQuota429(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	first := true
	ts, m := newTestServer(t, Config{
		PoolSize:    1,
		MaxJobs:     1,
		MaxPending:  64,
		TenantQuota: 2,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			ev := &instantEvaluator{inner: inner, gate: gate, gated: first, entered: entered}
			first = false
			return ev
		},
	})
	defer close(gate)

	// Job 1 runs (gated); jobs 2 and 3 fill tenant alpha's quota of 2
	// queued jobs.
	resp := postRaw(t, ts.URL, tinySpec("alpha", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-entered
	for i := 0; i < 2; i++ {
		resp := postRaw(t, ts.URL, tinySpec("alpha", uint64(2+i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued job %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// The third queued submission breaches the quota.
	resp = postRaw(t, ts.URL, tinySpec("alpha", 9))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("over-quota 429 missing Retry-After")
	}
	var body struct {
		Error  string `json:"error"`
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Tenant != "alpha" {
		t.Errorf("429 body tenant = %q, want alpha", body.Tenant)
	}
	// Another tenant is unaffected by alpha's quota.
	resp2 := postRaw(t, ts.URL, tinySpec("beta", 1))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("beta submit: status %d, want 202", resp2.StatusCode)
	}
	resp2.Body.Close()
	if got := m.Metrics().QuotaShed; got != 1 {
		t.Errorf("QuotaShed = %d, want 1", got)
	}
}

// TestBatchAtomicAdmission: POST /jobs:batch admits all or nothing —
// a batch that would breach one tenant's quota registers zero jobs,
// and the same batch under quota registers all of them.
func TestBatchAtomicAdmission(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	first := true
	ts, m := newTestServer(t, Config{
		PoolSize:    1,
		MaxJobs:     1,
		MaxPending:  64,
		TenantQuota: 2,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			ev := &instantEvaluator{inner: inner, gate: gate, gated: first, entered: entered}
			first = false
			return ev
		},
	})
	defer close(gate)

	// Occupy the run slot so batch items all count as queued.
	resp := postRaw(t, ts.URL, tinySpec("other", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("barrier: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-entered

	postBatch := func(specs []JobSpec) *http.Response {
		t.Helper()
		payload, _ := json.Marshal(map[string]any{"jobs": specs})
		resp, err := http.Post(ts.URL+"/jobs:batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Three queued jobs for one tenant breach its quota of 2: the whole
	// batch — including the in-quota prefix — must be rejected.
	resp = postBatch([]JobSpec{tinySpec("gamma", 1), tinySpec("gamma", 2), tinySpec("gamma", 3)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
	for _, j := range m.Jobs() {
		if j.Spec.Tenant == "gamma" {
			t.Fatalf("over-quota batch leaked job %s: batches must admit all or nothing", j.ID)
		}
	}
	// Under quota the same tenant's batch lands whole.
	resp = postBatch([]JobSpec{tinySpec("gamma", 1), tinySpec("gamma", 2)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("in-quota batch: status %d, want 202", resp.StatusCode)
	}
	var ok struct {
		Jobs []Snapshot `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ok.Jobs) != 2 {
		t.Fatalf("in-quota batch returned %d snapshots, want 2", len(ok.Jobs))
	}
	for _, s := range ok.Jobs {
		if s.Tenant != "gamma" {
			t.Errorf("batch snapshot %s tenant = %q, want gamma", s.ID, s.Tenant)
		}
	}
	// A validation error reports the offending item's index and admits
	// nothing.
	bad := []JobSpec{tinySpec("delta", 1), {Tenant: "delta", Dataset: "nope", Method: "random"}}
	resp = postBatch(bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch: status %d, want 400", resp.StatusCode)
	}
	var errBody struct {
		Error string `json:"error"`
		Index *int   `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if errBody.Index == nil || *errBody.Index != 1 {
		t.Errorf("invalid batch index = %v, want 1", errBody.Index)
	}
	for _, j := range m.Jobs() {
		if j.Spec.Tenant == "delta" {
			t.Fatalf("invalid batch leaked job %s", j.ID)
		}
	}
}

// TestTenantFilterAndStatus: GET /jobs?tenant=X filters the listing,
// snapshots carry the tenant, and GET /tenants reports per-tenant
// accounting.
func TestTenantFilterAndStatus(t *testing.T) {
	ts, m := newTestServer(t, Config{
		PoolSize:      1,
		MaxJobs:       2,
		TenantWeights: map[string]int{"x": 2},
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			return &instantEvaluator{inner: inner}
		},
	})
	jx, err := m.Submit(tinySpec("x", 1))
	if err != nil {
		t.Fatal(err)
	}
	jy, err := m.Submit(tinySpec("y", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, jx.ID, func(s Status) bool { return s == StatusDone }, "done")
	waitJob(t, m, jy.ID, func(s Status) bool { return s == StatusDone }, "done")

	var listing []Snapshot
	getJSON(t, ts.URL+"/jobs?tenant=x", &listing)
	if len(listing) != 1 || listing[0].ID != jx.ID {
		t.Fatalf("?tenant=x returned %+v, want exactly %s", listing, jx.ID)
	}
	if listing[0].Tenant != "x" {
		t.Errorf("snapshot tenant = %q, want x", listing[0].Tenant)
	}
	var tenants struct {
		Tenants []TenantStatus `json:"tenants"`
	}
	getJSON(t, ts.URL+"/tenants", &tenants)
	byName := map[string]TenantStatus{}
	for _, row := range tenants.Tenants {
		byName[row.Tenant] = row
	}
	x, okX := byName["x"]
	y, okY := byName["y"]
	if !okX || !okY {
		t.Fatalf("/tenants missing rows: %+v", tenants.Tenants)
	}
	if x.Weight != 2 || y.Weight != 1 {
		t.Errorf("weights x=%d y=%d, want 2 and 1", x.Weight, y.Weight)
	}
	if x.JobsDone != 1 || y.JobsDone != 1 {
		t.Errorf("jobs done x=%d y=%d, want 1 and 1", x.JobsDone, y.JobsDone)
	}
	if x.Evaluations == 0 || x.ServiceUnits == 0 {
		t.Errorf("tenant x accounting empty: %+v", x)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestPoolInflightGauge: pool_inflight must equal true slot occupancy
// while evaluations hold slots and return to zero after — the gauge is
// bracketed by slot ownership, so the old Acquire/Release race cannot
// under-report.
func TestPoolInflightGauge(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	m := NewManager(Config{
		PoolSize: 2,
		MaxJobs:  2,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			return &instantEvaluator{inner: inner, gate: gate, gated: true, entered: entered}
		},
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	j1, err := m.Submit(tinySpec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(tinySpec("b", 1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	<-entered
	if got := m.Metrics().PoolInflight; got != 2 {
		t.Errorf("PoolInflight = %d with 2 gated evaluations, want 2", got)
	}
	if got := m.pool.InUse(); got != 2 {
		t.Errorf("pool.InUse = %d with 2 gated evaluations, want 2", got)
	}
	close(gate)
	waitJob(t, m, j1.ID, func(s Status) bool { return s == StatusDone }, "done")
	waitJob(t, m, j2.ID, func(s Status) bool { return s == StatusDone }, "done")
	if got := m.Metrics().PoolInflight; got != 0 {
		t.Errorf("PoolInflight = %d after all jobs done, want 0", got)
	}
	if got := m.pool.InUse(); got != 0 {
		t.Errorf("pool.InUse = %d after all jobs done, want 0", got)
	}
}

// TestTenantAccountingSurvivesRestart: a journaled service restarted
// after multi-tenant traffic (including a preemption) rebuilds the
// per-tenant evaluation, service and preemption counters from the
// journal alone.
func TestTenantAccountingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	cfg := Config{
		PoolSize:            1,
		MaxJobs:             1,
		MaxPending:          256,
		DataDir:             dir,
		DeterministicTiming: true,
		TenantWeights:       map[string]int{"victim": 1, "vip": 8},
	}
	cfgGate := cfg
	cfgGate.WrapEvaluator = func(id string, inner hpo.Evaluator) hpo.Evaluator {
		if id != "job-1" {
			return inner
		}
		return &gateOnceEvaluator{inner: inner, gate: gate, entered: entered}
	}
	m1, err := NewManagerFromJournal(cfgGate)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m1.Submit(wideSpec("victim"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	var vips []*Job
	for i := 0; i < 4; i++ {
		j, err := m1.Submit(tinySpec("vip", uint64(70+i)))
		if err != nil {
			t.Fatal(err)
		}
		vips = append(vips, j)
	}
	close(gate)
	waitJob(t, m1, victim.ID, func(s Status) bool { return s == StatusDone }, "done")
	for _, j := range vips {
		waitJob(t, m1, j.ID, func(s Status) bool { return s == StatusDone }, "done")
	}
	if victim.Snapshot().Preemptions == 0 {
		t.Fatal("victim was never preempted")
	}
	before := tenantRows(m1.Tenants())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManagerFromJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m2.Shutdown(ctx)
	})
	after := tenantRows(m2.Tenants())
	for _, name := range []string{"victim", "vip"} {
		b, a := before[name], after[name]
		if a.Evaluations != b.Evaluations {
			t.Errorf("%s evaluations: %d before restart, %d after", name, b.Evaluations, a.Evaluations)
		}
		if a.Preemptions != b.Preemptions {
			t.Errorf("%s preemptions: %d before restart, %d after", name, b.Preemptions, a.Preemptions)
		}
		if a.ServiceUnits != b.ServiceUnits {
			t.Errorf("%s service units: %.1f before restart, %.1f after", name, b.ServiceUnits, a.ServiceUnits)
		}
		if a.JobsDone != b.JobsDone {
			t.Errorf("%s jobs done: %d before restart, %d after", name, b.JobsDone, a.JobsDone)
		}
	}
	if after["victim"].Preemptions == 0 {
		t.Error("victim preemption count lost across restart")
	}
	// The restored job's own snapshot keeps its yield count too (the
	// result record carries it, so even compaction cannot drop it).
	restored, ok := m2.Get(victim.ID)
	if !ok {
		t.Fatalf("victim %s missing after restart", victim.ID)
	}
	if restored.Snapshot().Preemptions == 0 {
		t.Error("restored victim snapshot lost its preemptions count")
	}
}

func tenantRows(rows []TenantStatus) map[string]TenantStatus {
	out := make(map[string]TenantStatus, len(rows))
	for _, r := range rows {
		out[r.Tenant] = r
	}
	return out
}

// TestBatchDedup: resubmitting a batch under the same X-Submit-Token
// returns the originally registered jobs instead of duplicating them.
func TestBatchDedup(t *testing.T) {
	ts, m := newTestServer(t, Config{
		PoolSize: 1,
		MaxJobs:  2,
		WrapEvaluator: func(id string, inner hpo.Evaluator) hpo.Evaluator {
			return &instantEvaluator{inner: inner}
		},
	})
	specs := []JobSpec{tinySpec("a", 1), tinySpec("a", 2)}
	post := func() []Snapshot {
		t.Helper()
		payload, _ := json.Marshal(map[string]any{"jobs": specs})
		req, err := http.NewRequest("POST", ts.URL+"/jobs:batch", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Submit-Token", "batch-token-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch: status %d", resp.StatusCode)
		}
		var out struct {
			Jobs []Snapshot `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs
	}
	first := post()
	second := post()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("batch sizes %d and %d, want 2 and 2", len(first), len(second))
	}
	for i := range first {
		if first[i].ID != second[i].ID {
			t.Errorf("replayed batch item %d got new job %s (was %s)", i, second[i].ID, first[i].ID)
		}
	}
	if got := len(m.Jobs()); got != 2 {
		t.Errorf("job table has %d jobs after replayed batch, want 2", got)
	}
}

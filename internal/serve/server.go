package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/serve/sched"
	"enhancedbhpo/internal/trace"
)

// Server exposes a Manager over HTTP/JSON.
//
//	POST   /jobs               submit a JobSpec, returns the queued job
//	                           snapshot; 429 + Retry-After when the pending
//	                           queue is full or the tenant is at quota,
//	                           503 while draining
//	POST   /jobs:batch         submit several JobSpecs atomically: all are
//	                           admitted (against the global cap and every
//	                           tenant's quota, counting the batch itself)
//	                           or none is; 400 names the offending item
//	GET    /jobs               list all jobs (snapshots without curves);
//	                           ?tenant=X filters to one tenant
//	GET    /tenants            per-tenant weighted-fair usage: weight,
//	                           virtual time, queue depth, evaluations,
//	                           service units, shed and preemption counts
//	GET    /jobs/{id}          one job's status + live anytime curve;
//	                           ?since=N returns only curve points past
//	                           event sequence N (incremental poll)
//	GET    /jobs/{id}/events   live telemetry as Server-Sent Events with
//	                           Last-Event-ID resume
//	GET    /jobs/{id}/trace    the full anytime curve, durable across
//	                           restarts; ?events=1 for the raw event log
//	DELETE /jobs/{id}          cancel a job (idempotent on terminal jobs)
//	GET    /methods            registered optimizers (name, aliases,
//	                           capabilities)
//	GET    /healthz            liveness/readiness probe (ok|overloaded|draining)
//	GET    /metrics            service counters (jobs, pool, cache, events,
//	                           eval rate)
type Server struct {
	manager  *Manager
	mux      *http.ServeMux
	draining atomic.Bool

	// drainCh is closed when drain mode turns on, telling long-lived SSE
	// streams to end so graceful shutdown is not held open by them.
	drainMu sync.Mutex
	drainCh chan struct{}
}

// NewServer wires the HTTP routes around the manager.
func NewServer(m *Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux(), drainCh: make(chan struct{})}
	s.mux.HandleFunc("POST /jobs", s.submitJob)
	s.mux.HandleFunc("POST /jobs:batch", s.submitBatch)
	s.mux.HandleFunc("GET /jobs", s.listJobs)
	s.mux.HandleFunc("GET /tenants", s.listTenants)
	s.mux.HandleFunc("GET /jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.jobEvents)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.jobTrace)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("GET /methods", s.listMethods)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining toggles drain mode: while draining, POST /jobs is refused
// with 503 so in-flight work can finish and be journaled before the
// daemon exits, and open SSE event streams are closed so they cannot
// hold the graceful shutdown open. Reads (status, metrics, health) keep
// working.
func (s *Server) SetDraining(on bool) {
	s.draining.Store(on)
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	select {
	case <-s.drainCh:
		if !on {
			s.drainCh = make(chan struct{})
		}
	default:
		if on {
			close(s.drainCh)
		}
	}
}

// drainSignal returns the channel closed when drain mode turns on.
func (s *Server) drainSignal() <-chan struct{} {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.drainCh
}

// errorBody is the JSON error envelope. Field names the JobSpec field a
// validation error points at, when one does.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
	// Index points at the offending batch item (zero-based) when a
	// /jobs:batch submission fails validation.
	Index *int `json:"index,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	// X-Submit-Token is the coordinator's idempotency key: a retried
	// submission (the first attempt's ack was lost) with the same token
	// returns the already-accepted job instead of running the work twice.
	job, err := s.manager.SubmitToken(spec, r.Header.Get("X-Submit-Token"))
	if s.writeShed(w, err) {
		return
	}
	var fieldErr *SpecFieldError
	if errors.As(err, &fieldErr) {
		// Spec validation failure: name the offending field so clients can
		// fix the submission instead of guessing.
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Field: fieldErr.Field})
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

// writeShed maps admission-control rejections to 429: a global-cap shed
// is priced for the whole service, a per-tenant quota shed for that
// tenant's own queue and weighted fair share. Returns whether it wrote a
// response.
func (s *Server) writeShed(w http.ResponseWriter, err error) bool {
	var quotaErr *sched.QuotaError
	switch {
	case errors.As(err, &quotaErr):
		secs := retryAfterSeconds(s.manager.RetryAfterTenant(quotaErr.Tenant))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, overloadBody{
			Error:         err.Error(),
			Tenant:        quotaErr.Tenant,
			RetryAfterSec: secs,
		})
		return true
	case errors.Is(err, ErrOverloaded):
		// Shed load instead of queueing unboundedly. Retry-After is
		// priced from the observed evaluation latency EWMA and the queue
		// depth, so clients back off proportionally to the actual
		// backlog.
		secs := retryAfterSeconds(s.manager.RetryAfter())
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, overloadBody{
			Error:         err.Error(),
			RetryAfterSec: secs,
		})
		return true
	}
	return false
}

// batchRequest is the POST /jobs:batch body.
type batchRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// batchResponse is the POST /jobs:batch 202 payload: snapshots
// index-aligned with the submitted specs.
type batchResponse struct {
	Jobs []Snapshot `json:"jobs"`
}

func (s *Server) submitBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	jobs, err := s.manager.SubmitBatch(req.Jobs, r.Header.Get("X-Submit-Token"))
	if s.writeShed(w, err) {
		return
	}
	var batchErr *BatchError
	if errors.As(err, &batchErr) {
		idx := batchErr.Index
		body := errorBody{Error: err.Error(), Index: &idx}
		var fieldErr *SpecFieldError
		if errors.As(batchErr.Err, &fieldErr) {
			body.Field = fieldErr.Field
		}
		writeJSON(w, http.StatusBadRequest, body)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := batchResponse{Jobs: make([]Snapshot, len(jobs))}
	for i, job := range jobs {
		snap := job.Snapshot()
		snap.Curve = nil
		snap.Sparkline = ""
		out.Jobs[i] = snap
	}
	writeJSON(w, http.StatusAccepted, out)
}

// tenantsResponse is the GET /tenants payload.
type tenantsResponse struct {
	Tenants []TenantStatus `json:"tenants"`
}

func (s *Server) listTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tenantsResponse{Tenants: s.manager.Tenants()})
}

// methodBody is one GET /methods entry: the registry's view of an
// optimizer, so clients can discover what is servable and which spec
// fields each method honors.
type methodBody struct {
	Name             string   `json:"name"`
	Aliases          []string `json:"aliases,omitempty"`
	Description      string   `json:"description,omitempty"`
	BudgetAware      bool     `json:"budget_aware"`
	HonorsWorkers    bool     `json:"honors_workers"`
	HonorsMaxConfigs bool     `json:"honors_max_configs"`
	HonorsTrials     bool     `json:"honors_trials"`
}

func (s *Server) listMethods(w http.ResponseWriter, r *http.Request) {
	infos := hpo.Methods()
	out := make([]methodBody, 0, len(infos))
	for _, info := range infos {
		out = append(out, methodBody{
			Name:             info.Name,
			Aliases:          info.Aliases,
			Description:      info.Description,
			BudgetAware:      info.BudgetAware,
			HonorsWorkers:    info.HonorsWorkers,
			HonorsMaxConfigs: info.HonorsMaxConfigs,
			HonorsTrials:     info.HonorsTrials,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// overloadBody is the 429 payload: the error plus the same retry hint as
// the Retry-After header, for clients that only read bodies.
type overloadBody struct {
	Error string `json:"error"`
	// Tenant is set when the shed was a per-tenant quota rejection (the
	// rest of the service may still be accepting other tenants' work).
	Tenant        string `json:"tenant,omitempty"`
	RetryAfterSec int    `json:"retry_after_sec"`
}

// retryAfterSeconds renders a positive whole-second Retry-After value.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	jobs := s.manager.Jobs()
	out := make([]Snapshot, 0, len(jobs))
	for _, j := range jobs {
		if tenant != "" && j.tenant() != tenant {
			continue
		}
		snap := j.Snapshot()
		// Keep the listing light: curves and stacks are per-job payloads.
		snap.Curve = nil
		snap.Sparkline = ""
		snap.Stack = ""
		out = append(out, snap)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	snap := job.Snapshot()
	snap.LastSeq = s.manager.hub.LastSeq(job.ID)
	if v := r.URL.Query().Get("since"); v != "" {
		since, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since %q", v)
			return
		}
		// Incremental poll: only the curve points past event sequence
		// `since`. The client keeps its own prefix and appends these;
		// last_seq is the cursor for the next poll. The sparkline is
		// omitted — it renders the full curve, not a delta.
		curve := make([]trace.Point, 0)
		for _, ev := range s.manager.hub.Since(job.ID, since) {
			if ev.Type == events.TypeCurvePoint && ev.Point != nil {
				curve = append(curve, *ev.Point)
			}
		}
		snap.Curve = curve
		snap.Sparkline = ""
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	// Idempotent on terminal jobs: a repeated DELETE (retried request,
	// lost response) observes the settled state instead of a conflict.
	if terminalStatus(job.Status()) {
		writeJSON(w, http.StatusOK, job.Snapshot())
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

type healthBody struct {
	// Status is ok, overloaded (pending queue full, POST /jobs shedding
	// with 429) or draining (shutting down, POST /jobs refused with 503).
	Status string `json:"status"`
	// Node is the cluster node name (bhpod -node), empty standalone. The
	// coordinator's prober reads it to confirm it is probing who it thinks.
	Node       string  `json:"node,omitempty"`
	UptimeSec  float64 `json:"uptime_sec"`
	Pending    int     `json:"pending"`
	MaxPending int     `json:"max_pending"`
	// Kernel is the active matmul kernel family (naive/blocked/simd) and
	// CPUFeatures the detected SIMD feature set; FuseEvals reports
	// whether cross-trial fused evaluation is enabled. Surfaced here so
	// an operator's first probe shows what compute path the node runs.
	Kernel      string `json:"kernel"`
	CPUFeatures string `json:"cpu_features,omitempty"`
	FuseEvals   bool   `json:"fuse_evals"`
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	switch {
	case s.draining.Load():
		status = "draining"
	case s.manager.Overloaded():
		status = "overloaded"
	}
	writeJSON(w, http.StatusOK, healthBody{
		Status:      status,
		Node:        s.manager.cfg.NodeName,
		UptimeSec:   time.Since(s.manager.started).Seconds(),
		Pending:     s.manager.PendingDepth(),
		MaxPending:  s.manager.cfg.MaxPending,
		Kernel:      mat.ActiveKernel().String(),
		CPUFeatures: mat.CPUFeatures(),
		FuseEvals:   !s.manager.cfg.DisableEvalFusion,
	})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Metrics())
}

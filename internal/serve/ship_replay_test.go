package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"enhancedbhpo/internal/serve/journal"
	"enhancedbhpo/internal/serve/shipper"
)

// TestReplayFromShippedMatchesLocal is the journal-shipping contract:
// after a job runs on a node whose shipper replicates synchronously, the
// shipped copy must be a byte-for-byte replica of the node's own data
// dir — journal segments, bases and traces — and journal.Replay over the
// restored copy must reconstruct the identical job state. This is what
// makes a replacement node's curves and SSE sequences indistinguishable
// from the dead node's.
func TestReplayFromShippedMatchesLocal(t *testing.T) {
	dataDir := t.TempDir()
	shipRoot := t.TempDir()
	sink, err := shipper.NewDirSink(filepath.Join(shipRoot, "a"))
	if err != nil {
		t.Fatal(err)
	}
	ship := shipper.New(dataDir, sink, shipper.Options{Sync: true})
	m, err := NewManagerFromJournal(Config{
		PoolSize: 2, MaxJobs: 2, DataDir: dataDir, NodeName: "a", Shipper: ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := m.Submit(JobSpec{
		Dataset: "australian", Scale: 0.06, Method: "sha",
		NumHPs: 2, MaxConfigs: 6, Iters: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID, func(s Status) bool { return s == StatusDone }, "done")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ship.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ship.Stats(); st.SegmentsShipped == 0 || st.Bytes == 0 {
		t.Fatalf("nothing shipped: %+v", st)
	}

	restored := t.TempDir()
	if err := shipper.Restore(filepath.Join(shipRoot, "a"), restored); err != nil {
		t.Fatal(err)
	}

	// Byte-for-byte: every file under the node's data dir must exist in
	// the restored replica with identical content.
	files := 0
	err = filepath.WalkDir(dataDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(dataDir, path)
		local, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		shipped, err := os.ReadFile(filepath.Join(restored, rel))
		if err != nil {
			t.Fatalf("file %s missing from restored replica: %v", rel, err)
		}
		if !bytes.Equal(local, shipped) {
			t.Fatalf("file %s differs: local %d bytes, restored %d bytes", rel, len(local), len(shipped))
		}
		files++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 {
		t.Fatal("data dir is empty; the test exercised nothing")
	}

	// Replay equivalence: both dirs reconstruct the same job states.
	localStates, err := journal.Replay(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	shippedStates, err := journal.Replay(restored)
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(localStates)
	sj, _ := json.Marshal(shippedStates)
	if !bytes.Equal(lj, sj) {
		t.Fatalf("replayed states differ:\nlocal:   %s\nshipped: %s", lj, sj)
	}
	if len(localStates) != 1 || len(localStates[0].Curve) == 0 {
		t.Fatalf("replay shape unexpected: %d states", len(localStates))
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"sync"

	"enhancedbhpo/internal/serve/shipper"
)

// StandbyOptions configures a Standby handler.
type StandbyOptions struct {
	// DataDir is the standby's scratch root: a restore for node N
	// materializes its replica under DataDir/N, so one standby can be
	// retried for a different node after a failed activation without
	// colliding with the earlier attempt's directory.
	DataDir string
	// Activate builds the real node handler once a replica has been
	// restored into dataDir — cmd/bhpod wires it to NewManagerFromJournal
	// + NewServer with the adopted node name. Returning an error leaves
	// the standby inactive (the coordinator quarantines it and tries the
	// next standby).
	Activate func(node, dataDir string) (http.Handler, error)
}

// Standby is the handler a spare bhpod process serves while it waits to
// be promoted. Inactive, it answers GET /healthz with status "standby"
// (so the coordinator can track the pool) and refuses everything else
// with 503 — it owns no jobs yet. POST /restore, the coordinator's
// promotion call, restores the first verifying replica of a dead node
// into the standby's data dir, activates the real server over it, and
// atomically swaps it in: from the next request on, the standby *is*
// the dead node, serving its jobs, curves and SSE sequences.
type Standby struct {
	opts StandbyOptions

	mu     sync.RWMutex
	active http.Handler
	node   string
}

// NewStandby returns an inactive standby handler.
func NewStandby(opts StandbyOptions) *Standby {
	return &Standby{opts: opts}
}

// Active returns the node name this standby was promoted to, or "".
func (s *Standby) Active() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.node
}

// restoreRequest is the coordinator's POST /restore payload: the dead
// node's identity and its candidate replica directories in preference
// order (the coordinator lists every verified sink replica; the standby
// re-verifies and uses the first that restores cleanly).
type restoreRequest struct {
	Node    string   `json:"node"`
	Sources []string `json:"sources"`
}

// restoreResponse reports a successful promotion: which replica was used.
type restoreResponse struct {
	Node   string `json:"node"`
	Source string `json:"source"`
}

// ServeHTTP implements http.Handler: the promoted server once active,
// the standby protocol before.
func (s *Standby) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	active := s.active
	s.mu.RUnlock()
	if active != nil {
		active.ServeHTTP(w, r)
		return
	}
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		writeJSON(w, http.StatusOK, healthBody{Status: "standby"})
	case r.Method == http.MethodPost && r.URL.Path == "/restore":
		s.restore(w, r)
	default:
		writeError(w, http.StatusServiceUnavailable, "standby: not active")
	}
}

// restore handles the promotion call. Serialized: a second restore
// racing the first gets a conflict instead of a double activation.
func (s *Standby) restore(w http.ResponseWriter, r *http.Request) {
	var req restoreRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding restore request: %v", err)
		return
	}
	if req.Node == "" || len(req.Sources) == 0 {
		writeError(w, http.StatusBadRequest, "restore needs node and sources")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil {
		writeError(w, http.StatusConflict, "standby: already active as %s", s.node)
		return
	}
	dataDir := filepath.Join(s.opts.DataDir, req.Node)
	used, err := shipper.RestoreAny(req.Sources, dataDir)
	if err != nil {
		writeError(w, http.StatusBadGateway, "restore: %v", err)
		return
	}
	h, err := s.opts.Activate(req.Node, dataDir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "activating %s: %v", req.Node, err)
		return
	}
	s.active = h
	s.node = req.Node
	writeJSON(w, http.StatusOK, restoreResponse{Node: req.Node, Source: used})
}

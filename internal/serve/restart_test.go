package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// jsonDecode drains a response body into v.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// waitJob polls a job until its status satisfies want.
func waitJob(t *testing.T, m *Manager, id string, want func(Status) bool, desc string) *Job {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s missing", id)
		}
		if want(j.Status()) {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (last: %s)", id, desc, j.Status())
	panic("unreachable")
}

// gateEvaluator blocks every evaluation on a gate channel — the
// fault-injection hook uses it to freeze a job mid-run so the test can
// simulate a daemon killed with an evaluation in flight.
type gateEvaluator struct {
	inner   hpo.Evaluator
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *gateEvaluator) FullBudget() int { return g.inner.FullBudget() }

func (g *gateEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	return g.inner.Evaluate(cfg, budget, r)
}

// panicEvaluator panics on every evaluation, imitating an adversarial
// config driving the MLP into a degenerate shape.
type panicEvaluator struct{ inner hpo.Evaluator }

func (p panicEvaluator) FullBudget() int { return p.inner.FullBudget() }

func (p panicEvaluator) Evaluate(search.Config, int, *rng.RNG) ([]float64, error) {
	panic("injected: degenerate network shape")
}

// flakyEvaluator fails (or panics) on the first failFirst calls, then
// behaves normally — a transient fault for the retry path.
type flakyEvaluator struct {
	inner     hpo.Evaluator
	failFirst int64
	panics    bool
	calls     atomic.Int64
}

func (f *flakyEvaluator) FullBudget() int { return f.inner.FullBudget() }

func (f *flakyEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if f.calls.Add(1) <= f.failFirst {
		if f.panics {
			panic("injected: transient panic")
		}
		return nil, errors.New("injected: transient failure")
	}
	return f.inner.Evaluate(cfg, budget, r)
}

// TestRestartRecovery is the kill/restart e2e: a manager with three jobs
// (one finished, one frozen mid-evaluation, one still queued) is
// abandoned without shutdown — the moral equivalent of kill -9 — and a
// second manager recovers the same data dir. The finished job must come
// back with its anytime curve and scores intact, the mid-run job must be
// marked cancelled/interrupted, and the queued job must be re-enqueued
// and run to completion.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	entered := make(chan struct{})
	gateEv := &gateEvaluator{gate: gate, entered: entered}
	wrap := func(id string, inner hpo.Evaluator) hpo.Evaluator {
		if id == "job-2" {
			gateEv.inner = inner
			return gateEv
		}
		return inner
	}
	m1, err := NewManagerFromJournal(Config{PoolSize: 2, MaxJobs: 1, DataDir: dir, WrapEvaluator: wrap})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m1.Shutdown(ctx); err != nil {
			t.Errorf("m1 shutdown: %v", err)
		}
	})

	// job-1 runs to completion; its terminal record is fsynced.
	j1, err := m1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m1, j1.ID, func(s Status) bool { return s == StatusDone }, "done")
	snap1 := j1.Snapshot()
	if len(snap1.Curve) == 0 || snap1.BestScore == nil || snap1.TestScore == nil {
		t.Fatalf("job-1 finished without results: %+v", snap1)
	}

	// job-2 freezes inside its first evaluation (mid-run at the "crash").
	spec2 := smallSpec()
	spec2.Seed = 11
	j2, err := m1.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != "job-2" {
		t.Fatalf("second job is %s", j2.ID)
	}
	<-entered
	waitJob(t, m1, j2.ID, func(s Status) bool { return s == StatusRunning }, "running")

	// job-3 stays queued behind MaxJobs=1.
	spec3 := smallSpec()
	spec3.Seed = 17
	j3, err := m1.Submit(spec3)
	if err != nil {
		t.Fatal(err)
	}
	if got := j3.Status(); got != StatusQueued {
		t.Fatalf("third job status %s, want queued", got)
	}

	// "Kill" the daemon: no shutdown, no journal close. Recover the same
	// data dir in a fresh manager (no fault injection this time).
	m2, err := NewManagerFromJournal(Config{PoolSize: 2, MaxJobs: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := m2.Shutdown(ctx); err != nil {
			t.Errorf("m2 shutdown: %v", err)
		}
	})

	// Finished job: terminal results and anytime curve preserved.
	r1, ok := m2.Get("job-1")
	if !ok {
		t.Fatal("job-1 lost across restart")
	}
	rs1 := r1.Snapshot()
	if rs1.Status != StatusDone {
		t.Fatalf("recovered job-1 status %s", rs1.Status)
	}
	if len(rs1.Curve) != len(snap1.Curve) {
		t.Fatalf("curve %d points, want %d", len(rs1.Curve), len(snap1.Curve))
	}
	for i := range snap1.Curve {
		if rs1.Curve[i] != snap1.Curve[i] {
			t.Fatalf("curve point %d: %+v != %+v", i, rs1.Curve[i], snap1.Curve[i])
		}
	}
	if rs1.BestScore == nil || *rs1.BestScore != *snap1.BestScore {
		t.Fatalf("best score lost: %v != %v", rs1.BestScore, snap1.BestScore)
	}
	if rs1.TestScore == nil || *rs1.TestScore != *snap1.TestScore {
		t.Fatalf("test score lost: %v != %v", rs1.TestScore, snap1.TestScore)
	}
	if rs1.Evaluations != snap1.Evaluations {
		t.Fatalf("evaluations %d, want %d", rs1.Evaluations, snap1.Evaluations)
	}
	for k, v := range snap1.BestConfig {
		if fmt.Sprint(rs1.BestConfig[k]) != fmt.Sprint(v) {
			t.Fatalf("best config differs at %s: %v != %v", k, rs1.BestConfig[k], v)
		}
	}

	// Mid-run job: marked interrupted.
	r2, ok := m2.Get("job-2")
	if !ok {
		t.Fatal("job-2 lost across restart")
	}
	rs2 := r2.Snapshot()
	if rs2.Status != StatusCancelled || rs2.Reason != ReasonInterrupted {
		t.Fatalf("recovered job-2: status %s reason %q", rs2.Status, rs2.Reason)
	}

	// Queued job: re-enqueued and replayed to completion for real.
	r3 := waitJob(t, m2, "job-3", func(s Status) bool { return s == StatusDone }, "done after replay")
	rs3 := r3.Snapshot()
	if rs3.Evaluations == 0 || rs3.BestScore == nil {
		t.Fatalf("replayed job-3 has no results: %+v", rs3)
	}
	if rs3.Spec.Seed != 17 {
		t.Fatalf("replayed job-3 spec seed %d, want 17", rs3.Spec.Seed)
	}

	// Fresh submissions continue the ID sequence past recovered jobs.
	j4, err := m2.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID != "job-4" {
		t.Fatalf("post-recovery submission got ID %s, want job-4", j4.ID)
	}
}

// TestPanicIsolation verifies fault isolation on the shared pool: a job
// whose every evaluation panics must fail alone — with the captured
// stack in its record — while a sibling job sharing the pool finishes.
func TestPanicIsolation(t *testing.T) {
	wrap := func(id string, inner hpo.Evaluator) hpo.Evaluator {
		if id == "job-1" {
			return panicEvaluator{inner: inner}
		}
		return inner
	}
	m := NewManager(Config{
		PoolSize: 2, MaxJobs: 2,
		EvalAttempts: 2, RetryBackoff: time.Millisecond, FailureBudget: 2,
		WrapEvaluator: wrap,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	bad, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	goodSpec := smallSpec()
	goodSpec.Seed = 11
	good, err := m.Submit(goodSpec)
	if err != nil {
		t.Fatal(err)
	}

	waitJob(t, m, bad.ID, terminal, "terminal")
	waitJob(t, m, good.ID, terminal, "terminal")

	bs := bad.Snapshot()
	if bs.Status != StatusFailed {
		t.Fatalf("panicking job ended %s (%s)", bs.Status, bs.Error)
	}
	if !strings.Contains(bs.Error, "panicked") {
		t.Fatalf("failed job error %q does not mention the panic", bs.Error)
	}
	if !strings.Contains(bs.Stack, "goroutine") {
		t.Fatalf("failed job record has no captured stack (got %q)", bs.Stack)
	}
	if bs.Failures <= 2 {
		t.Fatalf("failure budget never exceeded: %d failures", bs.Failures)
	}

	gs := good.Snapshot()
	if gs.Status != StatusDone {
		t.Fatalf("sibling job ended %s (%s) — panic leaked across jobs", gs.Status, gs.Error)
	}
	if gs.BestScore == nil || gs.TestScore == nil {
		t.Fatalf("sibling job missing results: %+v", gs)
	}
	if m.Metrics().TrialFailures < 3 {
		t.Fatalf("trial failures metric: %+v", m.Metrics())
	}
}

// TestTransientFailureRetried: a fault that clears after one attempt is
// absorbed by the retry, costing no failure budget.
func TestTransientFailureRetried(t *testing.T) {
	var flaky *flakyEvaluator
	wrap := func(id string, inner hpo.Evaluator) hpo.Evaluator {
		flaky = &flakyEvaluator{inner: inner, failFirst: 1}
		return flaky
	}
	m := NewManager(Config{
		PoolSize: 2, MaxJobs: 1,
		EvalAttempts: 2, RetryBackoff: time.Millisecond,
		WrapEvaluator: wrap,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	job, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID, terminal, "terminal")
	snap := job.Snapshot()
	if snap.Status != StatusDone {
		t.Fatalf("job ended %s (%s) despite retry", snap.Status, snap.Error)
	}
	if snap.Failures != 0 {
		t.Fatalf("transient fault charged the failure budget: %d", snap.Failures)
	}
	if m.Metrics().TrialFailures != 0 {
		t.Fatalf("transient fault counted as trial failure: %+v", m.Metrics())
	}
	if flaky.calls.Load() < 2 {
		t.Fatalf("no retry happened: %d calls", flaky.calls.Load())
	}
}

// TestFailureBudgetAbsorbsTrial: a fault that survives every retry fails
// only its trial (worst-case score) while the job still completes.
func TestFailureBudgetAbsorbsTrial(t *testing.T) {
	wrap := func(id string, inner hpo.Evaluator) hpo.Evaluator {
		// Panics on the first two calls: both attempts of the first
		// trial, making it a definitive — but absorbed — failure.
		return &flakyEvaluator{inner: inner, failFirst: 2, panics: true}
	}
	m := NewManager(Config{
		PoolSize: 2, MaxJobs: 1,
		EvalAttempts: 2, RetryBackoff: time.Millisecond, FailureBudget: 3,
		WrapEvaluator: wrap,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	spec := smallSpec()
	spec.Workers = 1 // sequential evaluations: calls 1..2 are one trial's attempts
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID, terminal, "terminal")
	snap := job.Snapshot()
	if snap.Status != StatusDone {
		t.Fatalf("job ended %s (%s): absorbed failure aborted the run", snap.Status, snap.Error)
	}
	if snap.Failures != 1 {
		t.Fatalf("%d failures recorded, want 1", snap.Failures)
	}
	if !strings.Contains(snap.Stack, "goroutine") {
		t.Fatal("absorbed failure left no stack in the job record")
	}
	if got := m.Metrics().TrialFailures; got != 1 {
		t.Fatalf("trial failures metric %d, want 1", got)
	}
}

// TestTimeoutReason: a job killed by its own TimeoutSec reports reason
// "timeout", not a bare cancelled.
func TestTimeoutReason(t *testing.T) {
	m := NewManager(Config{PoolSize: 2, MaxJobs: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	spec := bigSpec()
	spec.TimeoutSec = 0.3
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID, terminal, "terminal")
	snap := job.Snapshot()
	if snap.Status != StatusCancelled || snap.Reason != ReasonTimeout {
		t.Fatalf("timed-out job: status %s reason %q", snap.Status, snap.Reason)
	}
}

// TestShutdownWithInFlightJobs drives Manager.Shutdown while jobs are
// mid-run (run under -race via make check): it must cancel them with
// reason "shutdown" and return without deadlock.
func TestShutdownWithInFlightJobs(t *testing.T) {
	m := NewManager(Config{PoolSize: 2, MaxJobs: 4})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		spec := bigSpec()
		spec.Seed = uint64(i + 1)
		j, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	waitJob(t, m, jobs[0].ID, func(s Status) bool { return s == StatusRunning }, "running")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with in-flight jobs: %v", err)
	}
	for _, j := range jobs {
		snap := j.Snapshot()
		if !terminal(snap.Status) {
			t.Fatalf("job %s left %s after shutdown", j.ID, snap.Status)
		}
		if snap.Status == StatusCancelled && snap.Reason != ReasonShutdown {
			t.Fatalf("job %s cancelled with reason %q, want shutdown", j.ID, snap.Reason)
		}
	}
}

// TestDrainRefusesSubmissions: a draining server 503s new jobs, keeps
// serving reads, and reports draining on the health probe.
func TestDrainRefusesSubmissions(t *testing.T) {
	m := NewManager(Config{PoolSize: 1, MaxJobs: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	s := NewServer(m)
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub := postJob(t, ts.URL, smallSpec())
	s.SetDraining(true)

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"dataset":"australian","method":"sha"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /jobs: status %d, want 503", resp.StatusCode)
	}

	// Reads still work while draining.
	if snap := getJob(t, ts.URL, sub.ID); snap.ID != sub.ID {
		t.Fatalf("draining GET: %+v", snap)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := jsonDecode(hresp, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Fatalf("healthz while draining: %q", health.Status)
	}

	s.SetDraining(false)
	resp2, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"dataset":"australian","method":"sha","scale":0.06,"iters":2,"hps":2,"max_configs":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain POST /jobs: status %d, want 202", resp2.StatusCode)
	}
}

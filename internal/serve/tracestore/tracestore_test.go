package tracestore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/trace"
)

func point(i int) events.Event {
	return events.Event{
		Seq:   uint64(i),
		Type:  events.TypeCurvePoint,
		Time:  time.Unix(int64(i), int64(i)).UTC(),
		JobID: "job-1",
		Point: &trace.Point{Evaluations: i, CumBudget: 10 * i, CumTime: time.Duration(i) * time.Second, BestScore: float64(i) / 100},
	}
}

func terminalEvent(seq int) events.Event {
	return events.Event{Seq: uint64(seq), Type: events.TypeStatus, Time: time.Unix(int64(seq), 0).UTC(), JobID: "job-1", Status: "done", Terminal: true}
}

// TestAppendReadRoundTrip: events come back in order, bit-identical,
// and the terminal event closes the job's descriptor.
func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []events.Event
	for i := 1; i <= 5; i++ {
		ev := point(i)
		want = append(want, ev)
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	fin := terminalEvent(6)
	want = append(want, fin)
	if err := s.Append(fin); err != nil {
		t.Fatal(err)
	}
	if s.jobs["job-1"].f != nil {
		t.Fatal("terminal event left the job file open")
	}
	got, err := s.ReadJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", a, b)
	}
	// The package-level reader (post-mortem path) agrees.
	got2, err := Read(dir, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(want) {
		t.Fatalf("Read returned %d events, want %d", len(got2), len(want))
	}
	if s.Bytes() <= 0 {
		t.Fatal("Bytes() not accounted")
	}
}

// TestTornTailTolerated: a trace ending in half a record (crash
// mid-append) reads back as everything before the tear.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Append(point(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "job-1.trace.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"type":"curve_po`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := Read(dir, "job-1")
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(got) != 3 || got[2].Seq != 3 {
		t.Fatalf("read %d events past the tear, want the 3 whole ones", len(got))
	}
}

// TestMissingTraceIsEmpty: a job with no file is an empty trace, not an
// error; a bad job ID is rejected.
func TestMissingTraceIsEmpty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := s.ReadJob("job-404")
	if err != nil || evs != nil {
		t.Fatalf("missing trace: got %v, %v; want nil, nil", evs, err)
	}
	if _, err := Read(dir, "../escape"); err == nil {
		t.Fatal("path-traversal job ID accepted")
	}
	if err := s.Append(events.Event{JobID: "a/b"}); err == nil {
		t.Fatal("slash job ID accepted")
	}
}

// TestCompactionDropsObservationalKeepsCurve: crossing MaxBytes rewrites
// the file keeping every curve point and status transition, dropping
// retries/deadlines/failure charges, and the rewrite is atomic (no temp
// file survives, appends continue on the compacted file).
func TestCompactionDropsObservationalKeepsCurve(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	next := func(ev events.Event) events.Event {
		seq++
		ev.Seq = uint64(seq)
		ev.JobID = "job-1"
		return ev
	}
	var curve []uint64
	// Interleave curve points with observational noise until well past
	// the threshold.
	for s.Bytes() < 8<<10 {
		ev := next(point(seq + 1))
		curve = append(curve, ev.Seq)
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			noise := next(events.Event{Type: events.TypeRetry, Attempt: 1, Error: "injected: transient failure with a long message to pad the line"})
			if err := s.Append(noise); err != nil {
				t.Fatal(err)
			}
		}
	}
	fin := next(events.Event{Type: events.TypeStatus, Status: "done", Terminal: true})
	if err := s.Append(fin); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	var gotCurve []uint64
	noiseSurvived := 0
	for _, ev := range got {
		switch ev.Type {
		case events.TypeCurvePoint:
			gotCurve = append(gotCurve, ev.Seq)
		case events.TypeStatus:
		default:
			// Observational events appended since the last compaction may
			// survive; compaction must have shed the bulk of them.
			noiseSurvived++
		}
	}
	if len(gotCurve) != len(curve) {
		t.Fatalf("compaction lost curve points: %d of %d survive", len(gotCurve), len(curve))
	}
	for i := range curve {
		if gotCurve[i] != curve[i] {
			t.Fatalf("curve seq %d became %d after compaction", curve[i], gotCurve[i])
		}
	}
	if got[len(got)-1].Seq != fin.Seq || !got[len(got)-1].Terminal {
		t.Fatal("terminal event missing after compaction")
	}
	if noiseAppended := 3 * len(curve); noiseSurvived >= noiseAppended/2 {
		t.Fatalf("%d of %d observational events survive: compaction never shed them", noiseSurvived, noiseAppended)
	}
	st, err := os.Stat(filepath.Join(dir, "job-1.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-1.trace.jsonl"+tmpSuffix)); !os.IsNotExist(err) {
		t.Fatal("compaction left its temp file behind")
	}
	if s.Bytes() != st.Size() {
		t.Fatalf("Bytes() = %d, file is %d", s.Bytes(), st.Size())
	}
}

// TestCompactionConcurrentWithAppends: many goroutines appending to the
// same job while compaction fires repeatedly must lose nothing durable
// and keep the file readable at every moment.
func TestCompactionConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 100
	)
	var seqMu sync.Mutex
	seq := uint64(0)
	nextSeq := func() uint64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		seq++
		return seq
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A concurrent reader: the file must decode cleanly at all times.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.ReadJob("job-1"); err != nil {
				t.Errorf("concurrent read failed: %v", err)
				return
			}
		}
	}()
	var appendWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		appendWG.Add(1)
		go func() {
			defer appendWG.Done()
			for i := 0; i < perW; i++ {
				n := nextSeq()
				ev := events.Event{Seq: n, Type: events.TypeCurvePoint, JobID: "job-1",
					Point: &trace.Point{Evaluations: int(n), BestScore: float64(n)}}
				if n%3 == 0 {
					ev = events.Event{Seq: n, Type: events.TypeRetry, JobID: "job-1", Attempt: 1,
						Error: "injected: padding padding padding padding padding padding"}
				}
				if err := s.Append(ev); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	appendWG.Wait()
	close(stop)
	wg.Wait()
	got, err := s.ReadJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	// Every curve point ever appended must survive exactly once (only
	// observational events are shed). Writers race the job lock, so the
	// on-disk order is lock-win order, not global seq order — the real
	// daemon publishes through the hub, which serializes per job.
	seen := map[uint64]int{}
	for _, ev := range got {
		if ev.Type == events.TypeCurvePoint {
			seen[ev.Seq]++
		}
	}
	for n := uint64(1); n <= writers*perW; n++ {
		if n%3 == 0 {
			continue
		}
		if seen[n] != 1 {
			t.Fatalf("curve point seq %d present %d times, want exactly once", n, seen[n])
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenReplaysByteIdentically: a new store over the same directory
// (the restart path) serves the pre-crash events byte-identically and
// re-tallies the on-disk size; a stale temp file from a crashed
// compaction is swept without touching the real trace.
func TestReopenReplaysByteIdentically(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := s1.Append(point(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := s1.ReadJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := s1.Bytes()
	// Abandon s1 without Close — the crash. Leave a half-written temp
	// file as a crashed compaction would.
	if err := os.WriteFile(filepath.Join(dir, "job-1.trace.jsonl"+tmpSuffix), []byte(`{"seq":1`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-1.trace.jsonl"+tmpSuffix)); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
	after, err := s2.ReadJob("job-1")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(before)
	b, _ := json.Marshal(after)
	if !bytes.Equal(a, b) {
		t.Fatalf("restart replay differs:\n before %s\n after  %s", a, b)
	}
	if s2.Bytes() != wantBytes {
		t.Fatalf("reopened Bytes() = %d, want %d", s2.Bytes(), wantBytes)
	}
	if ids, err := s2.Jobs(); err != nil || len(ids) != 1 || ids[0] != "job-1" {
		t.Fatalf("Jobs() = %v, %v; want [job-1]", ids, err)
	}
}

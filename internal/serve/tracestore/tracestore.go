// Package tracestore persists bhpod's per-job telemetry durably: one
// append-only JSONL file per job under a traces directory, each line one
// events.Event in publish order. It sits behind the event hub as its
// sink, so the file is always a prefix of what live subscribers saw, and
// it is what lets GET /jobs/{id}/trace serve a job's full anytime curve
// after the process that ran the job is gone — including jobs the
// journal replays as interrupted, whose curves previously died with the
// process.
//
// Durability follows the journal's discipline: ordinary events ride the
// OS page cache (losing the tail of a live job's trace on crash only
// shortens its curve, never corrupts it), terminal events are fsynced
// before Append returns and close the job's file. Reads tolerate a torn
// final line — the signature of a crash mid-append — by treating it as
// end-of-trace.
//
// Growth is bounded per job in the style of the segmented journal's
// crash-safe fold: once a job's file grows MaxBytes past its last
// compaction, it is rewritten through a temp file, fsynced and atomically
// renamed over the original, keeping every curve point and lifecycle
// transition and dropping the purely observational events (retries,
// deadline abandonments, failure-budget charges, rung promotions). A
// crash at any instant leaves either the old file or the complete new
// one, never a mix; stale temp files are swept on Open.
package tracestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"enhancedbhpo/internal/events"
)

// Options tunes a Store.
type Options struct {
	// MaxBytes is the per-job compaction threshold: a job's trace file
	// is compacted once it grows this much past its previous compacted
	// size. 0 selects 1 MiB; negative disables compaction.
	MaxBytes int64
	// OnChange, when non-nil, is called after an append or compaction
	// with the trace file's name (relative to the store directory) and
	// whether the file is now final (the terminal event was fsynced and
	// the file closed) — the shipper's replication hook. Called with the
	// job's file lock held; it must not call back into the store.
	OnChange func(name string, final bool)
}

// Store writes per-job trace files in one directory. Safe for concurrent
// use; appends for different jobs do not contend.
type Store struct {
	dir      string
	maxBytes int64
	onChange func(name string, final bool)
	bytes    atomic.Int64 // on-disk bytes across all trace files

	mu   sync.Mutex
	jobs map[string]*jobFile
}

// jobFile is one job's open trace file. Its lock serializes appends and
// compaction for the job.
type jobFile struct {
	mu   sync.Mutex
	f    *os.File // nil once the terminal event closed it
	size int64
	// floor is the size after the last compaction; the next compaction
	// triggers at floor+maxBytes, so a curve that legitimately exceeds
	// MaxBytes (compaction cannot shrink it) does not re-compact on
	// every append.
	floor int64
}

// tmpSuffix marks in-flight compaction rewrites.
const tmpSuffix = ".tmp"

// fileName is the on-disk trace file for a job ID. IDs are of the
// daemon's own making (job-N), but slashes are rejected defensively so a
// hostile ID cannot escape the directory.
func fileName(jobID string) (string, error) {
	if jobID == "" || strings.ContainsAny(jobID, `/\`) || strings.Contains(jobID, "..") {
		return "", fmt.Errorf("tracestore: invalid job ID %q", jobID)
	}
	return jobID + ".trace.jsonl", nil
}

// Open creates the directory if needed, sweeps temp files left by a
// crash mid-compaction (the original file is still whole — the rename
// never happened), and tallies the existing trace bytes.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("tracestore: empty directory")
	}
	maxBytes := opts.MaxBytes
	if maxBytes == 0 {
		maxBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, onChange: opts.OnChange, jobs: map[string]*jobFile{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if !strings.HasSuffix(e.Name(), ".trace.jsonl") {
			continue
		}
		if info, err := e.Info(); err == nil {
			s.bytes.Add(info.Size())
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Bytes reports the total on-disk trace size — the trace_store_bytes
// service metric.
func (s *Store) Bytes() int64 { return s.bytes.Load() }

// jobHandle returns (creating if needed) the job's handle.
func (s *Store) jobHandle(jobID string) *jobFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	jf, ok := s.jobs[jobID]
	if !ok {
		jf = &jobFile{}
		s.jobs[jobID] = jf
	}
	return jf
}

// Append writes one event as a JSON line to the job's trace file,
// opening it lazily. A terminal event is fsynced and closes the file (a
// finished job holds no descriptor); crossing the compaction threshold
// rewrites the file crash-safely before the append returns.
func (s *Store) Append(ev events.Event) error {
	name, err := fileName(ev.JobID)
	if err != nil {
		return err
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("tracestore: encoding event: %w", err)
	}
	line = append(line, '\n')
	jf := s.jobHandle(ev.JobID)
	jf.mu.Lock()
	defer jf.mu.Unlock()
	path := filepath.Join(s.dir, name)
	if jf.f == nil {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("tracestore: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("tracestore: %w", err)
		}
		jf.f = f
		jf.size = st.Size()
		jf.floor = st.Size()
	}
	if _, err := jf.f.Write(line); err != nil {
		return fmt.Errorf("tracestore: appending: %w", err)
	}
	jf.size += int64(len(line))
	s.bytes.Add(int64(len(line)))
	if ev.Terminal {
		if err := jf.f.Sync(); err != nil {
			return fmt.Errorf("tracestore: fsync: %w", err)
		}
		err := jf.f.Close()
		jf.f = nil
		if err != nil {
			return fmt.Errorf("tracestore: %w", err)
		}
		if s.onChange != nil {
			s.onChange(name, true)
		}
		return nil
	}
	if s.maxBytes > 0 && jf.size >= jf.floor+s.maxBytes {
		if err := s.compactLocked(jf, path); err != nil {
			return err
		}
	}
	if s.onChange != nil {
		s.onChange(name, false)
	}
	return nil
}

// durable reports whether an event survives compaction: curve points
// and lifecycle transitions are the trace's durable payload; retries,
// deadline abandonments, failure-budget charges and rung promotions are
// observational and re-derivable live, so they are shed first.
func durable(ev events.Event) bool {
	return ev.Type == events.TypeCurvePoint || ev.Type == events.TypeStatus
}

// compactLocked rewrites the job's trace keeping only durable events,
// via temp file + fsync + atomic rename (the journal fold's machinery):
// visible state flips from old-whole to new-whole in one step. Called
// with the job lock held; the append handle is reopened on the new file.
func (s *Store) compactLocked(jf *jobFile, path string) error {
	evs, err := readFile(path)
	if err != nil {
		return err
	}
	kept := evs[:0]
	for _, ev := range evs {
		if durable(ev) {
			kept = append(kept, ev)
		}
	}
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, ev := range kept {
		if err := enc.Encode(ev); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("tracestore: compacting: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tracestore: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	st, err := os.Stat(tmp)
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	// The old append handle points at the unlinked inode; reopen on the
	// compacted file so later appends land where readers look.
	jf.f.Close()
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		jf.f = nil
		return fmt.Errorf("tracestore: reopening after compaction: %w", err)
	}
	s.bytes.Add(st.Size() - jf.size)
	jf.f = f
	jf.size = st.Size()
	jf.floor = st.Size()
	return nil
}

// ReadJob returns the job's persisted events in order. A missing file is
// an empty trace; a torn final line (crash mid-append) ends the trace at
// the last whole event. Reads are consistent under concurrent appends
// and compaction for the same job.
func (s *Store) ReadJob(jobID string) ([]events.Event, error) {
	name, err := fileName(jobID)
	if err != nil {
		return nil, err
	}
	jf := s.jobHandle(jobID)
	jf.mu.Lock()
	defer jf.mu.Unlock()
	return readFile(filepath.Join(s.dir, name))
}

// Read reads one job's trace file from a directory without a Store —
// the post-mortem path (a crashed daemon's traces can be inspected
// without opening the store for writing). Same torn-tail tolerance as
// ReadJob.
func Read(dir, jobID string) ([]events.Event, error) {
	name, err := fileName(jobID)
	if err != nil {
		return nil, err
	}
	return readFile(filepath.Join(dir, name))
}

// readFile decodes one trace file; a torn final line ends the trace.
func readFile(path string) ([]events.Event, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	var out []events.Event
	dec := json.NewDecoder(f)
	for {
		var ev events.Event
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			// Torn tail: crash mid-append. Everything before it is whole.
			return out, nil
		}
		out = append(out, ev)
	}
}

// Jobs lists the job IDs that have a trace file on disk.
func (s *Store) Jobs() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var out []string
	for _, e := range entries {
		if id, ok := strings.CutSuffix(e.Name(), ".trace.jsonl"); ok && !e.IsDir() {
			out = append(out, id)
		}
	}
	return out, nil
}

// Close syncs and closes every open trace file. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	jobs := make([]*jobFile, 0, len(s.jobs))
	for _, jf := range s.jobs {
		jobs = append(jobs, jf)
	}
	s.mu.Unlock()
	var first error
	for _, jf := range jobs {
		jf.mu.Lock()
		if jf.f != nil {
			if err := jf.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := jf.f.Close(); err != nil && first == nil {
				first = err
			}
			jf.f = nil
		}
		jf.mu.Unlock()
	}
	return first
}

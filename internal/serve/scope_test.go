package serve

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestScopeSweepRespectsHolders drives acquireScope/sweepScopes directly:
// a scope with live references is never evicted no matter how stale its
// lastUsed looks, release is once-only, and an idle scope past the TTL is
// swept and then lazily rebuilt on the next acquire.
func TestScopeSweepRespectsHolders(t *testing.T) {
	m := NewManager(Config{PoolSize: 1, MaxJobs: 1, ScopeTTL: time.Hour})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	spec := smallSpec().withDefaults()

	sc1, release1, err := m.acquireScope(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc2, release2, err := m.acquireScope(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sc1 != sc2 {
		t.Fatal("two acquisitions of the same spec built different scopes")
	}

	farFuture := time.Now().Add(48 * time.Hour)
	if n := m.sweepScopes(farFuture); n != 0 {
		t.Fatalf("sweep evicted %d scopes while 2 references were held", n)
	}
	release1()
	release1() // once-only: a double release must not drop the second ref
	if n := m.sweepScopes(farFuture); n != 0 {
		t.Fatalf("sweep evicted %d scopes while 1 reference was held", n)
	}
	release2()
	// Released but not yet idle past the TTL: still resident.
	if n := m.sweepScopes(time.Now()); n != 0 {
		t.Fatalf("sweep evicted %d scopes before the TTL elapsed", n)
	}
	if got := m.Metrics().CacheScopes; got != 1 {
		t.Fatalf("CacheScopes = %d, want 1 before eviction", got)
	}
	if n := m.sweepScopes(farFuture); n != 1 {
		t.Fatalf("sweep evicted %d scopes, want 1 (idle past TTL)", n)
	}
	if got := m.Metrics().CacheScopes; got != 0 {
		t.Fatalf("CacheScopes = %d after eviction, want 0", got)
	}
	if got := m.Metrics().ScopesEvicted; got != 1 {
		t.Fatalf("ScopesEvicted = %d, want 1", got)
	}

	// Next use rebuilds the scope lazily.
	sc3, release3, err := m.acquireScope(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sc3 == nil {
		t.Fatal("rebuild after eviction returned nil scope")
	}
	if n := m.sweepScopes(farFuture); n != 0 {
		t.Fatal("sweep took the freshly rebuilt, still-held scope")
	}
	release3()
}

// TestScopeTTLEvictionDeterministicRebuild is the end-to-end TTL check:
// run a job, let the janitor evict the idle scope, run the identical job
// again, and require a bitwise-identical outcome from the rebuilt scope —
// eviction may cost cache warmth but never reproducibility.
func TestScopeTTLEvictionDeterministicRebuild(t *testing.T) {
	m := NewManager(Config{PoolSize: 2, MaxJobs: 1, ScopeTTL: 50 * time.Millisecond})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	job1, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job1.ID, func(s Status) bool { return s == StatusDone }, "done")
	snap1 := job1.Snapshot()

	// The janitor (tick = TTL/4) must evict the now-idle scope.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mt := m.Metrics()
		if mt.CacheScopes == 0 && mt.ScopesEvicted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scope never evicted: %d live, %d evicted", mt.CacheScopes, mt.ScopesEvicted)
		}
		time.Sleep(10 * time.Millisecond)
	}

	job2, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job2.ID, func(s Status) bool { return s == StatusDone }, "done")
	snap2 := job2.Snapshot()

	if snap1.BestScore == nil || snap2.BestScore == nil {
		t.Fatal("missing best score")
	}
	if *snap1.BestScore != *snap2.BestScore {
		t.Fatalf("best score drifted across rebuild: %v vs %v", *snap1.BestScore, *snap2.BestScore)
	}
	if snap1.TestScore == nil || snap2.TestScore == nil {
		t.Fatal("missing test score")
	}
	if *snap1.TestScore != *snap2.TestScore {
		t.Fatalf("test score drifted across rebuild: %v vs %v", *snap1.TestScore, *snap2.TestScore)
	}
	if got, want := fmt.Sprint(snap2.BestConfig), fmt.Sprint(snap1.BestConfig); got != want {
		t.Fatalf("best config drifted across rebuild:\n  first  %s\n  second %s", want, got)
	}
	if snap1.Evaluations != snap2.Evaluations {
		t.Fatalf("evaluation count drifted across rebuild: %d vs %d", snap1.Evaluations, snap2.Evaluations)
	}
	// The second run went through a freshly built scope: a cold cache
	// proves the old one was really dropped, not resurrected. (The short
	// TTL may already have evicted the rebuilt scope again by now — that
	// shows the same thing via the eviction counter.)
	mt := m.Metrics()
	switch {
	case mt.CacheScopes == 1 && mt.CacheMisses == 0:
		t.Fatal("rebuilt scope served no cache misses; second run never hit a fresh cache")
	case mt.CacheScopes == 0 && mt.ScopesEvicted < 2:
		t.Fatalf("scope table empty but only %d evictions recorded", mt.ScopesEvicted)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// postJobToken submits a spec with an X-Submit-Token idempotency header.
func postJobToken(t *testing.T, base, token string, spec JobSpec) Snapshot {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-Submit-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSubmitTokenIdempotent: resubmitting under the same token must
// return the already-accepted job — the guarantee a coordinator's
// submit-path retry rests on — while distinct tokens stay independent.
func TestSubmitTokenIdempotent(t *testing.T) {
	ts, m := newTestServer(t, Config{PoolSize: 2, MaxJobs: 2})
	first := postJobToken(t, ts.URL, "tok-1", smallSpec())
	dup := postJobToken(t, ts.URL, "tok-1", smallSpec())
	if dup.ID != first.ID {
		t.Fatalf("same token minted a second job: %s then %s", first.ID, dup.ID)
	}
	other := postJobToken(t, ts.URL, "tok-2", smallSpec())
	if other.ID == first.ID {
		t.Fatalf("different token returned the same job %s", other.ID)
	}
	if got := len(m.Jobs()); got != 2 {
		t.Fatalf("%d jobs after a duplicate submission, want 2", got)
	}
}

// TestSubmitTokenSurvivesRestart: tokens ride in the journal's submit
// records, so a retry landing on a restarted (or restored) node still
// deduplicates against the job the dead incarnation acked.
func TestSubmitTokenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PoolSize: 2, MaxJobs: 2, DataDir: dir}
	m1, err := NewManagerFromJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := m1.SubmitToken(smallSpec(), "tok-restart")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManagerFromJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(ctx)
	dup, err := m2.SubmitToken(smallSpec(), "tok-restart")
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != job.ID {
		t.Fatalf("token minted a new job across restart: %s then %s", job.ID, dup.ID)
	}
	if got := len(m2.Jobs()); got != 1 {
		t.Fatalf("%d jobs after restart + duplicate submission, want 1", got)
	}
}

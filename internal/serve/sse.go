package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/trace"
)

// keepaliveInterval paces the SSE comment pings that keep idle streams
// alive through proxies and let dead clients surface as write errors.
const keepaliveInterval = 15 * time.Second

// jobEvents serves GET /jobs/{id}/events: the job's telemetry as a
// Server-Sent Events stream. Each event carries its hub sequence number
// as the SSE id, so a client that reconnects with Last-Event-ID (or
// ?after=N) resumes exactly where it stopped — the backlog past that
// sequence is replayed first, then live events follow; nothing is lost
// or duplicated. The stream ends after the job's terminal event, when
// the client goes away, or when the server starts draining.
func (s *Server) jobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	after := uint64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q", v)
			return
		}
		after = n
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad after %q", v)
			return
		}
		after = n
	}
	// Subscribe before the headers go out: registration and the backlog
	// snapshot are atomic in the hub, so the stream holds the
	// exactly-once guarantee from its first byte.
	sub, backlog := s.manager.hub.Subscribe(job.ID, after)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	last := after
	write := func(ev events.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		last = ev.Seq
		return true
	}
	for _, ev := range backlog {
		if !write(ev) {
			return
		}
	}
	flusher.Flush()

	drain := s.drainSignal()
	keepalive := time.NewTicker(keepaliveInterval)
	defer keepalive.Stop()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				// Terminal event delivered (or the feed closed): the
				// stream is complete.
				return
			}
			if ev.Seq <= last {
				// Already sent via a gap backfill below.
				continue
			}
			if ev.Seq > last+1 {
				// The subscriber lagged and the hub dropped events from
				// its buffer; the history keeps everything, so backfill
				// the gap in order before carrying on.
				for _, missed := range s.manager.hub.Since(job.ID, last) {
					if !write(missed) {
						return
					}
				}
			} else if !write(ev) {
				return
			}
			flusher.Flush()
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-drain:
			// Drain-aware shutdown: close the stream cleanly so the HTTP
			// server's graceful Shutdown is not held open by subscribers.
			return
		}
	}
}

// jobTrace serves GET /jobs/{id}/trace: the job's full anytime curve in
// the trace package's wire encoding — for running jobs the live curve,
// for finished and journal-replayed jobs the curve restored from the
// durable trace store, byte-identical across restarts. ?events=1 returns
// the raw event log (curve points plus lifecycle and observational
// events) instead.
func (s *Server) jobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	evs := s.manager.hub.Since(job.ID, 0)
	if r.URL.Query().Get("events") == "1" {
		if evs == nil {
			evs = []events.Event{}
		}
		writeJSON(w, http.StatusOK, evs)
		return
	}
	curve := make([]trace.Point, 0, len(evs))
	for _, ev := range evs {
		if ev.Type == events.TypeCurvePoint && ev.Point != nil {
			curve = append(curve, *ev.Point)
		}
	}
	if len(curve) == 0 {
		// No event history (persistence off across a restart): the
		// journal-restored snapshot curve is the best available record.
		curve = job.Snapshot().Curve
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = trace.EncodeAnytime(w, curve)
}

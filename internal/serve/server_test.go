package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"enhancedbhpo/internal/hpo"
)

// smallSpec is a job small enough to finish in well under a second.
func smallSpec() JobSpec {
	return JobSpec{
		Dataset:    "australian",
		Scale:      0.06,
		Method:     "sha",
		NumHPs:     2,
		MaxConfigs: 6,
		Iters:      2,
		Seed:       3,
	}
}

// bigSpec is a job slow enough to be caught and cancelled mid-run.
func bigSpec() JobSpec {
	return JobSpec{
		Dataset:    "australian",
		Scale:      0.5,
		Method:     "asha",
		NumHPs:     4,
		MaxConfigs: 27,
		Iters:      60,
		Seed:       5,
	}
}

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts, m
}

func postJob(t *testing.T, base string, spec JobSpec) Snapshot {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func getJob(t *testing.T, base, id string) Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func pollUntil(t *testing.T, base, id string, want func(Snapshot) bool, desc string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		snap := getJob(t, base, id)
		if want(snap) {
			return snap
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last: %s)", id, desc, getJob(t, base, id).Status)
	panic("unreachable")
}

func terminal(s Status) bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// TestServiceEndToEnd is the acceptance scenario: submit a small job over
// HTTP, poll to completion, check the anytime curve; cancel a big job
// mid-run and verify it stops within one evaluation per pool slot.
func TestServiceEndToEnd(t *testing.T) {
	const pool = 2
	ts, _ := newTestServer(t, Config{PoolSize: pool, MaxJobs: 2})

	// Health first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}

	// 1. Small job runs to completion with a non-empty incumbent curve.
	sub := postJob(t, ts.URL, smallSpec())
	if sub.Status != StatusQueued && sub.Status != StatusRunning {
		t.Fatalf("fresh job status %s", sub.Status)
	}
	done := pollUntil(t, ts.URL, sub.ID, func(s Snapshot) bool { return terminal(s.Status) }, "a terminal state")
	if done.Status != StatusDone {
		t.Fatalf("small job ended %s (error %q)", done.Status, done.Error)
	}
	if done.Evaluations == 0 || len(done.Curve) != done.Evaluations {
		t.Fatalf("done job has %d curve points for %d evaluations", len(done.Curve), done.Evaluations)
	}
	last := done.Curve[len(done.Curve)-1]
	if last.BestScore <= 0 {
		t.Fatalf("incumbent score %v not positive", last.BestScore)
	}
	if done.BestConfig == nil || done.BestScore == nil {
		t.Fatal("done job missing best config/score")
	}
	if done.TestScore == nil {
		t.Fatal("done job missing held-out test score")
	}

	// 2. Big job: observe it mid-run with a live curve, then cancel.
	big := postJob(t, ts.URL, bigSpec())
	mid := pollUntil(t, ts.URL, big.ID, func(s Snapshot) bool {
		return s.Status == StatusRunning && s.Evaluations >= 1
	}, "running with a live curve")
	if len(mid.Curve) == 0 {
		t.Fatal("running job serves no live anytime curve")
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+big.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The DELETE response snapshot is taken after the cancel fires, so
	// its evaluation count is the baseline for "stops within one
	// evaluation" — an earlier poll would be stale by however many
	// evaluations completed while the DELETE was in flight.
	var atCancel Snapshot
	if err := json.NewDecoder(dresp.Body).Decode(&atCancel); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}
	stopped := pollUntil(t, ts.URL, big.ID, func(s Snapshot) bool { return terminal(s.Status) }, "a terminal state")
	if stopped.Status != StatusCancelled {
		t.Fatalf("cancelled job ended %s (error %q)", stopped.Status, stopped.Error)
	}
	if stopped.Reason != ReasonUserCancel {
		t.Fatalf("cancelled job reason %q, want user_cancel", stopped.Reason)
	}
	// "Stops within one evaluation": only work already in flight on the
	// shared pool may land after the cancel — at most one evaluation per
	// pool slot.
	if extra := stopped.Evaluations - atCancel.Evaluations; extra > pool {
		t.Fatalf("%d evaluations finished after cancel (pool %d)", extra, pool)
	}
	if stopped.Evaluations < mid.Evaluations {
		t.Fatalf("evaluations went backwards: %d -> %d", mid.Evaluations, stopped.Evaluations)
	}

	// Cancelling a finished job is idempotent: the settled state comes
	// back with 200 instead of a conflict.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+big.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var settled Snapshot
	if err := json.NewDecoder(dresp.Body).Decode(&settled); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("second DELETE: status %d, want 200", dresp.StatusCode)
	}
	if settled.Status != StatusCancelled || settled.Reason != ReasonUserCancel {
		t.Fatalf("second DELETE snapshot: status %s reason %q", settled.Status, settled.Reason)
	}

	// 3. Metrics add up.
	var met Metrics
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.JobsDone < 1 || met.JobsCancelled < 1 {
		t.Fatalf("metrics jobs: %+v", met)
	}
	if met.Evaluations == 0 || met.PoolSize != pool {
		t.Fatalf("metrics pool/evals: %+v", met)
	}
	if met.CacheScopes != 2 { // small and big specs differ
		t.Fatalf("cache scopes %d, want 2", met.CacheScopes)
	}

	// 4. Listing shows both jobs in submission order, without curves.
	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Snapshot
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list) != 2 || list[0].ID != sub.ID || list[1].ID != big.ID {
		t.Fatalf("listing: %+v", list)
	}
}

// TestCacheReuseAcrossJobs submits the same spec twice: the second run
// must hit the evaluation cache and return the identical result.
func TestCacheReuseAcrossJobs(t *testing.T) {
	ts, m := newTestServer(t, Config{PoolSize: 2, MaxJobs: 1})
	first := postJob(t, ts.URL, smallSpec())
	d1 := pollUntil(t, ts.URL, first.ID, func(s Snapshot) bool { return terminal(s.Status) }, "terminal")
	if d1.Status != StatusDone {
		t.Fatalf("first run ended %s (%s)", d1.Status, d1.Error)
	}
	missesAfterFirst := m.Metrics().CacheMisses
	if missesAfterFirst == 0 {
		t.Fatal("first run recorded no cache misses")
	}
	second := postJob(t, ts.URL, smallSpec())
	d2 := pollUntil(t, ts.URL, second.ID, func(s Snapshot) bool { return terminal(s.Status) }, "terminal")
	if d2.Status != StatusDone {
		t.Fatalf("second run ended %s (%s)", d2.Status, d2.Error)
	}
	met := m.Metrics()
	if met.CacheMisses != missesAfterFirst {
		t.Fatalf("second identical run missed the cache: %d -> %d misses", missesAfterFirst, met.CacheMisses)
	}
	if met.CacheHits < int64(d2.Evaluations) {
		t.Fatalf("second run: %d hits for %d evaluations", met.CacheHits, d2.Evaluations)
	}
	// Same spec, warm cache: scores must be reproduced exactly.
	if *d1.BestScore != *d2.BestScore {
		t.Fatalf("cached rerun best score %v != %v", *d2.BestScore, *d1.BestScore)
	}
	for k, v := range d1.BestConfig {
		if fmt.Sprint(d2.BestConfig[k]) != fmt.Sprint(v) {
			t.Fatalf("cached rerun best config differs at %s: %v != %v", k, d2.BestConfig[k], v)
		}
	}
}

// TestQueuedJobRespectsMaxJobs verifies the MaxJobs gate and that a
// queued job can be cancelled before it ever runs.
func TestQueuedJobRespectsMaxJobs(t *testing.T) {
	ts, _ := newTestServer(t, Config{PoolSize: 1, MaxJobs: 1})
	running := postJob(t, ts.URL, bigSpec())
	pollUntil(t, ts.URL, running.ID, func(s Snapshot) bool { return s.Status == StatusRunning }, "running")
	queued := postJob(t, ts.URL, smallSpec())
	// With MaxJobs=1 the second job must stay queued while the first runs.
	if s := getJob(t, ts.URL, queued.ID); s.Status != StatusQueued {
		t.Fatalf("second job status %s, want queued", s.Status)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancelled := pollUntil(t, ts.URL, queued.ID, func(s Snapshot) bool { return terminal(s.Status) }, "terminal")
	if cancelled.Status != StatusCancelled || cancelled.Evaluations != 0 {
		t.Fatalf("queued job ended %s with %d evaluations", cancelled.Status, cancelled.Evaluations)
	}
	// Unblock the long job quickly.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestBadSubmissions exercises validation and routing errors.
func TestBadSubmissions(t *testing.T) {
	ts, _ := newTestServer(t, Config{PoolSize: 1, MaxJobs: 1})
	for name, body := range map[string]string{
		"bad json":       `{`,
		"unknown field":  `{"dataset":"australian","method":"sha","bogus":1}`,
		"bad method":     `{"dataset":"australian","method":"sgd"}`,
		"bad dataset":    `{"dataset":"mnist","method":"sha"}`,
		"bad hps":        `{"dataset":"australian","method":"sha","hps":12}`,
		"negative limit": `{"dataset":"australian","method":"sha","max_configs":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", resp.StatusCode)
	}
}

// TestMethodsEndpoint checks that GET /methods serves the hpo registry:
// all ten methods, sorted, with aliases and capability flags.
func TestMethodsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{PoolSize: 1, MaxJobs: 1})
	resp, err := http.Get(ts.URL + "/methods")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /methods: status %d", resp.StatusCode)
	}
	var methods []methodBody
	if err := json.NewDecoder(resp.Body).Decode(&methods); err != nil {
		t.Fatal(err)
	}
	want := hpo.MethodNames()
	if len(methods) != len(want) {
		t.Fatalf("GET /methods returned %d methods, want %d", len(methods), len(want))
	}
	byName := map[string]methodBody{}
	for i, m := range methods {
		if m.Name != want[i] {
			t.Errorf("method %d is %q, want %q (sorted)", i, m.Name, want[i])
		}
		byName[m.Name] = m
	}
	if hb := byName["hyperband"]; len(hb.Aliases) != 1 || hb.Aliases[0] != "hb" || !hb.BudgetAware || hb.HonorsWorkers {
		t.Errorf("hyperband entry wrong: %+v", hb)
	}
	if tpe := byName["tpe"]; !tpe.HonorsTrials || tpe.BudgetAware || len(tpe.Aliases) != 1 || tpe.Aliases[0] != "optuna" {
		t.Errorf("tpe entry wrong: %+v", tpe)
	}
	if sha := byName["sha"]; !sha.BudgetAware || !sha.HonorsWorkers || !sha.HonorsMaxConfigs || sha.HonorsTrials {
		t.Errorf("sha entry wrong: %+v", sha)
	}
}

// TestUnhonoredFieldRejected checks the named-field 400: a spec field the
// selected method cannot honor is rejected at submission, with the field
// name in the error envelope, instead of being silently ignored.
func TestUnhonoredFieldRejected(t *testing.T) {
	ts, _ := newTestServer(t, Config{PoolSize: 1, MaxJobs: 1})
	for name, tc := range map[string]struct {
		body  string
		field string
	}{
		"hyperband max_configs": {`{"dataset":"australian","method":"hyperband","max_configs":6}`, "max_configs"},
		"hyperband workers":     {`{"dataset":"australian","method":"hyperband","workers":2}`, "workers"},
		"bohb workers":          {`{"dataset":"australian","method":"bohb","workers":2}`, "workers"},
		"tpe max_configs":       {`{"dataset":"australian","method":"tpe","max_configs":6}`, "max_configs"},
		"sha trials":            {`{"dataset":"australian","method":"sha","trials":3}`, "trials"},
		"pasha workers":         {`{"dataset":"australian","method":"pasha","workers":2}`, "workers"},
		"unknown method":        {`{"dataset":"australian","method":"sgd"}`, "method"},
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		var body errorBody
		decodeErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
			continue
		}
		if decodeErr != nil {
			t.Errorf("%s: decoding error body: %v", name, decodeErr)
			continue
		}
		if body.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q (error: %s)", name, body.Field, tc.field, body.Error)
		}
	}
}

// TestAllMethodsServable submits one tiny job per registered method — the
// full-budget baselines and DEHB/PASHA included — and polls each to done,
// checking that a best score and a live anytime curve came back. This is
// the registry's end-to-end guarantee: everything registered is servable.
func TestAllMethodsServable(t *testing.T) {
	ts, _ := newTestServer(t, Config{PoolSize: 2, MaxJobs: 2})
	for _, info := range hpo.Methods() {
		spec := JobSpec{
			Dataset: "australian",
			Scale:   0.06,
			Method:  info.Name,
			NumHPs:  2,
			Iters:   2,
			Seed:    3,
		}
		// Keep every method tiny using whichever cap it honors.
		if info.HonorsMaxConfigs {
			spec.MaxConfigs = 6
		}
		if info.HonorsTrials {
			spec.Trials = 4
		}
		snap := postJob(t, ts.URL, spec)
		done := pollUntil(t, ts.URL, snap.ID, func(s Snapshot) bool { return terminal(s.Status) }, "terminal")
		if done.Status != StatusDone {
			t.Errorf("%s: finished %s (error: %s)", info.Name, done.Status, done.Error)
			continue
		}
		if done.BestScore == nil || done.TestScore == nil {
			t.Errorf("%s: done without best/test score", info.Name)
		}
		if done.Evaluations == 0 || len(done.Curve) == 0 {
			t.Errorf("%s: no anytime curve (evaluations=%d, curve=%d)", info.Name, done.Evaluations, len(done.Curve))
		}
	}
}

// Package journal gives bhpod crash-safe job persistence: an append-only
// JSONL log per data directory recording job submissions, status
// transitions and terminal results. The write path is sequenced so that a
// crash at any instant loses at most the record being written: every
// record is one JSON line, terminal records are fsynced before Append
// returns, and Replay tolerates a torn final line (the signature of a
// crash mid-write) by treating it as end-of-log.
//
// The log is segmented so it stays bounded while the daemon runs:
//
//	base-000007.jsonl      compacted fold of every segment ≤ 7 (optional)
//	journal-000008.jsonl   sealed segment
//	journal-000009.jsonl   active segment (appends go here)
//
// Append rotates to a fresh segment once the active one passes the
// configured size and re-compacts everything sealed so far into a new
// base in the background, using the same temp-file + atomic-rename
// machinery as startup Compact. The fold is ordered so a crash at any
// point is recoverable: the new base becomes visible atomically *before*
// the files it folds are deleted, and Replay ignores bases older than the
// newest and segments at or below the newest base's sequence — stale
// leftovers, never data. A gap *above* the base sequence, by contrast,
// means a sealed segment was lost and Replay fails with a clear error
// rather than silently dropping jobs.
//
// On startup the serve layer replays the log into per-job states,
// reclassifies jobs that were mid-run when the process died, and rewrites
// the log compacted — one submit (plus one terminal) record per job —
// so the journal does not grow across restarts and a crash during
// compaction leaves the previous log intact.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"enhancedbhpo/internal/trace"
)

// FileName is the legacy single-file journal inside a data directory.
// Pre-segmentation directories are migrated on open/replay by renaming it
// to the first numbered segment.
const FileName = "journal.jsonl"

// Record types.
const (
	// TypeSubmit records a job's acceptance: ID plus the defaulted spec.
	TypeSubmit = "submit"
	// TypeStatus records a non-terminal lifecycle transition (running).
	TypeStatus = "status"
	// TypeResult records a terminal state with everything needed to serve
	// the job after a restart; it is fsynced.
	TypeResult = "result"
	// TypeEvent records an observational incident (reason "deadline": an
	// evaluation was abandoned by the watchdog). Events never change a
	// job's replayed state and are dropped by compaction; they exist so a
	// post-mortem can see what the daemon shed or abandoned and when.
	TypeEvent = "event"
	// TypePreempt records a rung-boundary preemption: the scheduler
	// reclaimed the job's slot, and Checkpoint carries the serve layer's
	// snapshot of the trials completed so far. On replay the job is
	// queued with the checkpoint attached, so a restart resumes it from
	// its last rung boundary instead of restarting from scratch; the
	// latest preempt record wins and a terminal result supersedes it.
	TypePreempt = "preempt"
)

// Record is one journal line. The spec travels as raw JSON so this
// package stays independent of the serve layer's types; curves reuse the
// trace package's bit-exact Point round-trip.
type Record struct {
	Type  string          `json:"t"`
	Time  time.Time       `json:"time"`
	JobID string          `json:"job"`
	Token string          `json:"token,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	// Tenant is the submitting tenant, carried on submit and preempt
	// records so a restart rebuilds per-tenant accounting without
	// decoding every spec.
	Tenant      string         `json:"tenant,omitempty"`
	Status      string         `json:"status,omitempty"`
	Reason      string         `json:"reason,omitempty"`
	Error       string         `json:"error,omitempty"`
	Stack       string         `json:"stack,omitempty"`
	Evaluations int            `json:"evaluations,omitempty"`
	Curve       []trace.Point  `json:"curve,omitempty"`
	BestConfig  map[string]any `json:"best_config,omitempty"`
	BestScore   *float64       `json:"best_score,omitempty"`
	TestScore   *float64       `json:"test_score,omitempty"`
	// Checkpoint is the serve layer's opaque rung-state snapshot on
	// preempt records: the trials completed before the slot was
	// reclaimed, enough to resume the job deterministically.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// Preemptions on a result record carries the job's final yield
	// count, so compaction — which folds the preempt history of a
	// finished job away — does not lose it.
	Preemptions int `json:"preemptions,omitempty"`
}

// segmentName and baseName are the on-disk names for sequence seq.
func segmentName(seq int) string { return fmt.Sprintf("journal-%06d.jsonl", seq) }
func baseName(seq int) string    { return fmt.Sprintf("base-%06d.jsonl", seq) }

// parseSeq extracts the sequence from a segment or base file name.
func parseSeq(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".jsonl") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".jsonl")
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// layout is the scanned shape of a data directory: the newest base (the
// compacted fold, if any) and every numbered segment, sorted.
type layout struct {
	hasBase bool
	baseSeq int
	segs    []int // sorted ascending; may include stale seqs ≤ baseSeq
}

// scanDir reads the directory into a layout. A missing directory is an
// empty layout.
func scanDir(dir string) (layout, error) {
	var lay layout
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return lay, nil
	}
	if err != nil {
		return lay, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSeq(e.Name(), "journal-"); ok {
			lay.segs = append(lay.segs, n)
			continue
		}
		if n, ok := parseSeq(e.Name(), "base-"); ok {
			if !lay.hasBase || n > lay.baseSeq {
				lay.hasBase = true
				lay.baseSeq = n
			}
		}
	}
	sort.Ints(lay.segs)
	return lay, nil
}

// liveSegs returns the segments that carry data under this layout: those
// strictly above the base sequence. Segments at or below it are stale
// leftovers of a fold that crashed between rename and cleanup.
func (l layout) liveSegs() []int {
	if !l.hasBase {
		return l.segs
	}
	i := sort.SearchInts(l.segs, l.baseSeq+1)
	return l.segs[i:]
}

// maxSeq returns the highest sequence the layout knows about.
func (l layout) maxSeq() int {
	m := 0
	if l.hasBase {
		m = l.baseSeq
	}
	if n := len(l.segs); n > 0 && l.segs[n-1] > m {
		m = l.segs[n-1]
	}
	return m
}

// migrateLegacy renames a pre-segmentation journal.jsonl to the first
// numbered segment. It refuses to guess an order if numbered files
// already coexist with the legacy one.
func migrateLegacy(dir string) error {
	legacy := filepath.Join(dir, FileName)
	if _, err := os.Stat(legacy); errors.Is(err, os.ErrNotExist) {
		return nil
	} else if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	lay, err := scanDir(dir)
	if err != nil {
		return err
	}
	if lay.hasBase || len(lay.segs) > 0 {
		return fmt.Errorf("journal: legacy %s coexists with segmented journal in %s", FileName, dir)
	}
	if err := os.Rename(legacy, filepath.Join(dir, segmentName(1))); err != nil {
		return fmt.Errorf("journal: migrating legacy journal: %w", err)
	}
	return nil
}

// Options tunes a Writer.
type Options struct {
	// MaxBytes rotates the active segment once it reaches this size; the
	// sealed segments are re-compacted into a fresh base in the
	// background. 0 disables rotation.
	MaxBytes int64
	// OnError receives background fold errors (the live append path is
	// unaffected by a failed fold; the data stays in the sealed segments).
	OnError func(error)
	// OnAppend, when non-nil, is called after each record lands in the
	// active segment (after the terminal fsync for result records) with
	// the segment's file name — the shipper's incremental-replication
	// hook. Called with the writer lock held; it must not call back into
	// the writer.
	OnAppend func(name string)
	// OnSeal, when non-nil, is called when a segment's content becomes
	// final: rotation sealing the active segment, and a background fold
	// publishing a new base. Same re-entrancy rule as OnAppend.
	OnSeal func(name string)
}

// Writer appends records to a data directory's journal, rotating the
// active segment at Options.MaxBytes. Safe for concurrent use.
type Writer struct {
	dir      string
	maxBytes int64
	onError  func(error)
	onAppend func(name string)
	onSeal   func(name string)

	mu     sync.Mutex
	f      *os.File
	seq    int
	size   int64
	foldWG sync.WaitGroup
}

// Open creates the data directory if needed and opens its journal for
// appending with rotation disabled. Use OpenOptions to bound segments.
func Open(dir string) (*Writer, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions creates the data directory if needed, migrates a legacy
// single-file journal, and opens the newest segment for appending.
func OpenOptions(dir string, opts Options) (*Writer, error) {
	if dir == "" {
		return nil, errors.New("journal: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := migrateLegacy(dir); err != nil {
		return nil, err
	}
	lay, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	seq := lay.maxSeq()
	if live := lay.liveSegs(); len(live) == 0 {
		// Nothing appendable: start the segment after the base (or 1).
		seq++
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		onError:  opts.OnError,
		onAppend: opts.OnAppend,
		onSeal:   opts.OnSeal,
		f:        f,
		seq:      seq,
		size:     st.Size(),
	}, nil
}

// ActiveSegment returns the file name of the segment currently receiving
// appends — what a startup replication sync must treat as still growing.
func (w *Writer) ActiveSegment() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return segmentName(w.seq)
}

// Append writes one record as a JSON line. Terminal (result) records are
// fsynced before Append returns, so a finished job survives any later
// crash; non-terminal records ride on the OS page cache — losing one
// degrades a job from running to queued on replay, never corrupts it.
// When the active segment passes MaxBytes the append also rotates: the
// segment is sealed, a fresh one opened, and a background fold
// re-compacts everything sealed so far into a new base.
func (w *Writer) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	w.size += int64(len(line))
	if rec.Type == TypeResult || rec.Type == TypePreempt {
		// Results are a job's final word; preempt records are a resumable
		// job's only recovery point — both are worth the fsync.
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	if w.onAppend != nil {
		w.onAppend(segmentName(w.seq))
	}
	if w.maxBytes > 0 && w.size >= w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment, opens the next one, and folds
// the sealed history into a new base in the background. It first waits
// for any previous fold, so at most one unfolded sealed generation ever
// exists — that is what bounds the directory at roughly
// base + one sealed generation + the active segment.
func (w *Writer) rotateLocked() error {
	w.foldWG.Wait()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sealing segment %d: %w", w.seq, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("journal: sealing segment %d: %w", w.seq, err)
	}
	sealed := w.seq
	w.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(w.seq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		w.f = nil
		return fmt.Errorf("journal: opening segment %d: %w", w.seq, err)
	}
	w.f = f
	w.size = 0
	if w.onSeal != nil {
		w.onSeal(segmentName(sealed))
	}
	w.foldWG.Add(1)
	go func() {
		defer w.foldWG.Done()
		if err := foldDir(w.dir, sealed); err != nil {
			if w.onError != nil {
				w.onError(err)
			}
			return
		}
		if w.onSeal != nil {
			w.onSeal(baseName(sealed))
		}
	}()
	return nil
}

// Close waits for any in-flight fold, then syncs and closes the active
// segment. Idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.foldWG.Wait()
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Stats reports the journal files currently on disk (base + segments)
// and their total size — the payload behind the journal_segments and
// journal_bytes service metrics.
type Stats struct {
	Segments int
	Bytes    int64
}

// DirStats scans a data directory for journal files. Best-effort: an
// unreadable directory reports zero.
func DirStats(dir string) Stats {
	var s Stats
	entries, err := os.ReadDir(dir)
	if err != nil {
		return s
	}
	for _, e := range entries {
		_, isSeg := parseSeq(e.Name(), "journal-")
		_, isBase := parseSeq(e.Name(), "base-")
		if !isSeg && !isBase && e.Name() != FileName {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.Segments++
		s.Bytes += info.Size()
	}
	return s
}

// JobState is the merged view of one job after replaying its records.
// Status "" or "queued" means the job never started; "running" means the
// process died mid-run; anything else is the journaled terminal state.
type JobState struct {
	ID          string
	Token       string
	Tenant      string
	Spec        json.RawMessage
	Status      string
	Reason      string
	Error       string
	Stack       string
	Evaluations int
	Curve       []trace.Point
	BestConfig  map[string]any
	BestScore   *float64
	TestScore   *float64
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	// Checkpoint is the latest preempt record's rung-state snapshot for
	// a job that has not reached a terminal state — the resume point
	// after a restart. Nil once a terminal record lands.
	Checkpoint  json.RawMessage
	Preemptions int
}

// Terminal reports whether the state is a journaled terminal outcome.
func (s JobState) Terminal() bool {
	switch s.Status {
	case "", "queued", "running":
		return false
	}
	return true
}

// replayState accumulates records across files in first-submission order.
type replayState struct {
	byID  map[string]*JobState
	order []string
}

// apply merges one record. Event records are observational and skipped.
func (r *replayState) apply(rec Record) {
	if rec.Type == TypeEvent {
		return
	}
	st, ok := r.byID[rec.JobID]
	if !ok {
		st = &JobState{ID: rec.JobID, Status: "queued"}
		r.byID[rec.JobID] = st
		r.order = append(r.order, rec.JobID)
	}
	switch rec.Type {
	case TypeSubmit:
		st.Spec = rec.Spec
		st.SubmittedAt = rec.Time
		if rec.Token != "" {
			st.Token = rec.Token
		}
		if rec.Tenant != "" {
			st.Tenant = rec.Tenant
		}
	case TypeStatus:
		st.Status = rec.Status
		if rec.Status == "running" {
			st.StartedAt = rec.Time
		}
	case TypePreempt:
		st.Status = "queued"
		st.Checkpoint = rec.Checkpoint
		st.Preemptions++
		st.Evaluations = rec.Evaluations
		if rec.Tenant != "" {
			st.Tenant = rec.Tenant
		}
	case TypeResult:
		st.Status = rec.Status
		st.Reason = rec.Reason
		st.Error = rec.Error
		st.Stack = rec.Stack
		st.Evaluations = rec.Evaluations
		if rec.Preemptions > 0 {
			st.Preemptions = rec.Preemptions
		}
		st.Curve = rec.Curve
		st.BestConfig = rec.BestConfig
		st.BestScore = rec.BestScore
		st.TestScore = rec.TestScore
		st.FinishedAt = rec.Time
		st.Checkpoint = nil // terminal outcome supersedes any checkpoint
	}
}

// replayFile decodes one journal file into the accumulator. tornOK
// tolerates a decode error as a torn tail (crash mid-append) — only ever
// granted to the final, active segment; a decode error anywhere else is
// corruption and fails the replay.
func (r *replayState) replayFile(path string, tornOK bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			if tornOK {
				// Crash mid-write: stop at the last whole record.
				return nil
			}
			return fmt.Errorf("journal: torn record in sealed file %s: %w", filepath.Base(path), err)
		}
		r.apply(rec)
	}
}

// replayFiles resolves the layout into the ordered file list to replay
// and verifies the live segment sequence is contiguous: the first live
// segment must directly follow the base, and no live segment may be
// missing — a gap means a sealed segment was lost.
func replayFiles(dir string, lay layout) ([]string, error) {
	var files []string
	if lay.hasBase {
		files = append(files, filepath.Join(dir, baseName(lay.baseSeq)))
	}
	live := lay.liveSegs()
	for i, seq := range live {
		want := seq
		switch {
		case i == 0 && lay.hasBase:
			want = lay.baseSeq + 1
		case i > 0:
			want = live[i-1] + 1
		}
		if seq != want {
			return nil, fmt.Errorf("journal: missing segment %s (found %s after %s): %w",
				segmentName(want), segmentName(seq), baseName(lay.baseSeq), errSegmentGap)
		}
		files = append(files, filepath.Join(dir, segmentName(seq)))
	}
	return files, nil
}

// replayLayout merges the layout's base and live segments, tolerating a
// torn tail only in the newest segment.
func replayLayout(dir string, lay layout) ([]JobState, error) {
	files, err := replayFiles(dir, lay)
	if err != nil {
		return nil, err
	}
	acc := replayState{byID: map[string]*JobState{}}
	nLive := len(lay.liveSegs())
	for i, path := range files {
		tornOK := nLive > 0 && i == len(files)-1
		if err := acc.replayFile(path, tornOK); err != nil {
			return nil, err
		}
	}
	out := make([]JobState, 0, len(acc.order))
	for _, id := range acc.order {
		out = append(out, *acc.byID[id])
	}
	return out, nil
}

// errSegmentGap marks a gap in the live segment sequence. A persistent
// gap is lost data and fails the replay; a transient one is the
// signature of a background fold racing the directory scan and is
// retried against a fresh scan.
var errSegmentGap = errors.New("segment sequence gap")

// Replay retry budget for the replay-vs-fold race below.
const (
	replayRetries    = 20
	replayRetryDelay = 10 * time.Millisecond
)

// Replay reads a data directory's journal — newest base plus the live
// segment sequence — into per-job states in first submission order. A
// missing journal yields no states; a torn final line in the newest
// segment (crash mid-write) ends the replay cleanly at the last whole
// record; a missing middle segment or a torn sealed file is an error.
//
// A replacement process can replay a directory while the process it is
// replacing is still folding it (double-start, or recovery racing a
// dying daemon's background fold): files listed by the scan may be
// folded into a newer base and deleted before they are opened. Both
// shapes of that race — a vanished file and a transient sequence gap —
// are re-scanned and retried; the fold is monotonic, so a fresh scan
// converges on a consistent layout. Only a persistent gap (genuinely
// lost data) is reported.
func Replay(dir string) ([]JobState, error) {
	if err := migrateLegacy(dir); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < replayRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(replayRetryDelay)
		}
		lay, err := scanDir(dir)
		if err != nil {
			return nil, err
		}
		states, err := replayLayout(dir, lay)
		if err == nil {
			return states, nil
		}
		if !errors.Is(err, os.ErrNotExist) && !errors.Is(err, errSegmentGap) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// writeBase writes the states as a compacted base file for seq via a
// temp file and an atomic rename: a submit record per job, a running
// transition where one was seen, and a result record for terminal jobs.
func writeBase(dir string, seq int, states []JobState) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	final := filepath.Join(dir, baseName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	enc := json.NewEncoder(f)
	write := func(rec Record) error { return enc.Encode(rec) }
	for _, st := range states {
		if err := write(Record{Type: TypeSubmit, Time: st.SubmittedAt, JobID: st.ID, Token: st.Token, Tenant: st.Tenant, Spec: st.Spec}); err != nil {
			f.Close()
			return fmt.Errorf("journal: compacting: %w", err)
		}
		if !st.StartedAt.IsZero() {
			if err := write(Record{Type: TypeStatus, Time: st.StartedAt, JobID: st.ID, Status: "running"}); err != nil {
				f.Close()
				return fmt.Errorf("journal: compacting: %w", err)
			}
		}
		if !st.Terminal() && st.Checkpoint != nil {
			// One preempt record preserves the resume point; the serve
			// layer's checkpoint payload carries its own preemption count,
			// so folding the history to a single record loses nothing.
			if err := write(Record{Type: TypePreempt, Time: st.SubmittedAt, JobID: st.ID, Tenant: st.Tenant, Evaluations: st.Evaluations, Checkpoint: st.Checkpoint}); err != nil {
				f.Close()
				return fmt.Errorf("journal: compacting: %w", err)
			}
		}
		if st.Terminal() {
			rec := Record{
				Type:        TypeResult,
				Time:        st.FinishedAt,
				JobID:       st.ID,
				Status:      st.Status,
				Reason:      st.Reason,
				Error:       st.Error,
				Stack:       st.Stack,
				Evaluations: st.Evaluations,
				Curve:       st.Curve,
				BestConfig:  st.BestConfig,
				BestScore:   st.BestScore,
				TestScore:   st.TestScore,
				Preemptions: st.Preemptions,
			}
			if err := write(rec); err != nil {
				f.Close()
				return fmt.Errorf("journal: compacting: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// cleanupBelow best-effort deletes bases older than keepBase and
// segments at or below seg. Failures leave stale files that every replay
// path already ignores, so they are not errors.
func cleanupBelow(dir string, keepBase, seg int, lay layout) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "base-"); ok && n < keepBase {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if n, ok := parseSeq(e.Name(), "journal-"); ok && n <= seg {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// foldDir re-compacts the base and every sealed segment up to and
// including upto into a new base-upto, then removes the folded files.
// The new base is visible atomically before anything is deleted, so a
// crash at any point leaves a replayable directory.
func foldDir(dir string, upto int) error {
	lay, err := scanDir(dir)
	if err != nil {
		return err
	}
	// Restrict the layout to sealed history: segments beyond upto (the
	// active one, or later) stay out of the fold.
	trimmed := lay
	trimmed.segs = nil
	for _, s := range lay.segs {
		if s <= upto {
			trimmed.segs = append(trimmed.segs, s)
		}
	}
	states, err := replayLayout(dir, trimmed)
	if err != nil {
		return fmt.Errorf("folding segments ≤ %d: %w", upto, err)
	}
	if err := writeBase(dir, upto, states); err != nil {
		return err
	}
	cleanupBelow(dir, upto, upto, lay)
	return nil
}

// Compact rewrites the whole journal to the minimal record set
// reproducing the given states: one base file at the directory's highest
// sequence, written via a temp file and an atomic rename, replacing every
// earlier base and segment. A crash mid-compaction leaves the previous
// journal untouched; a crash between the rename and the cleanup leaves
// stale files that replay ignores. The next OpenOptions appends to a
// fresh segment after the base.
func Compact(dir string, states []JobState) error {
	if err := migrateLegacy(dir); err != nil {
		return err
	}
	lay, err := scanDir(dir)
	if err != nil {
		return err
	}
	seq := lay.maxSeq()
	if err := writeBase(dir, seq, states); err != nil {
		return err
	}
	cleanupBelow(dir, seq, seq, lay)
	return nil
}

// Package journal gives bhpod crash-safe job persistence: an append-only
// JSONL log per data directory recording job submissions, status
// transitions and terminal results. The write path is sequenced so that a
// crash at any instant loses at most the record being written: every
// record is one JSON line, terminal records are fsynced before Append
// returns, and Replay tolerates a torn final line (the signature of a
// crash mid-write) by treating it as end-of-log.
//
// On startup the serve layer replays the log into per-job states,
// reclassifies jobs that were mid-run when the process died, and rewrites
// the log compacted — one submit record plus (for finished jobs) one
// result record per job — via a temp file and an atomic rename, so the
// journal does not grow across restarts and a crash during compaction
// leaves the previous log intact.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"enhancedbhpo/internal/trace"
)

// FileName is the journal file inside a data directory.
const FileName = "journal.jsonl"

// Record types.
const (
	// TypeSubmit records a job's acceptance: ID plus the defaulted spec.
	TypeSubmit = "submit"
	// TypeStatus records a non-terminal lifecycle transition (running).
	TypeStatus = "status"
	// TypeResult records a terminal state with everything needed to serve
	// the job after a restart; it is fsynced.
	TypeResult = "result"
)

// Record is one journal line. The spec travels as raw JSON so this
// package stays independent of the serve layer's types; curves reuse the
// trace package's bit-exact Point round-trip.
type Record struct {
	Type        string          `json:"t"`
	Time        time.Time       `json:"time"`
	JobID       string          `json:"job"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	Status      string          `json:"status,omitempty"`
	Reason      string          `json:"reason,omitempty"`
	Error       string          `json:"error,omitempty"`
	Stack       string          `json:"stack,omitempty"`
	Evaluations int             `json:"evaluations,omitempty"`
	Curve       []trace.Point   `json:"curve,omitempty"`
	BestConfig  map[string]any  `json:"best_config,omitempty"`
	BestScore   *float64        `json:"best_score,omitempty"`
	TestScore   *float64        `json:"test_score,omitempty"`
}

// Writer appends records to a data directory's journal. Safe for
// concurrent use.
type Writer struct {
	mu sync.Mutex
	f  *os.File
}

// Open creates the data directory if needed and opens its journal for
// appending.
func Open(dir string) (*Writer, error) {
	if dir == "" {
		return nil, errors.New("journal: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f}, nil
}

// Append writes one record as a JSON line. Terminal (result) records are
// fsynced before Append returns, so a finished job survives any later
// crash; non-terminal records ride on the OS page cache — losing one
// degrades a job from running to queued on replay, never corrupts it.
func (w *Writer) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	if rec.Type == TypeResult {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	return nil
}

// Close syncs and closes the journal. Idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// JobState is the merged view of one job after replaying its records.
// Status "" or "queued" means the job never started; "running" means the
// process died mid-run; anything else is the journaled terminal state.
type JobState struct {
	ID          string
	Spec        json.RawMessage
	Status      string
	Reason      string
	Error       string
	Stack       string
	Evaluations int
	Curve       []trace.Point
	BestConfig  map[string]any
	BestScore   *float64
	TestScore   *float64
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

// Terminal reports whether the state is a journaled terminal outcome.
func (s JobState) Terminal() bool {
	switch s.Status {
	case "", "queued", "running":
		return false
	}
	return true
}

// Replay reads a data directory's journal into per-job states in first
// submission order. A missing journal yields no states; a torn final
// line (crash mid-write) ends the replay cleanly at the last whole
// record.
func Replay(dir string) ([]JobState, error) {
	f, err := os.Open(filepath.Join(dir, FileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	byID := map[string]*JobState{}
	var order []string
	dec := json.NewDecoder(f)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			// io.EOF is a clean end; anything else is a torn tail from a
			// crash mid-append — stop at the last whole record.
			break
		}
		st, ok := byID[rec.JobID]
		if !ok {
			st = &JobState{ID: rec.JobID, Status: "queued"}
			byID[rec.JobID] = st
			order = append(order, rec.JobID)
		}
		switch rec.Type {
		case TypeSubmit:
			st.Spec = rec.Spec
			st.SubmittedAt = rec.Time
		case TypeStatus:
			st.Status = rec.Status
			if rec.Status == "running" {
				st.StartedAt = rec.Time
			}
		case TypeResult:
			st.Status = rec.Status
			st.Reason = rec.Reason
			st.Error = rec.Error
			st.Stack = rec.Stack
			st.Evaluations = rec.Evaluations
			st.Curve = rec.Curve
			st.BestConfig = rec.BestConfig
			st.BestScore = rec.BestScore
			st.TestScore = rec.TestScore
			st.FinishedAt = rec.Time
		}
	}
	out := make([]JobState, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, nil
}

// Compact rewrites the journal to the minimal record set reproducing the
// given states: a submit record per job, a running transition where one
// was seen, and a result record for terminal jobs. The rewrite goes
// through a temp file and an atomic rename, so a crash mid-compaction
// leaves the previous journal untouched.
func Compact(dir string, states []JobState) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp := filepath.Join(dir, FileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	enc := json.NewEncoder(f)
	write := func(rec Record) error { return enc.Encode(rec) }
	for _, st := range states {
		if err := write(Record{Type: TypeSubmit, Time: st.SubmittedAt, JobID: st.ID, Spec: st.Spec}); err != nil {
			f.Close()
			return fmt.Errorf("journal: compacting: %w", err)
		}
		if !st.StartedAt.IsZero() {
			if err := write(Record{Type: TypeStatus, Time: st.StartedAt, JobID: st.ID, Status: "running"}); err != nil {
				f.Close()
				return fmt.Errorf("journal: compacting: %w", err)
			}
		}
		if st.Terminal() {
			rec := Record{
				Type:        TypeResult,
				Time:        st.FinishedAt,
				JobID:       st.ID,
				Status:      st.Status,
				Reason:      st.Reason,
				Error:       st.Error,
				Stack:       st.Stack,
				Evaluations: st.Evaluations,
				Curve:       st.Curve,
				BestConfig:  st.BestConfig,
				BestScore:   st.BestScore,
				TestScore:   st.TestScore,
			}
			if err := write(rec); err != nil {
				f.Close()
				return fmt.Errorf("journal: compacting: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, FileName)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"enhancedbhpo/internal/trace"
)

func ptr(f float64) *float64 { return &f }

func sampleCurve() []trace.Point {
	return []trace.Point{
		{Evaluations: 1, CumBudget: 100, CumTime: 12345 * time.Microsecond, BestScore: 0.71},
		{Evaluations: 2, CumBudget: 250, CumTime: 34567 * time.Microsecond, BestScore: 0.83},
	}
}

func TestReplayMergesRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	spec := json.RawMessage(`{"dataset":"australian","method":"sha"}`)
	records := []Record{
		{Type: TypeSubmit, Time: t0, JobID: "job-1", Spec: spec},
		{Type: TypeStatus, Time: t0.Add(time.Second), JobID: "job-1", Status: "running"},
		{Type: TypeSubmit, Time: t0.Add(2 * time.Second), JobID: "job-2", Spec: spec},
		{
			Type: TypeResult, Time: t0.Add(3 * time.Second), JobID: "job-1",
			Status: "done", Evaluations: 2, Curve: sampleCurve(),
			BestConfig: map[string]any{"activation": "relu"},
			BestScore:  ptr(0.83), TestScore: ptr(0.80),
		},
	}
	for _, rec := range records {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	states, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("replayed %d states, want 2", len(states))
	}
	j1, j2 := states[0], states[1]
	if j1.ID != "job-1" || j2.ID != "job-2" {
		t.Fatalf("order: %s, %s", j1.ID, j2.ID)
	}
	if j1.Status != "done" || !j1.Terminal() {
		t.Fatalf("job-1 status %q", j1.Status)
	}
	if j1.Evaluations != 2 || len(j1.Curve) != 2 {
		t.Fatalf("job-1 curve: %d evals, %d points", j1.Evaluations, len(j1.Curve))
	}
	// Curves round-trip bit-for-bit through the trace JSON form.
	for i, p := range sampleCurve() {
		if j1.Curve[i] != p {
			t.Fatalf("curve point %d: %+v != %+v", i, j1.Curve[i], p)
		}
	}
	if j1.BestScore == nil || *j1.BestScore != 0.83 || j1.TestScore == nil || *j1.TestScore != 0.80 {
		t.Fatalf("job-1 scores: %+v", j1)
	}
	if !j1.StartedAt.Equal(t0.Add(time.Second)) || !j1.FinishedAt.Equal(t0.Add(3*time.Second)) {
		t.Fatalf("job-1 times: started %v finished %v", j1.StartedAt, j1.FinishedAt)
	}
	if j2.Status != "queued" || j2.Terminal() {
		t.Fatalf("job-2 status %q", j2.Status)
	}
	if string(j2.Spec) != string(spec) {
		t.Fatalf("job-2 spec %s", j2.Spec)
	}
}

func TestReplayMissingJournal(t *testing.T) {
	states, err := Replay(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("empty dir replayed %d states", len(states))
	}
}

// TestReplayTornTail simulates a crash mid-append: the last line is
// truncated, and replay must stop cleanly at the last whole record.
func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := json.RawMessage(`{"dataset":"australian","method":"sha"}`)
	if err := w.Append(Record{Type: TypeSubmit, Time: time.Now(), JobID: "job-1", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"result","job":"job-1","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	states, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Status != "queued" {
		t.Fatalf("torn tail replay: %+v", states)
	}
}

// TestCompactRoundTrip verifies that compaction preserves the merged
// states exactly and shrinks the log to the minimal record set.
func TestCompactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	spec := json.RawMessage(`{"dataset":"australian","method":"asha"}`)
	// Noisy history: repeated transitions that compaction should fold away.
	for _, rec := range []Record{
		{Type: TypeSubmit, Time: t0, JobID: "job-1", Spec: spec},
		{Type: TypeStatus, Time: t0.Add(time.Second), JobID: "job-1", Status: "running"},
		{Type: TypeResult, Time: t0.Add(2 * time.Second), JobID: "job-1", Status: "cancelled", Reason: "user_cancel", Curve: sampleCurve(), Evaluations: 2},
		{Type: TypeSubmit, Time: t0.Add(3 * time.Second), JobID: "job-2", Spec: spec},
		{Type: TypeStatus, Time: t0.Add(4 * time.Second), JobID: "job-2", Status: "running"},
	} {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	before, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compact(dir, before); err != nil {
		t.Fatal(err)
	}
	after, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("compaction changed state count: %d -> %d", len(before), len(after))
	}
	for i := range before {
		b, a := before[i], after[i]
		if a.ID != b.ID || a.Status != b.Status || a.Reason != b.Reason ||
			a.Evaluations != b.Evaluations || len(a.Curve) != len(b.Curve) ||
			!a.SubmittedAt.Equal(b.SubmittedAt) || !a.StartedAt.Equal(b.StartedAt) {
			t.Fatalf("state %d changed:\nbefore %+v\nafter  %+v", i, b, a)
		}
	}
	// Appending after compaction keeps working (the writer reopens).
	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Record{Type: TypeResult, Time: t0.Add(5 * time.Second), JobID: "job-2", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	final, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final[1].Status != "done" {
		t.Fatalf("post-compaction append lost: %+v", final[1])
	}
}

// writeSegment handcrafts one complete segment file from records.
func writeSegment(t *testing.T, dir string, seq int, recs ...Record) {
	t.Helper()
	var buf []byte
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(seq)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentReplayTornNewest: with a multi-segment journal, a torn tail
// is tolerated only in the newest segment — sealed history replays whole.
func TestSegmentReplayTornNewest(t *testing.T) {
	dir := t.TempDir()
	spec := json.RawMessage(`{"dataset":"australian","method":"sha"}`)
	t0 := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	writeSegment(t, dir, 1,
		Record{Type: TypeSubmit, Time: t0, JobID: "job-1", Spec: spec},
		Record{Type: TypeResult, Time: t0.Add(time.Second), JobID: "job-1", Status: "done", Evaluations: 3},
	)
	writeSegment(t, dir, 2,
		Record{Type: TypeSubmit, Time: t0.Add(2 * time.Second), JobID: "job-2", Spec: spec},
	)
	f, err := os.OpenFile(filepath.Join(dir, segmentName(2)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"result","job":"job-2","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	states, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("replayed %d states, want 2: %+v", len(states), states)
	}
	if states[0].Status != "done" || states[0].Evaluations != 3 {
		t.Fatalf("sealed segment state lost: %+v", states[0])
	}
	if states[1].Status != "queued" {
		t.Fatalf("torn tail not dropped: %+v", states[1])
	}

	// The same tear in a *sealed* segment is corruption, not a torn tail.
	writeSegment(t, dir, 3,
		Record{Type: TypeSubmit, Time: t0.Add(3 * time.Second), JobID: "job-3", Spec: spec},
	)
	if _, err := Replay(dir); err == nil {
		t.Fatal("torn record in a sealed segment replayed without error")
	}
}

// TestReplayMissingMiddleSegment: a gap in the live segment sequence is
// lost data and must fail with an error naming the missing segment.
func TestReplayMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	spec := json.RawMessage(`{"dataset":"australian","method":"sha"}`)
	now := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	for seq := 1; seq <= 3; seq++ {
		writeSegment(t, dir, seq,
			Record{Type: TypeSubmit, Time: now, JobID: "job-" + segmentName(seq), Spec: spec})
	}
	if _, err := Replay(dir); err != nil {
		t.Fatalf("contiguous segments: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(dir)
	if err == nil {
		t.Fatal("missing middle segment replayed without error")
	}
	if !strings.Contains(err.Error(), segmentName(2)) {
		t.Fatalf("error %q does not name the missing segment", err)
	}
}

// TestReplayRetriesTransientGap: a gap that heals while Replay is
// retrying (the signature of a concurrent fold racing the scan) must
// replay cleanly instead of reporting lost data.
func TestReplayRetriesTransientGap(t *testing.T) {
	dir := t.TempDir()
	spec := json.RawMessage(`{"dataset":"australian","method":"sha"}`)
	now := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	for seq := 1; seq <= 3; seq++ {
		writeSegment(t, dir, seq,
			Record{Type: TypeSubmit, Time: now, JobID: "job-" + segmentName(seq), Spec: spec})
	}
	seg2 := filepath.Join(dir, segmentName(2))
	stashed, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(seg2); err != nil {
		t.Fatal(err)
	}
	restored := make(chan struct{})
	go func() {
		defer close(restored)
		time.Sleep(3 * replayRetryDelay)
		if err := os.WriteFile(seg2, stashed, 0o644); err != nil {
			t.Error(err)
		}
	}()
	states, err := Replay(dir)
	<-restored
	if err != nil {
		t.Fatalf("replay did not ride out the transient gap: %v", err)
	}
	if len(states) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(states))
	}
}

// TestRotationConcurrentAppends hammers a rotating writer from several
// goroutines (run under -race via make check): every job must survive
// rotation + background folds, and the sealed history must land in a
// base file.
func TestRotationConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenOptions(dir, Options{
		MaxBytes: 512,
		OnError:  func(err error) { t.Errorf("fold: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, jobsEach = 4, 40
	spec := json.RawMessage(`{"dataset":"australian","method":"sha"}`)
	now := time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				id := fmt.Sprintf("job-%d-%d", g, i)
				if err := w.Append(Record{Type: TypeSubmit, Time: now, JobID: id, Spec: spec}); err != nil {
					t.Errorf("append submit %s: %v", id, err)
					return
				}
				if err := w.Append(Record{
					Type: TypeResult, Time: now.Add(time.Second), JobID: id,
					Status: "done", Evaluations: 1,
				}); err != nil {
					t.Errorf("append result %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	states, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != writers*jobsEach {
		t.Fatalf("replayed %d states, want %d", len(states), writers*jobsEach)
	}
	for _, st := range states {
		if st.Status != "done" {
			t.Fatalf("job %s lost its result across rotation: %+v", st.ID, st)
		}
	}
	lay, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !lay.hasBase {
		t.Fatal("no fold ever completed: no base file on disk")
	}
	if live := lay.liveSegs(); len(live) > 2 {
		t.Fatalf("folds fell behind: %d live segments (%v)", len(live), live)
	}
	if s := DirStats(dir); s.Segments == 0 || s.Bytes == 0 {
		t.Fatalf("DirStats sees nothing: %+v", s)
	}
}

// TestLegacyJournalMigrated: a pre-segmentation journal.jsonl is adopted
// as the first segment on replay and open.
func TestLegacyJournalMigrated(t *testing.T) {
	dir := t.TempDir()
	spec := json.RawMessage(`{"dataset":"australian","method":"sha"}`)
	line, _ := json.Marshal(Record{Type: TypeSubmit, Time: time.Now(), JobID: "job-1", Spec: spec})
	if err := os.WriteFile(filepath.Join(dir, FileName), append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	states, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].ID != "job-1" {
		t.Fatalf("legacy replay: %+v", states)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName)); !os.IsNotExist(err) {
		t.Fatal("legacy file not migrated away")
	}
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: TypeResult, Time: time.Now(), JobID: "job-1", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	states, err = Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Status != "done" {
		t.Fatalf("post-migration append lost: %+v", states)
	}
}

func TestWriterClosedAppendFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: TypeSubmit, JobID: "job-1"}); err == nil {
		t.Fatal("append on closed writer succeeded")
	}
}

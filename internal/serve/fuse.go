package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// fusedEvaluator sits between a scope's evaluation cache and its CV
// evaluator and batches concurrent cache-missing evaluations of the same
// budget into one hpo.EvaluateBatch call, so their per-fold model fits
// run through the lockstep fused trainer (grouped matmul dispatch)
// instead of training one model per pool slot. Fusion is a pure
// scheduling change: EvaluateBatch returns, for every member, exactly
// the scores a solo Evaluate would — so cache keys, trial scores and
// anytime curves are bitwise-unchanged whether or not requests fuse.
//
// Grouping is leader-based: the first evaluation to arrive for a budget
// becomes the group leader, waits a short collection window for peers
// (cut short when the group reaches pool size), then runs the whole
// group and delivers each member's result. With at most one evaluation
// in flight the window is skipped entirely — there is nobody to fuse
// with — so solo workloads see no added latency.
type fusedEvaluator struct {
	cv       *hpo.CVEvaluator
	pool     *Pool
	window   time.Duration
	maxGroup int
	// kernelWorkers is the per-evaluation matmul cap; a fused group of g
	// trials dispatches with min(g × kernelWorkers, GOMAXPROCS) workers,
	// so fusion uses the cores its members were each entitled to without
	// oversubscribing the machine.
	kernelWorkers int

	onFused    func(trials, rows int64) // fused members, stacked minibatch rows
	onFallback func(n int64)            // members that ended up evaluating solo

	mu     sync.Mutex
	groups map[int]*fuseGroup // keyed by budget
}

type fuseGroup struct {
	waiters []*fuseWaiter
	filled  chan struct{} // closed when the group reaches maxGroup
}

type fuseWaiter struct {
	req  hpo.EvalRequest
	done chan fuseResult // buffered(1): delivery never blocks the leader
}

type fuseResult struct {
	scores []float64
	err    error
}

func newFusedEvaluator(cv *hpo.CVEvaluator, pool *Pool, window time.Duration, kernelWorkers int,
	onFused func(trials, rows int64), onFallback func(n int64)) *fusedEvaluator {
	maxGroup := pool.Size()
	if maxGroup < 2 {
		maxGroup = 2
	}
	if kernelWorkers < 1 {
		kernelWorkers = 1
	}
	return &fusedEvaluator{
		cv:            cv,
		pool:          pool,
		window:        window,
		maxGroup:      maxGroup,
		kernelWorkers: kernelWorkers,
		onFused:       onFused,
		onFallback:    onFallback,
		groups:        map[int]*fuseGroup{},
	}
}

// FullBudget implements hpo.Evaluator.
func (f *fusedEvaluator) FullBudget() int { return f.cv.FullBudget() }

// Evaluate implements hpo.Evaluator.
func (f *fusedEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	// Callers hold a pool slot, so InUse <= 1 means this evaluation is
	// the only one in flight: skip the collection window.
	if f.pool.InUse() <= 1 {
		if f.onFallback != nil {
			f.onFallback(1)
		}
		return f.cv.Evaluate(cfg, budget, r)
	}
	w := &fuseWaiter{
		req:  hpo.EvalRequest{Cfg: cfg, Budget: budget, R: r},
		done: make(chan fuseResult, 1),
	}
	f.mu.Lock()
	g, ok := f.groups[budget]
	leader := !ok
	if leader {
		g = &fuseGroup{filled: make(chan struct{})}
		f.groups[budget] = g
	}
	g.waiters = append(g.waiters, w)
	if len(g.waiters) >= f.maxGroup {
		// Full: detach so later arrivals start a fresh group, and wake
		// the leader out of its window early.
		delete(f.groups, budget)
		close(g.filled)
	}
	f.mu.Unlock()
	if leader {
		f.lead(budget, g)
	}
	res := <-w.done
	return res.scores, res.err
}

// lead waits out the collection window (cut short when the group fills),
// detaches the group and runs it, delivering every member's result —
// including the leader's own, read back in Evaluate like any joiner's.
func (f *fusedEvaluator) lead(budget int, g *fuseGroup) {
	t := time.NewTimer(f.window)
	select {
	case <-g.filled:
	case <-t.C:
	}
	t.Stop()
	f.mu.Lock()
	if f.groups[budget] == g {
		delete(f.groups, budget)
	}
	waiters := g.waiters
	f.mu.Unlock()
	f.runGroup(waiters)
}

// runGroup evaluates the detached group — fused when it has at least two
// members — and delivers every member's result. The recover armor is
// load-bearing: the leader's own panics would be recovered by its
// pooled-evaluator caller, but a panic here before delivery would leave
// the joiners blocked forever, so it is converted into a per-member
// error instead.
func (f *fusedEvaluator) runGroup(waiters []*fuseWaiter) {
	defer func() {
		if v := recover(); v != nil {
			err := fmt.Errorf("serve: fused evaluation panicked: %v", v)
			for _, w := range waiters {
				select {
				case w.done <- fuseResult{err: err}:
				default: // result already delivered
				}
			}
		}
	}()
	if len(waiters) == 1 {
		w := waiters[0]
		if f.onFallback != nil {
			f.onFallback(1)
		}
		scores, err := f.cv.Evaluate(w.req.Cfg, w.req.Budget, w.req.R)
		w.done <- fuseResult{scores: scores, err: err}
		return
	}
	reqs := make([]hpo.EvalRequest, len(waiters))
	for i, w := range waiters {
		reqs[i] = w.req
	}
	workers := len(waiters) * f.kernelWorkers
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	results, stats := f.cv.EvaluateBatch(reqs, workers)
	if f.onFused != nil && stats.FusedTrials > 0 {
		f.onFused(int64(stats.FusedTrials), stats.StackedRows)
	}
	if f.onFallback != nil && len(waiters) > stats.FusedTrials {
		// Members that joined a group but did not fuse (L-BFGS solo
		// routes, errored requests, no lockstep overlap) count as
		// fallbacks.
		f.onFallback(int64(len(waiters) - stats.FusedTrials))
	}
	for i, w := range waiters {
		w.done <- fuseResult{scores: results[i].Scores, err: results[i].Err}
	}
}

package hpo

import (
	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/scoring"
)

// EnhancedOptions tune the paper's enhanced components (defaults follow
// §IV-B: k_gen=3, k_spe=2, v=2, r_group=0.8, α=0.1, β_max=10).
type EnhancedOptions struct {
	// KGen is the number of general folds. 0 selects 3.
	KGen int
	// KSpe is the number of special folds. 0 selects 2.
	KSpe int
	// Grouping configures §III-A group construction.
	Grouping grouping.Options
	// Alpha is the variance weight α. 0 selects scoring.DefaultAlpha.
	Alpha float64
	// BetaMax is β_max. 0 selects scoring.DefaultBetaMax.
	BetaMax float64
	// SpecialBias is the special-fold focus fraction. 0 selects 0.8.
	SpecialBias float64
}

func (o EnhancedOptions) withDefaults() EnhancedOptions {
	if o.KGen <= 0 {
		o.KGen = 3
	}
	// The zero value selects the paper's 3+2 split. Callers sweeping fold
	// allocations that include zero-general or zero-special mixes (Fig. 6)
	// should build hpo.Components with cv.GroupFolds directly.
	if o.KSpe <= 0 {
		o.KSpe = 2
	}
	return o
}

// VanillaComponents returns the components used by plain bandit methods:
// stratified k-fold over a stratified subset, scored by the fold mean.
func VanillaComponents(k int) Components {
	if k <= 0 {
		k = 5
	}
	return Components{Folds: cv.StratifiedKFold{}, K: k, Scorer: scoring.MeanScorer{}}
}

// EnhancedComponents builds the paper's enhanced components for the given
// training set: instance groups (Operation 1), general+special folds
// (Operation 2) and the UCB-β scorer (Eq. 3). The groups are constructed
// once here and shared by every evaluation, as in Algorithm 1.
func EnhancedComponents(train *dataset.Dataset, opts EnhancedOptions, r *rng.RNG) (Components, error) {
	opts = opts.withDefaults()
	gopts := opts.Grouping
	if gopts.V <= 0 {
		// Match the paper: k_spe equals the group count v when folds drive
		// the choice; default v=2 pairs with k_spe=2.
		gopts.V = opts.KSpe
		if gopts.V < 2 {
			gopts.V = 2
		}
	}
	groups, err := grouping.Build(train, gopts, r)
	if err != nil {
		return Components{}, err
	}
	return Components{
		Folds:  cv.GroupFolds{KGen: opts.KGen, KSpe: opts.KSpe, SpecialBias: opts.SpecialBias},
		K:      opts.KGen + opts.KSpe,
		Scorer: scoring.UCBScorer{Alpha: opts.Alpha, BetaMax: opts.BetaMax},
		Groups: groups,
	}, nil
}

package hpo

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// TestASHAWorkerCountDeterminism is the regression test for the promotion
// replay: ASHA with 1 worker and with 8 workers on the same seed must run
// the same set of evaluations and select the same best configuration.
func TestASHAWorkerCountDeterminism(t *testing.T) {
	space, quality := gradedSpace()
	for _, seed := range []uint64{1, 7, 42} {
		ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
		base := ASHAOptions{Eta: 2, MinBudget: 100, MaxConfigs: 16, Seed: seed}
		serialOpts := base
		serialOpts.Workers = 1
		serial, err := ASHA(space, ev, vanComps(), serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parallelOpts := base
		parallelOpts.Workers = 8
		parallel, err := ASHA(space, ev, vanComps(), parallelOpts)
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Best.ID() != serial.Best.ID() {
			t.Fatalf("seed %d: workers=8 picked %s, workers=1 picked %s",
				seed, parallel.Best.ID(), serial.Best.ID())
		}
		if parallel.BestScore != serial.BestScore {
			t.Fatalf("seed %d: best score %v vs %v", seed, parallel.BestScore, serial.BestScore)
		}
		if got, want := trialKeys(parallel), trialKeys(serial); !equalStrings(got, want) {
			t.Fatalf("seed %d: evaluation sets diverged:\n workers=8: %v\n workers=1: %v",
				seed, got, want)
		}
	}
}

// TestASHATrialOrderAnyWorkers pins the serial-order emission replay:
// Result.Trials and the Observe stream arrive in the identical order for
// any worker count — the order a single-worker run produces — so anytime
// curves built from either are scheduling-independent, not just the
// evaluation set.
func TestASHATrialOrderAnyWorkers(t *testing.T) {
	space, quality := gradedSpace()
	base := ASHAOptions{Eta: 2, MinBudget: 100, MaxConfigs: 16, Seed: 7}
	run := func(workers int) (*Result, []string) {
		ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
		var mu sync.Mutex
		var seen []string
		comps := vanComps().WithObserver(func(tr Trial) {
			mu.Lock()
			seen = append(seen, fmt.Sprintf("%s@%d=%x", tr.Config.ID(), tr.Round, tr.Score))
			mu.Unlock()
		})
		opts := base
		opts.Workers = workers
		res, err := ASHA(space, ev, comps, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, seen
	}
	serial, serialSeen := run(1)
	if len(serialSeen) != len(serial.Trials) {
		t.Fatalf("observer saw %d trials, result has %d", len(serialSeen), len(serial.Trials))
	}
	for _, workers := range []int{2, 8} {
		res, seen := run(workers)
		if len(res.Trials) != len(serial.Trials) {
			t.Fatalf("workers=%d: %d trials, serial %d", workers, len(res.Trials), len(serial.Trials))
		}
		for i := range serial.Trials {
			a, b := serial.Trials[i], res.Trials[i]
			if a.Config.ID() != b.Config.ID() || a.Round != b.Round || a.Score != b.Score || a.Budget != b.Budget {
				t.Fatalf("workers=%d: trial %d out of serial order: %s@%d vs %s@%d",
					workers, i, b.Config.ID(), b.Round, a.Config.ID(), a.Round)
			}
		}
		if !equalStrings(seen, serialSeen) {
			t.Fatalf("workers=%d: observer stream diverged from serial order:\n got  %v\n want %v",
				workers, seen, serialSeen)
		}
	}
}

// trialKeys returns the sorted (config, rung, score) keys of a run — the
// scheduling-independent fingerprint of what was evaluated.
func trialKeys(res *Result) []string {
	keys := make([]string, 0, len(res.Trials))
	for _, tr := range res.Trials {
		keys = append(keys, fmt.Sprintf("%s@%d=%x", tr.Config.ID(), tr.Round, tr.Score))
	}
	sort.Strings(keys)
	return keys
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countingEvaluator wraps fakeEvaluator and counts Evaluate calls.
type countingEvaluator struct {
	inner Evaluator
	calls atomic.Int64
}

func (c *countingEvaluator) FullBudget() int { return c.inner.FullBudget() }

func (c *countingEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	c.calls.Add(1)
	return c.inner.Evaluate(cfg, budget, r)
}

// TestCtxCancellationStopsOptimizers cancels a context mid-run and checks
// that every registered method returns context.Canceled and stops
// evaluating promptly (within one in-flight evaluation per worker). The
// table is the registry itself, so a newly registered method is covered
// automatically.
func TestCtxCancellationStopsOptimizers(t *testing.T) {
	space, quality := gradedSpace()
	for i, info := range Methods() {
		seed := uint64(i + 1)
		workers := 1
		opts := RunOptions{Seed: seed}
		if info.HonorsWorkers {
			workers = 4
			opts.Workers = workers
		}
		method, ok := LookupMethod(info.Name)
		if !ok {
			t.Fatalf("Methods() lists %q but LookupMethod misses it", info.Name)
		}
		t.Run(info.Name, func(t *testing.T) {
			inner := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
			ev := &countingEvaluator{inner: inner}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const stopAfter = 3
			hook := &cancelAfter{n: stopAfter, cancel: cancel, ev: ev}
			_, err := method.Run(ctx, space, hook, vanComps(), opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got error %v, want context.Canceled", err)
			}
			// The cancel fires during evaluation stopAfter; afterwards at
			// most one already-dispatched evaluation per worker may finish.
			if got := ev.calls.Load(); got > int64(stopAfter+workers) {
				t.Fatalf("ran %d evaluations after cancelling at %d with %d workers", got, stopAfter, workers)
			}
		})
	}
}

// TestSeedDeterminism runs every registered method twice with the same
// seed and requires the identical best configuration, best score and
// evaluation set — the registry contract that makes CLI and served runs
// reproducible.
func TestSeedDeterminism(t *testing.T) {
	space, quality := gradedSpace()
	for _, info := range Methods() {
		method, _ := LookupMethod(info.Name)
		t.Run(info.Name, func(t *testing.T) {
			opts := RunOptions{Seed: 7}
			if info.HonorsWorkers {
				// Determinism must also hold across scheduling, so the
				// repeat run uses a different worker count.
				opts.Workers = 1
			}
			runOnce := func(o RunOptions) *Result {
				ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
				res, err := method.Run(context.Background(), space, ev, vanComps(), o)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			first := runOnce(opts)
			repeatOpts := opts
			if info.HonorsWorkers {
				repeatOpts.Workers = 4
			}
			repeat := runOnce(repeatOpts)
			if first.Best.ID() != repeat.Best.ID() {
				t.Fatalf("same seed picked %s then %s", first.Best.ID(), repeat.Best.ID())
			}
			if first.BestScore != repeat.BestScore {
				t.Fatalf("same seed scored %v then %v", first.BestScore, repeat.BestScore)
			}
			if got, want := trialKeys(repeat), trialKeys(first); !equalStrings(got, want) {
				t.Fatalf("same seed evaluated different sets:\n first:  %v\n repeat: %v", want, got)
			}
		})
	}
}

// cancelAfter cancels the context when the n-th evaluation starts.
type cancelAfter struct {
	n      int64
	cancel context.CancelFunc
	ev     *countingEvaluator
}

func (c *cancelAfter) FullBudget() int { return c.ev.FullBudget() }

func (c *cancelAfter) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if c.ev.calls.Load()+1 >= c.n {
		c.cancel()
	}
	return c.ev.Evaluate(cfg, budget, r)
}

// TestPreCancelledCtx verifies that an already-cancelled context aborts
// every registered method before any evaluation runs.
func TestPreCancelledCtx(t *testing.T) {
	space, quality := gradedSpace()
	inner := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
	ev := &countingEvaluator{inner: inner}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, info := range Methods() {
		method, _ := LookupMethod(info.Name)
		if _, err := method.Run(ctx, space, ev, vanComps(), RunOptions{Seed: 1}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want context.Canceled", info.Name, err)
		}
	}
	if got := ev.calls.Load(); got != 0 {
		t.Fatalf("pre-cancelled context still ran %d evaluations", got)
	}
}

package hpo

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// TestASHAWorkerCountDeterminism is the regression test for the promotion
// replay: ASHA with 1 worker and with 8 workers on the same seed must run
// the same set of evaluations and select the same best configuration.
func TestASHAWorkerCountDeterminism(t *testing.T) {
	space, quality := gradedSpace()
	for _, seed := range []uint64{1, 7, 42} {
		ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
		base := ASHAOptions{Eta: 2, MinBudget: 100, MaxConfigs: 16, Seed: seed}
		serialOpts := base
		serialOpts.Workers = 1
		serial, err := ASHA(space, ev, vanComps(), serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parallelOpts := base
		parallelOpts.Workers = 8
		parallel, err := ASHA(space, ev, vanComps(), parallelOpts)
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Best.ID() != serial.Best.ID() {
			t.Fatalf("seed %d: workers=8 picked %s, workers=1 picked %s",
				seed, parallel.Best.ID(), serial.Best.ID())
		}
		if parallel.BestScore != serial.BestScore {
			t.Fatalf("seed %d: best score %v vs %v", seed, parallel.BestScore, serial.BestScore)
		}
		if got, want := trialKeys(parallel), trialKeys(serial); !equalStrings(got, want) {
			t.Fatalf("seed %d: evaluation sets diverged:\n workers=8: %v\n workers=1: %v",
				seed, got, want)
		}
	}
}

// trialKeys returns the sorted (config, rung, score) keys of a run — the
// scheduling-independent fingerprint of what was evaluated.
func trialKeys(res *Result) []string {
	keys := make([]string, 0, len(res.Trials))
	for _, tr := range res.Trials {
		keys = append(keys, fmt.Sprintf("%s@%d=%x", tr.Config.ID(), tr.Round, tr.Score))
	}
	sort.Strings(keys)
	return keys
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countingEvaluator wraps fakeEvaluator and counts Evaluate calls.
type countingEvaluator struct {
	inner Evaluator
	calls atomic.Int64
}

func (c *countingEvaluator) FullBudget() int { return c.inner.FullBudget() }

func (c *countingEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	c.calls.Add(1)
	return c.inner.Evaluate(cfg, budget, r)
}

// TestCtxCancellationStopsOptimizers cancels a context mid-run and checks
// that every Ctx variant returns context.Canceled and stops evaluating
// promptly (within one in-flight evaluation per worker).
func TestCtxCancellationStopsOptimizers(t *testing.T) {
	space, quality := gradedSpace()
	run := func(name string, workers int, f func(ctx context.Context, ev Evaluator) error) {
		t.Run(name, func(t *testing.T) {
			inner := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
			ev := &countingEvaluator{inner: inner}
			ctx, cancel := context.WithCancel(context.Background())
			const stopAfter = 3
			hook := &cancelAfter{n: stopAfter, cancel: cancel, ev: ev}
			err := f(ctx, hook)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("got error %v, want context.Canceled", err)
			}
			// The cancel fires during evaluation stopAfter; afterwards at
			// most one already-dispatched evaluation per worker may finish.
			if got := ev.calls.Load(); got > int64(stopAfter+workers) {
				t.Fatalf("ran %d evaluations after cancelling at %d with %d workers", got, stopAfter, workers)
			}
		})
	}

	run("sha", 1, func(ctx context.Context, ev Evaluator) error {
		_, err := SuccessiveHalvingCtx(ctx, space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 1})
		return err
	})
	run("sha-parallel", 4, func(ctx context.Context, ev Evaluator) error {
		_, err := SuccessiveHalvingCtx(ctx, space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 1, Workers: 4})
		return err
	})
	run("hyperband", 1, func(ctx context.Context, ev Evaluator) error {
		_, err := HyperbandCtx(ctx, space, ev, vanComps(), HyperbandOptions{Eta: 3, MinBudget: 50, Seed: 2})
		return err
	})
	run("bohb", 1, func(ctx context.Context, ev Evaluator) error {
		_, err := BOHBCtx(ctx, space, ev, vanComps(), BOHBOptions{
			Hyperband: HyperbandOptions{Eta: 3, MinBudget: 50, Seed: 3},
		})
		return err
	})
	run("asha", 4, func(ctx context.Context, ev Evaluator) error {
		_, err := ASHACtx(ctx, space, ev, vanComps(), ASHAOptions{
			Eta: 2, MinBudget: 100, MaxConfigs: 16, Workers: 4, Seed: 4,
		})
		return err
	})
}

// cancelAfter cancels the context when the n-th evaluation starts.
type cancelAfter struct {
	n      int64
	cancel context.CancelFunc
	ev     *countingEvaluator
}

func (c *cancelAfter) FullBudget() int { return c.ev.FullBudget() }

func (c *cancelAfter) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	if c.ev.calls.Load()+1 >= c.n {
		c.cancel()
	}
	return c.ev.Evaluate(cfg, budget, r)
}

// TestPreCancelledCtx verifies that an already-cancelled context aborts
// before any evaluation runs.
func TestPreCancelledCtx(t *testing.T) {
	space, quality := gradedSpace()
	inner := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
	ev := &countingEvaluator{inner: inner}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ASHACtx(ctx, space, ev, vanComps(), ASHAOptions{MinBudget: 100, MaxConfigs: 8, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ASHA: got %v", err)
	}
	if _, err := SuccessiveHalvingCtx(ctx, space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SHA: got %v", err)
	}
	if got := ev.calls.Load(); got != 0 {
		t.Fatalf("pre-cancelled context still ran %d evaluations", got)
	}
}

package hpo

import (
	"fmt"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// RandomSearchOptions configure the random-search baseline.
type RandomSearchOptions struct {
	// N is the number of configurations to try (the paper's baseline uses
	// 10). 0 selects 10.
	N int
	// Seed drives sampling and training.
	Seed uint64
}

// RandomSearch evaluates N uniformly sampled configurations at full budget
// and returns the best by the components' scorer — the "random" baseline of
// Table IV.
func RandomSearch(space *search.Space, ev Evaluator, comps Components, opts RandomSearchOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	if opts.N <= 0 {
		opts.N = 10
	}
	root := rng.New(opts.Seed ^ 0x7a2d0)
	start := time.Now()
	res := &Result{Method: "random"}
	configs := space.SampleN(root.Split(1), opts.N)
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: random search sampled no configurations")
	}
	budget := ev.FullBudget()
	best := -1
	for i, cfg := range configs {
		tr, err := evalTrial(ev, comps, cfg, budget, 0, root.Split(trialTag(0, i)))
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, tr)
		if best < 0 || tr.Score > res.Trials[best].Score {
			best = i
		}
	}
	res.Best = res.Trials[best].Config
	res.BestScore = res.Trials[best].Score
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

package hpo

import (
	"context"
	"fmt"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// RandomSearchOptions configure the random-search baseline.
type RandomSearchOptions struct {
	// N is the number of configurations to try (the paper's baseline uses
	// 10). 0 selects 10.
	N int
	// Seed drives sampling and training.
	Seed uint64
}

// RandomSearch evaluates N uniformly sampled configurations at full budget
// and returns the best by the components' scorer — the "random" baseline of
// Table IV.
func RandomSearch(space *search.Space, ev Evaluator, comps Components, opts RandomSearchOptions) (*Result, error) {
	return RandomSearchCtx(context.Background(), space, ev, comps, opts)
}

// RandomSearchCtx is RandomSearch with cancellation: when ctx is cancelled
// or times out the run stops before starting another evaluation and returns
// ctx's error.
func RandomSearchCtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RandomSearchOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	if opts.N <= 0 {
		opts.N = 10
	}
	root := rng.New(opts.Seed ^ 0x7a2d0)
	start := time.Now()
	res := &Result{Method: "random"}
	configs := space.SampleN(root.Split(1), opts.N)
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: random search sampled no configurations")
	}
	if err := evalSequential(ctx, ev, comps, configs, root, res); err != nil {
		return nil, err
	}
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:         "random",
		Description:  "uniform random sampling, every trial at full budget (Table IV baseline)",
		HonorsTrials: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.Random
		o.Seed = opts.Seed
		if o.N == 0 {
			o.N = opts.Trials
		}
		return RandomSearchCtx(ctx, space, ev, comps, o)
	})
}

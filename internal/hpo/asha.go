package hpo

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// ASHAOptions configure asynchronous successive halving (Li et al., 2018).
type ASHAOptions struct {
	// Eta is the promotion factor. 0 selects 3.
	Eta int
	// MinBudget is the rung-0 per-configuration budget. 0 selects 4·K.
	MinBudget int
	// MaxConfigs is the number of configurations sampled. 0 selects
	// min(27, space size).
	MaxConfigs int
	// Workers is the number of concurrent evaluation goroutines. 0
	// selects 4.
	Workers int
	// Seed drives sampling and training.
	Seed uint64
}

func (o ASHAOptions) withDefaults(k, spaceSize int) ASHAOptions {
	if o.Eta < 2 {
		o.Eta = 3
	}
	if o.MinBudget <= 0 {
		o.MinBudget = 4 * k
	}
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = 27
		if o.MaxConfigs > spaceSize {
			o.MaxConfigs = spaceSize
		}
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// ashaJob is one unit of work: evaluate cfg at the given rung.
type ashaJob struct {
	cfg    search.Config
	cfgIdx int
	rung   int
	done   bool // no more work will ever arrive
}

// ashaState is the shared promotion ledger guarded by mu.
type ashaState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	rungs       [][]ranked        // completed evaluations per rung
	promoted    []map[string]bool // per rung: configs already promoted out
	outstanding int
	nextCfg     int
	configs     []search.Config
	trials      []Trial
	err         error
	eta         int
	maxRung     int
}

// ASHA runs asynchronous successive halving: worker goroutines
// independently promote configurations through budget rungs as soon as a
// configuration enters the top 1/Eta of its rung, without waiting for the
// rung to fill. With enhanced components this is "ASHA+", extending the
// paper's technique to the asynchronous setting it cites.
func ASHA(space *search.Space, ev Evaluator, comps Components, opts ASHAOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(comps.K, space.Size())
	root := rng.New(opts.Seed ^ 0xa5aa)
	full := ev.FullBudget()
	maxRung := 0
	for b := opts.MinBudget; b < full; b *= opts.Eta {
		maxRung++
	}
	st := &ashaState{
		rungs:    make([][]ranked, maxRung+1),
		promoted: make([]map[string]bool, maxRung+1),
		configs:  space.SampleN(root.Split(1), opts.MaxConfigs),
		eta:      opts.Eta,
		maxRung:  maxRung,
	}
	st.cond = sync.NewCond(&st.mu)
	for r := range st.promoted {
		st.promoted[r] = map[string]bool{}
	}
	if len(st.configs) == 0 {
		return nil, fmt.Errorf("hpo: ASHA sampled no configurations")
	}

	start := time.Now()
	budgetOf := func(rung int) int {
		b := opts.MinBudget
		for i := 0; i < rung; i++ {
			b *= opts.Eta
		}
		if b > full {
			b = full
		}
		return b
	}

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				job := st.nextJob()
				if job.done {
					return
				}
				r := root.Split(uint64(job.cfgIdx)*131 + uint64(job.rung) + 7)
				tr, err := evalTrial(ev, comps, job.cfg, budgetOf(job.rung), job.rung, r)
				st.complete(job, tr, err)
			}
		}(w)
	}
	wg.Wait()
	if st.err != nil {
		return nil, st.err
	}
	res := &Result{Method: "asha", Trials: st.trials}
	res.Best, res.BestScore = st.best()
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

// nextJob blocks until work is available or the run is finished.
func (st *ashaState) nextJob() ashaJob {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.err != nil {
			return ashaJob{done: true}
		}
		// Prefer the highest-rung promotion available (get strong
		// configurations to full budget fast).
		for r := st.maxRung - 1; r >= 0; r-- {
			if cfg, idx, ok := st.promotable(r); ok {
				st.promoted[r][cfg.ID()] = true
				st.outstanding++
				return ashaJob{cfg: cfg, cfgIdx: idx, rung: r + 1}
			}
		}
		if st.nextCfg < len(st.configs) {
			cfg := st.configs[st.nextCfg]
			idx := st.nextCfg
			st.nextCfg++
			st.outstanding++
			return ashaJob{cfg: cfg, cfgIdx: idx, rung: 0}
		}
		if st.outstanding == 0 {
			st.cond.Broadcast()
			return ashaJob{done: true}
		}
		st.cond.Wait()
	}
}

// promotable returns a configuration in the top 1/eta of rung r that has
// not yet been promoted. Caller holds st.mu.
func (st *ashaState) promotable(r int) (search.Config, int, bool) {
	completed := st.rungs[r]
	k := len(completed) / st.eta
	if k < 1 {
		return search.Config{}, 0, false
	}
	sorted := append([]ranked(nil), completed...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].score != sorted[j].score {
			return sorted[i].score > sorted[j].score
		}
		return sorted[i].order < sorted[j].order
	})
	for i := 0; i < k; i++ {
		if !st.promoted[r][sorted[i].cfg.ID()] {
			return sorted[i].cfg, sorted[i].order, true
		}
	}
	return search.Config{}, 0, false
}

// complete records a finished evaluation and wakes waiting workers.
func (st *ashaState) complete(job ashaJob, tr Trial, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.outstanding--
	if err != nil {
		if st.err == nil {
			st.err = err
		}
	} else {
		st.trials = append(st.trials, tr)
		st.rungs[job.rung] = append(st.rungs[job.rung], ranked{cfg: job.cfg, score: tr.Score, order: job.cfgIdx})
	}
	st.cond.Broadcast()
}

// best returns the top configuration of the highest non-empty rung.
func (st *ashaState) best() (search.Config, float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for r := st.maxRung; r >= 0; r-- {
		if len(st.rungs[r]) == 0 {
			continue
		}
		bestScore := math.Inf(-1)
		var best search.Config
		for _, e := range st.rungs[r] {
			if e.score > bestScore {
				bestScore = e.score
				best = e.cfg
			}
		}
		return best, bestScore
	}
	return search.Config{}, 0
}

package hpo

import (
	"context"
	"fmt"
	"sync"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// ASHAOptions configure asynchronous successive halving (Li et al., 2018).
type ASHAOptions struct {
	// Eta is the promotion factor. 0 selects 3.
	Eta int
	// MinBudget is the rung-0 per-configuration budget. 0 selects 4·K.
	MinBudget int
	// MaxConfigs is the number of configurations sampled. 0 selects
	// min(27, space size).
	MaxConfigs int
	// Workers is the number of concurrent evaluation goroutines. The set
	// of evaluations and the selected configuration are identical for any
	// worker count (see the determinism note on ASHA). 0 selects 4.
	Workers int
	// Seed drives sampling and training.
	Seed uint64
}

func (o ASHAOptions) withDefaults(k, spaceSize int) ASHAOptions {
	if o.Eta < 2 {
		o.Eta = 3
	}
	if o.MinBudget <= 0 {
		o.MinBudget = 4 * k
	}
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = 27
		if o.MaxConfigs > spaceSize {
			o.MaxConfigs = spaceSize
		}
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// ashaJob is one unit of work: evaluate the member at rung job.rung.
type ashaJob struct {
	cfg    search.Config
	cfgIdx int
	rung   int
	member int  // index into st.rungs[rung]
	done   bool // no more work will ever arrive
}

// ashaMember is one configuration's slot in a rung.
type ashaMember struct {
	cfg      search.Config
	cfgIdx   int // global sample index: RNG stream tag and tie-break
	state    int // 0 pending, 1 running, 2 done
	score    float64
	promoted bool
	trial    Trial // completed evaluation, buffered until emitted in serial order
}

const (
	memberPending = iota
	memberRunning
	memberDone
)

// ashaState is the shared promotion ledger guarded by mu.
type ashaState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	rungs       [][]ashaMember // members per rung, in promotion order
	settled     []int          // per rung: completed-prefix length already processed
	outstanding int
	trials      []Trial
	err         error
	eta         int
	maxRung     int

	// Serial-order emission: completed trials are buffered on their rung
	// member and released — appended to trials and reported to observe —
	// in the exact order a single-worker run would produce them, by
	// replaying the serial scheduler (highest rung first, members in
	// index order) over the completed set. emitted[r] is the emission
	// cursor of rung r; created[r] is how many of rung r's members exist
	// in the replay (promotions from the emitted prefix of rung r-1);
	// shadowProm mirrors settle's promoted flags for the replay.
	observe    func(Trial)
	emitted    []int
	created    []int
	shadowProm [][]bool
}

// ASHA runs asynchronous successive halving: worker goroutines
// independently promote configurations through budget rungs as soon as a
// configuration enters the top 1/Eta of its rung, without waiting for the
// rung to fill. With enhanced components this is "ASHA+", extending the
// paper's technique to the asynchronous setting it cites.
//
// Determinism: promotion decisions are replayed in the canonical arrival
// order of each rung (a configuration's rung-r result is considered only
// once every earlier member of rung r has finished), and per-trial RNG
// streams are derived from (configuration index, rung). The set of
// evaluations and the returned best configuration are therefore identical
// for any worker count. Completed trials are additionally buffered and
// released in the order a single-worker run would produce them (see
// emitReady), so Result.Trials — and the Observe stream, hence any
// anytime curve built from it — are also identical for any worker count;
// only per-trial wall times vary.
func ASHA(space *search.Space, ev Evaluator, comps Components, opts ASHAOptions) (*Result, error) {
	return ASHACtx(context.Background(), space, ev, comps, opts)
}

// ASHACtx is ASHA with cancellation: a cancelled or expired ctx stops every
// worker before its next evaluation and returns ctx's error. Evaluations in
// flight finish, so the run stops within one evaluation of the cancel.
func ASHACtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts ASHAOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(comps.K, space.Size())
	root := rng.New(opts.Seed ^ 0xa5aa)
	full := ev.FullBudget()
	maxRung := 0
	for b := opts.MinBudget; b < full; b *= opts.Eta {
		maxRung++
	}
	configs := space.SampleN(root.Split(1), opts.MaxConfigs)
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: ASHA sampled no configurations")
	}
	st := &ashaState{
		rungs:      make([][]ashaMember, maxRung+1),
		settled:    make([]int, maxRung+1),
		eta:        opts.Eta,
		maxRung:    maxRung,
		emitted:    make([]int, maxRung+1),
		created:    make([]int, maxRung+1),
		shadowProm: make([][]bool, maxRung+1),
	}
	st.cond = sync.NewCond(&st.mu)
	for i, cfg := range configs {
		st.rungs[0] = append(st.rungs[0], ashaMember{cfg: cfg, cfgIdx: i})
	}
	st.created[0] = len(st.rungs[0])
	// Trials are observed in serial emission order, not completion order:
	// evalTrial's inline callback is suppressed and complete() reports
	// through the replay instead.
	st.observe = comps.Observe
	comps.Observe = nil

	start := time.Now()
	budgetOf := func(rung int) int {
		b := opts.MinBudget
		for i := 0; i < rung; i++ {
			b *= opts.Eta
		}
		if b > full {
			b = full
		}
		return b
	}

	// Wake blocked workers when ctx is cancelled mid-run.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			st.mu.Lock()
			if st.err == nil {
				st.err = ctx.Err()
			}
			st.cond.Broadcast()
			st.mu.Unlock()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job := st.nextJob()
				if job.done {
					return
				}
				r := root.Split(uint64(job.cfgIdx)*131 + uint64(job.rung) + 7)
				var tr Trial
				err := ctx.Err()
				if err == nil {
					tr, err = evalTrial(ev, comps, job.cfg, budgetOf(job.rung), job.rung, r)
				}
				st.complete(job, tr, err)
			}
		}()
	}
	wg.Wait()
	if st.err != nil {
		return nil, st.err
	}
	res := &Result{Method: "asha", Trials: st.trials}
	res.Best, res.BestScore = st.best()
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:             "asha",
		Description:      "asynchronous successive halving with deterministic prefix-replayed promotions (Li et al. 2018)",
		BudgetAware:      true,
		HonorsWorkers:    true,
		HonorsMaxConfigs: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.ASHA
		o.Seed = opts.Seed
		if o.Workers == 0 {
			o.Workers = opts.Workers
		}
		if o.MaxConfigs == 0 {
			o.MaxConfigs = opts.MaxConfigs
		}
		return ASHACtx(ctx, space, ev, comps, o)
	})
}

// nextJob blocks until work is available or the run is finished.
func (st *ashaState) nextJob() ashaJob {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.err != nil {
			return ashaJob{done: true}
		}
		// Prefer the highest rung with a pending member (get strong
		// configurations to full budget fast).
		for r := st.maxRung; r >= 0; r-- {
			for m := range st.rungs[r] {
				mem := &st.rungs[r][m]
				if mem.state != memberPending {
					continue
				}
				mem.state = memberRunning
				st.outstanding++
				return ashaJob{cfg: mem.cfg, cfgIdx: mem.cfgIdx, rung: r, member: m}
			}
		}
		if st.outstanding == 0 {
			st.cond.Broadcast()
			return ashaJob{done: true}
		}
		st.cond.Wait()
	}
}

// complete records a finished evaluation, settles any promotions it
// unlocks, and wakes waiting workers.
func (st *ashaState) complete(job ashaJob, tr Trial, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.outstanding--
	if err != nil {
		if st.err == nil {
			st.err = err
		}
	} else if st.err == nil {
		// Once the run has erred (evaluation failure or cancellation) the
		// result is discarded, so in-flight successes neither settle
		// promotions nor release the emission backlog — a cancelled job's
		// reported trial count freezes instead of flushing buffered
		// trials after the cancel.
		mem := &st.rungs[job.rung][job.member]
		mem.state = memberDone
		mem.score = tr.Score
		mem.trial = tr
		st.settle(job.rung)
		st.emitReady()
	}
	st.cond.Broadcast()
}

// emitReady releases buffered completed trials in the canonical serial
// order: repeatedly, the replayed single-worker scheduler's next pick —
// the lowest unemitted member of the highest rung that exists in the
// replay — is emitted if its evaluation has finished, and emission stalls
// on it otherwise. Every replay-created member is also created (and hence
// evaluated) by the real run, so the replay always drains by the time the
// run ends. Trials therefore arrive at observe, and land in st.trials, in
// an order independent of the worker count. Caller holds st.mu; observe
// runs under it, keeping concurrent completions in emission order.
func (st *ashaState) emitReady() {
	for {
		r := -1
		for q := st.maxRung; q >= 0; q-- {
			if st.emitted[q] < st.created[q] {
				r = q
				break
			}
		}
		if r < 0 {
			return
		}
		mem := &st.rungs[r][st.emitted[r]]
		if mem.state != memberDone {
			return
		}
		st.emitted[r]++
		st.trials = append(st.trials, mem.trial)
		if st.observe != nil {
			st.observe(mem.trial)
		}
		st.shadowSettle(r)
	}
}

// shadowSettle advances the replay's promotion state after rung r's
// emitted prefix grew by one: the same decision settle takes at this
// prefix length, recorded with the replay's own flags, so created[r+1]
// counts exactly the members a serial run would have promoted by now.
// Caller holds st.mu.
func (st *ashaState) shadowSettle(r int) {
	if r >= st.maxRung {
		return
	}
	members := st.rungs[r]
	j := st.emitted[r]
	k := j / st.eta
	if k < 1 {
		return
	}
	if len(st.shadowProm[r]) < j {
		grown := make([]bool, j)
		copy(grown, st.shadowProm[r])
		st.shadowProm[r] = grown
	}
	for _, m := range topMembers(members[:j], k) {
		if st.shadowProm[r][m] {
			continue
		}
		st.shadowProm[r][m] = true
		st.created[r+1]++
	}
}

// settle replays rung r's promotion decisions over its newly completed
// prefix. Decisions are taken at every prefix length j in order — exactly
// as if members had finished one by one in rung order — so the promoted
// set and the order of arrivals into rung r+1 do not depend on the actual
// completion schedule. Caller holds st.mu.
func (st *ashaState) settle(r int) {
	if r >= st.maxRung {
		return
	}
	members := st.rungs[r]
	for st.settled[r] < len(members) && members[st.settled[r]].state == memberDone {
		st.settled[r]++
		j := st.settled[r]
		k := j / st.eta
		if k < 1 {
			continue
		}
		for _, m := range topMembers(members[:j], k) {
			if members[m].promoted {
				continue
			}
			members[m].promoted = true
			st.rungs[r+1] = append(st.rungs[r+1], ashaMember{
				cfg:    members[m].cfg,
				cfgIdx: members[m].cfgIdx,
			})
		}
	}
}

// topMembers returns the indices of the k highest-scoring members (ties
// broken by configuration index), in rank order.
func topMembers(members []ashaMember, k int) []int {
	idx := make([]int, len(members))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort: rung prefixes are small and the call is per-completion.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := &members[idx[j-1]], &members[idx[j]]
			if a.score > b.score || (a.score == b.score && a.cfgIdx < b.cfgIdx) {
				break
			}
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// best returns the top configuration of the highest rung with a completed
// evaluation (ties broken by configuration index, so the choice is
// deterministic).
func (st *ashaState) best() (search.Config, float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for r := st.maxRung; r >= 0; r-- {
		bestIdx := -1
		for m := range st.rungs[r] {
			mem := &st.rungs[r][m]
			if mem.state != memberDone {
				continue
			}
			if bestIdx < 0 {
				bestIdx = m
				continue
			}
			cur := &st.rungs[r][bestIdx]
			if mem.score > cur.score || (mem.score == cur.score && mem.cfgIdx < cur.cfgIdx) {
				bestIdx = m
			}
		}
		if bestIdx >= 0 {
			return st.rungs[r][bestIdx].cfg, st.rungs[r][bestIdx].score
		}
	}
	return search.Config{}, 0
}

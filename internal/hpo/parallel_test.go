package hpo

import (
	"testing"
)

// TestSHAParallelMatchesSerial verifies the determinism contract of the
// Workers option: per-trial RNG streams are derived from (round, index),
// so any worker count must produce identical trials and the same winner.
func TestSHAParallelMatchesSerial(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
	configs := space.Enumerate()
	serial, err := SuccessiveHalving(configs, ev, vanComps(), SHAOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := SuccessiveHalving(configs, ev, vanComps(), SHAOptions{Seed: 1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if parallel.Best.ID() != serial.Best.ID() {
			t.Fatalf("workers=%d picked %s, serial picked %s", workers, parallel.Best.ID(), serial.Best.ID())
		}
		if len(parallel.Trials) != len(serial.Trials) {
			t.Fatalf("workers=%d ran %d trials, serial %d", workers, len(parallel.Trials), len(serial.Trials))
		}
		for i := range serial.Trials {
			st, pt := serial.Trials[i], parallel.Trials[i]
			if st.Config.ID() != pt.Config.ID() || st.Score != pt.Score || st.Budget != pt.Budget {
				t.Fatalf("workers=%d trial %d diverged: %+v vs %+v", workers, i, st, pt)
			}
		}
	}
}

// The fakeEvaluator must be safe for the concurrent calls the Workers
// option makes; it is stateless apart from the RNG passed in, so this test
// just exercises the pool under the race detector.
func TestSHAParallelRace(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 800, quality: quality, noise: 0.01}
	if _, err := SuccessiveHalving(space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 2, Workers: 6}); err != nil {
		t.Fatal(err)
	}
}

package hpo

import (
	"context"
	"math"
	"sort"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// DEHBOptions configure Differential Evolution Hyperband (Awad et al.,
// IJCAI 2021), another Hyperband improvement the paper cites: bracket
// populations are proposed by differential evolution over the archive of
// evaluated configurations instead of uniform sampling.
type DEHBOptions struct {
	// Hyperband carries the bracket schedule.
	Hyperband HyperbandOptions
	// F is the DE mutation factor. 0 selects 0.5.
	F float64
	// Cr is the DE crossover rate. 0 selects 0.9 (the DEHB default).
	Cr float64
}

// DEHB runs Hyperband brackets whose configurations evolve from the best
// evaluated ones via rand-to-best/1 differential evolution adapted to
// categorical dimensions (index arithmetic modulo the value count).
func DEHB(space *search.Space, ev Evaluator, comps Components, opts DEHBOptions) (*Result, error) {
	return DEHBCtx(context.Background(), space, ev, comps, opts)
}

// DEHBCtx is DEHB with cancellation: when ctx is cancelled or times out the
// run stops before starting another evaluation and returns ctx's error.
func DEHBCtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts DEHBOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	hb := opts.Hyperband.withDefaults(comps.K)
	f := opts.F
	if f <= 0 {
		f = 0.5
	}
	cr := opts.Cr
	if cr <= 0 {
		cr = 0.9
	}
	root := rng.New(hb.Seed ^ 0xdeb0)

	// archive holds every completed evaluation (highest score per config).
	type entry struct {
		cfg   search.Config
		score float64
	}
	archive := map[string]entry{}

	provider := func(r *rng.RNG, n int) []search.Config {
		// Too little history: uniform sampling, exactly like Hyperband's
		// first bracket.
		if len(archive) < 4 {
			return space.SampleN(r, n)
		}
		pool := make([]entry, 0, len(archive))
		for _, e := range archive {
			pool = append(pool, e)
		}
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].score > pool[j].score })
		best := pool[0]
		out := make([]search.Config, 0, n)
		seen := map[string]bool{}
		for len(out) < n {
			// rand-to-best/1: parent + F·(best − parent) + F·(r2 − r3),
			// per dimension on choice indices, wrapped into range.
			parent := pool[r.Intn(len(pool))]
			r2 := pool[r.Intn(len(pool))]
			r3 := pool[r.Intn(len(pool))]
			idx := make([]int, len(space.Dims))
			forceDim := r.Intn(len(space.Dims))
			for d, dim := range space.Dims {
				v := float64(parent.cfg.Index(d)) +
					f*float64(best.cfg.Index(d)-parent.cfg.Index(d)) +
					f*float64(r2.cfg.Index(d)-r3.cfg.Index(d))
				cand := int(math.Round(v))
				size := len(dim.Values)
				cand = ((cand % size) + size) % size
				// Binomial crossover with the parent.
				if d != forceDim && r.Float64() > cr {
					cand = parent.cfg.Index(d)
				}
				idx[d] = cand
			}
			cfg := space.NewConfig(idx)
			if seen[cfg.ID()] {
				// Mutation collapsed onto a duplicate; inject exploration.
				cfg = space.Sample(r)
				if seen[cfg.ID()] {
					if len(seen) >= space.Size() {
						break
					}
					continue
				}
			}
			seen[cfg.ID()] = true
			out = append(out, cfg)
		}
		// Pad any shortfall uniformly (tiny spaces).
		for len(out) < n && len(seen) < space.Size() {
			cfg := space.Sample(r)
			if !seen[cfg.ID()] {
				seen[cfg.ID()] = true
				out = append(out, cfg)
			}
		}
		return out
	}
	observe := func(cfg search.Config, budget int, score float64) {
		id := cfg.ID()
		if prev, ok := archive[id]; !ok || score > prev.score {
			archive[id] = entry{cfg: cfg, score: score}
		}
	}
	res, err := runBrackets(ctx, "dehb", ev, comps, hb, root, provider, observe)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:        "dehb",
		Description: "Hyperband brackets with differential-evolution proposals over the evaluation archive (Awad et al. 2021)",
		BudgetAware: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.DEHB
		o.Hyperband.Seed = opts.Seed
		return DEHBCtx(ctx, space, ev, comps, o)
	})
}

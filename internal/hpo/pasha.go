package hpo

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// PASHAOptions configure Progressive ASHA (Bohdal et al., 2023), which the
// paper lists among the Hyperband improvements: instead of fixing the
// maximum budget up front, PASHA starts with a small rung ladder and only
// grows it while the ranking of the top configurations is still unstable
// across the two highest rungs — saving the large-budget evaluations that
// a settled ranking makes unnecessary.
type PASHAOptions struct {
	// Eta is the promotion factor. 0 selects 3.
	Eta int
	// MinBudget is the rung-0 budget. 0 selects 4·K.
	MinBudget int
	// MaxConfigs is the number of sampled configurations. 0 selects
	// min(27, space size).
	MaxConfigs int
	// Seed drives sampling and training.
	Seed uint64
}

func (o PASHAOptions) withDefaults(k, spaceSize int) PASHAOptions {
	if o.Eta < 2 {
		o.Eta = 3
	}
	if o.MinBudget <= 0 {
		o.MinBudget = 4 * k
	}
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = 27
		if o.MaxConfigs > spaceSize {
			o.MaxConfigs = spaceSize
		}
	}
	return o
}

// PASHA runs progressive successive halving: the rung ladder starts at two
// rungs and is extended only while the top of the ranking disagrees
// between the two highest rungs (soft-rank instability), up to the full
// budget.
func PASHA(space *search.Space, ev Evaluator, comps Components, opts PASHAOptions) (*Result, error) {
	return PASHACtx(context.Background(), space, ev, comps, opts)
}

// PASHACtx is PASHA with cancellation: when ctx is cancelled or times out
// the run stops before starting another evaluation and returns ctx's error.
func PASHACtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts PASHAOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(comps.K, space.Size())
	root := rng.New(opts.Seed ^ 0x9a57a)
	full := ev.FullBudget()
	absMaxRung := 0
	for b := opts.MinBudget; b < full; b *= opts.Eta {
		absMaxRung++
	}
	budgetOf := func(rung int) int {
		b := opts.MinBudget
		for i := 0; i < rung; i++ {
			b *= opts.Eta
		}
		if b > full {
			b = full
		}
		return b
	}
	configs := space.SampleN(root.Split(1), opts.MaxConfigs)
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: PASHA sampled no configurations")
	}

	start := time.Now()
	res := &Result{Method: "pasha"}
	rungs := make([][]ranked, absMaxRung+1)
	// currentMax is the progressive rung cap; starts with a two-rung ladder.
	currentMax := 1
	if currentMax > absMaxRung {
		currentMax = absMaxRung
	}

	evalAt := func(cfg search.Config, cfgIdx, rung int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr, err := evalTrial(ev, comps, cfg, budgetOf(rung), rung, root.Split(uint64(cfgIdx)*167+uint64(rung)+3))
		if err != nil {
			return err
		}
		res.Trials = append(res.Trials, tr)
		rungs[rung] = append(rungs[rung], ranked{cfg: cfg, score: tr.Score, order: cfgIdx})
		return nil
	}

	// Rung 0: evaluate everything.
	for i, cfg := range configs {
		if err := evalAt(cfg, i, 0); err != nil {
			return nil, err
		}
	}
	// Promote level by level, extending the ladder while unstable.
	for rung := 0; rung < currentMax; rung++ {
		keep := len(rungs[rung]) / opts.Eta
		if keep < 1 {
			keep = 1
		}
		sorted := sortRanked(rungs[rung])
		for i := 0; i < keep; i++ {
			if err := evalAt(sorted[i].cfg, sorted[i].order, rung+1); err != nil {
				return nil, err
			}
		}
		// Progression check at the ladder top: if the two highest rungs
		// disagree on the leader, the ranking has not settled — extend.
		if rung+1 == currentMax && currentMax < absMaxRung {
			if !rankingStable(rungs[rung], rungs[rung+1]) {
				currentMax++
			}
		}
	}
	// Best = top of the highest populated rung.
	for r := absMaxRung; r >= 0; r-- {
		if len(rungs[r]) == 0 {
			continue
		}
		top := sortRanked(rungs[r])[0]
		res.Best = top.cfg
		res.BestScore = top.score
		break
	}
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:             "pasha",
		Description:      "progressive ASHA: the rung ladder grows only while the top ranking is unstable (Bohdal et al. 2023)",
		BudgetAware:      true,
		HonorsMaxConfigs: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.PASHA
		o.Seed = opts.Seed
		if o.MaxConfigs == 0 {
			o.MaxConfigs = opts.MaxConfigs
		}
		return PASHACtx(ctx, space, ev, comps, o)
	})
}

// rankingStable reports whether the leader at the higher rung is also the
// leader among the same configurations at the lower rung — PASHA's
// soft-rank progression criterion.
func rankingStable(lower, upper []ranked) bool {
	if len(upper) == 0 {
		return false
	}
	upTop := sortRanked(upper)[0]
	// Restrict the lower rung to configurations that reached the upper rung.
	reached := map[string]bool{}
	for _, e := range upper {
		reached[e.cfg.ID()] = true
	}
	bestScore := math.Inf(-1)
	var bestID string
	for _, e := range lower {
		if reached[e.cfg.ID()] && e.score > bestScore {
			bestScore = e.score
			bestID = e.cfg.ID()
		}
	}
	return bestID == upTop.cfg.ID()
}

func sortRanked(rs []ranked) []ranked {
	sorted := append([]ranked(nil), rs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].score != sorted[j].score {
			return sorted[i].score > sorted[j].score
		}
		return sorted[i].order < sorted[j].order
	})
	return sorted
}

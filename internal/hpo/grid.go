package hpo

import (
	"fmt"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// GridSearchOptions configure exhaustive grid search — the traditional
// baseline the paper's background section starts from. Every configuration
// is evaluated at full budget, which is exact but typically far more
// expensive than any bandit method.
type GridSearchOptions struct {
	// MaxConfigs caps the grid (0 = the whole space). When the cap bites,
	// the grid is subsampled uniformly, keeping the method deterministic
	// per seed.
	MaxConfigs int
	// Seed drives subsampling and training.
	Seed uint64
}

// GridSearch evaluates the (possibly capped) full grid at full budget.
func GridSearch(space *search.Space, ev Evaluator, comps Components, opts GridSearchOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	root := rng.New(opts.Seed ^ 0x6e1d)
	configs := space.Enumerate()
	if opts.MaxConfigs > 0 && opts.MaxConfigs < len(configs) {
		configs = space.SampleN(root.Split(1), opts.MaxConfigs)
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: grid search has no configurations")
	}
	start := time.Now()
	res := &Result{Method: "grid"}
	budget := ev.FullBudget()
	best := -1
	for i, cfg := range configs {
		tr, err := evalTrial(ev, comps, cfg, budget, 0, root.Split(trialTag(0, i)))
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, tr)
		if best < 0 || tr.Score > res.Trials[best].Score {
			best = i
		}
	}
	res.Best = res.Trials[best].Config
	res.BestScore = res.Trials[best].Score
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

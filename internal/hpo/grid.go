package hpo

import (
	"context"
	"fmt"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// GridSearchOptions configure exhaustive grid search — the traditional
// baseline the paper's background section starts from. Every configuration
// is evaluated at full budget, which is exact but typically far more
// expensive than any bandit method.
type GridSearchOptions struct {
	// MaxConfigs caps the grid (0 = the whole space). When the cap bites,
	// the grid is subsampled uniformly, keeping the method deterministic
	// per seed.
	MaxConfigs int
	// Seed drives subsampling and training.
	Seed uint64
}

// GridSearch evaluates the (possibly capped) full grid at full budget.
func GridSearch(space *search.Space, ev Evaluator, comps Components, opts GridSearchOptions) (*Result, error) {
	return GridSearchCtx(context.Background(), space, ev, comps, opts)
}

// GridSearchCtx is GridSearch with cancellation: when ctx is cancelled or
// times out the run stops before starting another evaluation and returns
// ctx's error.
func GridSearchCtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts GridSearchOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	root := rng.New(opts.Seed ^ 0x6e1d)
	configs := space.Enumerate()
	if opts.MaxConfigs > 0 && opts.MaxConfigs < len(configs) {
		configs = space.SampleN(root.Split(1), opts.MaxConfigs)
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: grid search has no configurations")
	}
	start := time.Now()
	res := &Result{Method: "grid"}
	if err := evalSequential(ctx, ev, comps, configs, root, res); err != nil {
		return nil, err
	}
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:             "grid",
		Description:      "exhaustive (optionally subsampled) grid, every trial at full budget",
		HonorsMaxConfigs: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.Grid
		o.Seed = opts.Seed
		if o.MaxConfigs == 0 {
			o.MaxConfigs = opts.MaxConfigs
		}
		return GridSearchCtx(ctx, space, ev, comps, o)
	})
}

package hpo

import (
	"testing"
)

// Tests for the extended optimizer set: PASHA, DEHB, SMAC, TPE and grid
// search, all on the planted-quality fake evaluator from hpo_test.go.

func TestPASHAFindsGoodConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0005}
	res, err := PASHA(space, ev, vanComps(), PASHAOptions{
		Eta: 2, MinBudget: 100, MaxConfigs: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := quality(res.Best); q < 4.0/6-1e-9 {
		t.Fatalf("PASHA picked quality %v", q)
	}
	if res.Method != "pasha" {
		t.Errorf("method = %q", res.Method)
	}
	// All configs evaluated at rung 0.
	rung0 := 0
	for _, tr := range res.Trials {
		if tr.Round == 0 {
			rung0++
		}
	}
	if rung0 != 16 {
		t.Fatalf("rung 0 evaluated %d, want 16", rung0)
	}
}

func TestPASHASavesBudgetWhenStable(t *testing.T) {
	// With near-zero noise the ranking settles immediately, so PASHA
	// should stop at a low rung and use less total budget than ASHA's
	// full ladder.
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 6400, quality: quality, noise: 1e-9}
	resP, err := PASHA(space, ev, vanComps(), PASHAOptions{Eta: 2, MinBudget: 100, MaxConfigs: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := ASHA(space, ev, vanComps(), ASHAOptions{Eta: 2, MinBudget: 100, MaxConfigs: 16, Workers: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	budget := func(trials []Trial) int {
		total := 0
		for _, tr := range trials {
			total += tr.Budget
		}
		return total
	}
	if bp, ba := budget(resP.Trials), budget(resA.Trials); bp >= ba {
		t.Fatalf("PASHA budget %d not below ASHA %d on a stable ranking", bp, ba)
	}
}

func TestDEHBFindsGoodConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0005}
	res, err := DEHB(space, ev, vanComps(), DEHBOptions{
		Hyperband: HyperbandOptions{Eta: 3, MinBudget: 50, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := quality(res.Best); q < 4.0/6-1e-9 {
		t.Fatalf("DEHB picked quality %v", q)
	}
	if res.Method != "dehb" {
		t.Errorf("method = %q", res.Method)
	}
}

func TestSMACFindsGoodConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 400, quality: quality, noise: 0.0001}
	res, err := SMAC(space, ev, vanComps(), SMACOptions{N: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 12 {
		t.Fatalf("evaluated %d trials", len(res.Trials))
	}
	// SMAC should at least match random's expected best after 12 of 16
	// configs; with the surrogate it should find a top config.
	if q := quality(res.Best); q < 4.0/6-1e-9 {
		t.Fatalf("SMAC picked quality %v", q)
	}
	// All evaluations at full budget (sequential BO baseline).
	for _, tr := range res.Trials {
		if tr.Budget != 400 {
			t.Fatalf("SMAC used budget %d", tr.Budget)
		}
	}
}

func TestSMACDoesNotRepeatConfigs(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 400, quality: quality, noise: 0.0001}
	res, err := SMAC(space, ev, vanComps(), SMACOptions{N: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tr := range res.Trials {
		if seen[tr.Config.ID()] {
			t.Fatalf("config %s evaluated twice", tr.Config.ID())
		}
		seen[tr.Config.ID()] = true
	}
}

func TestTPEFindsGoodConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 400, quality: quality, noise: 0.0001}
	res, err := TPE(space, ev, vanComps(), TPEOptions{N: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 12 {
		t.Fatalf("evaluated %d trials", len(res.Trials))
	}
	if q := quality(res.Best); q < 4.0/6-1e-9 {
		t.Fatalf("TPE picked quality %v", q)
	}
	if res.Method != "tpe" {
		t.Errorf("method = %q", res.Method)
	}
}

func TestGridSearchExhaustive(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 400, quality: quality, noise: 0.00001}
	res, err := GridSearch(space, ev, vanComps(), GridSearchOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != space.Size() {
		t.Fatalf("grid evaluated %d of %d", len(res.Trials), space.Size())
	}
	// Exhaustive + tiny noise: must find the unique optimum.
	if q := quality(res.Best); q < 1-1e-9 {
		t.Fatalf("grid picked quality %v", q)
	}
}

func TestGridSearchCapped(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 400, quality: quality, noise: 0.0001}
	res, err := GridSearch(space, ev, vanComps(), GridSearchOptions{MaxConfigs: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 5 {
		t.Fatalf("capped grid evaluated %d", len(res.Trials))
	}
}

func TestEncodeOneHot(t *testing.T) {
	space, _ := gradedSpace()
	c := space.NewConfig([]int{1, 3})
	row := encodeOneHot(space, c)
	if len(row) != 8 {
		t.Fatalf("one-hot width %d", len(row))
	}
	wantOnes := map[int]bool{1: true, 4 + 3: true}
	for i, v := range row {
		if wantOnes[i] && v != 1 {
			t.Fatalf("position %d = %v, want 1", i, v)
		}
		if !wantOnes[i] && v != 0 {
			t.Fatalf("position %d = %v, want 0", i, v)
		}
	}
}

func TestExpectedImprovement(t *testing.T) {
	// Better mean, no uncertainty: EI = mean - best.
	if got := expectedImprovement(0.9, 0, 0.8); got < 0.1-1e-12 || got > 0.1+1e-12 {
		t.Fatalf("deterministic EI = %v", got)
	}
	// Worse mean, no uncertainty: EI = 0.
	if got := expectedImprovement(0.7, 0, 0.8); got != 0 {
		t.Fatalf("hopeless EI = %v", got)
	}
	// Uncertainty adds hope even below the incumbent.
	if got := expectedImprovement(0.7, 0.2, 0.8); got <= 0 {
		t.Fatalf("uncertain EI = %v, want > 0", got)
	}
	// More uncertainty, more EI.
	lo := expectedImprovement(0.7, 0.1, 0.8)
	hi := expectedImprovement(0.7, 0.3, 0.8)
	if hi <= lo {
		t.Fatalf("EI not increasing in std: %v vs %v", lo, hi)
	}
}

func TestRankingStable(t *testing.T) {
	space, _ := gradedSpace()
	cfgs := space.Enumerate()
	lower := []ranked{
		{cfg: cfgs[0], score: 0.9, order: 0},
		{cfg: cfgs[1], score: 0.8, order: 1},
		{cfg: cfgs[2], score: 0.7, order: 2},
	}
	upperAgree := []ranked{
		{cfg: cfgs[0], score: 0.95, order: 0},
		{cfg: cfgs[1], score: 0.85, order: 1},
	}
	if !rankingStable(lower, upperAgree) {
		t.Fatal("agreeing rungs reported unstable")
	}
	upperDisagree := []ranked{
		{cfg: cfgs[0], score: 0.80, order: 0},
		{cfg: cfgs[1], score: 0.95, order: 1},
	}
	if rankingStable(lower, upperDisagree) {
		t.Fatal("disagreeing rungs reported stable")
	}
	if rankingStable(lower, nil) {
		t.Fatal("empty upper rung reported stable")
	}
}

package hpo

import (
	"context"
	"math"
	"time"

	"enhancedbhpo/internal/bayes"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// TPEOptions configure the Optuna-style sequential TPE optimizer the paper
// compares against in §IV-B (Optuna's default sampler is TPE): every trial
// runs at full budget, and the next configuration is proposed from the
// density-ratio model over past trials.
type TPEOptions struct {
	// N is the number of trials. 0 selects 10.
	N int
	// Sampler tunes the TPE model; zero value selects defaults.
	Sampler bayes.Options
	// Seed drives sampling and training.
	Seed uint64
}

// TPE runs sequential full-budget TPE optimization.
func TPE(space *search.Space, ev Evaluator, comps Components, opts TPEOptions) (*Result, error) {
	return TPECtx(context.Background(), space, ev, comps, opts)
}

// TPECtx is TPE with cancellation: when ctx is cancelled or times out the
// run stops before starting another evaluation and returns ctx's error.
func TPECtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts TPEOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	if opts.N <= 0 {
		opts.N = 10
	}
	root := rng.New(opts.Seed ^ 0x79e1)
	start := time.Now()
	res := &Result{Method: "tpe"}
	budget := ev.FullBudget()
	sampler := bayes.NewSampler(space, opts.Sampler)
	seen := map[string]bool{}
	bestScore := math.Inf(-1)
	var best search.Config
	for step := 0; step < opts.N; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cfg search.Config
		// Prefer unseen proposals; on a saturated tiny space re-evaluate.
		for attempt := 0; ; attempt++ {
			cfg = sampler.Sample(root.Split(uint64(step)*131 + uint64(attempt)))
			if !seen[cfg.ID()] || attempt >= 16 || len(seen) >= space.Size() {
				break
			}
		}
		tr, err := evalTrial(ev, comps, cfg, budget, step, root.Split(trialTag(step, 1)))
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, tr)
		seen[cfg.ID()] = true
		sampler.Add(bayes.Observation{Config: cfg, Budget: budget, Score: tr.Score})
		if tr.Score > bestScore {
			bestScore, best = tr.Score, cfg
		}
	}
	res.Best = best
	res.BestScore = bestScore
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:         "tpe",
		Aliases:      []string{"optuna"},
		Description:  "sequential full-budget TPE (Optuna's default sampler, §IV-B baseline)",
		HonorsTrials: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.TPE
		o.Seed = opts.Seed
		if o.N == 0 {
			o.N = opts.Trials
		}
		return TPECtx(ctx, space, ev, comps, o)
	})
}

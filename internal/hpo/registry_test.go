package hpo

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// entryPointMethod maps exported optimizer entry points whose lowercased
// name is not already the canonical registry name.
var entryPointMethod = map[string]string{
	"successivehalving": "sha",
	"randomsearch":      "random",
	"gridsearch":        "grid",
}

// TestRegistryCoversEveryEntryPoint parses the package source and fails
// when an exported optimizer entry point — any exported top-level function
// returning (*Result, error) — lacks a registry entry, or a registered
// method lacks an entry point. Adding an eleventh optimizer without
// registering it breaks this test, not the job service at runtime.
func TestRegistryCoversEveryEntryPoint(t *testing.T) {
	fset := token.NewFileSet()
	noTests := func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
	pkgs, err := parser.ParseDir(fset, ".", noTests, 0)
	if err != nil {
		t.Fatal(err)
	}
	// entryPoints: canonical method name -> exported functions implementing it.
	entryPoints := map[string][]string{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || !fn.Name.IsExported() || !returnsResultErr(fn) {
					continue
				}
				name := strings.ToLower(strings.TrimSuffix(fn.Name.Name, "Ctx"))
				if canonical, ok := entryPointMethod[name]; ok {
					name = canonical
				}
				entryPoints[name] = append(entryPoints[name], fn.Name.Name)
			}
		}
	}
	if len(entryPoints) == 0 {
		t.Fatal("found no optimizer entry points; the scanner is broken")
	}
	for name, fns := range entryPoints {
		if _, ok := LookupMethod(name); !ok {
			t.Errorf("exported optimizer entry point(s) %v have no registry entry %q", fns, name)
		}
	}
	for _, name := range MethodNames() {
		if _, ok := entryPoints[name]; !ok {
			t.Errorf("registered method %q has no exported entry point", name)
		}
	}
}

// returnsResultErr matches the optimizer entry-point signature suffix
// (*Result, error).
func returnsResultErr(fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) != 2 {
		return false
	}
	star, ok := res.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	ident, ok := star.X.(*ast.Ident)
	if !ok || ident.Name != "Result" {
		return false
	}
	errIdent, ok := res.List[1].Type.(*ast.Ident)
	return ok && errIdent.Name == "error"
}

// TestRegistryNamesAndAliases pins the served name/alias surface: exactly
// the ten methods, with the CLI's historical aliases resolving to their
// canonical methods.
func TestRegistryNamesAndAliases(t *testing.T) {
	want := []string{"asha", "bohb", "dehb", "grid", "hyperband", "pasha", "random", "sha", "smac", "tpe"}
	got := MethodNames()
	if !equalStrings(got, want) {
		t.Fatalf("MethodNames() = %v, want %v", got, want)
	}
	for alias, canonical := range map[string]string{
		"hb":     "hyperband",
		"optuna": "tpe",
	} {
		resolved, ok := CanonicalName(alias)
		if !ok || resolved != canonical {
			t.Errorf("CanonicalName(%q) = %q, %t; want %q", alias, resolved, ok, canonical)
		}
		m, ok := LookupMethod(alias)
		if !ok || m.Info().Name != canonical {
			t.Errorf("LookupMethod(%q) resolved to %v, want method %q", alias, m, canonical)
		}
	}
	if _, ok := LookupMethod("nope"); ok {
		t.Error("LookupMethod accepted an unknown name")
	}
	if _, ok := CanonicalName(""); ok {
		t.Error("CanonicalName accepted the empty name")
	}
}

// TestRegistryCapabilities pins the capability flags the job service
// validates submissions against.
func TestRegistryCapabilities(t *testing.T) {
	type caps struct{ budget, workers, maxConfigs, trials bool }
	want := map[string]caps{
		"sha":       {budget: true, workers: true, maxConfigs: true},
		"hyperband": {budget: true},
		"bohb":      {budget: true},
		"asha":      {budget: true, workers: true, maxConfigs: true},
		"pasha":     {budget: true, maxConfigs: true},
		"dehb":      {budget: true},
		"random":    {trials: true},
		"smac":      {trials: true},
		"tpe":       {trials: true},
		"grid":      {maxConfigs: true},
	}
	for _, info := range Methods() {
		w, ok := want[info.Name]
		if !ok {
			t.Errorf("unexpected registered method %q", info.Name)
			continue
		}
		got := caps{info.BudgetAware, info.HonorsWorkers, info.HonorsMaxConfigs, info.HonorsTrials}
		if got != w {
			t.Errorf("%s capabilities = %+v, want %+v", info.Name, got, w)
		}
		if info.Description == "" {
			t.Errorf("%s has no description", info.Name)
		}
	}
}

// TestRegisterRejectsDuplicates verifies the init-time guard rails.
func TestRegisterRejectsDuplicates(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() {
		RegisterFunc(MethodInfo{}, nil)
	})
	mustPanic("duplicate canonical name", func() {
		RegisterFunc(MethodInfo{Name: "sha"}, nil)
	})
	mustPanic("alias colliding with existing name", func() {
		RegisterFunc(MethodInfo{Name: "brandnew", Aliases: []string{"hb"}}, nil)
	})
}

package hpo

import (
	"context"
	"fmt"
	"math"
	"time"

	"enhancedbhpo/internal/forest"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// SMACOptions configure the SMAC3-style Bayesian optimizer the paper
// compares against in §IV-B: sequential full-budget evaluations guided by
// a random-forest surrogate with an expected-improvement acquisition.
type SMACOptions struct {
	// N is the total number of configurations evaluated. 0 selects 10
	// (matching the random baseline's trial count).
	N int
	// InitRandom is the number of initial random evaluations before the
	// surrogate kicks in. 0 selects max(3, N/4).
	InitRandom int
	// Candidates is the pool size scored by the acquisition per step.
	// 0 selects 64.
	Candidates int
	// Forest tunes the surrogate.
	Forest forest.Options
	// Seed drives sampling and training.
	Seed uint64
}

func (o SMACOptions) withDefaults() SMACOptions {
	if o.N <= 0 {
		o.N = 10
	}
	if o.InitRandom <= 0 {
		o.InitRandom = o.N / 4
		if o.InitRandom < 3 {
			o.InitRandom = 3
		}
	}
	if o.InitRandom > o.N {
		o.InitRandom = o.N
	}
	if o.Candidates <= 0 {
		o.Candidates = 64
	}
	return o
}

// SMAC runs the random-forest-surrogate sequential optimizer. Every
// evaluation uses the full budget (the paper's observation is that with a
// time budget similar to SHA's, SMAC3 and Optuna behave like random
// search — reproduced by the baselines experiment).
func SMAC(space *search.Space, ev Evaluator, comps Components, opts SMACOptions) (*Result, error) {
	return SMACCtx(context.Background(), space, ev, comps, opts)
}

// SMACCtx is SMAC with cancellation: when ctx is cancelled or times out the
// run stops before starting another evaluation and returns ctx's error.
func SMACCtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts SMACOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	root := rng.New(opts.Seed ^ 0x53ac)
	start := time.Now()
	res := &Result{Method: "smac"}
	budget := ev.FullBudget()

	var xs [][]float64
	var ys []float64
	seen := map[string]bool{}
	bestScore := math.Inf(-1)
	var best search.Config

	evaluate := func(cfg search.Config, step int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr, err := evalTrial(ev, comps, cfg, budget, step, root.Split(trialTag(step, 0)))
		if err != nil {
			return err
		}
		res.Trials = append(res.Trials, tr)
		xs = append(xs, encodeOneHot(space, cfg))
		ys = append(ys, tr.Score)
		seen[cfg.ID()] = true
		if tr.Score > bestScore {
			bestScore, best = tr.Score, cfg
		}
		return nil
	}

	initConfigs := space.SampleN(root.Split(1), opts.InitRandom)
	for i, cfg := range initConfigs {
		if err := evaluate(cfg, i); err != nil {
			return nil, err
		}
	}
	for step := len(res.Trials); step < opts.N; step++ {
		cfg, err := smacPropose(space, xs, ys, bestScore, seen, opts, root.Split(uint64(step)+0x51))
		if err != nil {
			return nil, err
		}
		if err := evaluate(cfg, step); err != nil {
			return nil, err
		}
	}
	res.Best = best
	res.BestScore = bestScore
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:         "smac",
		Description:  "sequential full-budget Bayesian optimization with a random-forest surrogate (SMAC3-style, §IV-B baseline)",
		HonorsTrials: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.SMAC
		o.Seed = opts.Seed
		if o.N == 0 {
			o.N = opts.Trials
		}
		return SMACCtx(ctx, space, ev, comps, o)
	})
}

// smacPropose fits the surrogate and returns the candidate with the best
// expected improvement, falling back to random on degenerate data.
func smacPropose(space *search.Space, xs [][]float64, ys []float64, bestScore float64, seen map[string]bool, opts SMACOptions, r *rng.RNG) (search.Config, error) {
	if len(xs) < 2 {
		return space.Sample(r), nil
	}
	fOpts := opts.Forest
	fOpts.Seed = r.Uint64()
	model, err := forest.Train(xs, ys, fOpts)
	if err != nil {
		return search.Config{}, fmt.Errorf("hpo: smac surrogate: %w", err)
	}
	var best search.Config
	bestEI := math.Inf(-1)
	found := false
	for c := 0; c < opts.Candidates; c++ {
		cand := space.Sample(r)
		if seen[cand.ID()] {
			continue
		}
		mean, variance := model.Predict(encodeOneHot(space, cand))
		ei := expectedImprovement(mean, math.Sqrt(variance), bestScore)
		if ei > bestEI {
			bestEI, best, found = ei, cand, true
		}
	}
	if !found {
		// Candidate pool exhausted by duplicates (tiny space): take any
		// unseen config, or repeat the best-known one.
		for _, cand := range space.Enumerate() {
			if !seen[cand.ID()] {
				return cand, nil
			}
		}
		return space.Sample(r), nil
	}
	return best, nil
}

// expectedImprovement is the standard EI for maximization.
func expectedImprovement(mean, std, best float64) float64 {
	if std < 1e-12 {
		if mean > best {
			return mean - best
		}
		return 0
	}
	z := (mean - best) / std
	return (mean-best)*normCDF(z) + std*normPDF(z)
}

func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// encodeOneHot turns a categorical configuration into a one-hot feature
// row for the surrogate.
func encodeOneHot(space *search.Space, c search.Config) []float64 {
	width := 0
	for _, d := range space.Dims {
		width += len(d.Values)
	}
	row := make([]float64, width)
	off := 0
	for d, dim := range space.Dims {
		row[off+c.Index(d)] = 1
		off += len(dim.Values)
	}
	return row
}

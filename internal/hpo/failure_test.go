package hpo

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// failingEvaluator fails every evaluation after the first failAfter calls —
// failure injection to check that every optimizer surfaces evaluation
// errors instead of swallowing them or deadlocking.
type failingEvaluator struct {
	mu        sync.Mutex
	calls     int
	failAfter int
	inner     *fakeEvaluator
}

var errInjected = errors.New("injected evaluation failure")

func (f *failingEvaluator) FullBudget() int { return f.inner.full }

func (f *failingEvaluator) Evaluate(c search.Config, budget int, r *rng.RNG) ([]float64, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n > f.failAfter {
		return nil, errInjected
	}
	return f.inner.Evaluate(c, budget, r)
}

func newFailing(failAfter int) (*search.Space, *failingEvaluator) {
	space, quality := gradedSpace()
	inner := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
	return space, &failingEvaluator{failAfter: failAfter, inner: inner}
}

func TestOptimizersSurfaceEvaluationErrors(t *testing.T) {
	cases := []struct {
		name string
		run  func(space *search.Space, ev Evaluator) error
	}{
		{"sha", func(space *search.Space, ev Evaluator) error {
			_, err := SuccessiveHalving(space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 1})
			return err
		}},
		{"sha-parallel", func(space *search.Space, ev Evaluator) error {
			_, err := SuccessiveHalving(space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 1, Workers: 4})
			return err
		}},
		{"random", func(space *search.Space, ev Evaluator) error {
			_, err := RandomSearch(space, ev, vanComps(), RandomSearchOptions{N: 8, Seed: 1})
			return err
		}},
		{"hyperband", func(space *search.Space, ev Evaluator) error {
			_, err := Hyperband(space, ev, vanComps(), HyperbandOptions{MinBudget: 50, Seed: 1})
			return err
		}},
		{"bohb", func(space *search.Space, ev Evaluator) error {
			_, err := BOHB(space, ev, vanComps(), BOHBOptions{Hyperband: HyperbandOptions{MinBudget: 50, Seed: 1}})
			return err
		}},
		{"asha", func(space *search.Space, ev Evaluator) error {
			_, err := ASHA(space, ev, vanComps(), ASHAOptions{MinBudget: 100, MaxConfigs: 8, Workers: 3, Seed: 1})
			return err
		}},
		{"pasha", func(space *search.Space, ev Evaluator) error {
			_, err := PASHA(space, ev, vanComps(), PASHAOptions{MinBudget: 100, MaxConfigs: 8, Seed: 1})
			return err
		}},
		{"dehb", func(space *search.Space, ev Evaluator) error {
			_, err := DEHB(space, ev, vanComps(), DEHBOptions{Hyperband: HyperbandOptions{MinBudget: 50, Seed: 1}})
			return err
		}},
		{"smac", func(space *search.Space, ev Evaluator) error {
			_, err := SMAC(space, ev, vanComps(), SMACOptions{N: 8, Seed: 1})
			return err
		}},
		{"tpe", func(space *search.Space, ev Evaluator) error {
			_, err := TPE(space, ev, vanComps(), TPEOptions{N: 8, Seed: 1})
			return err
		}},
		{"grid", func(space *search.Space, ev Evaluator) error {
			_, err := GridSearch(space, ev, vanComps(), GridSearchOptions{Seed: 1})
			return err
		}},
	}
	for _, tc := range cases {
		for _, failAfter := range []int{0, 3} {
			space, ev := newFailing(failAfter)
			err := tc.run(space, ev)
			if err == nil {
				t.Errorf("%s (failAfter=%d): error swallowed", tc.name, failAfter)
				continue
			}
			if !errors.Is(err, errInjected) && !strings.Contains(err.Error(), "injected") {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		}
	}
}

// TestASHAErrorStopsWorkers ensures an injected failure terminates the
// worker pool rather than hanging the run.
func TestASHAErrorStopsWorkers(t *testing.T) {
	space, ev := newFailing(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = ASHA(space, ev, vanComps(), ASHAOptions{MinBudget: 100, MaxConfigs: 16, Workers: 4, Seed: 9})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second): // normal completion is milliseconds
		t.Fatal("ASHA hung after evaluation failure")
	}
}

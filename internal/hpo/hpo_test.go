package hpo

import (
	"fmt"
	"sort"
	"testing"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/search"
)

// fakeEvaluator scores configurations by a planted quality function plus
// budget-dependent noise, so optimizer logic can be tested without training
// networks: larger budgets give cleaner estimates, like real evaluations.
type fakeEvaluator struct {
	space   *search.Space
	full    int
	quality func(c search.Config) float64
	noise   float64
}

func (f *fakeEvaluator) FullBudget() int { return f.full }

func (f *fakeEvaluator) Evaluate(c search.Config, budget int, r *rng.RNG) ([]float64, error) {
	q := f.quality(c)
	scale := f.noise / float64(budget) * float64(f.full)
	scores := make([]float64, 5)
	for i := range scores {
		scores[i] = q + r.Norm()*scale
	}
	return scores, nil
}

// gradedSpace returns a 2-dim space where quality = (i+j) / maxSum, so the
// unique best config is the last index pair.
func gradedSpace() (*search.Space, func(search.Config) float64) {
	s := &search.Space{Dims: []search.Dimension{
		{Name: "a", Values: []any{0, 1, 2, 3}},
		{Name: "b", Values: []any{0, 1, 2, 3}},
	}}
	quality := func(c search.Config) float64 {
		return float64(c.Index(0)+c.Index(1)) / 6.0
	}
	return s, quality
}

func vanComps() Components {
	return Components{Folds: cv.StratifiedKFold{}, K: 5, Scorer: scoring.MeanScorer{}}
}

func TestSuccessiveHalvingFindsGoodConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0005}
	res, err := SuccessiveHalving(space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if q := quality(res.Best); q < 5.0/6-1e-9 {
		t.Fatalf("SHA picked quality %v config %s", q, res.Best)
	}
	if res.Method != "sha" {
		t.Errorf("method = %q", res.Method)
	}
	if res.Evaluations != len(res.Trials) {
		t.Error("evaluation count mismatch")
	}
}

func TestSuccessiveHalvingBudgetSchedule(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.001}
	res, err := SuccessiveHalving(space.Enumerate(), ev, vanComps(), SHAOptions{Eta: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds: 16 -> 8 -> 4 -> 2 -> 1 configs; budgets 100, 200, 400, 800.
	countPerRound := map[int]int{}
	budgetPerRound := map[int]int{}
	for _, tr := range res.Trials {
		countPerRound[tr.Round]++
		budgetPerRound[tr.Round] = tr.Budget
	}
	wantCounts := []int{16, 8, 4, 2}
	for round, want := range wantCounts {
		if countPerRound[round] != want {
			t.Errorf("round %d evaluated %d configs, want %d", round, countPerRound[round], want)
		}
	}
	for round := 1; round < len(wantCounts); round++ {
		if budgetPerRound[round] <= budgetPerRound[round-1] {
			t.Errorf("budget did not grow: round %d %d <= round %d %d",
				round, budgetPerRound[round], round-1, budgetPerRound[round-1])
		}
	}
}

func TestSuccessiveHalvingSingleConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 100, quality: quality, noise: 0.001}
	one := space.Enumerate()[:1]
	res, err := SuccessiveHalving(one, ev, vanComps(), SHAOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.ID() != one[0].ID() {
		t.Fatal("single config not selected")
	}
	if len(res.Trials) != 0 {
		t.Fatalf("unexpected evaluations: %d", len(res.Trials))
	}
}

func TestSuccessiveHalvingEmpty(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 100, quality: quality}
	if _, err := SuccessiveHalving(nil, ev, vanComps(), SHAOptions{}); err == nil {
		t.Error("empty config list accepted")
	}
}

func TestRandomSearchPicksBestOfSampled(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 400, quality: quality, noise: 0.0001}
	res, err := RandomSearch(space, ev, vanComps(), RandomSearchOptions{N: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 10 {
		t.Fatalf("evaluated %d configs", len(res.Trials))
	}
	// All trials at full budget.
	for _, tr := range res.Trials {
		if tr.Budget != 400 {
			t.Fatalf("random search used budget %d", tr.Budget)
		}
	}
	// Best of the sampled set by quality (noise is tiny).
	bestQ := -1.0
	for _, tr := range res.Trials {
		if q := quality(tr.Config); q > bestQ {
			bestQ = q
		}
	}
	if quality(res.Best) < bestQ-1e-9 {
		t.Fatalf("picked %v, best sampled %v", quality(res.Best), bestQ)
	}
}

func TestHyperbandFindsGoodConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0005}
	res, err := Hyperband(space, ev, vanComps(), HyperbandOptions{Eta: 3, MinBudget: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if q := quality(res.Best); q < 4.0/6-1e-9 {
		t.Fatalf("Hyperband picked quality %v", q)
	}
	if len(res.Trials) == 0 {
		t.Fatal("no trials recorded")
	}
	// Brackets explore multiple budgets.
	budgets := map[int]bool{}
	for _, tr := range res.Trials {
		budgets[tr.Budget] = true
	}
	if len(budgets) < 2 {
		t.Fatalf("Hyperband used only %d distinct budgets", len(budgets))
	}
}

func TestBOHBFindsGoodConfigAndLearns(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0005}
	res, err := BOHB(space, ev, vanComps(), BOHBOptions{
		Hyperband: HyperbandOptions{Eta: 3, MinBudget: 50, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := quality(res.Best); q < 4.0/6-1e-9 {
		t.Fatalf("BOHB picked quality %v", q)
	}
	if res.Method != "bohb" {
		t.Errorf("method = %q", res.Method)
	}
}

func TestASHAFindsGoodConfig(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0005}
	res, err := ASHA(space, ev, vanComps(), ASHAOptions{
		Eta: 2, MinBudget: 100, MaxConfigs: 16, Workers: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := quality(res.Best); q < 4.0/6-1e-9 {
		t.Fatalf("ASHA picked quality %v", q)
	}
	// Every sampled config must have been evaluated at rung 0.
	rung0 := 0
	for _, tr := range res.Trials {
		if tr.Round == 0 {
			rung0++
		}
	}
	if rung0 != 16 {
		t.Fatalf("rung 0 has %d evaluations, want 16", rung0)
	}
	// Promotions happen: some evaluations above rung 0.
	if len(res.Trials) <= rung0 {
		t.Fatal("no promotions recorded")
	}
}

func TestASHASingleWorkerDeterministicBest(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 800, quality: quality, noise: 0.0002}
	opts := ASHAOptions{Eta: 2, MinBudget: 100, MaxConfigs: 8, Workers: 1, Seed: 8}
	r1, err := ASHA(space, ev, vanComps(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ASHA(space, ev, vanComps(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.ID() != r2.Best.ID() {
		t.Fatal("single-worker ASHA not deterministic")
	}
}

func TestTopConfigs(t *testing.T) {
	space, _ := gradedSpace()
	configs := space.Enumerate()
	rs := []ranked{
		{cfg: configs[0], score: 0.5, order: 0},
		{cfg: configs[1], score: 0.9, order: 1},
		{cfg: configs[2], score: 0.9, order: 2},
		{cfg: configs[3], score: 0.1, order: 3},
	}
	top := topConfigs(rs, 2)
	if top[0].ID() != configs[1].ID() {
		t.Fatalf("top[0] = %s", top[0].ID())
	}
	if top[1].ID() != configs[2].ID() {
		t.Fatalf("tie-break wrong: top[1] = %s", top[1].ID())
	}
	if got := topConfigs(rs, 99); len(got) != 4 {
		t.Fatalf("overlong k returned %d", len(got))
	}
}

func TestEnhancedScorerKeepsHighVarianceEarly(t *testing.T) {
	// Two configs with equal mean: one volatile, one stable. With the mean
	// scorer the pick is arbitrary; with the UCB-β scorer at a small budget
	// the volatile one must rank first.
	space := &search.Space{Dims: []search.Dimension{{Name: "which", Values: []any{"stable", "volatile"}}}}
	stable := space.NewConfig([]int{0})
	volatile := space.NewConfig([]int{1})
	comps := Components{Folds: cv.StratifiedKFold{}, K: 5, Scorer: scoring.UCBScorer{Alpha: 0.1, BetaMax: 10}}
	ev := &deterministicEvaluator{full: 1000, scores: map[string][]float64{
		stable.ID():   {0.8, 0.8, 0.8, 0.8, 0.8},
		volatile.ID(): {0.7, 0.75, 0.8, 0.85, 0.9},
	}}
	tr1, err := evalTrial(ev, comps, stable, 50, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := evalTrial(ev, comps, volatile, 50, 0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Score <= tr1.Score {
		t.Fatalf("volatile %v should outrank stable %v at 5%% budget", tr2.Score, tr1.Score)
	}
	// At full budget the two are (nearly) tied.
	tr1f, _ := evalTrial(ev, comps, stable, 1000, 0, rng.New(3))
	tr2f, _ := evalTrial(ev, comps, volatile, 1000, 0, rng.New(4))
	if diff := tr2f.Score - tr1f.Score; diff > 0.05 {
		t.Fatalf("variance bonus too large at full budget: %v", diff)
	}
}

type deterministicEvaluator struct {
	full   int
	scores map[string][]float64
}

func (d *deterministicEvaluator) FullBudget() int { return d.full }
func (d *deterministicEvaluator) Evaluate(c search.Config, _ int, _ *rng.RNG) ([]float64, error) {
	s, ok := d.scores[c.ID()]
	if !ok {
		return nil, fmt.Errorf("no scores for %s", c.ID())
	}
	return s, nil
}

// tinyDataset builds a small separable classification set for integration
// tests of the real CV evaluator.
func tinyDataset(n int, seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	x := mat.NewDense(n, 2)
	class := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		class[i] = c
		shift := -2.0
		if c == 1 {
			shift = 2.0
		}
		x.Set(i, 0, shift+r.Norm()*0.6)
		x.Set(i, 1, -shift+r.Norm()*0.6)
	}
	return &dataset.Dataset{Name: "tiny", Kind: dataset.Classification, X: x, Class: class, NumClasses: 2}
}

func TestCVEvaluatorIntegration(t *testing.T) {
	train := tinyDataset(120, 1)
	base := nn.DefaultConfig()
	base.MaxIter = 25
	base.LearningRateInit = 0.02
	base.HiddenLayerSizes = []int{6}
	comps := VanillaComponents(5)
	ev := NewCVEvaluator(train, base, comps)
	if ev.FullBudget() != 120 {
		t.Fatalf("full budget %d", ev.FullBudget())
	}
	space, err := search.TableIIISpace(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := space.NewConfig([]int{0, 2})
	scores, err := ev.Evaluate(cfg, 60, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("%d fold scores", len(scores))
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("fold accuracy %v out of range", s)
		}
	}
	m, err := ev.FitFull(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Score(train); acc < 0.9 {
		t.Fatalf("full fit accuracy %v", acc)
	}
}

func TestSHAWithRealEvaluator(t *testing.T) {
	train := tinyDataset(160, 4)
	base := nn.DefaultConfig()
	base.MaxIter = 10
	base.HiddenLayerSizes = []int{4}
	comps := VanillaComponents(5)
	ev := NewCVEvaluator(train, base, comps)
	space, err := search.TableIIISpace(2)
	if err != nil {
		t.Fatal(err)
	}
	configs := space.Enumerate()[:8]
	res, err := SuccessiveHalving(configs, ev, comps, SHAOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.ID() == "" {
		t.Fatal("no best config")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestEnhancedComponentsEndToEnd(t *testing.T) {
	train := tinyDataset(200, 6)
	comps, err := EnhancedComponents(train, EnhancedOptions{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if comps.K != 5 {
		t.Fatalf("K = %d", comps.K)
	}
	if comps.Groups == nil {
		t.Fatal("no groups")
	}
	if comps.Scorer.Name() != "ucb-beta" {
		t.Fatalf("scorer = %s", comps.Scorer.Name())
	}
	base := nn.DefaultConfig()
	base.MaxIter = 10
	base.HiddenLayerSizes = []int{4}
	ev := NewCVEvaluator(train, base, comps)
	space, _ := search.TableIIISpace(2)
	res, err := SuccessiveHalving(space.Enumerate()[:4], ev, comps, SHAOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.ID() == "" {
		t.Fatal("no best config")
	}
}

func TestVanillaComponentsDefaults(t *testing.T) {
	c := VanillaComponents(0)
	if c.K != 5 || c.Folds == nil || c.Scorer == nil {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestResultHelpers(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 800, quality: quality, noise: 0.0005}
	res, err := SuccessiveHalving(space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestTrial()
	if best == nil {
		t.Fatal("no best trial")
	}
	for _, tr := range res.Trials {
		if tr.Score > best.Score {
			t.Fatalf("BestTrial missed score %v > %v", tr.Score, best.Score)
		}
	}
	round0 := res.TrialsAt(0)
	if len(round0) != 16 {
		t.Fatalf("round 0 has %d trials", len(round0))
	}
	for _, tr := range round0 {
		if tr.Round != 0 {
			t.Fatal("TrialsAt returned wrong round")
		}
	}
	if got := res.TrialsAt(99); len(got) != 0 {
		t.Fatalf("phantom round returned %d trials", len(got))
	}
	empty := &Result{}
	if empty.BestTrial() != nil {
		t.Fatal("empty result returned a best trial")
	}
}

func TestTrialsSortedByRound(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 800, quality: quality, noise: 0.001}
	res, err := SuccessiveHalving(space.Enumerate(), ev, vanComps(), SHAOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res.Trials, func(i, j int) bool {
		return res.Trials[i].Round < res.Trials[j].Round
	}) {
		t.Fatal("SHA trials out of round order")
	}
}

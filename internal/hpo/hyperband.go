package hpo

import (
	"context"
	"math"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// HyperbandOptions configure Hyperband and BOHB (which shares the bracket
// structure).
type HyperbandOptions struct {
	// Eta is the elimination factor. 0 selects 3, Hyperband's default.
	Eta int
	// MinBudget is the smallest per-configuration budget r_min; together
	// with the full budget R it determines the bracket count
	// s_max = floor(log_eta(R/r_min)). 0 selects 4·K of the components.
	MinBudget int
	// MaxBrackets caps the number of brackets actually run (0 = all).
	// Useful for the scaled-down experiment harness.
	MaxBrackets int
	// Seed drives sampling and training.
	Seed uint64
}

func (o HyperbandOptions) withDefaults(k int) HyperbandOptions {
	if o.Eta < 2 {
		o.Eta = 3
	}
	if o.MinBudget <= 0 {
		o.MinBudget = 4 * k
	}
	return o
}

// configProvider supplies n configurations for a new bracket; Hyperband
// samples uniformly, BOHB queries its TPE model.
type configProvider func(r *rng.RNG, n int) []search.Config

// observer is notified of every completed evaluation (BOHB feeds its KDE).
type observer func(cfg search.Config, budget int, score float64)

// Hyperband runs the classic bracket schedule: brackets s = s_max..0 trade
// many configurations at small budgets against few configurations at large
// budgets, each bracket running successive halving with factor Eta.
//
// With enhanced components this is the paper's "HB+".
func Hyperband(space *search.Space, ev Evaluator, comps Components, opts HyperbandOptions) (*Result, error) {
	return HyperbandCtx(context.Background(), space, ev, comps, opts)
}

// HyperbandCtx is Hyperband with cancellation: a cancelled or expired ctx
// stops the run before the next evaluation starts and returns ctx's error.
func HyperbandCtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts HyperbandOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(comps.K)
	root := rng.New(opts.Seed ^ 0x4b71)
	provider := func(r *rng.RNG, n int) []search.Config { return space.SampleN(r, n) }
	return runBrackets(ctx, "hyperband", ev, comps, opts, root, provider, nil)
}

func init() {
	RegisterFunc(MethodInfo{
		Name:        "hyperband",
		Aliases:     []string{"hb"},
		Description: "bracket schedule over successive halving, trading breadth at small budgets against depth at large ones",
		BudgetAware: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.HB
		o.Seed = opts.Seed
		return HyperbandCtx(ctx, space, ev, comps, o)
	})
}

// runBrackets is the shared Hyperband/BOHB engine.
func runBrackets(ctx context.Context, method string, ev Evaluator, comps Components, opts HyperbandOptions, root *rng.RNG, provide configProvider, observe observer) (*Result, error) {
	start := time.Now()
	res := &Result{Method: method}
	R := float64(ev.FullBudget())
	eta := float64(opts.Eta)
	sMax := int(math.Floor(math.Log(R/float64(opts.MinBudget)) / math.Log(eta)))
	if sMax < 0 {
		sMax = 0
	}
	brackets := sMax + 1
	if opts.MaxBrackets > 0 && brackets > opts.MaxBrackets {
		brackets = opts.MaxBrackets
	}
	bHB := float64(sMax+1) * R

	var globalBest search.Config
	globalScore := math.Inf(-1)
	haveBest := false
	round := 0
	for bi := 0; bi < brackets; bi++ {
		s := sMax - bi
		n := int(math.Ceil(bHB / R * math.Pow(eta, float64(s)) / float64(s+1)))
		if n < 1 {
			n = 1
		}
		r0 := R * math.Pow(eta, -float64(s))
		configs := provide(root.Split(uint64(bi)+0x100), n)
		if len(configs) == 0 {
			continue
		}
		current := configs
		for i := 0; i <= s && len(current) > 0; i++ {
			ri := int(math.Round(r0 * math.Pow(eta, float64(i))))
			if ri < opts.MinBudget {
				ri = opts.MinBudget
			}
			if ri > int(R) {
				ri = int(R)
			}
			scores := make([]ranked, 0, len(current))
			for ci, cfg := range current {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				tr, err := evalTrial(ev, comps, cfg, ri, round, root.Split(trialTag(round, ci)))
				if err != nil {
					return nil, err
				}
				res.Trials = append(res.Trials, tr)
				scores = append(scores, ranked{cfg: cfg, score: tr.Score, order: ci})
				if observe != nil {
					observe(cfg, ri, tr.Score)
				}
				// Track the best configuration seen at (near-)full budget;
				// fall back to the best at any budget if none reach it.
				if ri >= int(R)/2 && tr.Score > globalScore {
					globalBest, globalScore, haveBest = cfg, tr.Score, true
				}
			}
			round++
			keep := len(current) / opts.Eta
			if i == s || keep < 1 {
				keep = 1
			}
			current = topConfigs(scores, keep)
		}
		if !haveBest && len(current) > 0 {
			// No evaluation reached half budget yet; remember the bracket
			// winner as a provisional best.
			globalBest = current[0]
			haveBest = true
		}
	}
	res.Best = globalBest
	res.BestScore = globalScore
	if math.IsInf(globalScore, -1) {
		res.BestScore = 0
	}
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

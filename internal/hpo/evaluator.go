package hpo

import (
	"context"
	"fmt"
	"time"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// Evaluator turns a configuration and an instance budget into fold scores.
// Implementations must be safe for concurrent use (ASHA calls Evaluate from
// several goroutines).
type Evaluator interface {
	// Evaluate trains and validates the configuration with the given
	// instance budget, returning one score per cross-validation fold.
	Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error)
	// FullBudget returns the total budget B (the training set size).
	FullBudget() int
}

// CVEvaluator evaluates configurations by k-fold cross-validation of MLPs
// on budget-sized subsets of a training dataset.
type CVEvaluator struct {
	// Train is the training dataset (budgets are drawn from it).
	Train *dataset.Dataset
	// Base provides the non-searched nn.Config fields.
	Base nn.Config
	// Folds builds the cross-validation folds.
	Folds cv.Builder
	// K is the fold count.
	K int
	// Groups are required by group-based fold builders; nil otherwise.
	Groups *grouping.Groups
	// UseF1 scores classification folds by F1 instead of accuracy
	// (the paper reports F1 on the imbalanced datasets).
	UseF1 bool
}

// NewCVEvaluator wires an evaluator from the shared components.
func NewCVEvaluator(train *dataset.Dataset, base nn.Config, comps Components) *CVEvaluator {
	comps = comps.withDefaults()
	return &CVEvaluator{
		Train:  train,
		Base:   base,
		Folds:  comps.Folds,
		K:      comps.K,
		Groups: comps.Groups,
		UseF1:  comps.UseF1,
	}
}

// FullBudget implements Evaluator.
func (e *CVEvaluator) FullBudget() int { return e.Train.Len() }

// Evaluate implements Evaluator: it builds folds over a budget-sized
// subset, trains one model per fold and returns the per-fold scores.
func (e *CVEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	folds, err := e.Folds.Folds(e.Train, e.Groups, budget, e.K, r.Split(0xf01d))
	if err != nil {
		return nil, fmt.Errorf("hpo: building folds: %w", err)
	}
	nnCfg, err := search.ToNNConfig(cfg, e.Base)
	if err != nil {
		return nil, fmt.Errorf("hpo: materializing config: %w", err)
	}
	scores := make([]float64, 0, len(folds))
	for fi, fold := range folds {
		if len(fold.Train) < 2 || len(fold.Val) == 0 {
			continue
		}
		trainSub := e.Train.Select(fold.Train)
		valSub := e.Train.Select(fold.Val)
		foldCfg := nnCfg
		foldCfg.Seed = r.Split(uint64(fi) + 1).Uint64()
		model, err := nn.Fit(trainSub, foldCfg)
		if err != nil {
			return nil, fmt.Errorf("hpo: training fold %d: %w", fi, err)
		}
		scores = append(scores, e.scoreModel(model, valSub))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("hpo: no usable folds for budget %d", budget)
	}
	return scores, nil
}

func (e *CVEvaluator) scoreModel(m *nn.Model, val *dataset.Dataset) float64 {
	if e.UseF1 && e.Train.Kind == dataset.Classification {
		return m.ScoreF1(val)
	}
	return m.Score(val)
}

// FitFull trains the configuration on the complete training set — the
// paper's final step ("the model trained on the full dataset using the
// remained configuration becomes the result").
func (e *CVEvaluator) FitFull(cfg search.Config, seed uint64) (*nn.Model, error) {
	nnCfg, err := search.ToNNConfig(cfg, e.Base)
	if err != nil {
		return nil, err
	}
	nnCfg.Seed = seed
	return nn.Fit(e.Train, nnCfg)
}

// evalTrial runs one evaluation and wraps it in a Trial with timing and the
// aggregated score.
func evalTrial(ev Evaluator, comps Components, cfg search.Config, budget, round int, r *rng.RNG) (Trial, error) {
	start := time.Now()
	foldScores, err := ev.Evaluate(cfg, budget, r)
	if err != nil {
		return Trial{}, err
	}
	gamma := gammaOf(budget, ev.FullBudget())
	t := Trial{
		Config:     cfg,
		Budget:     budget,
		Round:      round,
		FoldScores: foldScores,
		Gamma:      gamma,
		Score:      comps.Scorer.Score(foldScores, gamma),
		Elapsed:    time.Since(start),
	}
	if comps.Observe != nil {
		comps.Observe(t)
	}
	return t, nil
}

// evalSequential is the shared trial loop of the full-budget baselines
// (random, grid): every configuration is evaluated once at full budget,
// ctx is honored between trials, and the best by score is recorded on res.
// Per-trial RNG streams are root.Split(trialTag(0, i)) — identical to the
// historical per-method loops, so results are bit-for-bit unchanged.
func evalSequential(ctx context.Context, ev Evaluator, comps Components, configs []search.Config, root *rng.RNG, res *Result) error {
	budget := ev.FullBudget()
	best := -1
	for i, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr, err := evalTrial(ev, comps, cfg, budget, 0, root.Split(trialTag(0, i)))
		if err != nil {
			return err
		}
		res.Trials = append(res.Trials, tr)
		if best < 0 || tr.Score > res.Trials[best].Score {
			best = i
		}
	}
	res.Best = res.Trials[best].Config
	res.BestScore = res.Trials[best].Score
	return nil
}

func gammaOf(budget, full int) float64 {
	if full <= 0 {
		return 100
	}
	if budget > full {
		budget = full
	}
	return float64(budget) / float64(full) * 100
}

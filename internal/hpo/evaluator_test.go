package hpo

import (
	"strings"
	"testing"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// imbalancedDataset builds a 95/5 binary problem where accuracy is a
// misleading metric and F1 is informative.
func imbalancedDataset(n int, seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	x := mat.NewDense(n, 2)
	class := make([]int, n)
	for i := 0; i < n; i++ {
		c := 0
		if i%20 == 0 {
			c = 1
		}
		class[i] = c
		shift := -1.5
		if c == 1 {
			shift = 1.5
		}
		x.Set(i, 0, shift+r.Norm()*0.5)
		x.Set(i, 1, shift+r.Norm()*0.5)
	}
	return &dataset.Dataset{Name: "imb", Kind: dataset.Classification, X: x, Class: class, NumClasses: 2}
}

func TestCVEvaluatorUseF1(t *testing.T) {
	train := imbalancedDataset(400, 1)
	base := nn.DefaultConfig()
	base.MaxIter = 15
	base.LearningRateInit = 0.02
	base.HiddenLayerSizes = []int{4}
	space, err := search.TableIIISpace(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := space.NewConfig([]int{0})
	comps := VanillaComponents(5)
	acc := NewCVEvaluator(train, base, comps)
	if acc.UseF1 {
		t.Fatal("UseF1 set without WithF1")
	}
	f1 := NewCVEvaluator(train, base, comps.WithF1())
	if !f1.UseF1 {
		t.Fatal("NewCVEvaluator dropped Components.UseF1")
	}
	accScores, err := acc.Evaluate(cfg, 200, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	f1Scores, err := f1.Evaluate(cfg, 200, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// On a 95/5 problem any accuracy is >= 0.9 once the majority class is
	// learned, while F1 of the rare class is structurally lower or equal.
	for i := range accScores {
		if f1Scores[i] > accScores[i]+1e-9 && accScores[i] > 0.9 {
			t.Fatalf("fold %d: F1 %v above accuracy %v on an imbalanced set", i, f1Scores[i], accScores[i])
		}
	}
}

func TestCVEvaluatorBadBudget(t *testing.T) {
	train := tinyDataset(8, 3)
	base := nn.DefaultConfig()
	base.MaxIter = 5
	comps := VanillaComponents(5)
	ev := NewCVEvaluator(train, base, comps)
	space, _ := search.TableIIISpace(1)
	// 8 instances cannot support 5 folds (needs >= 10).
	if _, err := ev.Evaluate(space.NewConfig([]int{0}), 8, rng.New(4)); err == nil {
		t.Fatal("impossible fold count accepted")
	} else if !strings.Contains(err.Error(), "folds") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCVEvaluatorGroupFoldsRequireGroups(t *testing.T) {
	train := tinyDataset(100, 5)
	base := nn.DefaultConfig()
	base.MaxIter = 5
	ev := &CVEvaluator{Train: train, Base: base, Folds: cv.GroupFolds{KGen: 3, KSpe: 2}, K: 5}
	space, _ := search.TableIIISpace(1)
	if _, err := ev.Evaluate(space.NewConfig([]int{0}), 50, rng.New(6)); err == nil {
		t.Fatal("group folds without groups accepted")
	}
}

func TestCVEvaluatorDeterministic(t *testing.T) {
	train := tinyDataset(120, 7)
	base := nn.DefaultConfig()
	base.MaxIter = 8
	comps := VanillaComponents(5)
	ev := NewCVEvaluator(train, base, comps)
	space, _ := search.TableIIISpace(2)
	cfg := space.NewConfig([]int{2, 1})
	s1, err := ev.Evaluate(cfg, 60, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ev.Evaluate(cfg, 60, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fold %d scores differ across identical seeds", i)
		}
	}
}

func TestGammaOf(t *testing.T) {
	if got := gammaOf(50, 100); got != 50 {
		t.Fatalf("gammaOf = %v", got)
	}
	if got := gammaOf(200, 100); got != 100 {
		t.Fatalf("overshoot gammaOf = %v", got)
	}
	if got := gammaOf(10, 0); got != 100 {
		t.Fatalf("zero-full gammaOf = %v", got)
	}
}

package hpo

import (
	"context"

	"enhancedbhpo/internal/bayes"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// BOHBOptions configure BOHB.
type BOHBOptions struct {
	// Hyperband carries the bracket schedule settings.
	Hyperband HyperbandOptions
	// Sampler tunes the TPE model; zero value selects BOHB defaults.
	Sampler bayes.Options
}

// BOHB runs Hyperband brackets whose configurations are proposed by a
// TPE/KDE model fitted to completed evaluations (Falkner et al. 2018),
// instead of uniform sampling. With enhanced components this is the
// paper's "BOHB+".
func BOHB(space *search.Space, ev Evaluator, comps Components, opts BOHBOptions) (*Result, error) {
	return BOHBCtx(context.Background(), space, ev, comps, opts)
}

// BOHBCtx is BOHB with cancellation: a cancelled or expired ctx stops the
// run before the next evaluation starts and returns ctx's error.
func BOHBCtx(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts BOHBOptions) (*Result, error) {
	comps = comps.withDefaults()
	if err := validateRun(space, comps); err != nil {
		return nil, err
	}
	hb := opts.Hyperband.withDefaults(comps.K)
	root := rng.New(hb.Seed ^ 0xb0b1)
	sampler := bayes.NewSampler(space, opts.Sampler)
	provider := func(r *rng.RNG, n int) []search.Config {
		out := make([]search.Config, 0, n)
		seen := map[string]bool{}
		for attempts := 0; len(out) < n && attempts < n*8; attempts++ {
			c := sampler.Sample(r.Split(uint64(attempts) + 1))
			if !seen[c.ID()] {
				seen[c.ID()] = true
				out = append(out, c)
			}
		}
		// Fill any shortfall (tiny spaces, heavy duplication) uniformly.
		for len(out) < n {
			c := space.Sample(r)
			if !seen[c.ID()] {
				seen[c.ID()] = true
				out = append(out, c)
			}
			if len(seen) >= space.Size() {
				break
			}
		}
		return out
	}
	observe := func(cfg search.Config, budget int, score float64) {
		sampler.Add(bayes.Observation{Config: cfg, Budget: budget, Score: score})
	}
	res, err := runBrackets(ctx, "bohb", ev, comps, hb, root, provider, observe)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:        "bohb",
		Description: "Hyperband brackets with TPE/KDE-proposed configurations (Falkner et al. 2018)",
		BudgetAware: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.BOHB
		o.Hyperband.Seed = opts.Seed
		return BOHBCtx(ctx, space, ev, comps, o)
	})
}

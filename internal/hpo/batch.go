package hpo

import (
	"fmt"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// Fused cross-validation: EvaluateBatch runs several concurrent trial
// evaluations in fold lockstep, so the per-fold model fits go through
// nn.FitBatch's grouped matmul dispatch instead of training one model at
// a time. Each request's fold construction, RNG seeding, skip logic and
// scoring are byte-for-byte the solo Evaluate code path, and FitBatch's
// models are bitwise-identical to solo nn.Fit — so every request's
// scores (and errors) are exactly what a solo Evaluate would return.

// EvalRequest is one trial's evaluation input for EvaluateBatch,
// mirroring the Evaluate(cfg, budget, r) argument triple.
type EvalRequest struct {
	Cfg    search.Config
	Budget int
	R      *rng.RNG
}

// EvalResult is one trial's evaluation output.
type EvalResult struct {
	Scores []float64
	Err    error
}

// BatchEvalStats reports how much of the batch actually fused.
type BatchEvalStats struct {
	// FusedTrials counts requests that trained at least one fold inside
	// a multi-trial lockstep group.
	FusedTrials int
	// FusedSteps / StackedRows aggregate nn.BatchStats over all fold
	// groups: lockstep minibatch steps with ≥2 trials, and the minibatch
	// rows stacked across trials in those steps.
	FusedSteps  int64
	StackedRows int64
	// SoloFallbacks counts requests routed through the solo Evaluate
	// path instead (L-BFGS trials, config/fold errors).
	SoloFallbacks int
}

// batchEvalState tracks one request through the fold-lockstep loop.
type batchEvalState struct {
	req    EvalRequest
	folds  []cv.Fold
	nnCfg  nn.Config
	scores []float64
	err    error
	solo   bool
	fused  bool
}

// EvaluateBatch evaluates the requests together, fusing the fold fits of
// all lockstep-compatible requests through nn.FitBatch with the given
// matmul worker cap (0 = GOMAXPROCS). Results are positionally matched
// to reqs and each is bitwise-identical — scores and error — to a solo
// e.Evaluate(req.Cfg, req.Budget, req.R) call: fusion changes wall-clock
// scheduling, never a number. Requests that cannot fuse (L-BFGS, fold or
// config errors) transparently take the solo path.
func (e *CVEvaluator) EvaluateBatch(reqs []EvalRequest, workers int) ([]EvalResult, BatchEvalStats) {
	var stats BatchEvalStats
	results := make([]EvalResult, len(reqs))
	if len(reqs) == 0 {
		return results, stats
	}
	states := make([]*batchEvalState, len(reqs))
	maxFolds := 0
	for i, req := range reqs {
		st := &batchEvalState{req: req}
		states[i] = st
		folds, err := e.Folds.Folds(e.Train, e.Groups, req.Budget, e.K, req.R.Split(0xf01d))
		if err != nil {
			st.err = fmt.Errorf("hpo: building folds: %w", err)
			continue
		}
		nnCfg, err := search.ToNNConfig(req.Cfg, e.Base)
		if err != nil {
			st.err = fmt.Errorf("hpo: materializing config: %w", err)
			continue
		}
		if nnCfg.Solver == nn.LBFGS {
			// L-BFGS has no lockstep decomposition; run it solo. The RNG
			// splits below re-derive the same streams (Split never
			// advances its parent), so this is exactly the solo result.
			st.solo = true
			continue
		}
		st.folds = folds
		st.nnCfg = nnCfg
		st.scores = make([]float64, 0, len(folds))
		if len(folds) > maxFolds {
			maxFolds = len(folds)
		}
	}

	// Fold lockstep over the fusable requests.
	items := make([]nn.BatchItem, 0, len(reqs))
	members := make([]*batchEvalState, 0, len(reqs))
	vals := make([]*dataset.Dataset, 0, len(reqs))
	for fi := 0; fi < maxFolds; fi++ {
		items, members, vals = items[:0], members[:0], vals[:0]
		for _, st := range states {
			if st.err != nil || st.solo || fi >= len(st.folds) {
				continue
			}
			fold := st.folds[fi]
			if len(fold.Train) < 2 || len(fold.Val) == 0 {
				continue
			}
			foldCfg := st.nnCfg
			foldCfg.Seed = st.req.R.Split(uint64(fi) + 1).Uint64()
			items = append(items, nn.BatchItem{Train: e.Train.Select(fold.Train), Cfg: foldCfg})
			members = append(members, st)
			vals = append(vals, e.Train.Select(fold.Val))
		}
		if len(items) == 0 {
			continue
		}
		models, bstats, err := nn.FitBatch(items, workers)
		if err != nil {
			// A rejected item aborts the whole lockstep group; rather
			// than untangle partial state, route every group member
			// through the solo path, which reproduces the exact solo
			// error (or result) for each.
			for _, st := range members {
				st.solo = true
			}
			continue
		}
		stats.FusedSteps += bstats.Steps
		stats.StackedRows += bstats.StackedRows
		for mi, st := range members {
			st.scores = append(st.scores, e.scoreModel(models[mi], vals[mi]))
			if len(members) > 1 {
				st.fused = true
			}
		}
	}

	for i, st := range states {
		switch {
		case st.solo:
			stats.SoloFallbacks++
			scores, err := e.Evaluate(st.req.Cfg, st.req.Budget, st.req.R)
			results[i] = EvalResult{Scores: scores, Err: err}
		case st.err != nil:
			results[i] = EvalResult{Err: st.err}
		case len(st.scores) == 0:
			results[i] = EvalResult{Err: fmt.Errorf("hpo: no usable folds for budget %d", st.req.Budget)}
		default:
			results[i] = EvalResult{Scores: st.scores}
			if st.fused {
				stats.FusedTrials++
			}
		}
	}
	return results, stats
}
